#!/usr/bin/env python
"""Compare every warp-scheduling policy on a chosen benchmark.

Runs GTO, SWL, CCWS, PCAL-SWL, random-restart search, APCM, Poise and the
Static-Best oracle on the same kernels and prints a compact comparison of
throughput, cache behaviour, memory latency and energy — the per-benchmark
slice of Figures 7, 8, 9, 14 and 15.

Run with::

    python examples/scheduler_comparison.py [--benchmark mm] [--fast]
"""

from __future__ import annotations

import argparse

from repro.experiments.common import (
    ExperimentConfig,
    run_scheme_on_benchmark,
    train_or_load_model,
)

SCHEMES = ("gto", "swl", "ccws", "pcal", "random_restart", "apcm", "poise", "static_best")
LABELS = {
    "gto": "GTO (baseline)",
    "swl": "SWL",
    "ccws": "CCWS (dynamic)",
    "pcal": "PCAL-SWL",
    "random_restart": "Random-restart",
    "apcm": "APCM bypass",
    "poise": "Poise",
    "static_best": "Static-Best",
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--benchmark", default="mm")
    parser.add_argument("--fast", action="store_true")
    args = parser.parse_args()

    config = ExperimentConfig.fast() if args.fast else ExperimentConfig.full()
    model = train_or_load_model(config)

    print(f"benchmark: {args.benchmark} ({config.label} configuration)")
    header = f"{'scheme':<16s} {'speedup':>8s} {'L1 hit':>7s} {'AML/GTO':>8s} {'energy/GTO':>10s}"
    print(header)
    print("-" * len(header))
    for scheme in SCHEMES:
        outcome = run_scheme_on_benchmark(scheme, args.benchmark, config, model=model)
        print(
            f"{LABELS[scheme]:<16s} {outcome.speedup:>7.3f}x {outcome.l1_hit_rate:>6.1%} "
            f"{outcome.aml_ratio:>8.3f} {outcome.energy_ratio:>10.3f}"
        )


if __name__ == "__main__":
    main()
