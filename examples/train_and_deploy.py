#!/usr/bin/env python
"""The full Poise workflow: offline training, deployment, online inference.

Mirrors the split of responsibilities in the paper:

1. *GPU vendor, offline* — profile the training benchmarks over the
   warp-tuple plane, score the grids, fit the Negative Binomial regressions
   and serialise the feature weights (Section V).
2. *Compiler* — ship the weights with the application (here: a JSON file).
3. *Hardware, online* — the inference engine loads the weights, samples the
   feature vector with performance counters and predicts + locally searches
   the warp-tuple for kernels it has never seen (Section VI).

Run with::

    python examples/train_and_deploy.py [--fast] [--model /tmp/poise_model.json]
"""

from __future__ import annotations

import argparse
import tempfile
from pathlib import Path

from repro.core.model_store import load_model, save_model
from repro.core.training import prediction_errors
from repro.experiments.common import ExperimentConfig, run_scheme_on_benchmark
from repro.workloads.registry import evaluation_benchmarks, training_benchmarks


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true", help="scaled-down configuration")
    parser.add_argument("--model", type=Path, default=None, help="where to save the model")
    parser.add_argument(
        "--deploy-on", default="mvt", help="unseen benchmark to optimise after training"
    )
    args = parser.parse_args()

    config = ExperimentConfig.fast() if args.fast else ExperimentConfig.full()
    model_path = args.model or Path(tempfile.gettempdir()) / "poise_model.json"

    # 1. Offline training (the vendor side).
    pipeline = config.training_pipeline()
    benchmarks = [
        config.limited_benchmark(benchmark, training=True)
        for benchmark in training_benchmarks()
    ]
    print(f"[offline] profiling {sum(len(b.kernels) for b in benchmarks)} training kernels ...")
    model, examples = pipeline.train(benchmarks)
    error_n, error_p = prediction_errors(model, examples)
    print(f"[offline] trained on {model.num_training_kernels} kernels "
          f"(training error: N {error_n:.1%}, p {error_p:.1%})")

    # 2. The compiler hand-off: weights travel as a file.
    save_model(model, model_path)
    print(f"[compiler] feature weights written to {model_path}")

    # 3. Online inference on an application that was never profiled.
    deployed = load_model(model_path)
    unseen = [benchmark.name for benchmark in evaluation_benchmarks()]
    assert args.deploy_on in unseen, f"{args.deploy_on} is not an unseen benchmark"
    print(f"[online] running Poise on unseen benchmark {args.deploy_on!r} ...")
    gto = run_scheme_on_benchmark("gto", args.deploy_on, config)
    poise = run_scheme_on_benchmark("poise", args.deploy_on, config, model=deployed)
    print(f"[online] GTO IPC {gto.ipc:.3f} -> Poise IPC {poise.ipc:.3f} "
          f"(speedup {poise.speedup:.3f}x, L1 hit {gto.l1_hit_rate:.1%} -> {poise.l1_hit_rate:.1%})")
    for kernel, telemetry in poise.telemetry.items():
        print(f"[online] {kernel}: epochs={telemetry['epochs']} "
              f"predicted={telemetry['predicted_tuples']} searched={telemetry['searched_tuples']}")


if __name__ == "__main__":
    main()
