#!/usr/bin/env python
"""Quickstart: run Poise on one unseen benchmark and compare with GTO.

This example uses the packaged pre-trained model when available (the
equivalent of the vendor-shipped feature weights of Table II) and otherwise
trains a small model on the training suite, then runs the Poise controller
on an evaluation benchmark and prints the headline metrics.

Run with::

    python examples/quickstart.py [--benchmark ii] [--fast]
"""

from __future__ import annotations

import argparse

from repro.experiments.common import (
    ExperimentConfig,
    run_scheme_on_benchmark,
    train_or_load_model,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--benchmark", default="ii", help="evaluation benchmark name")
    parser.add_argument(
        "--fast", action="store_true", help="use the scaled-down test configuration"
    )
    args = parser.parse_args()

    config = ExperimentConfig.fast() if args.fast else ExperimentConfig.full()
    print(f"configuration: {config.label}")

    model = train_or_load_model(config)
    print(f"model: trained on {model.num_training_kernels} kernels, "
          f"{len(model.alpha_weights)} features")

    gto = run_scheme_on_benchmark("gto", args.benchmark, config)
    poise = run_scheme_on_benchmark("poise", args.benchmark, config, model=model)

    print(f"\nbenchmark: {args.benchmark}")
    print(f"  GTO   : IPC {gto.ipc:.3f}  L1 hit {gto.l1_hit_rate:5.1%}  "
          f"AML {gto.aml:6.1f}  energy {gto.energy_uj:8.1f} uJ")
    print(f"  Poise : IPC {poise.ipc:.3f}  L1 hit {poise.l1_hit_rate:5.1%}  "
          f"AML {poise.aml:6.1f}  energy {poise.energy_uj:8.1f} uJ")
    print(f"\n  Poise speedup over GTO : {poise.speedup:.3f}x")
    print(f"  Energy relative to GTO : {poise.energy_ratio:.3f}x")
    for kernel, telemetry in poise.telemetry.items():
        print(f"  {kernel}: predicted {telemetry['predicted_tuples']}, "
              f"searched {telemetry['searched_tuples']}")


if __name__ == "__main__":
    main()
