#!/usr/bin/env python
"""Profile a kernel over the {N, p} warp-tuple plane and visualise it.

Reproduces the workflow behind Fig. 2 / Fig. 5 of the paper for any kernel
in the benchmark registry: sweep the plane, print an ASCII heat-map of the
speedup over the GTO baseline, and show where the raw performance peak, the
neighbourhood-scored training target (Eq. 12), the best diagonal point
(what SWL/CCWS can reach) and the baseline sit.

Run with::

    python examples/profile_solution_space.py [--benchmark ii] [--kernel 0] [--step 2]
"""

from __future__ import annotations

import argparse

from repro.core.scoring import best_raw_point, select_training_target
from repro.gpu.config import baseline_config
from repro.profiling.profiler import KernelProfiler
from repro.workloads.registry import get_benchmark

#: Buckets for the ASCII heat-map (speedup -> glyph).
GLYPHS = [(1.15, "#"), (1.05, "+"), (0.95, "."), (0.80, "-"), (0.0, " ")]


def glyph(speedup: float) -> str:
    for threshold, symbol in GLYPHS:
        if speedup >= threshold:
            return symbol
    return " "


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--benchmark", default="ii")
    parser.add_argument("--kernel", type=int, default=0, help="kernel index in the benchmark")
    parser.add_argument("--step", type=int, default=2, help="grid sub-sampling step")
    parser.add_argument("--cycles", type=int, default=8000, help="sampling window per point")
    parser.add_argument("--warmup", type=int, default=18000, help="warm-up cycles per point")
    args = parser.parse_args()

    benchmark = get_benchmark(args.benchmark)
    spec = benchmark.kernels[min(args.kernel, len(benchmark.kernels) - 1)]
    print(f"profiling {spec.name} ({benchmark.suite}/{benchmark.name}) ...")

    profiler = KernelProfiler(
        baseline_config(),
        cycles_per_point=args.cycles,
        warmup_cycles=args.warmup,
        n_step=args.step,
        p_step=args.step,
    )
    profile = profiler.profile(spec)
    grid = profile.speedup_grid()

    peak = best_raw_point(grid)
    scored = select_training_target(grid)
    diagonal = profile.best_diagonal_point()

    n_values = sorted({point[0] for point in grid})
    p_values = sorted({point[1] for point in grid}, reverse=True)
    print("\nspeedup over GTO ( # >=1.15, + >=1.05, . ~1.0, - <=0.95 )")
    print("p\\N " + " ".join(f"{n:>2d}" for n in n_values))
    for p in p_values:
        row = [f"{p:>3d} "]
        for n in n_values:
            row.append(f" {glyph(grid[(n, p)])} " if (n, p) in grid else "   ")
        print("".join(row))

    print(f"\nbaseline point      : ({profile.max_warps}, {profile.max_warps})  speedup 1.000")
    print(f"best diagonal (SWL) : {diagonal}  speedup {grid.get(diagonal, 1.0):.3f}")
    print(f"raw peak            : {peak.point}  speedup {peak.speedup:.3f}")
    print(f"scored target (Eq12): {scored.point}  speedup {scored.speedup:.3f} "
          f"(score {scored.score:.3f})")


if __name__ == "__main__":
    main()
