"""Bench: regenerate Fig. 11 (sensitivity to local-search stride)."""

from benchmarks.conftest import run_and_print
from repro.experiments import fig11_stride_sensitivity


def test_fig11_stride_sensitivity(benchmark, experiment_config):
    result = run_and_print(benchmark, fig11_stride_sensitivity, experiment_config)
    # Shape: adding a local search never hurts the harmonic mean much
    # relative to predictions alone, and the paper's chosen stride (2,4) is
    # competitive with the largest stride swept.
    no_search = result.scalars["hmean_0_0"]
    best_swept = max(value for key, value in result.scalars.items() if key.startswith("hmean_"))
    assert result.scalars["hmean_2_4"] >= no_search - 0.05
    assert result.scalars["hmean_2_4"] >= best_swept - 0.10
