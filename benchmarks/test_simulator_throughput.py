"""Bench: simulator hot-loop throughput and sweep wall-clock.

Unlike the figure benchmarks, this module tracks the *speed* of the
reproduction itself: simulated cycles per wall-clock second on a
memory-divergent and a compute-intensive kernel, and the wall-clock of the
fast-profile warp-tuple sweep cold (every point simulated — the seed's
serial path) versus warm (served from the persistent result cache).

Acceptance: the cached sweep must be at least 3× faster than the cold
serial sweep, and a parallel sweep must reproduce the serial grid
bit-for-bit.
"""

from __future__ import annotations

from repro.runtime.bench import (
    compute_intensive_kernel,
    measure_sweep,
    measure_throughput,
    memory_divergent_kernel,
)

#: Sanity floor for the hot loop, far below what any machine measures (the
#: reference box clears ~1M cycles/s); it exists to catch a pathological
#: slowdown, not to benchmark the host.
MIN_CYCLES_PER_SECOND = 100_000.0


def test_memory_divergent_throughput(benchmark):
    result = benchmark.pedantic(
        measure_throughput, args=(memory_divergent_kernel(),), rounds=1, iterations=1
    )
    print()
    print(
        f"memory-divergent: {result['cycles_per_second']:,.0f} cycles/s "
        f"({result['cycles']:,} cycles in {result['wall_seconds']:.3f}s)"
    )
    assert result["cycles"] > 0
    assert result["cycles_per_second"] > MIN_CYCLES_PER_SECOND


def test_compute_intensive_throughput(benchmark):
    result = benchmark.pedantic(
        measure_throughput, args=(compute_intensive_kernel(),), rounds=1, iterations=1
    )
    print()
    print(
        f"compute-intensive: {result['cycles_per_second']:,.0f} cycles/s "
        f"({result['cycles']:,} cycles in {result['wall_seconds']:.3f}s)"
    )
    assert result["cycles"] > 0
    assert result["cycles_per_second"] > MIN_CYCLES_PER_SECOND


def test_fast_profile_sweep_speedup(benchmark, tmp_path):
    """Cold vs warm fast-profile sweep: the persistent cache must buy ≥3×."""
    result = benchmark.pedantic(
        measure_sweep, args=(tmp_path,), rounds=1, iterations=1
    )
    print()
    print(
        f"sweep over {result['points']} grid points: "
        f"cold {result['cold_seconds']:.2f}s, warm {result['warm_seconds']:.3f}s "
        f"({result['warm_speedup']:.0f}x), "
        f"parallel({result['parallel_jobs']}) {result['parallel_seconds']:.2f}s"
    )
    assert result["parallel_matches_serial"], (
        "parallel sweep must produce counters identical to the serial path"
    )
    assert result["warm_speedup"] >= 3.0, (
        f"cached sweep only {result['warm_speedup']:.1f}x faster than the "
        f"cold serial path (need >= 3x)"
    )
