"""Bench: simulator hot-loop throughput and sweep wall-clock.

Unlike the figure benchmarks, this module tracks the *speed* of the
reproduction itself: simulated cycles per wall-clock second on a
memory-divergent and a compute-intensive kernel, and the wall-clock of the
fast-profile warp-tuple sweep cold (every point simulated — the seed's
serial path) versus warm (served from the persistent result cache).

Acceptance (hard gates are live same-host comparisons only — absolute
ratios against the committed ``BENCH_throughput.json`` baseline proved
host-load-flaky and are reported as trends, never asserted):

* the fast core must beat a live legacy run by at least 2× (the same
  ratio the CI perf gate enforces, robust to host speed),
* the event-skipping core must beat a live legacy run by at least 2× on
  the classic brackets, and a live **fast** run by at least **5×**
  (``EVENT_GATE_RATIO``) on the MSHR-saturating memory-stall bracket —
  the span-jumping payoff the engine exists for,
* the cached sweep must be at least 3× faster than the cold serial sweep,
  and a parallel sweep must reproduce the serial grid bit-for-bit.
"""

from __future__ import annotations

import warnings
from pathlib import Path

import pytest

from repro.runtime.bench import (
    EVENT_GATE_RATIO,
    committed_legacy_baseline,
    compute_intensive_kernel,
    load_trajectory,
    measure_sweep,
    measure_throughput,
    memory_divergent_kernel,
    memory_stall_config,
    memory_stall_kernel,
)

#: Sanity floor for the hot loop, far below what any machine measures (the
#: reference box clears ~1M cycles/s); it exists to catch a pathological
#: slowdown, not to benchmark the host.
MIN_CYCLES_PER_SECOND = 100_000.0

#: Historical fast-over-committed-legacy ratio on the idle reference box.
#: Trend-only: dropping below it prints a warning, never a failure (the
#: ratio is host-speed/load dependent — 1.97x–3.32x measured on an
#: unchanged tree — so the live same-host gates are the authority).
MIN_SPEEDUP_OVER_COMMITTED_BASELINE = 3.0

#: Fast vs a live legacy run on the same host (the CI gate ratio).
MIN_LIVE_SPEEDUP_OVER_LEGACY = 2.0

TRAJECTORY_PATH = Path(__file__).resolve().parent.parent / "BENCH_throughput.json"


def committed_baseline_cps(kernel_name: str) -> float:
    """The committed (earliest legacy entry) cycles/second for ``kernel_name``."""
    baseline = committed_legacy_baseline(load_trajectory(TRAJECTORY_PATH))
    if kernel_name not in baseline:
        pytest.skip(
            f"no committed legacy baseline for {kernel_name!r} in "
            f"{TRAJECTORY_PATH.name} (fresh trajectory)"
        )
    return baseline[kernel_name]


def test_memory_divergent_throughput(benchmark):
    result = benchmark.pedantic(
        measure_throughput, args=(memory_divergent_kernel(),), rounds=1, iterations=1
    )
    print()
    print(
        f"memory-divergent: {result['cycles_per_second']:,.0f} cycles/s "
        f"({result['cycles']:,} cycles in {result['wall_seconds']:.3f}s)"
    )
    assert result["cycles"] > 0
    assert result["cycles_per_second"] > MIN_CYCLES_PER_SECOND


def test_compute_intensive_throughput(benchmark):
    result = benchmark.pedantic(
        measure_throughput, args=(compute_intensive_kernel(),), rounds=1, iterations=1
    )
    print()
    print(
        f"compute-intensive: {result['cycles_per_second']:,.0f} cycles/s "
        f"({result['cycles']:,} cycles in {result['wall_seconds']:.3f}s)"
    )
    assert result["cycles"] > 0
    assert result["cycles_per_second"] > MIN_CYCLES_PER_SECOND


@pytest.mark.parametrize(
    "make_spec", [memory_divergent_kernel, compute_intensive_kernel]
)
def test_fast_core_trend_over_committed_baseline(benchmark, make_spec):
    """Trend report (never a gate): fast-core cycles/s vs the committed PR 1
    legacy baseline.

    The committed baseline is absolute cycles/s from the reference
    container, so this ratio measures host speed and load as much as code —
    measured 1.97x–3.32x on an *unchanged* tree under host load.  The hard
    perf gates are the live same-host comparisons next door
    (``test_fast_core_speedup_over_live_legacy`` and friends); this test only
    prints the trend and warns when it drops below the historical floor, so
    a real cross-release drift still surfaces in the bench logs without a
    flaky assert.
    """
    spec = make_spec()
    baseline_cps = committed_baseline_cps(spec.name)
    result = benchmark.pedantic(
        measure_throughput,
        args=(spec,),
        kwargs={"engine": "fast", "rounds": 5},
        rounds=1,
        iterations=1,
    )
    speedup = result["cycles_per_second"] / baseline_cps
    print()
    print(
        f"{spec.name} [fast]: {result['cycles_per_second']:,.0f} cycles/s vs "
        f"committed legacy {baseline_cps:,.0f} -> {speedup:.2f}x (trend only)"
    )
    if speedup < MIN_SPEEDUP_OVER_COMMITTED_BASELINE:
        warnings.warn(
            f"fast core measured {speedup:.2f}x the committed legacy baseline "
            f"on {spec.name} (historical floor {MIN_SPEEDUP_OVER_COMMITTED_BASELINE}x) "
            f"— host speed/load dependent; the live-legacy gates are authoritative",
            stacklevel=1,
        )
    assert result["cycles"] > 0
    assert result["cycles_per_second"] > MIN_CYCLES_PER_SECOND


def test_fast_core_speedup_over_live_legacy(benchmark):
    """Fast vs legacy on the same host, same kernels — the CI gate ratio."""

    def measure_both():
        results = {}
        for make_spec in (memory_divergent_kernel, compute_intensive_kernel):
            spec = make_spec()
            fast = measure_throughput(spec, engine="fast", rounds=3)
            legacy = measure_throughput(spec, engine="legacy", rounds=3)
            results[spec.name] = (
                fast["cycles_per_second"],
                legacy["cycles_per_second"],
            )
        return results

    results = benchmark.pedantic(measure_both, rounds=1, iterations=1)
    print()
    for kernel, (fast_cps, legacy_cps) in results.items():
        ratio = fast_cps / legacy_cps
        print(
            f"{kernel}: fast {fast_cps:,.0f} vs legacy {legacy_cps:,.0f} "
            f"cycles/s -> {ratio:.2f}x"
        )
        assert ratio >= MIN_LIVE_SPEEDUP_OVER_LEGACY, (
            f"fast core only {ratio:.2f}x a live legacy run on {kernel} "
            f"(need >= {MIN_LIVE_SPEEDUP_OVER_LEGACY}x)"
        )


def test_event_core_speedup_over_live_legacy(benchmark):
    """The event core holds the same live-legacy gate as the fast core on
    the classic brackets (where there are few dead spans to jump, it must
    still never be slower than the oracle by the gate's margin)."""

    def measure_both():
        results = {}
        for make_spec in (memory_divergent_kernel, compute_intensive_kernel):
            spec = make_spec()
            event = measure_throughput(spec, engine="event", rounds=3)
            legacy = measure_throughput(spec, engine="legacy", rounds=3)
            results[spec.name] = (
                event["cycles_per_second"],
                legacy["cycles_per_second"],
            )
        return results

    results = benchmark.pedantic(measure_both, rounds=1, iterations=1)
    print()
    for kernel, (event_cps, legacy_cps) in results.items():
        ratio = event_cps / legacy_cps
        print(
            f"{kernel}: event {event_cps:,.0f} vs legacy {legacy_cps:,.0f} "
            f"cycles/s -> {ratio:.2f}x"
        )
        assert ratio >= MIN_LIVE_SPEEDUP_OVER_LEGACY, (
            f"event core only {ratio:.2f}x a live legacy run on {kernel} "
            f"(need >= {MIN_LIVE_SPEEDUP_OVER_LEGACY}x)"
        )


def test_event_core_speedup_over_live_fast_on_memory_stall(benchmark):
    """The headline event-engine gate: on the congested memory-stall bracket
    (24 warps of dependent DRAM misses, congestion_factor 4.0 — every issue
    attempt an MSHR-full retry) the event core must clear >= 5x a live fast
    run, because each ~112-cycle retry span collapses into one jump."""
    spec = memory_stall_kernel()
    config = memory_stall_config()

    def measure_both():
        event = measure_throughput(spec, engine="event", rounds=3, config=config)
        fast = measure_throughput(spec, engine="fast", rounds=3, config=config)
        return event, fast

    event, fast = benchmark.pedantic(measure_both, rounds=1, iterations=1)
    ratio = event["cycles_per_second"] / fast["cycles_per_second"]
    print()
    print(
        f"{spec.name}: event {event['cycles_per_second']:,.0f} vs fast "
        f"{fast['cycles_per_second']:,.0f} cycles/s -> {ratio:.2f}x"
    )
    assert event["cycles"] == fast["cycles"], (
        "the throughput comparison is only meaningful if both engines "
        "simulate the identical cycle count"
    )
    assert ratio >= EVENT_GATE_RATIO, (
        f"event core only {ratio:.2f}x a live fast run on {spec.name} "
        f"(need >= {EVENT_GATE_RATIO}x)"
    )


def test_fast_profile_sweep_speedup(benchmark, tmp_path):
    """Cold vs warm fast-profile sweep: the persistent cache must buy ≥3×."""
    result = benchmark.pedantic(
        measure_sweep, args=(tmp_path,), rounds=1, iterations=1
    )
    print()
    print(
        f"sweep over {result['points']} grid points: "
        f"cold {result['cold_seconds']:.2f}s, warm {result['warm_seconds']:.3f}s "
        f"({result['warm_speedup']:.0f}x), "
        f"parallel({result['parallel_jobs']}) {result['parallel_seconds']:.2f}s"
    )
    assert result["parallel_matches_serial"], (
        "parallel sweep must produce counters identical to the serial path"
    )
    assert result["warm_speedup"] >= 3.0, (
        f"cached sweep only {result['warm_speedup']:.1f}x faster than the "
        f"cold serial path (need >= 3x)"
    )
