"""Bench: regenerate Fig. 15 (Poise vs APCM and random-restart search)."""

from benchmarks.conftest import run_and_print
from repro.experiments import fig15_apcm_random_restart


def test_fig15_apcm_random_restart(benchmark, experiment_config):
    result = run_and_print(benchmark, fig15_apcm_random_restart, experiment_config)
    # Shape: Poise is competitive with both alternative families (the paper
    # reports wins of 39.5% over APCM and 22.4% over random-restart).
    assert result.scalars["hmean_poise"] >= result.scalars["hmean_apcm"] - 0.10
    assert result.scalars["hmean_poise"] >= result.scalars["hmean_random_restart"] - 0.10
