"""Bench: regenerate Fig. 2 (the {N, p} solution space of an ii kernel)."""

from benchmarks.conftest import run_and_print
from repro.experiments import fig02_solution_space


def test_fig02_solution_space(benchmark, experiment_config):
    result = run_and_print(benchmark, fig02_solution_space, experiment_config)
    grid = result.table("speedup grid")
    # The decoupled optimum must be at least as good as anything CCWS/SWL can
    # reach on the diagonal (the motivation of the paper).
    assert result.scalars["max_speedup"] >= result.scalars["ccws_speedup"] - 1e-9
    assert len(grid.rows) > 10
