"""Bench: regenerate Fig. 4 (L1 hit-rate breakdown at p = 1)."""

from benchmarks.conftest import run_and_print
from repro.experiments import fig04_hit_rate_breakdown


def test_fig04_hit_rate_breakdown(benchmark, experiment_config):
    result = run_and_print(benchmark, fig04_hit_rate_breakdown, experiment_config)
    # Shape check: the intra-warp-dominated, small-footprint workload (ii)
    # recovers more polluting-warp hit rate than the large-footprint one (bfs).
    assert result.scalars["ii_delta_hp"] >= result.scalars["bfs_delta_hp"] - 0.05
