"""Bench: regenerate Table IV (Poise parameters)."""

from benchmarks.conftest import run_and_print
from repro.experiments import table04_parameters


def test_table04_parameters(benchmark, experiment_config):
    result = run_and_print(benchmark, table04_parameters, experiment_config)
    table = result.table("Poise parameters")
    paper_column = table.column("paper")
    # Table IV headline values.
    assert 200000 in paper_column
    assert 49.0 in paper_column
