"""Bench: regenerate Fig. 13 (sensitivity to removing one feature)."""

from benchmarks.conftest import run_and_print
from repro.experiments import fig13_feature_ablation


def test_fig13_feature_ablation(benchmark, experiment_config):
    result = run_and_print(benchmark, fig13_feature_ablation, experiment_config)
    # Shape: no ablated model beats the all-features model by a wide margin
    # (the paper finds all-features training is best overall).
    for key, value in result.scalars.items():
        if key.startswith("hmean_minus_"):
            assert value <= 1.15
