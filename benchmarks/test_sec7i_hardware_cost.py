"""Bench: regenerate the Section VII-I hardware cost accounting."""

from benchmarks.conftest import run_and_print
from repro.experiments import sec7i_hardware_cost


def test_sec7i_hardware_cost(benchmark, experiment_config):
    result = run_and_print(benchmark, sec7i_hardware_cost, experiment_config)
    assert abs(result.scalars["bytes_per_sm"] - 40.75) < 0.01
    assert abs(result.scalars["bytes_total"] - 1304) < 1.0
