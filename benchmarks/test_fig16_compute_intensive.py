"""Bench: regenerate Fig. 16 (Poise on memory-insensitive applications)."""

from benchmarks.conftest import run_and_print
from repro.experiments import fig16_compute_intensive


def test_fig16_compute_intensive(benchmark, experiment_config):
    result = run_and_print(benchmark, fig16_compute_intensive, experiment_config)
    # Shape: Poise is benign on compute-intensive kernels (paper: 1.6% mean
    # overhead, 3.5% worst case) because the In > Imax cut-off reverts it to
    # maximum warps.
    assert result.scalars["hmean_poise"] >= 0.90
    assert result.scalars["min_poise"] >= 0.85
