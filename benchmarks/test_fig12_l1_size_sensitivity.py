"""Bench: regenerate Fig. 12 (L1 size sensitivity with a pre-trained model)."""

from benchmarks.conftest import run_and_print
from repro.experiments import fig12_l1_size_sensitivity


def test_fig12_l1_size_sensitivity(benchmark, experiment_config):
    result = run_and_print(benchmark, fig12_l1_size_sensitivity, experiment_config)
    # Shape: Poise, trained on the 16 KB hashed baseline, still behaves
    # sanely when deployed on larger linearly-indexed caches (no collapse).
    for scale in (1, 2, 4):
        assert result.scalars[f"hmean_{16 * scale}KB"] >= 0.85
