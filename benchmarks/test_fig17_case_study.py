"""Bench: regenerate Fig. 17 (bfs case study: profile vs runtime tuples)."""

from benchmarks.conftest import run_and_print
from repro.experiments import fig17_case_study


def test_fig17_case_study(benchmark, experiment_config):
    result = run_and_print(benchmark, fig17_case_study, experiment_config)
    # Shape: Poise's runtime tuples land in the upper part of the static
    # profile's speedup distribution (it avoids the low-performance zones).
    if "mean_percentile" in result.scalars:
        assert result.scalars["mean_percentile"] >= 0.25
