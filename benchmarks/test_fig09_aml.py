"""Bench: regenerate Fig. 9 (average memory latency normalised to GTO)."""

from benchmarks.conftest import run_and_print
from repro.experiments import fig09_aml


def test_fig09_aml(benchmark, experiment_config):
    result = run_and_print(benchmark, fig09_aml, experiment_config)
    # Shape: warp throttling relieves memory congestion, so no scheme should
    # inflate AML wildly beyond the GTO baseline on average.
    for scheme in ("swl", "poise", "static_best"):
        assert result.scalars[f"mean_aml_{scheme}"] <= 1.3
