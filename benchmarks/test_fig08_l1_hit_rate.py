"""Bench: regenerate Fig. 8 (absolute L1 hit rate per scheme)."""

from benchmarks.conftest import run_and_print
from repro.experiments import fig08_l1_hit_rate


def test_fig08_l1_hit_rate(benchmark, experiment_config):
    result = run_and_print(benchmark, fig08_l1_hit_rate, experiment_config)
    # Shape: every warp-tuple scheme improves average L1 hit rate over GTO.
    gto = result.scalars["mean_hit_gto"]
    assert result.scalars["mean_hit_poise"] >= gto
    assert result.scalars["mean_hit_swl"] >= gto
    assert result.scalars["mean_hit_static_best"] >= gto
