"""Bench: regenerate Fig. 7 (IPC of every scheme normalised to GTO)."""

from benchmarks.conftest import run_and_print
from repro.experiments import fig07_performance


def test_fig07_performance(benchmark, experiment_config):
    result = run_and_print(benchmark, fig07_performance, experiment_config)
    # Shape checks: the oracle tops the ranking, every scheme is ahead of the
    # GTO baseline on the harmonic mean, and Poise delivers a speedup.
    assert result.scalars["hmean_static_best"] >= result.scalars["hmean_swl"] - 0.02
    assert result.scalars["hmean_poise"] >= 0.90
    assert result.scalars["hmean_gto"] == 1.0
