"""Bench: regenerate Table IIIa (workloads + Pbest) and Table IIIb (architecture)."""

from benchmarks.conftest import run_and_print
from repro.experiments import table03a_workloads, table03b_architecture


def test_table03a_workloads(benchmark, experiment_config):
    result = run_and_print(benchmark, table03a_workloads, experiment_config)
    # Shape: evaluation benchmarks are memory-sensitive, compute ones are not.
    assert result.scalars["pbest_mm"] > 1.4
    assert result.scalars["pbest_ii"] > 1.4
    assert result.scalars["pbest_hotspot"] < 1.4


def test_table03b_architecture(benchmark, experiment_config):
    result = run_and_print(benchmark, table03b_architecture, experiment_config)
    table = result.table("architecture")
    assert table.row_by_key("SMs") is not None
    assert table.row_by_key("L1 data cache") is not None
