"""Benchmark-harness configuration.

Each benchmark regenerates one table or figure of the paper and prints the
same rows/series the paper reports.  Because several experiments involve
training and full evaluation sweeps, the harness defaults to the scaled-down
``fast`` experiment configuration; set ``REPRO_BENCH_PROFILE=full`` to rerun
everything at the full configuration used for EXPERIMENTS.md (several
minutes per figure).
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.common import ExperimentConfig


def bench_config() -> ExperimentConfig:
    profile = os.environ.get("REPRO_BENCH_PROFILE", "fast").lower()
    if profile == "full":
        return ExperimentConfig.full()
    return ExperimentConfig.fast()


@pytest.fixture(scope="session")
def experiment_config() -> ExperimentConfig:
    return bench_config()


def run_and_print(benchmark, experiment_module, config):
    """Run one experiment module under pytest-benchmark and print its tables."""
    result = benchmark.pedantic(
        experiment_module.run, kwargs={"config": config}, rounds=1, iterations=1
    )
    print()
    print(result.to_text())
    return result
