"""Bench: regenerate Fig. 10 (prediction vs searched warp-tuple displacement)."""

from benchmarks.conftest import run_and_print
from repro.experiments import fig10_displacement


def test_fig10_displacement(benchmark, experiment_config):
    result = run_and_print(benchmark, fig10_displacement, experiment_config)
    # Shape: the local search converges within a few warps of the prediction
    # (the paper reports ~1 warp per axis, ~1.6 Euclidean).
    assert result.scalars["mean_displacement_euclidean"] <= 8.0
    assert result.scalars["mean_displacement_n"] >= 0.0
