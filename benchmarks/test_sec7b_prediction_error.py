"""Bench: regenerate the Section VII-B offline prediction-error numbers."""

from benchmarks.conftest import run_and_print
from repro.experiments import sec7b_prediction_error


def test_sec7b_prediction_error(benchmark, experiment_config):
    result = run_and_print(benchmark, sec7b_prediction_error, experiment_config)
    # Shape: prediction errors on unseen kernels are bounded (the paper
    # reports 16% for N and 26% for p on its substrate).
    assert result.scalars["mean_error_n"] <= 1.5
    assert result.scalars["mean_error_p"] <= 3.0
