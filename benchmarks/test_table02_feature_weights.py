"""Bench: regenerate Table II (the learned feature weights)."""

from benchmarks.conftest import run_and_print
from repro.experiments import table02_feature_weights


def test_table02_feature_weights(benchmark, experiment_config):
    result = run_and_print(benchmark, table02_feature_weights, experiment_config)
    table = result.table("features and weights")
    assert len(table.rows) == 8  # the eight features of Table II
    assert result.scalars["num_training_kernels"] >= 8
