"""Bench: regenerate Fig. 14 (energy consumption normalised to GTO)."""

from benchmarks.conftest import run_and_print
from repro.experiments import fig14_energy


def test_fig14_energy(benchmark, experiment_config):
    result = run_and_print(benchmark, fig14_energy, experiment_config)
    # Shape: Poise does not increase energy on average (the paper reports a
    # ~52% reduction; the reproduction's saving tracks its speedup).
    assert result.scalars["mean_energy_ratio"] <= 1.05
    assert result.scalars["min_energy_ratio"] <= 1.0
