"""Bench: regenerate Fig. 5 (scoring performance peaks vs cliffs)."""

from benchmarks.conftest import run_and_print
from repro.experiments import fig05_scoring


def test_fig05_scoring(benchmark, experiment_config):
    result = run_and_print(benchmark, fig05_scoring, experiment_config)
    table = result.table("raw peak vs best score")
    for row in table.as_dict_rows():
        # The scored target never claims more speedup than the raw peak.
        assert row["scored speedup"] <= row["peak speedup"] + 1e-9
