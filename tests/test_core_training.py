"""Unit tests for the training pipeline, thresholds, scaling and model store."""

import math

import pytest

from repro.core.features import FeatureVector
from repro.core.model_store import load_model, save_model
from repro.core.training import (
    TrainedModel,
    TrainingExample,
    TrainingThresholds,
    prediction_errors,
)


def make_features(**overrides):
    defaults = dict(
        h_o=0.1, h_prime=0.6, eta_o=0.05, eta_prime=0.55,
        instructions_per_load=3.0, latency_pressure=-100.0,
    )
    defaults.update(overrides)
    return FeatureVector(**defaults)


def make_example(**overrides):
    defaults = dict(
        kernel_name="k", benchmark_name="b", features=make_features(),
        target=(12, 2), max_warps=24, best_speedup=1.2, target_speedup=1.15,
        baseline_cycles=50_000,
    )
    defaults.update(overrides)
    return TrainingExample(**defaults)


def make_model(alpha=None, beta=None, max_warps=24, **kwargs):
    # Weights that put all mass on the intercept: exp(w8) is the prediction.
    alpha = alpha if alpha is not None else [0.0] * 7 + [math.log(12.0)]
    beta = beta if beta is not None else [0.0] * 7 + [math.log(3.0)]
    return TrainedModel(alpha_weights=alpha, beta_weights=beta, max_warps=max_warps, **kwargs)


class TestThresholds:
    def test_admits_kernel_meeting_all_criteria(self):
        thresholds = TrainingThresholds(min_speedup=1.015, min_cycles=10_000)
        assert thresholds.admits(make_example())

    def test_rejects_low_speedup(self):
        thresholds = TrainingThresholds(min_speedup=1.015)
        assert not thresholds.admits(make_example(best_speedup=1.005))

    def test_rejects_short_kernels(self):
        thresholds = TrainingThresholds(min_cycles=10_000)
        assert not thresholds.admits(make_example(baseline_cycles=500))

    def test_rejects_zero_reference_hit_rate(self):
        thresholds = TrainingThresholds()
        assert not thresholds.admits(
            make_example(features=make_features(h_prime=0.0))
        )


class TestScalingAndPrediction:
    def test_scaled_target_normalises_to_scheduler_budget(self):
        example = make_example(target=(8, 2), max_warps=16)
        assert example.scaled_target(24) == (12.0, 3.0)

    def test_model_predicts_via_link_function(self):
        model = make_model()
        n, p = model.predict(make_features())
        assert n == 12 and p == 3

    def test_prediction_reverse_scales_to_kernel_budget(self):
        model = make_model()
        n, p = model.predict(make_features(), max_warps=12)
        # exp weights give (12, 3) at 24 warps -> (6, 1.5->2) at 12 warps.
        assert n == 6 and p == 2

    def test_prediction_clamped_to_valid_tuple(self):
        model = make_model(alpha=[0.0] * 7 + [10.0], beta=[0.0] * 7 + [10.0])
        n, p = model.predict(make_features())
        assert 1 <= p <= n <= 24

    def test_feature_mask_shrinks_the_vector(self):
        model = make_model(
            alpha=[0.0] * 6 + [math.log(10.0)],
            beta=[0.0] * 6 + [math.log(2.0)],
            feature_mask=[4],
        )
        features = make_features()
        assert len(model.active_features(features)) == 7
        assert model.predict(features) == (10, 2)

    def test_prediction_errors_metric(self):
        model = make_model()
        examples = [make_example(target=(12, 3)), make_example(target=(6, 3))]
        error_n, error_p = prediction_errors(model, examples)
        assert error_n == pytest.approx((0.0 + 1.0) / 2)
        assert error_p == pytest.approx(0.0)

    def test_prediction_errors_empty(self):
        assert prediction_errors(make_model(), []) == (0.0, 0.0)


class TestModelStore:
    def test_round_trip(self, tmp_path):
        model = make_model(
            dispersion_n=0.2, dispersion_p=0.3, num_training_kernels=14,
            metadata={"deviance_n": 1.5},
        )
        path = save_model(model, tmp_path / "model.json")
        loaded = load_model(path)
        assert loaded.alpha_weights == pytest.approx(model.alpha_weights)
        assert loaded.beta_weights == pytest.approx(model.beta_weights)
        assert loaded.max_warps == model.max_warps
        assert loaded.num_training_kernels == 14
        assert loaded.metadata["deviance_n"] == pytest.approx(1.5)

    def test_round_trip_preserves_feature_mask(self, tmp_path):
        model = make_model(feature_mask=[2, 5])
        loaded = load_model(save_model(model, tmp_path / "masked.json"))
        assert loaded.feature_mask == [2, 5]

    def test_rejects_unknown_format_version(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format_version": 99}')
        with pytest.raises(ValueError):
            load_model(path)

    def test_creates_parent_directories(self, tmp_path):
        nested = tmp_path / "a" / "b" / "model.json"
        save_model(make_model(), nested)
        assert nested.exists()
