"""Tests for ``repro cache gc`` — age-based reclamation of quarantine
debris, orphaned sweep trees and stale atomic-write temp files."""

from __future__ import annotations

import os
import time

import pytest

from repro.cli.cache_cli import main as cache_main, parse_age

OLD = time.time() - 30 * 86400  # a month ago
FRESH = time.time()


def age(path, when=OLD):
    os.utime(path, (when, when))


def make_sweep(cache_dir, grid, label="fast", points=("p1",), sweep_json=True):
    root = cache_dir / "artifacts" / "sweeps" / grid / label
    (root / "points").mkdir(parents=True)
    for name in points:
        (root / "points" / f"{name}.json").write_text("{}\n")
    if sweep_json:
        (root / "sweep.json").write_text("{}\n")
    return root


def run_gc(cache_dir, *flags):
    return cache_main(["gc", "--cache-dir", str(cache_dir), *flags])


# ---------------------------------------------------------------------------
# age parsing
# ---------------------------------------------------------------------------

def test_parse_age_suffixes():
    assert parse_age("30s") == 30.0
    assert parse_age("10m") == 600.0
    assert parse_age("6h") == 6 * 3600.0
    assert parse_age("7d") == 7 * 86400.0
    assert parse_age("90") == 90.0  # bare number = seconds


def test_parse_age_rejects_nonsense():
    import argparse

    with pytest.raises(argparse.ArgumentTypeError):
        parse_age("soon")
    with pytest.raises(argparse.ArgumentTypeError):
        parse_age("-1d")


# ---------------------------------------------------------------------------
# collection targets
# ---------------------------------------------------------------------------

def test_old_quarantine_files_reclaimed_fresh_kept(tmp_path, capsys):
    root = make_sweep(tmp_path, "grid-a")
    quarantine = root / "quarantine"
    quarantine.mkdir()
    stale = quarantine / "bad-point.json"
    stale.write_text("torn")
    recent = quarantine / "new-point.json"
    recent.write_text("torn")
    age(stale)
    assert run_gc(tmp_path) == 0
    assert not stale.exists()
    assert recent.exists()
    assert "quarantine" in capsys.readouterr().out
    # Live artifacts are never GC targets.
    assert (root / "points" / "p1.json").exists()
    assert (root / "sweep.json").exists()


def test_orphaned_sweep_tree_reclaimed(tmp_path):
    orphan = tmp_path / "artifacts" / "sweeps" / "grid-b@12345678" / "fast"
    (orphan / "points").mkdir(parents=True)  # aborted before any point landed
    (orphan / "run_telemetry.json").write_text("{}\n")
    for path in (orphan, orphan / "points", orphan / "run_telemetry.json"):
        age(path)
    populated = make_sweep(tmp_path, "grid-b")
    assert run_gc(tmp_path) == 0
    assert not orphan.exists()
    assert not orphan.parent.exists()  # empty grid dir pruned too
    assert populated.exists()


def test_tree_with_points_or_sweep_json_is_never_an_orphan(tmp_path):
    has_points = make_sweep(tmp_path, "grid-c", sweep_json=False)
    has_sweep = make_sweep(tmp_path, "grid-d", points=(), sweep_json=True)
    for root in (has_points, has_sweep):
        for path in [root, *root.rglob("*")]:
            age(path)
    assert run_gc(tmp_path) == 0
    assert has_points.exists()
    assert has_sweep.exists()


def test_fresh_orphan_is_left_alone(tmp_path):
    orphan = tmp_path / "artifacts" / "sweeps" / "grid-e" / "fast"
    (orphan / "points").mkdir(parents=True)
    assert run_gc(tmp_path) == 0
    assert orphan.exists()


def test_stale_tmp_files_reclaimed_live_ones_kept(tmp_path):
    runs = tmp_path / "runs"
    runs.mkdir()
    stale = runs / ".result.json.123.0.tmp"
    stale.write_text("half-written")
    age(stale, when=time.time() - 7200)  # two hours: past the 1h floor
    live = runs / ".result.json.456.1.tmp"
    live.write_text("in-flight")
    assert run_gc(tmp_path) == 0
    assert not stale.exists()
    assert live.exists()  # younger than the staleness floor


# ---------------------------------------------------------------------------
# dry run + summary
# ---------------------------------------------------------------------------

def test_dry_run_deletes_nothing_and_reports_bytes(tmp_path, capsys):
    root = make_sweep(tmp_path, "grid-f")
    quarantine = root / "quarantine"
    quarantine.mkdir()
    stale = quarantine / "bad.json"
    stale.write_text("x" * 1000)
    age(stale)
    assert run_gc(tmp_path, "--dry-run") == 0
    out = capsys.readouterr().out
    assert stale.exists()
    assert "would reclaim" in out
    assert "1000 bytes" in out


def test_bytes_reclaimed_summary(tmp_path, capsys):
    root = make_sweep(tmp_path, "grid-g")
    quarantine = root / "quarantine"
    quarantine.mkdir()
    (quarantine / "a.json").write_text("x" * 600)
    (quarantine / "b.json").write_text("x" * 400)
    age(quarantine / "a.json")
    age(quarantine / "b.json")
    assert run_gc(tmp_path) == 0
    out = capsys.readouterr().out
    assert "reclaimed 1000 bytes" in out
    assert "2 quarantine" in out


def test_max_age_flag_widens_the_net(tmp_path, capsys):
    root = make_sweep(tmp_path, "grid-h")
    quarantine = root / "quarantine"
    quarantine.mkdir()
    recent = quarantine / "recent.json"
    recent.write_text("torn")
    age(recent, when=time.time() - 120)  # two minutes old
    assert run_gc(tmp_path) == 0  # default 7d: kept
    assert recent.exists()
    assert run_gc(tmp_path, "--max-age", "60s") == 0
    assert not recent.exists()


def test_empty_cache_reports_nothing(tmp_path, capsys):
    assert run_gc(tmp_path) == 0
    assert "nothing to reclaim" in capsys.readouterr().out
