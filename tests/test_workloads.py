"""Unit tests for workload specs, the trace generator and the registry."""

import pytest

from repro.gpu.isa import Opcode
from repro.workloads.generator import generate_kernel_programs, generate_warp_program
from repro.workloads.registry import (
    EVALUATION_ORDER,
    TRAINING_ORDER,
    all_benchmarks,
    compute_intensive_benchmarks,
    evaluation_benchmarks,
    get_benchmark,
    training_benchmarks,
)
from repro.workloads.spec import BenchmarkSpec, KernelSpec


class TestKernelSpec:
    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            KernelSpec(name="bad", intra_warp_fraction=1.5)
        with pytest.raises(ValueError):
            KernelSpec(name="bad", intra_warp_fraction=0.7, inter_warp_fraction=0.5)

    def test_positive_size_validation(self):
        with pytest.raises(ValueError):
            KernelSpec(name="bad", private_lines=0)
        with pytest.raises(ValueError):
            KernelSpec(name="bad", num_warps=0)
        with pytest.raises(ValueError):
            KernelSpec(name="bad", instructions_per_load=0)

    def test_streaming_fraction_is_complement(self):
        spec = KernelSpec(name="k", intra_warp_fraction=0.6, inter_warp_fraction=0.3)
        assert spec.streaming_fraction == pytest.approx(0.1)

    def test_variant_overrides_and_renames(self):
        base = KernelSpec(name="base", private_lines=100)
        variant = base.variant("v1", private_lines=50)
        assert variant.name == "base_v1"
        assert variant.private_lines == 50
        assert base.private_lines == 100


class TestBenchmarkSpec:
    def test_requires_kernels(self):
        with pytest.raises(ValueError):
            BenchmarkSpec(name="b", suite="s", kernels=[])

    def test_rejects_unknown_role(self):
        with pytest.raises(ValueError):
            BenchmarkSpec(name="b", suite="s", kernels=[KernelSpec(name="k")], role="other")

    def test_kernel_lookup(self):
        benchmark = BenchmarkSpec(name="b", suite="s", kernels=[KernelSpec(name="k0")])
        assert benchmark.kernel("k0").name == "k0"
        assert benchmark.kernel("missing") is None


class TestGenerator:
    def test_program_length_matches_spec(self):
        spec = KernelSpec(name="k", instructions_per_warp=500)
        program = generate_warp_program(spec, warp_id=0)
        assert len(program) == 500

    def test_load_density_matches_instructions_per_load(self):
        spec = KernelSpec(name="k", instructions_per_warp=3000, instructions_per_load=3)
        program = generate_warp_program(spec, warp_id=0)
        loads = sum(1 for instruction in program if instruction.is_load)
        assert loads == pytest.approx(1000, rel=0.05)

    def test_generation_is_deterministic(self):
        spec = KernelSpec(name="k", seed=7)
        assert generate_warp_program(spec, 3) == generate_warp_program(spec, 3)

    def test_different_warps_use_disjoint_private_regions(self):
        spec = KernelSpec(
            name="k", intra_warp_fraction=1.0, inter_warp_fraction=0.0, private_lines=16
        )
        addresses_0 = {i.line_addr for i in generate_warp_program(spec, 0) if i.is_load}
        addresses_1 = {i.line_addr for i in generate_warp_program(spec, 1) if i.is_load}
        assert addresses_0.isdisjoint(addresses_1)

    def test_shared_region_is_common_across_warps(self):
        spec = KernelSpec(
            name="k", intra_warp_fraction=0.0, inter_warp_fraction=1.0, shared_lines=32
        )
        addresses_0 = {i.line_addr for i in generate_warp_program(spec, 0) if i.is_load}
        addresses_1 = {i.line_addr for i in generate_warp_program(spec, 1) if i.is_load}
        assert addresses_0 & addresses_1

    def test_private_footprint_bounded_by_spec(self):
        spec = KernelSpec(
            name="k", intra_warp_fraction=1.0, inter_warp_fraction=0.0,
            private_lines=24, instructions_per_warp=2000,
        )
        addresses = {i.line_addr for i in generate_warp_program(spec, 0) if i.is_load}
        assert len(addresses) <= 24

    def test_streaming_addresses_never_repeat(self):
        spec = KernelSpec(
            name="k", intra_warp_fraction=0.0, inter_warp_fraction=0.0,
            instructions_per_warp=1500, instructions_per_load=3,
        )
        loads = [i.line_addr for i in generate_warp_program(spec, 0) if i.is_load]
        assert len(loads) == len(set(loads))

    def test_dep_distance_capped_below_group_size(self):
        spec = KernelSpec(name="k", instructions_per_load=3, dep_distance=50)
        program = generate_warp_program(spec, 0)
        for instruction in program:
            if instruction.is_load:
                assert instruction.dep_distance <= 2

    def test_generate_kernel_programs_one_per_warp(self):
        spec = KernelSpec(name="k", num_warps=6, instructions_per_warp=100)
        programs = generate_kernel_programs(spec)
        assert len(programs) == 6
        assert all(p[0].opcode in (Opcode.ALU, Opcode.LOAD) for p in programs)


class TestRegistry:
    def test_training_and_evaluation_are_disjoint(self):
        training = {benchmark.name for benchmark in training_benchmarks()}
        evaluation = {benchmark.name for benchmark in evaluation_benchmarks()}
        assert training.isdisjoint(evaluation)
        assert training == set(TRAINING_ORDER)
        assert evaluation == set(EVALUATION_ORDER)

    def test_paper_evaluation_set_is_complete(self):
        assert EVALUATION_ORDER == [
            "syr2k", "syrk", "mm", "ii", "gsmv", "mvt", "bicg", "ss", "atax", "bfs", "kmeans",
        ]

    def test_compute_intensive_benchmarks_have_few_loads(self):
        for benchmark in compute_intensive_benchmarks():
            for kernel in benchmark.kernels:
                assert kernel.instructions_per_load >= 50

    def test_training_benchmarks_have_many_kernels(self):
        for benchmark in training_benchmarks():
            assert benchmark.num_kernels >= 10

    def test_get_benchmark_unknown_name(self):
        with pytest.raises(KeyError):
            get_benchmark("definitely_not_a_benchmark")

    def test_all_benchmark_kernel_names_are_unique(self):
        names = [
            kernel.name
            for benchmark in all_benchmarks().values()
            for kernel in benchmark.kernels
        ]
        assert len(names) == len(set(names))

    def test_kernels_fit_the_scheduler(self):
        for benchmark in all_benchmarks().values():
            for kernel in benchmark.kernels:
                assert 1 <= kernel.num_warps <= 24
