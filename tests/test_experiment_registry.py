"""Registry discovery + unified-CLI smoke tests.

The expensive part — ``python -m repro run-all --fast`` — happens once per
session in a module fixture; the parametrized smoke test then validates the
emitted artifact of **every** registered experiment against its declared
schema.  A new ``fig*/table*/sec*`` module that forgets to subclass
``ExperimentBase`` breaks discovery itself (see
``test_every_experiment_module_registers``), so the suite fails before the
experiment is silently dropped from the catalogue.
"""

from __future__ import annotations

import json
import sys
import types
from pathlib import Path

import pytest

from repro.cli import runner
from repro.cli.main import main as cli_main
from repro.experiments import registry
from repro.experiments.common import ArtifactSchema, ExperimentBase, default_cache_dir

EXPERIMENTS_DIR = Path(__file__).resolve().parents[1] / "src" / "repro" / "experiments"


class TestDiscovery:
    def test_every_experiment_module_registers(self):
        """Every fig*/table*/sec* file on disk yields exactly one experiment."""
        on_disk = sorted(
            path.stem
            for path in EXPERIMENTS_DIR.glob("*.py")
            if registry.EXPERIMENT_MODULE_PATTERN.match(path.stem)
        )
        assert on_disk == registry.experiment_module_names()
        modules = {experiment.module for experiment in registry.all_experiments()}
        assert modules == {f"repro.experiments.{name}" for name in on_disk}

    def test_ids_unique_and_sorted(self):
        ids = registry.experiment_ids()
        assert len(ids) == len(set(ids))
        assert ids == sorted(ids)
        assert len(ids) >= 20

    def test_get_unknown_id_suggests(self):
        with pytest.raises(KeyError, match="fig07"):
            registry.get("nonsense")

    def test_descriptors_are_complete(self):
        for experiment in registry.all_experiments():
            assert experiment.id and experiment.artifact and experiment.title
            assert issubclass(experiment.cls, ExperimentBase)
            assert isinstance(experiment.schema, ArtifactSchema)
            config = experiment.make_config("fast")
            assert config.label == "fast"

    def test_module_without_subclass_is_rejected(self, monkeypatch):
        fake = types.ModuleType("repro.experiments.fig99_unregistered")
        monkeypatch.setitem(sys.modules, "repro.experiments.fig99_unregistered", fake)
        with pytest.raises(registry.RegistryError, match="exactly one"):
            registry._harvest("fig99_unregistered")

    def test_subclass_without_id_is_rejected(self, monkeypatch):
        fake = types.ModuleType("repro.experiments.fig98_anonymous")

        class Anonymous(ExperimentBase):
            pass

        Anonymous.__module__ = "repro.experiments.fig98_anonymous"
        fake.Anonymous = Anonymous
        monkeypatch.setitem(sys.modules, "repro.experiments.fig98_anonymous", fake)
        with pytest.raises(registry.RegistryError, match="experiment_id"):
            registry._harvest("fig98_anonymous")


class TestArtifactSchema:
    def test_catches_missing_scalar(self):
        schema = ArtifactSchema(required_scalars=("hmean",))
        with pytest.raises(ValueError, match="hmean"):
            schema.validate({"tables": [{"title": "t", "columns": ["a"], "rows": []}], "scalars": {}})

    def test_catches_missing_table(self):
        schema = ArtifactSchema(min_tables=2)
        with pytest.raises(ValueError, match="at least 2"):
            schema.validate({"tables": [{"title": "t", "columns": ["a"], "rows": []}], "scalars": {}})

    def test_catches_ragged_rows(self):
        schema = ArtifactSchema()
        with pytest.raises(ValueError, match="width"):
            schema.validate(
                {"tables": [{"title": "t", "columns": ["a", "b"], "rows": [[1]]}], "scalars": {}}
            )


@pytest.fixture(scope="module")
def cli_artifacts_dir() -> Path:
    """Run the full suite once through the real CLI path (fast config)."""
    exit_code = cli_main(["run-all", "--fast"])
    assert exit_code == 0
    return runner.artifacts_dir(default_cache_dir(), "fast")


@pytest.mark.parametrize("experiment_id", registry.experiment_ids())
def test_cli_smoke_artifact_validates(cli_artifacts_dir, experiment_id):
    """Every registered experiment runs via the CLI and satisfies its schema."""
    path = cli_artifacts_dir / f"{experiment_id}.json"
    assert path.exists(), f"run-all emitted no artifact for {experiment_id}"
    payload = json.loads(path.read_text())
    registry.get(experiment_id).validate_artifact(payload)
    assert payload["config"]["label"] == "fast"
    assert payload["version"]


def test_report_covers_all_artifacts(cli_artifacts_dir, capsys):
    assert cli_main(["report", "--fast"]) == 0
    out = capsys.readouterr().out
    for experiment_id in registry.experiment_ids():
        assert experiment_id in out
    assert "missing experiments" not in out


def test_list_names_every_experiment(capsys):
    assert cli_main(["list"]) == 0
    out = capsys.readouterr().out
    for experiment in registry.all_experiments():
        assert experiment.id in out
        assert experiment.artifact in out
