"""Differential verification of every optimised engine against the oracle.

Built on :mod:`engine_conformance`: each scenario below runs the ``legacy``
oracle once and then *every* other engine registered in
``repro.gpu.engine.ENGINES`` — currently the struct-of-arrays ``fast`` core
and the event-skipping ``event`` core — asserting bit-identical counters,
cycles, warp tuple, completion flag and telemetry.  A newly registered
engine is covered by this entire file with zero new test code.

Scenario coverage:

* random synthetic kernels under all five evaluation schemes
  (gto/swl/pcal/poise/static_best) plus CCWS and the APCM cache policy,
* random architecture variations (L1 geometry, hash vs linear indexing,
  MSHR pressure small enough to exercise the structural-hazard retry path
  — the spans the event engine jumps over),
* the five trace-native families,
* adversarial controller scripts: random interleavings of warp-tuple
  changes, run windows and counter snapshots (the access pattern of the
  PCAL/Poise sampling loops),
* degenerate shapes (empty warp programs, single-warp kernels),
* the event engine's skip-span accounting invariant: jumped plus ticked
  cycles exactly reconstruct the oracle's cycle count.

Any divergence found here is a bug in the optimised engine by definition:
the legacy core is the specification.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Tuple

import pytest
from hypothesis import given, settings, strategies as st

from engine_conformance import (
    CANDIDATE_ENGINES,
    ORACLE,
    SCHEMES,
    assert_conformance,
    drive_windowed,
    kernel_specs,
    make_controller,
    small_archs,
)
from repro.gpu.config import (
    CacheConfig,
    GPUConfig,
    MemoryConfig,
    SMConfig,
    baseline_config,
)
from repro.gpu.engine import ENGINE_EVENT
from repro.gpu.gpu import GPU
from repro.gpu.isa import alu, load
from repro.runtime import serialization
from repro.schedulers import APCMPolicy, CCWSController, GTOController
from repro.trace.families import family_kernel, family_names
from repro.workloads.generator import generate_kernel_programs
from repro.workloads.spec import KernelSpec


def test_harness_covers_all_registered_engines() -> None:
    """The conformance harness must track the registry: every engine except
    the oracle is a candidate, and there are at least two candidates (fast
    and event) — a registry edit can't silently shrink coverage."""
    from repro.gpu.engine import ENGINES

    assert ORACLE in ENGINES
    assert set(CANDIDATE_ENGINES) == set(ENGINES) - {ORACLE}
    assert {"fast", "event"} <= set(CANDIDATE_ENGINES)


# ---------------------------------------------------------------------------
# Synthetic kernels × schemes
# ---------------------------------------------------------------------------


@settings(max_examples=20, deadline=None)
@given(spec=kernel_specs, scheme=st.sampled_from(SCHEMES))
def test_scheme_differential(spec: KernelSpec, scheme: str) -> None:
    """All engines agree under every evaluation scheme on random kernels."""
    programs = generate_kernel_programs(spec)
    config = baseline_config(max_cycles=30_000)
    assert_conformance(
        config, programs,
        controller_factory=lambda: make_controller(scheme, spec.seed),
        max_cycles=16_000,
    )


@settings(max_examples=20, deadline=None)
@given(spec=kernel_specs, config=small_archs)
def test_architecture_differential(spec: KernelSpec, config: GPUConfig) -> None:
    """Random L1 geometries, linear indexing and MSHR starvation (the
    structural-hazard retry path) stay bit-identical on every engine."""
    programs = generate_kernel_programs(spec)
    assert_conformance(config, programs, max_cycles=12_000)


@settings(max_examples=10, deadline=None)
@given(spec=kernel_specs)
def test_apcm_cache_policy_differential(spec: KernelSpec) -> None:
    """The per-PC allocate/observe hooks fire identically in every engine."""
    programs = generate_kernel_programs(spec)
    config = baseline_config(max_cycles=30_000)
    assert_conformance(
        config, programs,
        controller_factory=GTOController,
        cache_policy_factory=APCMPolicy,
        max_cycles=16_000,
    )


@settings(max_examples=10, deadline=None)
@given(spec=kernel_specs)
def test_ccws_differential(spec: KernelSpec) -> None:
    programs = generate_kernel_programs(spec)
    config = baseline_config(max_cycles=30_000)
    assert_conformance(
        config, programs, controller_factory=CCWSController, max_cycles=16_000
    )


# ---------------------------------------------------------------------------
# Trace-native families × schemes
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("family", sorted(family_names()))
@pytest.mark.parametrize("scheme", ("gto", "poise"))
def test_trace_family_differential(family: str, scheme: str) -> None:
    spec = family_kernel(
        family, f"{family}_diff", num_warps=6, instructions_per_warp=300, seed=5
    )
    programs = generate_kernel_programs(spec)
    config = baseline_config(max_cycles=30_000)
    assert_conformance(
        config, programs,
        controller_factory=lambda: make_controller(scheme, 5),
        max_cycles=16_000,
    )


@pytest.mark.parametrize("scheme", SCHEMES)
def test_trace_family_all_schemes(scheme: str) -> None:
    """One family through the full scheme matrix (the ISSUE's 5×trace leg)."""
    spec = family_kernel(
        "transpose", "transpose_diff", num_warps=8, instructions_per_warp=400, seed=9
    )
    programs = generate_kernel_programs(spec)
    config = baseline_config(max_cycles=30_000)
    assert_conformance(
        config, programs,
        controller_factory=lambda: make_controller(scheme, 9),
        max_cycles=16_000,
    )


# ---------------------------------------------------------------------------
# Adversarial control scripts (PCAL/Poise-style sampling)
# ---------------------------------------------------------------------------


@settings(max_examples=15, deadline=None)
@given(
    spec=kernel_specs,
    script=st.lists(
        st.tuples(st.integers(1, 12), st.integers(1, 12), st.integers(1, 2_500)),
        min_size=1,
        max_size=8,
    ),
)
def test_windowed_control_differential(
    spec: KernelSpec, script: List[Tuple[int, int, int]]
) -> None:
    """Random interleavings of set_warp_tuple / run_cycles / snapshot must
    produce identical per-window counter deltas on every engine.  For the
    event engine this is the sharpest invariant: a jump may never cross a
    ``run_cycles`` window boundary, or the per-window deltas would smear."""
    config = baseline_config(max_cycles=60_000)
    programs = generate_kernel_programs(spec)
    oracle_trail = drive_windowed(ORACLE, config, programs, script)
    for engine in CANDIDATE_ENGINES:
        assert drive_windowed(engine, config, programs, script) == oracle_trail, (
            f"engine {engine!r} window trail drifted from {ORACLE}"
        )


# ---------------------------------------------------------------------------
# Degenerate shapes
# ---------------------------------------------------------------------------


def test_empty_and_mixed_programs_differential() -> None:
    """Warps with empty programs (trace padding) and mixed lengths retire
    identically."""
    programs = [
        [],
        [alu(pc=0), load(17, dep_distance=1, pc=1), alu(pc=2)],
        [],
        [load(17, dep_distance=0, pc=0)],
        [alu(pc=i) for i in range(5)],
    ]
    config = baseline_config(max_cycles=10_000)
    assert_conformance(config, programs, max_cycles=10_000)


def test_single_warp_mshr_merge_differential() -> None:
    """Merged misses to one line (shared MSHR entry, per-waiter latency)."""
    programs = [
        [load(99, dep_distance=3, pc=0), load(99, dep_distance=2, pc=1), alu(pc=2)],
        [load(99, dep_distance=3, pc=0), alu(pc=1)],
    ]
    config = baseline_config(max_cycles=10_000)
    assert_conformance(config, programs, max_cycles=10_000)


def test_single_set_hash_cache_differential() -> None:
    """num_sets == 1 with hash indexing (the XOR-fold degenerate case that
    used to spin forever in the legacy fold loop) terminates and agrees."""
    config = GPUConfig(
        sm=SMConfig(max_warps=4),
        l1=CacheConfig(
            size_bytes=2 * 128, assoc=2, line_size=128, mshr_entries=4,
            indexing="hash",
        ),
        memory=MemoryConfig(
            l2=CacheConfig(
                size_bytes=4 * 128, assoc=4, line_size=128, mshr_entries=8,
                indexing="hash",
            ),
            l2_latency=20,
            l2_service_interval=2.0,
            dram_latency=60,
            dram_service_interval=8.0,
        ),
        max_cycles=10_000,
    )
    programs = [
        [load(base + index, dep_distance=1, pc=index) for index in range(40)]
        for base in (0, 1 << 20)
    ]
    assert_conformance(config, programs, max_cycles=10_000)


@pytest.mark.parametrize("engine", CANDIDATE_ENGINES)
def test_reuse_tracker_differential(engine: str) -> None:
    """With ``track_reuse_distance`` on (the Fig. 4 path), every engine feeds
    the tracker the identical access stream."""
    spec = KernelSpec(
        name="reuse_diff", num_warps=6, instructions_per_warp=300,
        instructions_per_load=2, dep_distance=2, intra_warp_fraction=0.7,
        inter_warp_fraction=0.2, private_lines=24, shared_lines=48, seed=3,
    )
    config = replace(baseline_config(max_cycles=20_000), track_reuse_distance=True)
    programs = generate_kernel_programs(spec)

    def stats(name: str):
        sm = GPU(config).build_sm([list(p) for p in programs], engine=name)
        sm.run_to_completion(20_000)
        tracker = sm.reuse_tracker
        return (
            tracker.total_distance,
            tracker.reuse_count,
            tracker.cold_count,
            serialization.counters_to_dict(sm.counters),
        )

    assert stats(engine) == stats(ORACLE)


def test_engine_selection_rejects_unknown_names() -> None:
    from repro.gpu.engine import resolve_engine

    with pytest.raises(ValueError):
        resolve_engine("warp-speed")
    assert resolve_engine("FAST") == "fast"
    assert resolve_engine(" legacy ") == "legacy"
    assert resolve_engine(" Event ") == "event"


# ---------------------------------------------------------------------------
# Event-engine skip-span accounting
# ---------------------------------------------------------------------------


def _event_accounting(config: GPUConfig, programs, max_cycles: int) -> None:
    """Shared body: run the event engine, check its span ledger closes, and
    check its stall counters equal the oracle's tick-by-tick tally."""
    oracle_sm = GPU(config).build_sm([list(p) for p in programs], engine=ORACLE)
    oracle_sm.run_to_completion(max_cycles)
    event_sm = GPU(config).build_sm([list(p) for p in programs], engine=ENGINE_EVENT)
    event_sm.run_to_completion(max_cycles)

    # Every simulated cycle is accounted for exactly once: either advanced
    # in a multi-cycle jump over a dead span, or ticked through an issue.
    assert (
        event_sm.jumped_cycles + event_sm.ticked_cycles == event_sm.counters.cycles
    ), (
        f"span ledger leaks cycles: jumped={event_sm.jumped_cycles} "
        f"ticked={event_sm.ticked_cycles} total={event_sm.counters.cycles}"
    )
    assert event_sm.jump_spans <= event_sm.jumped_cycles

    # The jumps credit skipped cycles exactly as the oracle ticks them.
    assert event_sm.counters.cycles == oracle_sm.counters.cycles
    assert event_sm.counters.stall_cycles == oracle_sm.counters.stall_cycles
    assert event_sm.counters.mshr_stall_cycles == oracle_sm.counters.mshr_stall_cycles
    assert event_sm.counters.busy_cycles == oracle_sm.counters.busy_cycles


@settings(max_examples=20, deadline=None)
@given(spec=kernel_specs)
def test_event_skip_span_accounting(spec: KernelSpec) -> None:
    """For random kernels: jumped spans + ticked cycles == the oracle's total
    cycle count, and the stalled-cycle counters match the oracle exactly."""
    programs = generate_kernel_programs(spec)
    _event_accounting(baseline_config(max_cycles=30_000), programs, 16_000)


@settings(max_examples=15, deadline=None)
@given(spec=kernel_specs, config=small_archs)
def test_event_skip_span_accounting_mshr_starved(
    spec: KernelSpec, config: GPUConfig
) -> None:
    """Same ledger under MSHR-starved architectures, where the dominant spans
    are structural-hazard retries (the multi-cycle MSHR-full jumps)."""
    programs = generate_kernel_programs(spec)
    _event_accounting(config, programs, 12_000)


def test_event_engine_actually_jumps() -> None:
    """Guard against the accounting trivially passing because the event
    engine never skips: on a load-heavy kernel it must take multi-cycle
    jumps (jumped_cycles strictly greater than jump_spans)."""
    programs = [
        [load((1 << 30) + 64 * warp + i, dep_distance=1, pc=i) for i in range(64)]
        for warp in range(4)
    ]
    config = baseline_config(max_cycles=40_000)
    sm = GPU(config).build_sm([list(p) for p in programs], engine=ENGINE_EVENT)
    sm.run_to_completion(40_000)
    assert sm.jump_spans > 0
    assert sm.jumped_cycles > sm.jump_spans
