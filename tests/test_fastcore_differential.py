"""Differential verification of the struct-of-arrays fast core.

The fast engine (`repro.gpu.fastcore`) must be *bit-identical* to the legacy
oracle (`repro.gpu.sm`) — every counter, the cycle count, the final warp
tuple and the completion flag — on any kernel under any scheme.  These tests
drive both engines through the same scenarios and assert exact equality:

* random synthetic kernels under all five evaluation schemes
  (gto/swl/pcal/poise/static_best) plus CCWS and the APCM cache policy,
* random architecture variations (L1 geometry, hash vs linear indexing,
  MSHR pressure small enough to exercise the structural-hazard retry path),
* the five trace-native families,
* adversarial controller scripts: random interleavings of warp-tuple
  changes, run windows and counter snapshots (the access pattern of the
  PCAL/Poise sampling loops),
* degenerate shapes (empty warp programs, single-warp kernels).

Any divergence found here is a fast-core bug by definition: the legacy core
is the specification.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Tuple

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.inference import PoiseParameters
from repro.core.poise import PoiseController
from repro.core.training import TrainedModel
from repro.gpu.config import CacheConfig, GPUConfig, MemoryConfig, SMConfig, baseline_config
from repro.gpu.gpu import GPU
from repro.gpu.isa import alu, load
from repro.runtime import serialization
from repro.schedulers import (
    APCMPolicy,
    CCWSController,
    GTOController,
    PCALController,
    StaticBestController,
    SWLController,
)
from repro.schedulers.pcal import PCALParameters
from repro.trace.families import family_kernel, family_names
from repro.workloads.generator import generate_kernel_programs
from repro.workloads.spec import KernelSpec

SCHEMES = ("gto", "swl", "pcal", "poise", "static_best")


def fixed_model() -> TrainedModel:
    """Fixed-weight Poise model, as in the golden-counter suite."""
    return TrainedModel(
        alpha_weights=[0.02, -0.03, 0.05, 0.01, -0.02, 0.04, 0.60, 0.30],
        beta_weights=[0.01, -0.02, 0.03, 0.02, -0.01, 0.02, 0.30, 0.15],
        max_warps=24,
        dispersion_n=0.1,
        dispersion_p=0.1,
        num_training_kernels=0,
    )


def make_controller(scheme: str, seed: int):
    """A deterministic controller for ``scheme`` that needs no profile."""
    if scheme == "gto":
        return GTOController()
    if scheme == "swl":
        return SWLController(limit=1 + seed % 8)
    if scheme == "pcal":
        return PCALController(
            swl_limit=1 + seed % 8,
            params=PCALParameters(warmup_cycles=300, sample_cycles=700, max_hill_steps=3),
        )
    if scheme == "static_best":
        return StaticBestController(best_tuple=(1 + seed % 12, 1 + seed % 4))
    if scheme == "poise":
        return PoiseController(
            fixed_model(),
            PoiseParameters(
                t_period=6_000, t_warmup=400, t_feature=900, t_search=500,
                threshold_cycles=800,
            ),
        )
    raise ValueError(scheme)


def run_snapshot(engine: str, config: GPUConfig, programs, controller=None,
                 cache_policy=None, max_cycles: int = 20_000) -> dict:
    result = GPU(config).run_kernel(
        [list(program) for program in programs],
        controller=controller,
        cache_policy=cache_policy,
        max_cycles=max_cycles,
        engine=engine,
    )
    return {
        "counters": serialization.counters_to_dict(result.counters),
        "cycles": result.cycles,
        "warp_tuple": result.warp_tuple,
        "completed": result.completed,
        "telemetry": serialization.encode_value(result.telemetry),
    }


def assert_engines_agree(config: GPUConfig, programs, controller_factory=None,
                         cache_policy_factory=None, max_cycles: int = 20_000) -> None:
    legacy = run_snapshot(
        "legacy", config, programs,
        controller=controller_factory() if controller_factory else None,
        cache_policy=cache_policy_factory() if cache_policy_factory else None,
        max_cycles=max_cycles,
    )
    fast = run_snapshot(
        "fast", config, programs,
        controller=controller_factory() if controller_factory else None,
        cache_policy=cache_policy_factory() if cache_policy_factory else None,
        max_cycles=max_cycles,
    )
    for counter, value in legacy["counters"].items():
        assert fast["counters"][counter] == value, (
            f"counter {counter!r} drifted: legacy={value} fast={fast['counters'][counter]}"
        )
    assert fast == legacy


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

kernel_specs = st.builds(
    KernelSpec,
    name=st.just("diff_kernel"),
    num_warps=st.integers(1, 10),
    instructions_per_warp=st.integers(20, 350),
    instructions_per_load=st.integers(1, 8),
    dep_distance=st.integers(0, 6),
    intra_warp_fraction=st.sampled_from([0.0, 0.2, 0.5, 0.8]),
    inter_warp_fraction=st.sampled_from([0.0, 0.1, 0.2]),
    private_lines=st.integers(1, 64),
    shared_lines=st.integers(1, 96),
    seed=st.integers(0, 10_000),
)

small_archs = st.builds(
    lambda l1_lines, assoc, mshr, indexing: GPUConfig(
        sm=SMConfig(max_warps=12),
        l1=CacheConfig(
            size_bytes=l1_lines * assoc * 128,
            assoc=assoc,
            line_size=128,
            mshr_entries=mshr,
            indexing=indexing,
        ),
        memory=MemoryConfig(
            l2=CacheConfig(size_bytes=64 * 128, assoc=4, line_size=128, mshr_entries=8),
            l2_latency=20,
            l2_service_interval=2.0,
            dram_latency=60,
            dram_service_interval=8.0,
        ),
        max_cycles=30_000,
    ),
    l1_lines=st.integers(2, 8),  # sets per way
    assoc=st.sampled_from([1, 2, 4]),
    mshr=st.integers(1, 6),
    indexing=st.sampled_from(["hash", "linear"]),
)


# ---------------------------------------------------------------------------
# Synthetic kernels × schemes
# ---------------------------------------------------------------------------


@settings(max_examples=20, deadline=None)
@given(spec=kernel_specs, scheme=st.sampled_from(SCHEMES))
def test_scheme_differential(spec: KernelSpec, scheme: str) -> None:
    """Both engines agree under every evaluation scheme on random kernels."""
    programs = generate_kernel_programs(spec)
    config = baseline_config(max_cycles=30_000)
    assert_engines_agree(
        config, programs,
        controller_factory=lambda: make_controller(scheme, spec.seed),
        max_cycles=16_000,
    )


@settings(max_examples=20, deadline=None)
@given(spec=kernel_specs, config=small_archs)
def test_architecture_differential(spec: KernelSpec, config: GPUConfig) -> None:
    """Random L1 geometries, linear indexing and MSHR starvation (the
    structural-hazard retry path) stay bit-identical."""
    programs = generate_kernel_programs(spec)
    assert_engines_agree(config, programs, max_cycles=12_000)


@settings(max_examples=10, deadline=None)
@given(spec=kernel_specs)
def test_apcm_cache_policy_differential(spec: KernelSpec) -> None:
    """The per-PC allocate/observe hooks fire identically in both engines."""
    programs = generate_kernel_programs(spec)
    config = baseline_config(max_cycles=30_000)
    assert_engines_agree(
        config, programs,
        controller_factory=GTOController,
        cache_policy_factory=APCMPolicy,
        max_cycles=16_000,
    )


@settings(max_examples=10, deadline=None)
@given(spec=kernel_specs)
def test_ccws_differential(spec: KernelSpec) -> None:
    programs = generate_kernel_programs(spec)
    config = baseline_config(max_cycles=30_000)
    assert_engines_agree(
        config, programs, controller_factory=CCWSController, max_cycles=16_000
    )


# ---------------------------------------------------------------------------
# Trace-native families × schemes
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("family", sorted(family_names()))
@pytest.mark.parametrize("scheme", ("gto", "poise"))
def test_trace_family_differential(family: str, scheme: str) -> None:
    spec = family_kernel(
        family, f"{family}_diff", num_warps=6, instructions_per_warp=300, seed=5
    )
    programs = generate_kernel_programs(spec)
    config = baseline_config(max_cycles=30_000)
    assert_engines_agree(
        config, programs,
        controller_factory=lambda: make_controller(scheme, 5),
        max_cycles=16_000,
    )


@pytest.mark.parametrize("scheme", SCHEMES)
def test_trace_family_all_schemes(scheme: str) -> None:
    """One family through the full scheme matrix (the ISSUE's 5×trace leg)."""
    spec = family_kernel(
        "transpose", "transpose_diff", num_warps=8, instructions_per_warp=400, seed=9
    )
    programs = generate_kernel_programs(spec)
    config = baseline_config(max_cycles=30_000)
    assert_engines_agree(
        config, programs,
        controller_factory=lambda: make_controller(scheme, 9),
        max_cycles=16_000,
    )


# ---------------------------------------------------------------------------
# Adversarial control scripts (PCAL/Poise-style sampling)
# ---------------------------------------------------------------------------


@settings(max_examples=15, deadline=None)
@given(
    spec=kernel_specs,
    script=st.lists(
        st.tuples(st.integers(1, 12), st.integers(1, 12), st.integers(1, 2_500)),
        min_size=1,
        max_size=8,
    ),
)
def test_windowed_control_differential(
    spec: KernelSpec, script: List[Tuple[int, int, int]]
) -> None:
    """Random interleavings of set_warp_tuple / run_cycles / snapshot must
    produce identical per-window counter deltas on both engines."""
    config = baseline_config(max_cycles=60_000)
    programs = generate_kernel_programs(spec)

    def drive(engine: str) -> list:
        sm = GPU(config).build_sm([list(p) for p in programs], engine=engine)
        trail = []
        for n, p, window in script:
            sm.set_warp_tuple(n, p)
            before = sm.snapshot()
            consumed = sm.run_cycles(window)
            trail.append(
                (consumed, serialization.counters_to_dict(sm.counters - before))
            )
        sm.run_to_completion(50_000)
        trail.append((sm.cycle, sm.done, serialization.counters_to_dict(sm.counters)))
        return trail

    assert drive("fast") == drive("legacy")


# ---------------------------------------------------------------------------
# Degenerate shapes
# ---------------------------------------------------------------------------


def test_empty_and_mixed_programs_differential() -> None:
    """Warps with empty programs (trace padding) and mixed lengths retire
    identically."""
    programs = [
        [],
        [alu(pc=0), load(17, dep_distance=1, pc=1), alu(pc=2)],
        [],
        [load(17, dep_distance=0, pc=0)],
        [alu(pc=i) for i in range(5)],
    ]
    config = baseline_config(max_cycles=10_000)
    assert_engines_agree(config, programs, max_cycles=10_000)


def test_single_warp_mshr_merge_differential() -> None:
    """Merged misses to one line (shared MSHR entry, per-waiter latency)."""
    programs = [
        [load(99, dep_distance=3, pc=0), load(99, dep_distance=2, pc=1), alu(pc=2)],
        [load(99, dep_distance=3, pc=0), alu(pc=1)],
    ]
    config = baseline_config(max_cycles=10_000)
    assert_engines_agree(config, programs, max_cycles=10_000)


def test_single_set_hash_cache_differential() -> None:
    """num_sets == 1 with hash indexing (the XOR-fold degenerate case that
    used to spin forever in the legacy fold loop) terminates and agrees."""
    config = GPUConfig(
        sm=SMConfig(max_warps=4),
        l1=CacheConfig(
            size_bytes=2 * 128, assoc=2, line_size=128, mshr_entries=4,
            indexing="hash",
        ),
        memory=MemoryConfig(
            l2=CacheConfig(
                size_bytes=4 * 128, assoc=4, line_size=128, mshr_entries=8,
                indexing="hash",
            ),
            l2_latency=20,
            l2_service_interval=2.0,
            dram_latency=60,
            dram_service_interval=8.0,
        ),
        max_cycles=10_000,
    )
    programs = [
        [load(base + index, dep_distance=1, pc=index) for index in range(40)]
        for base in (0, 1 << 20)
    ]
    assert_engines_agree(config, programs, max_cycles=10_000)


def test_reuse_tracker_differential() -> None:
    """With ``track_reuse_distance`` on (the Fig. 4 path), both engines feed
    the tracker the identical access stream."""
    spec = KernelSpec(
        name="reuse_diff", num_warps=6, instructions_per_warp=300,
        instructions_per_load=2, dep_distance=2, intra_warp_fraction=0.7,
        inter_warp_fraction=0.2, private_lines=24, shared_lines=48, seed=3,
    )
    config = replace(baseline_config(max_cycles=20_000), track_reuse_distance=True)
    programs = generate_kernel_programs(spec)

    def stats(engine: str):
        sm = GPU(config).build_sm([list(p) for p in programs], engine=engine)
        sm.run_to_completion(20_000)
        tracker = sm.reuse_tracker
        return (
            tracker.total_distance,
            tracker.reuse_count,
            tracker.cold_count,
            serialization.counters_to_dict(sm.counters),
        )

    assert stats("fast") == stats("legacy")


def test_engine_selection_rejects_unknown_names() -> None:
    from repro.gpu.engine import resolve_engine

    with pytest.raises(ValueError):
        resolve_engine("warp-speed")
    assert resolve_engine("FAST") == "fast"
    assert resolve_engine(" legacy ") == "legacy"
