"""Tests for the supervised worker pool: heartbeats, reaping, restarts and
the circuit breaker, with real (spawned) worker processes."""

from __future__ import annotations

import time

import pytest

from repro.serve.supervisor import Supervisor


def pump_until(supervisor, predicate, timeout=30.0):
    """Pump the supervisor until ``predicate(events_so_far)`` or timeout."""
    events = []
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        events.extend(supervisor.pump(timeout=0.1))
        if predicate(events):
            return events
        supervisor.heal()
    raise AssertionError(f"condition not met within {timeout}s; events: {events}")


@pytest.fixture
def supervisor():
    supervisor = Supervisor(
        pool_size=1,
        job_timeout=15.0,
        heartbeat_interval=0.1,
        heartbeat_timeout=5.0,
        max_restarts=4,
        restart_window=60.0,
        backoff_base=0.05,
    )
    supervisor.start()
    yield supervisor
    supervisor.stop()


def probe_request(tag, sleep=0.0):
    return {"kind": "probe", "sleep": sleep, "echo": tag, "fail": False}


def test_dispatch_returns_result_event(supervisor):
    supervisor.dispatch("job-1", probe_request("hello"))
    events = pump_until(supervisor, lambda seen: any(e.kind == "done" for e in seen))
    done = next(e for e in events if e.kind == "done")
    assert done.job_id == "job-1"
    assert done.result["echo"] == "hello"
    assert supervisor.idle_workers()  # the worker is reusable


def test_worker_failure_is_reported_not_fatal(supervisor):
    supervisor.dispatch("job-f", {"kind": "probe", "sleep": 0.0, "echo": None, "fail": True})
    events = pump_until(supervisor, lambda seen: any(e.kind == "failed" for e in seen))
    failed = next(e for e in events if e.kind == "failed")
    assert "probe requested failure" in failed.error
    assert not failed.retryable  # a deterministic job bug, not a transient
    assert supervisor.alive_workers() == 1


def test_injected_oserror_is_retryable(supervisor):
    supervisor.dispatch("job-os", probe_request("x"), action="oserror")
    events = pump_until(supervisor, lambda seen: any(e.kind == "failed" for e in seen))
    failed = next(e for e in events if e.kind == "failed")
    assert failed.retryable
    assert "FaultInjectedError" in failed.error


def test_crashed_worker_is_lost_and_restarted(supervisor):
    supervisor.dispatch("job-c", probe_request("x"), action="crash")
    events = pump_until(supervisor, lambda seen: any(e.kind == "lost" for e in seen))
    lost = next(e for e in events if e.kind == "lost")
    assert lost.job_id == "job-c"
    assert "86" in lost.error  # CRASH_EXIT_STATUS surfaces in the report
    # The pool heals: a fresh worker appears and takes the requeued job.
    pump_until(supervisor, lambda _seen: supervisor.idle_workers(), timeout=30.0)
    assert supervisor.restarts == 1
    supervisor.dispatch("job-after", probe_request("again"))
    events = pump_until(supervisor, lambda seen: any(e.kind == "done" for e in seen))
    assert any(e.job_id == "job-after" for e in events)


def test_stalled_worker_is_reaped_via_job_deadline():
    supervisor = Supervisor(
        pool_size=1,
        job_timeout=1.0,  # the stall sleeps forever; the deadline reaps it
        heartbeat_interval=0.1,
        heartbeat_timeout=30.0,  # heartbeats stay healthy during a stall
        max_restarts=4,
        backoff_base=0.05,
    )
    supervisor.start()
    try:
        supervisor.dispatch("job-s", probe_request("x"), action="stall")
        events = pump_until(
            supervisor, lambda seen: any(e.kind == "lost" for e in seen), timeout=40.0
        )
        lost = next(e for e in events if e.kind == "lost")
        assert lost.job_id == "job-s"
        assert "hung" in lost.error
        assert supervisor.reaped == 1
    finally:
        supervisor.stop()


def test_circuit_breaker_opens_after_bounded_restarts():
    supervisor = Supervisor(
        pool_size=1,
        job_timeout=15.0,
        heartbeat_interval=0.1,
        max_restarts=2,
        restart_window=60.0,
        backoff_base=0.01,
    )
    supervisor.start()
    try:
        crashes = 0
        deadline = time.monotonic() + 60.0
        while not supervisor.breaker_open and time.monotonic() < deadline:
            supervisor.heal()
            if supervisor.idle_workers():
                supervisor.dispatch(f"job-{crashes}", probe_request("x"), action="crash")
                crashes += 1
            supervisor.pump(timeout=0.1)
        assert supervisor.breaker_open
        assert supervisor.restarts <= 2
        # Open breaker: no new processes, ever — degraded mode is the
        # dispatcher's job from here.
        supervisor.heal()
        assert supervisor.alive_workers() == 0
    finally:
        supervisor.stop()
