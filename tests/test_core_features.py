"""Unit tests for the feature vector and feature sampling."""

import pytest

from repro.core.features import (
    FEATURE_NAMES,
    NUM_FEATURES,
    CounterSample,
    FeatureSampler,
    FeatureVector,
)
from repro.gpu.counters import PerfCounters
from repro.gpu.gpu import GPU
from repro.workloads.generator import generate_kernel_programs


def make_vector(**overrides):
    defaults = dict(
        h_o=0.1, h_prime=0.6, eta_o=0.05, eta_prime=0.55,
        instructions_per_load=3.0, latency_pressure=-50.0,
    )
    defaults.update(overrides)
    return FeatureVector(**defaults)


class TestFeatureVector:
    def test_has_eight_features_in_table_ii_order(self):
        vector = make_vector()
        values = vector.as_list()
        assert len(values) == NUM_FEATURES == len(FEATURE_NAMES) == 8
        assert values[0] == pytest.approx(0.1)      # x1 = h_o
        assert values[1] == pytest.approx(0.6)      # x2 = h'
        assert values[2] == pytest.approx(0.05)     # x3 = eta_o
        assert values[3] == pytest.approx(0.55)     # x4 = eta'
        assert values[4] == pytest.approx(0.5 ** 2)  # x5 = (eta'-eta_o)^2
        assert values[5] == pytest.approx(3.0 * 0.25)  # x6 = In * (delta eta)^2
        assert values[6] == pytest.approx((-50.0) ** 2 / 1e4)  # x7
        assert values[7] == 1.0                     # x8 intercept

    def test_delta_eta_property(self):
        assert make_vector().delta_eta == pytest.approx(0.5)

    def test_masking_removes_requested_indices(self):
        vector = make_vector()
        masked = vector.masked([5])
        assert len(masked) == 7
        assert vector.as_list()[5] not in masked or masked.count(vector.as_list()[5]) < \
            vector.as_list().count(vector.as_list()[5])

    def test_from_samples_computes_latency_pressure(self):
        baseline = CounterSample(
            hit_rate=0.1, intra_warp_hit_rate=0.05, miss_rate=0.9,
            avg_memory_latency=500.0, instructions_per_load=3.0,
        )
        reference = CounterSample(
            hit_rate=0.7, intra_warp_hit_rate=0.7, miss_rate=0.3,
            avg_memory_latency=300.0, instructions_per_load=3.0,
        )
        vector = FeatureVector.from_samples(baseline, reference)
        assert vector.latency_pressure == pytest.approx(300 * 0.3 - 500 * 0.9)
        assert vector.h_o == 0.1 and vector.h_prime == 0.7

    def test_counter_sample_from_counters(self):
        counters = PerfCounters(
            l1_accesses=10, l1_hits=4, l1_misses=6, intra_warp_hits=3,
            miss_requests=6, miss_latency_total=1800, instructions=30, loads=10,
        )
        sample = CounterSample.from_counters(counters)
        assert sample.hit_rate == pytest.approx(0.4)
        assert sample.miss_rate == pytest.approx(0.6)
        assert sample.intra_warp_hit_rate == pytest.approx(0.3)
        assert sample.avg_memory_latency == pytest.approx(300.0)
        assert sample.instructions_per_load == pytest.approx(3.0)


class TestFeatureSampler:
    def test_collect_steers_both_reference_points(self, baseline_gpu_config, simple_kernel_spec):
        sm = GPU(baseline_gpu_config).build_sm(generate_kernel_programs(simple_kernel_spec))
        sampler = FeatureSampler(warmup_cycles=200, sample_cycles=800)
        vector = sampler.collect(sm, max_warps=simple_kernel_spec.num_warps)
        # After collection the SM is back at the baseline tuple.
        assert sm.warp_tuple == (simple_kernel_spec.num_warps, simple_kernel_spec.num_warps)
        values = vector.as_list()
        assert len(values) == NUM_FEATURES
        assert all(isinstance(v, float) for v in values)
        assert 0.0 <= vector.h_o <= 1.0
        assert 0.0 <= vector.h_prime <= 1.0

    def test_sample_at_returns_window_not_cumulative(self, baseline_gpu_config, simple_kernel_spec):
        sm = GPU(baseline_gpu_config).build_sm(generate_kernel_programs(simple_kernel_spec))
        sampler = FeatureSampler(warmup_cycles=100, sample_cycles=500)
        sampler.sample_at(sm, 4, 4)
        cycles_after_first = sm.counters.cycles
        sample = sampler.sample_at(sm, 4, 4)
        assert sm.counters.cycles > cycles_after_first
        assert 0.0 <= sample.hit_rate <= 1.0
