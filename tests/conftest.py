"""Shared fixtures for the test suite.

The expensive artefacts (training on the fast configuration, static
profiles) are session-scoped so the integration tests share them.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import ExperimentConfig, clear_caches, train_model
from repro.gpu.config import CacheConfig, GPUConfig, MemoryConfig, SMConfig, baseline_config
from repro.gpu.isa import alu, load
from repro.workloads.spec import KernelSpec


@pytest.fixture(scope="session")
def fast_config() -> ExperimentConfig:
    """The scaled-down experiment configuration used by integration tests."""
    return ExperimentConfig.fast()


@pytest.fixture(scope="session")
def tiny_model(fast_config):
    """A model trained once per session on the fast configuration."""
    return train_model(fast_config)


@pytest.fixture(autouse=True)
def _isolate_caches():
    """Keep per-test runs independent of cached profiles from other tests,
    except for the session-scoped fixtures created above."""
    yield


@pytest.fixture
def small_gpu_config() -> GPUConfig:
    """A deliberately tiny GPU so cache behaviour is easy to reason about."""
    return GPUConfig(
        sm=SMConfig(max_warps=4),
        l1=CacheConfig(size_bytes=8 * 128, assoc=2, line_size=128, mshr_entries=4),
        memory=MemoryConfig(
            l2=CacheConfig(size_bytes=32 * 128, assoc=4, line_size=128, mshr_entries=8),
            l2_latency=20,
            l2_service_interval=2.0,
            dram_latency=60,
            dram_service_interval=8.0,
        ),
        max_cycles=50_000,
    )


@pytest.fixture
def baseline_gpu_config() -> GPUConfig:
    return baseline_config(max_cycles=60_000)


@pytest.fixture
def simple_kernel_spec() -> KernelSpec:
    """A small, memory-sensitive kernel used across unit tests."""
    return KernelSpec(
        name="unit_kernel",
        num_warps=8,
        instructions_per_warp=600,
        instructions_per_load=3,
        dep_distance=4,
        intra_warp_fraction=0.8,
        inter_warp_fraction=0.1,
        private_lines=40,
        shared_lines=80,
        seed=42,
    )


def make_streaming_program(num_loads: int, base: int = 0, dep: int = 0):
    """A program of loads to consecutive, never-reused lines."""
    return [load(base + index, dep_distance=dep, pc=index) for index in range(num_loads)]


def make_looping_program(num_loads: int, footprint: int, base: int = 0, dep: int = 0):
    """A program that loops over a fixed set of lines (high intra-warp reuse)."""
    return [
        load(base + (index % footprint), dep_distance=dep, pc=index % footprint)
        for index in range(num_loads)
    ]


def make_alu_program(length: int):
    return [alu(pc=index) for index in range(length)]


@pytest.fixture
def streaming_program():
    return make_streaming_program(64)


@pytest.fixture
def looping_program():
    return make_looping_program(64, footprint=8)
