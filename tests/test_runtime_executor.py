"""Tests for the sweep executor, the persistent result cache and the
cache-key hygiene of the experiment layer.

The two load-bearing guarantees of the runtime subsystem:

* a parallel sweep produces *bit-identical* counters to a serial one, and
* a corrupted or truncated disk-cache entry falls back to recomputation.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import replace

import pytest

from repro.experiments.common import (
    ExperimentConfig,
    clear_caches,
    evaluate_schemes,
    get_profile,
    run_scheme_on_kernel,
)
from repro.gpu.config import baseline_config
from repro.profiling.profiler import KernelProfiler
from repro.runtime.cache import DiskCache, content_key
from repro.runtime.executor import SweepExecutor, resolve_jobs
from repro.runtime.serialization import (
    decode_value,
    encode_value,
    profile_from_dict,
    profile_to_dict,
    run_result_from_dict,
    run_result_to_dict,
)
from repro.workloads.spec import KernelSpec


@pytest.fixture
def sweep_spec() -> KernelSpec:
    return KernelSpec(
        name="runtime_kernel",
        num_warps=12,
        instructions_per_warp=1200,
        instructions_per_load=3,
        dep_distance=3,
        intra_warp_fraction=0.6,
        inter_warp_fraction=0.2,
        private_lines=100,
        shared_lines=300,
        seed=9,
    )


@pytest.fixture
def tmp_cache_config(tmp_path) -> ExperimentConfig:
    """A fast config whose disk cache lives in an isolated temp directory."""
    clear_caches()
    yield replace(ExperimentConfig.fast(), cache_dir=tmp_path)
    clear_caches()


def _square(x):
    return x * x


def _boom(x):
    raise RuntimeError(f"boom {x}")


class TestSweepExecutor:
    def test_resolve_jobs(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs() == 1
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs() == 3
        monkeypatch.setenv("REPRO_JOBS", "auto")
        assert resolve_jobs() >= 1
        assert resolve_jobs(jobs=5) == 5

    def test_resolve_jobs_warns_once_on_invalid_value(self, monkeypatch):
        from repro.runtime import executor as executor_module

        monkeypatch.setattr(executor_module, "_warned_env", set())
        monkeypatch.setenv("REPRO_JOBS", "max")
        with pytest.warns(RuntimeWarning, match="REPRO_JOBS='max'.*serial"):
            assert resolve_jobs() == 1
        # The warning names the bad value exactly once per process.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_jobs() == 1

    def test_serial_map_preserves_order(self):
        executor = SweepExecutor(jobs=1)
        assert executor.map(_square, [(i,) for i in range(6)]) == [0, 1, 4, 9, 16, 25]

    def test_parallel_map_preserves_order(self):
        executor = SweepExecutor(jobs=2)
        assert executor.map(_square, [(i,) for i in range(6)]) == [0, 1, 4, 9, 16, 25]

    def test_worker_exception_propagates(self):
        executor = SweepExecutor(jobs=2)
        with pytest.raises(RuntimeError, match="boom"):
            executor.map(_boom, [(1,), (2,)])


class TestSerialParallelEquivalence:
    def test_profile_sweep_identical(self, sweep_spec):
        """REPRO_JOBS=1 and REPRO_JOBS=4 sweeps measure identical grids."""
        config = baseline_config(max_cycles=40_000)
        kwargs = dict(cycles_per_point=1_500, warmup_cycles=1_000, n_step=3, p_step=3)
        serial = KernelProfiler(config, executor=SweepExecutor(jobs=1), **kwargs).profile(
            sweep_spec
        )
        parallel = KernelProfiler(config, executor=SweepExecutor(jobs=4), **kwargs).profile(
            sweep_spec
        )
        assert serial.ipc == parallel.ipc
        assert serial.baseline_ipc == parallel.baseline_ipc
        assert serial.baseline_counters == parallel.baseline_counters

    def test_profile_sweep_identical_via_env(self, sweep_spec, monkeypatch):
        config = baseline_config(max_cycles=40_000)
        kwargs = dict(cycles_per_point=1_500, warmup_cycles=1_000, n_step=4, p_step=4)
        monkeypatch.setenv("REPRO_JOBS", "1")
        serial = KernelProfiler(config, **kwargs).profile(sweep_spec)
        monkeypatch.setenv("REPRO_JOBS", "4")
        parallel = KernelProfiler(config, **kwargs).profile(sweep_spec)
        assert serial.ipc == parallel.ipc

    def test_evaluate_schemes_identical_counters(self, tmp_cache_config, monkeypatch):
        """The full evaluation path agrees between serial and parallel runs."""
        config = replace(tmp_cache_config, kernels_per_benchmark=1)
        benchmarks = ["bfs"]
        monkeypatch.setenv("REPRO_JOBS", "1")
        serial = evaluate_schemes(("gto", "swl"), config, benchmarks=benchmarks)
        clear_caches(config)  # drop memory AND disk so the parallel pass recomputes
        monkeypatch.setenv("REPRO_JOBS", "2")
        parallel = evaluate_schemes(("gto", "swl"), config, benchmarks=benchmarks)
        for scheme in ("gto", "swl"):
            for name in benchmarks:
                lhs = serial[scheme][name]
                rhs = parallel[scheme][name]
                assert lhs.speedup == rhs.speedup
                assert lhs.kernel_results.keys() == rhs.kernel_results.keys()
                for kernel in lhs.kernel_results:
                    assert (
                        lhs.kernel_results[kernel].counters
                        == rhs.kernel_results[kernel].counters
                    )


class TestDiskCache:
    def test_round_trip_run_result(self, sweep_spec, tmp_cache_config):
        first = run_scheme_on_kernel("gto", sweep_spec, tmp_cache_config)
        clear_caches()  # drop the memory layer; the disk layer persists
        second = run_scheme_on_kernel("gto", sweep_spec, tmp_cache_config)
        assert first.counters == second.counters
        assert first.warp_tuple == second.warp_tuple
        assert first.energy == second.energy
        assert first.telemetry == second.telemetry

    def test_round_trip_profile(self, sweep_spec, tmp_cache_config):
        first = get_profile(sweep_spec, tmp_cache_config)
        clear_caches()
        second = get_profile(sweep_spec, tmp_cache_config)
        assert first.ipc == second.ipc
        assert first.baseline_ipc == second.baseline_ipc
        assert first.kernel == second.kernel
        assert first.baseline_counters == second.baseline_counters

    @pytest.mark.parametrize(
        "garbage", ["", "{truncated", '{"format_version": 999}', '{"unrelated": 1}']
    )
    def test_corrupted_entry_falls_back_to_recompute(
        self, sweep_spec, tmp_cache_config, garbage
    ):
        reference = run_scheme_on_kernel("gto", sweep_spec, tmp_cache_config)
        entries = list((tmp_cache_config.cache_dir / "runs").glob("*.json"))
        assert entries, "the run should have been written to the disk cache"
        for entry in entries:
            entry.write_text(garbage)
        clear_caches()
        recomputed = run_scheme_on_kernel("gto", sweep_spec, tmp_cache_config)
        assert recomputed.counters == reference.counters

    def test_corrupted_entry_is_replaced(self, sweep_spec, tmp_cache_config):
        run_scheme_on_kernel("gto", sweep_spec, tmp_cache_config)
        entries = list((tmp_cache_config.cache_dir / "runs").glob("*.json"))
        for entry in entries:
            entry.write_text("not json at all")
        clear_caches()
        run_scheme_on_kernel("gto", sweep_spec, tmp_cache_config)
        clear_caches()
        # Third call must be served by a healthy, rewritten disk entry.
        result = run_scheme_on_kernel("gto", sweep_spec, tmp_cache_config)
        assert result.counters.cycles > 0

    def test_disk_cache_disabled_by_env(self, sweep_spec, tmp_cache_config, monkeypatch):
        monkeypatch.setenv("REPRO_DISK_CACHE", "0")
        run_scheme_on_kernel("gto", sweep_spec, tmp_cache_config)
        assert not list(tmp_cache_config.cache_dir.glob("runs/*.json"))

    def test_content_key_is_canonical(self):
        assert content_key({"a": 1, "b": 2}) == content_key({"b": 2, "a": 1})
        assert content_key({"a": 1}) != content_key({"a": 2})

    def test_store_and_clear(self, tmp_path):
        cache = DiskCache(tmp_path)
        payload = {"kind": "test", "x": 1}
        assert cache.load(payload) is None
        cache.store(payload, {"value": 42})
        assert cache.load(payload) == {"value": 42}
        assert cache.clear() == 1
        assert cache.load(payload) is None


class TestSerialization:
    def test_tuple_round_trip(self):
        value = {"tuples": [(1, 2), (3, 4)], "nested": {"point": (5, 6)}, "n": 7}
        assert decode_value(json.loads(json.dumps(encode_value(value)))) == value

    def test_run_result_round_trip(self, sweep_spec, tmp_cache_config):
        result = run_scheme_on_kernel("gto", sweep_spec, tmp_cache_config, use_cache=False)
        data = json.loads(json.dumps(run_result_to_dict(result)))
        restored = run_result_from_dict(data)
        assert restored.counters == result.counters
        assert restored.warp_tuple == result.warp_tuple
        assert restored.energy == result.energy
        assert restored.telemetry == result.telemetry

    def test_profile_round_trip(self, sweep_spec):
        profiler = KernelProfiler(
            baseline_config(max_cycles=30_000),
            cycles_per_point=1_000,
            warmup_cycles=500,
            n_step=4,
            p_step=4,
        )
        profile = profiler.profile(sweep_spec)
        restored = profile_from_dict(json.loads(json.dumps(profile_to_dict(profile))))
        assert restored.ipc == profile.ipc
        assert restored.kernel == profile.kernel
        assert restored.max_warps == profile.max_warps
        assert restored.baseline_counters == profile.baseline_counters


class TestCacheKeyHygiene:
    """Two configs differing in any run-affecting knob must not collide."""

    def test_run_max_cycles_changes_key(self):
        base = ExperimentConfig.fast()
        assert base.cache_key != replace(base, run_max_cycles=base.run_max_cycles * 2).cache_key

    def test_kernels_per_benchmark_changes_key(self):
        base = ExperimentConfig.fast()
        assert base.cache_key != replace(base, kernels_per_benchmark=7).cache_key

    def test_poise_params_change_key(self):
        base = ExperimentConfig.fast()
        bigger_epoch = replace(
            base.poise_params, t_period=base.poise_params.t_period * 2
        )
        assert base.cache_key != base.with_poise_params(bigger_epoch).cache_key

    def test_feature_window_changes_key(self):
        base = ExperimentConfig.fast()
        assert base.cache_key != replace(base, feature_cycles=base.feature_cycles + 1).cache_key

    def test_distinct_run_max_cycles_distinct_results(self, sweep_spec, tmp_cache_config):
        """Regression: previously these two configs silently shared a cache slot."""
        short = replace(tmp_cache_config, run_max_cycles=4_000)
        long = replace(tmp_cache_config, run_max_cycles=40_000)
        short_result = run_scheme_on_kernel("gto", sweep_spec, short)
        long_result = run_scheme_on_kernel("gto", sweep_spec, long)
        assert short_result.counters.cycles < long_result.counters.cycles


def _touch_disk_cache(cache_dir, index):
    """Pool job that misses, stores, then hits the disk cache once each."""
    cache = DiskCache(cache_dir, subdir="worker-cache-test")
    payload = {"index": index}
    assert cache.load(payload) is None  # miss
    cache.store(payload, {"value": index})  # store
    assert cache.load(payload) == {"value": index}  # hit
    return index


class TestEnvNumber:
    """The shared warn-once environment-number parser (env_number)."""

    def test_absent_and_blank_fall_back(self, monkeypatch):
        from repro.runtime.executor import env_number

        monkeypatch.delenv("REPRO_TEST_KNOB", raising=False)
        assert env_number("REPRO_TEST_KNOB", float, 1.5, "default") == 1.5
        monkeypatch.setenv("REPRO_TEST_KNOB", "   ")
        assert env_number("REPRO_TEST_KNOB", float, 1.5, "default") == 1.5

    def test_valid_value_is_cast(self, monkeypatch):
        from repro.runtime.executor import env_number

        monkeypatch.setenv("REPRO_TEST_KNOB", "7")
        assert env_number("REPRO_TEST_KNOB", int, 0, "default") == 7

    def test_invalid_value_warns_once_and_falls_back(self, monkeypatch):
        from repro.runtime import executor as executor_module
        from repro.runtime.executor import env_number

        monkeypatch.setattr(executor_module, "_warned_env", set())
        monkeypatch.setenv("REPRO_TEST_KNOB", "lots")
        with pytest.warns(RuntimeWarning, match="REPRO_TEST_KNOB='lots'"):
            assert env_number("REPRO_TEST_KNOB", int, 3, "the default of 3") == 3
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert env_number("REPRO_TEST_KNOB", int, 3, "the default of 3") == 3

    def test_timeout_retries_backoff_share_the_parser(self, monkeypatch):
        from repro.runtime import executor as executor_module
        from repro.runtime.executor import (
            resolve_backoff,
            resolve_retries,
            resolve_timeout,
        )

        monkeypatch.setattr(executor_module, "_warned_env", set())
        monkeypatch.setenv("REPRO_TIMEOUT", "forever")
        monkeypatch.setenv("REPRO_RETRIES", "many")
        monkeypatch.setenv("REPRO_RETRY_BACKOFF", "soon")
        with pytest.warns(RuntimeWarning) as caught:
            assert resolve_timeout() is None
            assert resolve_retries() == 2
            assert resolve_backoff() == 0.05
        names = {str(warning.message).split("=")[0] for warning in caught}
        assert names == {"REPRO_TIMEOUT", "REPRO_RETRIES", "REPRO_RETRY_BACKOFF"}
        # Semantics preserved: non-positive timeout means "no timeout",
        # negative retries clamp to zero.
        monkeypatch.setenv("REPRO_TIMEOUT", "0")
        assert resolve_timeout() is None
        monkeypatch.setenv("REPRO_RETRIES", "-3")
        assert resolve_retries() == 0


class TestWorkerCacheTelemetry:
    """Pool workers ship their cache-counter deltas home (JobReport.worker_cache)."""

    def test_parallel_map_merges_worker_cache_deltas(self, tmp_path):
        executor = SweepExecutor(jobs=2)
        results = executor.map(
            _touch_disk_cache, [(str(tmp_path), index) for index in range(4)]
        )
        assert results == [0, 1, 2, 3]
        worker_cache = executor.last_report.worker_cache
        assert worker_cache is not None
        # Each of the 4 jobs: one miss, one store, one hit — summed across
        # however many worker processes they landed on.
        assert worker_cache["misses"] == 4
        assert worker_cache["stores"] == 4
        assert worker_cache["hits"] == 4
        assert executor.last_report.to_dict()["worker_cache"] == worker_cache

    def test_serial_run_one_reports_no_worker_cache(self, tmp_path):
        executor = SweepExecutor(jobs=1)
        executor.run_one(_touch_disk_cache, (str(tmp_path), 99))
        # Serial execution happens in-parent: the global counters already
        # saw it, so an envelope would double-count.
        assert executor.last_report.worker_cache in (None, {})
