"""N-way engine-conformance harness.

The reproduction ships several simulator engines (``repro.gpu.engine.ENGINES``)
that must all be *bit-identical* to the ``legacy`` oracle — every counter,
the cycle count, the final warp tuple, the completion flag and the
controller telemetry, on any kernel under any scheme.  This module is the
shared verification layer that proves it:

* :data:`ORACLE` / :data:`CANDIDATE_ENGINES` enumerate the registry, so a
  newly registered engine is covered by every conformance test with **zero
  new test code** — registering the name in ``ENGINES`` (plus its branch in
  ``GPU.build_sm``) is the entire integration surface;
* :func:`assert_conformance` runs the oracle once and every candidate
  engine against it, failing with the first drifting counter *named* (the
  differential debugging entry point);
* :func:`drive_windowed` replays an adversarial controller script — random
  interleavings of ``set_warp_tuple`` / ``run_cycles`` / ``snapshot`` (the
  access pattern of the PCAL/Poise sampling loops) — and returns the
  per-window counter trail for cross-engine comparison;
* :func:`run_graph_snapshot` / :func:`assert_graph_conformance` extend the
  same contract to multi-SM chips running DAG workloads — the legacy N-SM
  chip is the oracle, and every candidate must reproduce its schedule,
  per-node counters and aggregate counters exactly;
* the Hypothesis strategies (:data:`kernel_specs`, :data:`small_archs`,
  :data:`multi_sm_archs`, :data:`small_graphs`) and the deterministic
  controller/model builders are shared by the differential suite and any
  future engine's targeted tests.

To run the harness against a new engine: add its name to ``ENGINES``, map
it in ``GPU.build_sm``, then ``PYTHONPATH=src python -m pytest
tests/test_fastcore_differential.py tests/test_golden_counters.py`` — every
test in those files parameterizes over the registry.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Tuple

from hypothesis import strategies as st

from repro.core.inference import PoiseParameters
from repro.core.poise import PoiseController
from repro.core.training import TrainedModel
from repro.gpu.config import CacheConfig, GPUConfig, MemoryConfig, SMConfig
from repro.gpu.engine import ENGINE_LEGACY, ENGINES
from repro.gpu.gpu import GPU
from repro.runtime import serialization
from repro.schedulers import (
    GTOController,
    PCALController,
    StaticBestController,
    SWLController,
)
from repro.schedulers.pcal import PCALParameters
from repro.workloads.graph import MIX_SHAPES, KernelGraph, shaped_graph
from repro.workloads.spec import KernelSpec

#: The specification: readable, heavily unit-tested, never optimised.
ORACLE = ENGINE_LEGACY

#: Every registered engine that must reproduce the oracle bit for bit.
CANDIDATE_ENGINES: Tuple[str, ...] = tuple(
    engine for engine in ENGINES if engine != ORACLE
)

SCHEMES = ("gto", "swl", "pcal", "poise", "static_best")


def fixed_model() -> TrainedModel:
    """Fixed-weight Poise model, as in the golden-counter suite."""
    return TrainedModel(
        alpha_weights=[0.02, -0.03, 0.05, 0.01, -0.02, 0.04, 0.60, 0.30],
        beta_weights=[0.01, -0.02, 0.03, 0.02, -0.01, 0.02, 0.30, 0.15],
        max_warps=24,
        dispersion_n=0.1,
        dispersion_p=0.1,
        num_training_kernels=0,
    )


def make_controller(scheme: str, seed: int):
    """A deterministic controller for ``scheme`` that needs no profile."""
    if scheme == "gto":
        return GTOController()
    if scheme == "swl":
        return SWLController(limit=1 + seed % 8)
    if scheme == "pcal":
        return PCALController(
            swl_limit=1 + seed % 8,
            params=PCALParameters(warmup_cycles=300, sample_cycles=700, max_hill_steps=3),
        )
    if scheme == "static_best":
        return StaticBestController(best_tuple=(1 + seed % 12, 1 + seed % 4))
    if scheme == "poise":
        return PoiseController(
            fixed_model(),
            PoiseParameters(
                t_period=6_000, t_warmup=400, t_feature=900, t_search=500,
                threshold_cycles=800,
            ),
        )
    raise ValueError(scheme)


def run_snapshot(engine: str, config: GPUConfig, programs, controller=None,
                 cache_policy=None, max_cycles: int = 20_000) -> dict:
    """One kernel execution on one engine, reduced to comparable plain data."""
    result = GPU(config).run_kernel(
        [list(program) for program in programs],
        controller=controller,
        cache_policy=cache_policy,
        max_cycles=max_cycles,
        engine=engine,
    )
    return {
        "counters": serialization.counters_to_dict(result.counters),
        "cycles": result.cycles,
        "warp_tuple": result.warp_tuple,
        "completed": result.completed,
        "telemetry": serialization.encode_value(result.telemetry),
    }


def assert_conformance(
    config: GPUConfig,
    programs,
    controller_factory=None,
    cache_policy_factory=None,
    max_cycles: int = 20_000,
    engines: Optional[Tuple[str, ...]] = None,
) -> None:
    """Run the oracle once, then every candidate engine, asserting that each
    reproduces the oracle exactly — first drifting counter named."""
    oracle = run_snapshot(
        ORACLE, config, programs,
        controller=controller_factory() if controller_factory else None,
        cache_policy=cache_policy_factory() if cache_policy_factory else None,
        max_cycles=max_cycles,
    )
    for engine in engines if engines is not None else CANDIDATE_ENGINES:
        candidate = run_snapshot(
            engine, config, programs,
            controller=controller_factory() if controller_factory else None,
            cache_policy=cache_policy_factory() if cache_policy_factory else None,
            max_cycles=max_cycles,
        )
        for counter, value in oracle["counters"].items():
            assert candidate["counters"][counter] == value, (
                f"counter {counter!r} drifted: {ORACLE}={value} "
                f"{engine}={candidate['counters'][counter]}"
            )
        assert candidate == oracle, f"engine {engine!r} drifted from {ORACLE}"


def run_graph_snapshot(
    engine: str, config: GPUConfig, graph: KernelGraph,
    max_cycles: Optional[int] = None,
) -> dict:
    """One DAG execution on one engine, reduced to comparable plain data.

    The multi-SM analogue of :func:`run_snapshot`: the whole graph runs on
    ``config.num_sms`` SMs sharing one memory subsystem, and everything that
    could drift — per-node counters, the schedule (placements and cycle
    spans), the makespan and the aggregated chip counters — is flattened
    into one dict for cross-engine comparison.
    """
    result = GPU(config).run_graph(graph, max_cycles=max_cycles, engine=engine)
    return {
        "nodes": {
            name: serialization.run_result_to_dict(node)
            for name, node in sorted(result.node_results.items())
        },
        "schedule": [entry.as_dict() for entry in result.schedule],
        "makespan": result.makespan,
        "aggregate": serialization.counters_to_dict(result.aggregate),
        "completed": result.completed,
        "num_sms": result.num_sms,
    }


def assert_graph_conformance(
    config: GPUConfig,
    graph: KernelGraph,
    max_cycles: Optional[int] = None,
    engines: Optional[Tuple[str, ...]] = None,
) -> None:
    """Run the DAG on the legacy N-SM oracle, then on every candidate
    engine, asserting bit-identical schedules and counters."""
    oracle = run_graph_snapshot(ORACLE, config, graph, max_cycles=max_cycles)
    for engine in engines if engines is not None else CANDIDATE_ENGINES:
        candidate = run_graph_snapshot(engine, config, graph, max_cycles=max_cycles)
        assert candidate["schedule"] == oracle["schedule"], (
            f"engine {engine!r} scheduled the graph differently from {ORACLE}: "
            f"{candidate['schedule']} != {oracle['schedule']}"
        )
        for name, node in oracle["nodes"].items():
            for counter, value in node["counters"].items():
                assert candidate["nodes"][name]["counters"][counter] == value, (
                    f"node {name!r} counter {counter!r} drifted: {ORACLE}={value} "
                    f"{engine}={candidate['nodes'][name]['counters'][counter]}"
                )
        assert candidate == oracle, f"engine {engine!r} drifted from {ORACLE} on the graph"


def drive_windowed(
    engine: str, config: GPUConfig, programs,
    script: List[Tuple[int, int, int]], tail_cycles: int = 50_000,
) -> list:
    """Replay a ``(n, p, window)`` controller script on ``engine`` and return
    the per-window counter-delta trail plus the final state."""
    sm = GPU(config).build_sm([list(p) for p in programs], engine=engine)
    trail = []
    for n, p, window in script:
        sm.set_warp_tuple(n, p)
        before = sm.snapshot()
        consumed = sm.run_cycles(window)
        trail.append(
            (consumed, serialization.counters_to_dict(sm.counters - before))
        )
    sm.run_to_completion(tail_cycles)
    trail.append((sm.cycle, sm.done, serialization.counters_to_dict(sm.counters)))
    return trail


# ---------------------------------------------------------------------------
# Shared Hypothesis strategies
# ---------------------------------------------------------------------------

kernel_specs = st.builds(
    KernelSpec,
    name=st.just("diff_kernel"),
    num_warps=st.integers(1, 10),
    instructions_per_warp=st.integers(20, 350),
    instructions_per_load=st.integers(1, 8),
    dep_distance=st.integers(0, 6),
    intra_warp_fraction=st.sampled_from([0.0, 0.2, 0.5, 0.8]),
    inter_warp_fraction=st.sampled_from([0.0, 0.1, 0.2]),
    private_lines=st.integers(1, 64),
    shared_lines=st.integers(1, 96),
    seed=st.integers(0, 10_000),
)

#: Chip widths the multi-SM conformance sweeps cover — 1 proves the plain
#: single-SM path survives, 2 and 4 exercise the shared-memory interleave.
SM_COUNTS: Tuple[int, ...] = (1, 2, 4)

small_archs = st.builds(
    lambda l1_lines, assoc, mshr, indexing: GPUConfig(
        sm=SMConfig(max_warps=12),
        l1=CacheConfig(
            size_bytes=l1_lines * assoc * 128,
            assoc=assoc,
            line_size=128,
            mshr_entries=mshr,
            indexing=indexing,
        ),
        memory=MemoryConfig(
            l2=CacheConfig(size_bytes=64 * 128, assoc=4, line_size=128, mshr_entries=8),
            l2_latency=20,
            l2_service_interval=2.0,
            dram_latency=60,
            dram_service_interval=8.0,
        ),
        max_cycles=30_000,
    ),
    l1_lines=st.integers(2, 8),  # sets per way
    assoc=st.sampled_from([1, 2, 4]),
    mshr=st.integers(1, 6),
    indexing=st.sampled_from(["hash", "linear"]),
)

#: ``small_archs`` widened into chips: num_sms ∈ {1, 2, 4} SMs sharing one
#: L2/DRAM, with a small quantum so the deterministic time-multiplexing
#: grid is crossed many times per run.
multi_sm_archs = st.builds(
    lambda config, num_sms, quantum: replace(
        config, num_sms=num_sms, sm_quantum=quantum
    ),
    config=small_archs,
    num_sms=st.sampled_from(SM_COUNTS),
    quantum=st.sampled_from([50, 100, 250]),
)

#: Small dependency graphs over distinct kernel variants: every shape the
#: mix library knows (chain / fanout / diamond / parallel), 2–4 nodes.
small_graphs = st.builds(
    lambda specs, shape: shaped_graph(
        tuple(
            replace(spec, name=f"g{index}", seed=spec.seed + index)
            for index, spec in enumerate(specs)
        ),
        shape,
        name=f"conformance-{shape}",
    ),
    specs=st.lists(kernel_specs, min_size=2, max_size=4),
    shape=st.sampled_from(MIX_SHAPES),
)
