"""Tests for the GPU facade and RunResult."""

import pytest

from repro.gpu.gpu import GPU
from repro.schedulers.base import FixedTupleController
from tests.conftest import make_looping_program, make_streaming_program


class TestRunKernel:
    def test_default_run_uses_maximum_warps(self, small_gpu_config):
        gpu = GPU(small_gpu_config)
        result = gpu.run_kernel([make_streaming_program(30)] * 2)
        assert result.warp_tuple == (small_gpu_config.max_warps, small_gpu_config.max_warps)
        assert result.completed
        assert result.cycles == result.counters.cycles

    def test_static_warp_tuple_is_respected(self, small_gpu_config):
        gpu = GPU(small_gpu_config)
        result = gpu.run_kernel([make_streaming_program(30)] * 3, warp_tuple=(2, 1))
        assert result.warp_tuple == (2, 1)

    def test_controller_drives_the_run(self, small_gpu_config):
        gpu = GPU(small_gpu_config)
        controller = FixedTupleController(3, 2)
        result = gpu.run_kernel([make_streaming_program(30)] * 4, controller=controller)
        assert result.warp_tuple == (3, 2)
        assert result.telemetry["warp_tuple"] == (3, 2)

    def test_max_cycles_truncates_execution(self, small_gpu_config):
        gpu = GPU(small_gpu_config)
        result = gpu.run_kernel([make_streaming_program(10_000, dep=2)], max_cycles=500)
        assert not result.completed
        assert result.cycles <= 501

    def test_speedup_over_baseline(self, small_gpu_config):
        gpu = GPU(small_gpu_config)
        slow = gpu.run_kernel([make_streaming_program(200, dep=1)])
        fast = gpu.run_kernel([make_looping_program(200, footprint=4, dep=1)])
        assert fast.speedup_over(slow) > 1.0
        assert slow.speedup_over(slow) == pytest.approx(1.0)

    def test_energy_report_attached(self, small_gpu_config):
        gpu = GPU(small_gpu_config)
        result = gpu.run_kernel([make_streaming_program(50)])
        assert result.energy.total_pj > 0
        assert result.energy.dram_pj > 0

    def test_derived_metric_properties(self, small_gpu_config):
        gpu = GPU(small_gpu_config)
        result = gpu.run_kernel([make_looping_program(100, footprint=4, dep=1)])
        assert 0.0 <= result.l1_hit_rate <= 1.0
        assert result.aml >= 0.0
        assert result.ipc > 0.0
