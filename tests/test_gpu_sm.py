"""Unit/integration tests for the SM cycle loop."""

import pytest

from repro.gpu.isa import alu, load
from repro.gpu.sm import StreamingMultiprocessor
from tests.conftest import make_alu_program, make_looping_program, make_streaming_program


def build_sm(config, programs):
    return StreamingMultiprocessor(config, programs)


class TestExecutionBasics:
    def test_pure_alu_kernel_runs_at_ipc_one(self, small_gpu_config):
        sm = build_sm(small_gpu_config, [make_alu_program(100)])
        sm.run_to_completion()
        assert sm.done
        assert sm.counters.instructions == 100
        assert sm.counters.ipc == pytest.approx(1.0, abs=0.05)

    def test_rejects_more_warps_than_scheduler_supports(self, small_gpu_config):
        with pytest.raises(ValueError):
            build_sm(small_gpu_config, [make_alu_program(4)] * 10)

    def test_run_cycles_respects_budget(self, small_gpu_config):
        sm = build_sm(small_gpu_config, [make_streaming_program(1000)])
        consumed = sm.run_cycles(50)
        assert consumed <= 50 + 1
        assert not sm.done

    def test_kernel_completes_and_all_loads_return(self, small_gpu_config):
        sm = build_sm(small_gpu_config, [make_streaming_program(20, dep=2)] * 2)
        sm.run_to_completion()
        assert sm.done
        assert sm.counters.loads == 40
        assert sm.counters.l1_misses == sm.counters.miss_requests
        for warp in sm.warps:
            assert not warp.outstanding

    def test_snapshot_delta_isolates_a_window(self, small_gpu_config):
        sm = build_sm(small_gpu_config, [make_streaming_program(500, dep=4)] * 2)
        sm.run_cycles(200)
        before = sm.snapshot()
        sm.run_cycles(300)
        window = sm.counters - before
        assert window.cycles <= 300 + 1
        assert window.instructions <= sm.counters.instructions


class TestMemoryBehaviour:
    def test_streaming_kernel_has_zero_hit_rate(self, small_gpu_config):
        sm = build_sm(small_gpu_config, [make_streaming_program(100, dep=2)])
        sm.run_to_completion()
        assert sm.counters.l1_hits == 0
        assert sm.counters.l1_misses == 100

    def test_looping_kernel_hits_after_warmup(self, small_gpu_config):
        sm = build_sm(small_gpu_config, [make_looping_program(200, footprint=4, dep=2)])
        sm.run_to_completion()
        assert sm.counters.l1_hit_rate > 0.9

    def test_stall_cycles_accumulate_for_memory_bound_kernels(self, small_gpu_config):
        sm = build_sm(small_gpu_config, [make_streaming_program(50, dep=0)])
        sm.run_to_completion()
        assert sm.counters.stall_cycles > sm.counters.busy_cycles

    def test_aml_reflects_memory_latency(self, small_gpu_config):
        sm = build_sm(small_gpu_config, [make_streaming_program(50, dep=0)])
        sm.run_to_completion()
        assert sm.counters.aml >= small_gpu_config.memory.l2_latency

    def test_mshr_merging_for_bypassed_misses_to_same_line(self, small_gpu_config):
        # Two non-polluting warps miss on the same line: the second miss merges
        # into the first one's MSHR entry, so only one request leaves the SM
        # for that line.
        programs = [
            [load(7, dep_distance=0)],     # polluting warp, its own line
            [load(42, dep_distance=0)],    # non-polluting (bypassed) miss
            [load(42, dep_distance=0)],    # same line: must merge
        ]
        sm = build_sm(small_gpu_config, programs)
        sm.set_warp_tuple(3, 1)
        sm.run_to_completion()
        assert sm.counters.l1_misses == 3
        assert sm.mshr.merges == 1
        assert sm.memory.requests == 2

    def test_second_access_to_reserved_line_hits(self, small_gpu_config):
        # An allocating miss reserves the line immediately, so a later access
        # by another warp hits in the L1 instead of issuing a second request.
        program = [load(42, dep_distance=0)]
        sm = build_sm(small_gpu_config, [program, list(program)])
        sm.run_to_completion()
        assert sm.memory.requests == 1
        assert sm.counters.l1_hits == 1

    def test_intra_and_inter_warp_hits_classified(self, small_gpu_config):
        programs = [
            # Warp 0 re-touches its own line 7 (intra-warp hit).
            [load(7, dep_distance=1), alu(), load(7, dep_distance=1), alu()],
            # Warp 1 brings in line 8; warp 2 then touches it (inter-warp hit).
            [load(8, dep_distance=1), alu(), alu(), alu()],
            [alu(), alu(), load(8, dep_distance=1), alu()],
        ]
        sm = build_sm(small_gpu_config, programs)
        sm.run_to_completion()
        assert sm.counters.intra_warp_hits >= 1
        assert sm.counters.inter_warp_hits >= 1
        assert sm.counters.l1_hits == sm.counters.intra_warp_hits + sm.counters.inter_warp_hits


class TestMergedMissLatencyAccounting:
    def test_each_merged_waiter_charged_its_own_latency(self, small_gpu_config):
        # Merges only happen for *bypassed* misses (an allocating miss
        # reserves the line, so later accesses hit).  Warp 0 holds the
        # pollute privilege with its own line; warps 1 and 2 are
        # non-polluting.  Warp 1's bypassed miss to line 42 is the primary
        # (issued at cycle 1); warp 2 runs two ALU ops first and merges into
        # the in-flight entry at cycle 4.  Both waiters complete at the same
        # cycle C, so the recorded latencies must be C-1 and C-4 — NOT the
        # primary's round trip twice.
        programs = [
            [load(9, dep_distance=0)],                  # polluting holder
            [load(42, dep_distance=0)],                 # primary bypassed miss
            [alu(), alu(), load(42, dep_distance=0)],   # merged bypassed miss
        ]
        sm = build_sm(small_gpu_config, programs)
        sm.set_warp_tuple(3, 1)
        sm.run_to_completion()
        assert sm.done
        assert sm.memory.requests == 2  # line 9 + one shared request for 42
        assert sm.mshr.merges == 1
        assert sm.counters.miss_requests == 3
        # The kernel ends one cycle after the last response is delivered, so
        # line 42 completes at C = sm.cycle - 1.  Expected accounting:
        #   line 9 waiter:        C9 - 0            (= its memory latency)
        #   primary 42 waiter:    C  - 1            (= its memory latency)
        #   merged 42 waiter:     C  - 4
        # and memory.total_latency = (C9 - 0) + (C - 1), hence:
        completion = sm.cycle - 1
        expected = sm.memory.total_latency + (completion - 4)
        assert sm.counters.miss_latency_total == expected

    def test_merged_waiters_all_released_with_entry(self, small_gpu_config):
        # Several non-polluting warps pile onto the same line; when the
        # response returns, every waiter must complete and the MSHR entry
        # must free exactly once.
        programs = [[load(9, dep_distance=0)]] + [
            [load(42, dep_distance=0)] for _ in range(3)
        ]
        sm = build_sm(small_gpu_config, programs)
        sm.set_warp_tuple(4, 1)
        sm.run_to_completion()
        assert sm.done
        assert sm.memory.requests == 2
        assert sm.mshr.merges == 2
        assert sm.counters.miss_requests == 4
        assert sm.mshr.occupancy == 0
        for warp in sm.warps:
            assert not warp.outstanding


class TestWarpTupleEffects:
    def test_non_polluting_warps_never_allocate(self, small_gpu_config):
        # Warp 1 is non-polluting for its whole (shorter) lifetime: its lines
        # must not become resident.  Warp 0's program is much longer-running
        # (streaming misses) so the pollute privilege never passes on while
        # warp 1 is still issuing loads.
        programs = [
            make_streaming_program(400, base=0, dep=1),
            make_looping_program(40, footprint=2, base=10_000, dep=1),
        ]
        sm = build_sm(small_gpu_config, programs)
        sm.set_warp_tuple(2, 1)
        sm.run_to_completion()
        assert sm.counters.l1_bypasses > 0
        assert not sm.l1.probe(10_000)
        assert not sm.l1.probe(10_001)

    def test_non_vital_warps_do_not_issue(self, small_gpu_config):
        programs = [make_alu_program(50), make_alu_program(50), make_alu_program(50)]
        sm = build_sm(small_gpu_config, programs)
        sm.set_warp_tuple(1, 1)
        sm.run_cycles(30)
        assert sm.warps[0].issued_instructions > 0
        assert sm.warps[1].issued_instructions == 0
        assert sm.warps[2].issued_instructions == 0

    def test_vital_privilege_passes_on_when_oldest_finishes(self, small_gpu_config):
        programs = [make_alu_program(10), make_alu_program(10)]
        sm = build_sm(small_gpu_config, programs)
        sm.set_warp_tuple(1, 1)
        sm.run_to_completion()
        assert sm.done
        assert sm.warps[1].issued_instructions == 10

    def test_throttling_changes_reported_tuple(self, small_gpu_config):
        sm = build_sm(small_gpu_config, [make_alu_program(10)] * 3)
        sm.set_warp_tuple(2, 1)
        assert sm.warp_tuple == (2, 1)

    def test_thrashing_relieved_by_polluting_restriction(self, baseline_gpu_config):
        # Many warps with disjoint footprints larger than the cache: with all
        # of them polluting the hit rate collapses; restricting pollution to
        # one warp recovers that warp's locality (the Fig. 1 effect).
        def programs():
            return [
                make_looping_program(1500, footprint=40, base=warp * 100_000, dep=4)
                for warp in range(12)
            ]

        thrash = StreamingMultiprocessor(baseline_gpu_config, programs())
        thrash.set_warp_tuple(12, 12)
        thrash.run_cycles(20_000)

        limited = StreamingMultiprocessor(baseline_gpu_config, programs())
        limited.set_warp_tuple(12, 1)
        limited.run_cycles(20_000)

        assert limited.counters.polluting_hit_rate > thrash.counters.l1_hit_rate + 0.2
