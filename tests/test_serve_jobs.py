"""Tests for the serve job vocabulary: validation, canonical identity,
probe execution and the worker-side cache envelope."""

from __future__ import annotations

import pytest

from repro.runtime.cache import content_key
from repro.serve import jobs
from repro.serve.jobs import JobError, canonicalize, execute


# ---------------------------------------------------------------------------
# validation
# ---------------------------------------------------------------------------

def test_non_object_request_rejected():
    with pytest.raises(JobError, match="JSON object"):
        canonicalize(["not", "a", "dict"])


def test_unknown_kind_rejected():
    with pytest.raises(JobError, match="unknown job kind"):
        canonicalize({"kind": "mine-bitcoin"})


def test_unknown_fields_rejected():
    with pytest.raises(JobError, match="unknown request field"):
        canonicalize({"kind": "probe", "sleep": 0, "bogus": 1})


def test_bad_priority_rejected():
    with pytest.raises(JobError, match="priority"):
        canonicalize({"kind": "probe", "priority": "high"})


def test_negative_sleep_rejected():
    with pytest.raises(JobError, match="sleep"):
        canonicalize({"kind": "probe", "sleep": -1})


def test_unknown_grid_rejected_at_submission_time():
    with pytest.raises(JobError, match="grid"):
        canonicalize({"kind": "sweep", "grid": "no-such-grid"})


def test_malformed_override_rejected_at_submission_time():
    with pytest.raises(JobError, match="override"):
        canonicalize({"kind": "sweep", "grid": "smoke", "overrides": ["oops"]})


def test_malformed_shard_rejected():
    with pytest.raises(JobError, match="shard"):
        canonicalize({"kind": "sweep", "grid": "smoke", "shard": "3of4"})


# ---------------------------------------------------------------------------
# canonical identity
# ---------------------------------------------------------------------------

def test_priority_is_not_part_of_the_identity():
    low, low_priority, _ = canonicalize({"kind": "probe", "echo": "x", "priority": 0})
    high, high_priority, _ = canonicalize({"kind": "probe", "echo": "x", "priority": 9})
    assert content_key(low) == content_key(high)
    assert (low_priority, high_priority) == (0, 9)


def test_probe_defaults_are_made_explicit():
    canonical, _, cost = canonicalize({"kind": "probe"})
    assert canonical == {"kind": "probe", "sleep": 0.0, "echo": None, "fail": False}
    assert cost == 1


def test_nonce_distinguishes_otherwise_identical_probes():
    plain, _, _ = canonicalize({"kind": "probe", "echo": "x"})
    nonced, _, _ = canonicalize({"kind": "probe", "echo": "x", "nonce": "1"})
    assert content_key(plain) != content_key(nonced)


def test_sweep_cost_is_the_point_count():
    full, _, full_cost = canonicalize({"kind": "sweep", "grid": "smoke"})
    sharded, _, shard_cost = canonicalize(
        {"kind": "sweep", "grid": "smoke", "shard": "1/2"}
    )
    assert full_cost == 16  # the smoke grid is 2x2x2x2
    assert shard_cost == 8
    assert full["aggregate"] is True  # default: unsharded runs aggregate
    assert sharded["aggregate"] is False  # a shard alone must not aggregate
    assert sharded["shard"] == "1/2"


# ---------------------------------------------------------------------------
# execution
# ---------------------------------------------------------------------------

def test_probe_executes_and_carries_cache_delta():
    canonical, _, _ = canonicalize({"kind": "probe", "echo": {"deep": [1, 2]}})
    result = execute(canonical)
    assert result["echo"] == {"deep": [1, 2]}
    assert set(result["cache"]) >= {"hits", "misses", "stores"}


def test_probe_failure_raises():
    canonical, _, _ = canonicalize({"kind": "probe", "fail": True})
    with pytest.raises(RuntimeError, match="probe requested failure"):
        execute(canonical)


def test_sweep_job_runs_resumable_and_aggregates(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    canonical, _, cost = canonicalize(
        {
            "kind": "sweep",
            "grid": "smoke",
            "preset": "fast",
            "overrides": [
                "engine=fast", "scheme=gto", "benchmark=gather", "num_sms=none",
            ],
        }
    )
    assert cost == 1
    result = execute(canonical)
    assert result["computed"] == 1
    assert result["num_points"] == 1
    assert "sweep_artifact" in result
    # Idempotence: a retry (worker crash, daemon restart) recomputes nothing.
    again = execute(canonical)
    assert again["computed"] == 0
    assert again["skipped"] == 1
