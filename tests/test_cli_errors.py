"""CLI failure paths must exit non-zero with a clear message — no traceback.

Pinned here for ``repro sweep``: unknown grids, unknown axis values,
malformed shard specs, and corrupt per-point artifacts under ``--resume``.
Every case asserts on the exit code, on the message fragment a user needs
to act, and on the absence of a Python traceback.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli.main import main as repro_main


@pytest.fixture()
def sweep_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    return tmp_path


def run_cli(capsys, *argv):
    code = repro_main(list(argv))
    captured = capsys.readouterr()
    assert "Traceback" not in captured.err
    assert "Traceback" not in captured.out
    return code, captured


def test_unknown_grid_name(sweep_cache, capsys):
    code, captured = run_cli(capsys, "sweep", "run", "bogus-grid", "--fast")
    assert code == 2
    assert "unknown sweep grid 'bogus-grid'" in captured.err
    assert "smoke" in captured.err  # suggests the known grids


def test_unknown_axis_value(sweep_cache, capsys):
    code, captured = run_cli(
        capsys, "sweep", "run", "smoke", "--fast", "--set", "scheme=gto,bogus"
    )
    assert code == 2
    assert "axis 'scheme'" in captured.err and "'bogus'" in captured.err


def test_unknown_axis_name(sweep_cache, capsys):
    code, captured = run_cli(
        capsys, "sweep", "run", "smoke", "--fast", "--set", "turbo=1"
    )
    assert code == 2
    assert "unknown axis 'turbo'" in captured.err


def test_unknown_benchmark_value(sweep_cache, capsys):
    code, captured = run_cli(
        capsys, "sweep", "plan", "smoke", "--fast", "--set", "benchmark=not-a-benchmark"
    )
    assert code == 2
    assert "axis 'benchmark'" in captured.err


def test_malformed_set_flag(sweep_cache, capsys):
    code, captured = run_cli(capsys, "sweep", "run", "smoke", "--fast", "--set", "scheme")
    assert code == 2
    assert "malformed --set" in captured.err


@pytest.mark.parametrize("spec", ["0/4", "5/4", "x/4", "1/2/3", "1/0"])
def test_malformed_shard_spec(sweep_cache, capsys, spec):
    code, captured = run_cli(
        capsys, "sweep", "run", "smoke", "--fast", "--shard", spec
    )
    assert code == 2
    assert "shard" in captured.err
    assert spec.split("/")[0] in captured.err or "malformed" in captured.err


def _first_point_artifact(cache: Path) -> Path:
    points = sorted((cache / "artifacts" / "sweeps" / "smoke" / "fast" / "points").glob("*.json"))
    assert points, "expected the sweep run to have written point artifacts"
    return points[0]


def test_corrupt_point_artifact_on_resume_is_quarantined(sweep_cache, capsys):
    # A real (tiny) run first, so there is an artifact to corrupt.
    code, _ = run_cli(capsys, "sweep", "run", "smoke", "--fast", "--shard", "1/2")
    assert code == 0
    victim = _first_point_artifact(sweep_cache)
    pristine = victim.read_bytes()
    victim.write_text("{truncated")
    # A corrupt artifact no longer aborts the resumed run: it is moved to
    # quarantine/, named in the summary, and the point is recomputed.
    code, captured = run_cli(
        capsys, "sweep", "run", "smoke", "--fast", "--shard", "1/2", "--resume"
    )
    assert code == 0
    assert "quarantined" in captured.out
    assert "not valid JSON" in captured.out
    assert victim.name in captured.out
    assert victim.read_bytes() == pristine
    quarantine = victim.parent.parent / "quarantine"
    assert (quarantine / victim.name).read_text() == "{truncated"

    # Same recovery for a parseable artifact describing a different scenario.
    payload = {"format_version": 1, "kind": "sweep-point", "grid": "smoke",
               "point": {"scheme": "other"}, "metrics": {}}
    victim.write_text(json.dumps(payload))
    code, captured = run_cli(
        capsys, "sweep", "run", "smoke", "--fast", "--shard", "1/2", "--resume"
    )
    assert code == 0
    assert "different scenario" in captured.out
    assert victim.read_bytes() == pristine

    # Aggregation, by contrast, still refuses corrupt inputs outright.
    victim.write_text("{truncated")
    code, captured = run_cli(capsys, "sweep", "report", "smoke", "--fast")
    assert code == 1
    assert "not valid JSON" in captured.err


def test_report_with_missing_points(sweep_cache, capsys):
    code, _ = run_cli(capsys, "sweep", "run", "smoke", "--fast", "--shard", "1/2")
    assert code == 0
    code, captured = run_cli(capsys, "sweep", "report", "smoke", "--fast")
    assert code == 2
    assert "missing 8 of 16 point artifacts" in captured.err
    # The remediation hint is runnable as-is: same grid, same label.
    assert "repro sweep run smoke --fast" in captured.err


def test_set_overrides_get_their_own_artifact_tree(sweep_cache, capsys):
    """An overridden grid must never mix points into (or clobber the
    sweep.json of) the canonical named grid's artifact tree."""
    code, captured = run_cli(
        capsys, "sweep", "run", "smoke", "--fast", "--set", "benchmark=mvt"
    )
    assert code == 0
    sweeps = sweep_cache / "artifacts" / "sweeps"
    derived = [path.name for path in sweeps.iterdir() if path.name.startswith("smoke@")]
    assert len(derived) == 1 and "smoke@" in captured.out
    assert not (sweeps / "smoke").exists()
    # The derived name is deterministic: the same overrides reuse the tree.
    code, _ = run_cli(
        capsys, "sweep", "run", "smoke", "--fast", "--set", "benchmark=mvt", "--resume"
    )
    assert code == 0
    assert [path.name for path in sweeps.iterdir()] == derived
    code, captured = run_cli(
        capsys, "sweep", "report", "smoke", "--fast", "--set", "benchmark=mvt"
    )
    assert code == 0
    assert (sweeps / derived[0] / "fast" / "sweep.json").exists()


def test_successful_shard_then_report_round_trip(sweep_cache, capsys):
    """The happy path the failure cases bracket: 2 shards + report succeed."""
    assert run_cli(capsys, "sweep", "run", "smoke", "--fast", "--shard", "1/2")[0] == 0
    assert run_cli(capsys, "sweep", "run", "smoke", "--fast", "--shard", "2/2")[0] == 0
    code, captured = run_cli(capsys, "sweep", "report", "smoke", "--fast")
    assert code == 0
    assert "16 points aggregated" in captured.out
    sweep_json = sweep_cache / "artifacts" / "sweeps" / "smoke" / "fast" / "sweep.json"
    assert sweep_json.exists()


def test_unknown_experiment_id_still_clean(sweep_cache, capsys):
    """The pre-existing contract the sweep CLI matches: unknown ids exit 2."""
    code, captured = run_cli(capsys, "run", "fig99", "--fast")
    assert code == 2
    assert "unknown experiment" in captured.err


def test_unknown_ambient_engine_fails_fast(sweep_cache, capsys, monkeypatch):
    """A bad REPRO_ENGINE must exit 2 up front with the valid names — not
    surface as a ValueError traceback deep inside build_sm mid-run."""
    monkeypatch.setenv("REPRO_ENGINE", "turbo")
    code, captured = run_cli(capsys, "run", "fig07", "--fast")
    assert code == 2
    assert "REPRO_ENGINE" in captured.err
    assert "unknown simulator engine 'turbo'" in captured.err
    for engine in ("fast", "legacy", "event"):
        assert engine in captured.err
