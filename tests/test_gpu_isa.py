"""Unit tests for repro.gpu.isa."""

import pytest

from repro.gpu.isa import Instruction, Opcode, alu, load


class TestInstruction:
    def test_alu_constructor(self):
        instruction = alu(pc=7)
        assert instruction.opcode is Opcode.ALU
        assert instruction.line_addr is None
        assert instruction.pc == 7
        assert not instruction.is_load

    def test_load_constructor(self):
        instruction = load(123, dep_distance=3, pc=9)
        assert instruction.opcode is Opcode.LOAD
        assert instruction.line_addr == 123
        assert instruction.dep_distance == 3
        assert instruction.is_load

    def test_load_requires_address(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.LOAD)

    def test_alu_must_not_carry_address(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.ALU, line_addr=5)

    def test_negative_dep_distance_rejected(self):
        with pytest.raises(ValueError):
            load(1, dep_distance=-1)

    def test_instructions_are_immutable(self):
        instruction = load(1)
        with pytest.raises(Exception):
            instruction.line_addr = 2

    def test_instructions_are_hashable_and_comparable(self):
        assert load(1, dep_distance=2, pc=3) == load(1, dep_distance=2, pc=3)
        assert len({load(1), load(1), load(2)}) == 2
