"""Engine parity at the API seam: caches and serialization.

The fast and legacy engines are bit-identical, so every artefact above the
simulator — serialized ``RunResult``s, disk-cache entries, the in-memory
run/profile caches — must be *engine-agnostic*: cache keys must not encode
the engine, and an entry produced under one engine must be a valid hit for
the other.  These tests pin that contract; breaking it would silently double
every cache and fork the experiment artefacts by environment variable.
"""

from __future__ import annotations

import json
from dataclasses import replace
from pathlib import Path

import pytest

from repro.experiments import common
from repro.experiments.common import (
    ExperimentConfig,
    _profile_key_payload,
    _run_cache_key,
    _run_key_payload,
    clear_caches,
    get_profile,
    run_scheme_on_kernel,
)
from repro.gpu.engine import ENGINE_ENV
from repro.runtime import serialization
from repro.workloads.spec import KernelSpec

PARITY_KERNEL = KernelSpec(
    name="parity_kernel",
    num_warps=6,
    instructions_per_warp=400,
    instructions_per_load=3,
    dep_distance=3,
    intra_warp_fraction=0.6,
    inter_warp_fraction=0.2,
    private_lines=32,
    shared_lines=64,
    seed=13,
)


def parity_config(tmp_path: Path) -> ExperimentConfig:
    return replace(
        ExperimentConfig.fast(),
        run_max_cycles=20_000,
        cache_dir=tmp_path,
        label="parity",
    )


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_caches()
    yield
    clear_caches()


class _ExplodingGPU:
    """Injected in place of the real GPU to prove no simulation happens."""

    def __init__(self, *args, **kwargs):
        raise AssertionError(
            "simulation ran — the cache entry written by the other engine "
            "was not hit"
        )


def test_cache_key_payloads_do_not_encode_engine(tmp_path, monkeypatch):
    """Run/profile content keys and the in-memory key are byte-identical
    regardless of REPRO_ENGINE (and contain no engine field at all)."""
    config = parity_config(tmp_path)
    payloads = {}
    for engine in ("fast", "legacy"):
        monkeypatch.setenv(ENGINE_ENV, engine)
        payloads[engine] = (
            json.dumps(_run_key_payload("gto", PARITY_KERNEL, config, None), sort_keys=True),
            json.dumps(_profile_key_payload(PARITY_KERNEL, config), sort_keys=True),
            repr(_run_cache_key("gto", PARITY_KERNEL, config, None)),
        )
    assert payloads["fast"] == payloads["legacy"]
    for blob in payloads["fast"]:
        assert "engine" not in blob.lower()


@pytest.mark.parametrize(
    "write_engine,read_engine", [("fast", "legacy"), ("legacy", "fast")]
)
def test_disk_cache_run_entries_hit_across_engines(
    tmp_path, monkeypatch, write_engine, read_engine
):
    """A RunResult cached to disk by one engine is served to the other
    without any simulation."""
    config = parity_config(tmp_path)
    monkeypatch.setenv("REPRO_DISK_CACHE", "1")
    monkeypatch.setenv(ENGINE_ENV, write_engine)
    written = run_scheme_on_kernel("gto", PARITY_KERNEL, config, use_cache=True)

    clear_caches()  # drop the in-memory layer; the disk layer persists
    monkeypatch.setenv(ENGINE_ENV, read_engine)
    monkeypatch.setattr(common, "GPU", _ExplodingGPU)
    served = run_scheme_on_kernel("gto", PARITY_KERNEL, config, use_cache=True)

    assert serialization.run_result_to_dict(served) == serialization.run_result_to_dict(
        written
    )


@pytest.mark.parametrize(
    "write_engine,read_engine", [("fast", "legacy"), ("legacy", "fast")]
)
def test_disk_cache_profiles_hit_across_engines(
    tmp_path, monkeypatch, write_engine, read_engine
):
    config = parity_config(tmp_path)
    monkeypatch.setenv("REPRO_DISK_CACHE", "1")
    monkeypatch.setenv(ENGINE_ENV, write_engine)
    written = get_profile(PARITY_KERNEL, config)

    clear_caches()
    monkeypatch.setenv(ENGINE_ENV, read_engine)
    import repro.profiling.profiler as profiler_module

    monkeypatch.setattr(profiler_module, "GPU", _ExplodingGPU)
    served = get_profile(PARITY_KERNEL, config)

    assert served.ipc == written.ipc
    assert served.baseline_ipc == written.baseline_ipc
    assert serialization.profile_to_dict(served) == serialization.profile_to_dict(written)


def test_run_result_serialization_identical_across_engines(tmp_path, monkeypatch):
    """The serialized form of a run — counters, energy, telemetry tuples —
    is byte-identical whichever engine produced it, and survives a
    round-trip comparing equal."""
    config = parity_config(tmp_path)
    monkeypatch.setenv("REPRO_DISK_CACHE", "0")
    dicts = {}
    for engine in ("fast", "legacy"):
        clear_caches()
        monkeypatch.setenv(ENGINE_ENV, engine)
        result = run_scheme_on_kernel("pcal", PARITY_KERNEL, config, use_cache=False)
        dicts[engine] = serialization.run_result_to_dict(result)
    assert dicts["fast"] == dicts["legacy"]
    round_tripped = serialization.run_result_from_dict(
        json.loads(json.dumps(dicts["fast"]))
    )
    assert serialization.run_result_to_dict(round_tripped) == dicts["fast"]


def test_in_memory_run_cache_shared_across_engine_switch(tmp_path, monkeypatch):
    """Switching REPRO_ENGINE mid-process must keep hitting the same
    in-memory cache slots (the key ignores the engine)."""
    config = parity_config(tmp_path)
    monkeypatch.setenv("REPRO_DISK_CACHE", "0")
    monkeypatch.setenv(ENGINE_ENV, "legacy")
    first = run_scheme_on_kernel("gto", PARITY_KERNEL, config, use_cache=True)

    monkeypatch.setenv(ENGINE_ENV, "fast")
    monkeypatch.setattr(common, "GPU", _ExplodingGPU)
    second = run_scheme_on_kernel("gto", PARITY_KERNEL, config, use_cache=True)
    assert second is first
