"""Property-based and unit tests for the scenario-grid subsystem.

The Hypothesis properties pin the contracts the sharded sweep story rests
on: expansion is deterministic and duplicate-free, and every ``K/N``
partition is disjoint, order-stable and collectively exhaustive.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scenarios.grid import (
    AXIS_ORDER,
    ScenarioError,
    ScenarioGrid,
    ScenarioPoint,
    parse_shard,
)

BENCHMARK_POOL = ("mvt", "bfs", "syr2k", "stencil", "gather")
SCHEME_POOL = ("gto", "swl", "ccws", "apcm", "poise")


def axis_subset(values, max_size=None):
    return st.lists(
        st.sampled_from(values),
        min_size=1,
        max_size=max_size or len(values),
        unique=True,
    )


_RAW_AXES = st.fixed_dictionaries(
    {"benchmark": axis_subset(BENCHMARK_POOL, max_size=3)},
    optional={
        "scheme": axis_subset(SCHEME_POOL, max_size=3),
        "engine": axis_subset((None, "fast", "legacy")),
        "l1_scale": axis_subset((1, 2, 4)),
        "l1_indexing": axis_subset((None, "hash", "linear")),
        "max_warps": axis_subset((24, 32, 48)),
        "poise_strides": axis_subset((None, (0, 0), (1, 1), (2, 4))),
        "feature_mask": axis_subset((None, (2,), (3, 6))),
    },
)


@st.composite
def valid_axes(draw):
    """Random axes, patched so Poise-only axes always have a consumer
    (grids where they do not are rejected at construction — tested below)."""
    axes = draw(_RAW_AXES)
    needs_poise = any(
        value is not None
        for axis in ("poise_strides", "feature_mask")
        for value in axes.get(axis, ())
    )
    schemes = axes.get("scheme", ("gto",))
    if needs_poise and not any(scheme.startswith("poise") for scheme in schemes):
        axes = dict(axes)
        axes["scheme"] = [s for s in schemes if s != "poise"] + ["poise"]
    return axes


AXES_STRATEGY = valid_axes()


@settings(max_examples=60, deadline=None)
@given(axes=AXES_STRATEGY)
def test_expansion_deterministic_and_duplicate_free(axes):
    grid = ScenarioGrid("prop", axes)
    first = grid.points()
    second = grid.points()
    rebuilt = ScenarioGrid("prop", axes).points()
    assert first == second == rebuilt
    assert len(first) == grid.size
    assert len(set(first)) == len(first)
    ids = [point.point_id for point in first]
    assert len(set(ids)) == len(ids)


@settings(max_examples=60, deadline=None)
@given(axes=AXES_STRATEGY, num_shards=st.integers(min_value=1, max_value=7))
def test_shards_partition_the_grid(axes, num_shards):
    grid = ScenarioGrid("prop", axes)
    points = grid.points()
    index_of = {point: position for position, point in enumerate(points)}
    shards = [grid.shard(k, num_shards) for k in range(1, num_shards + 1)]
    # Disjoint...
    seen = set()
    for shard in shards:
        assert not (set(shard) & seen)
        seen.update(shard)
    # ...collectively exhaustive...
    assert seen == set(points)
    # ...and order-stable: every shard is a subsequence of the expansion.
    for shard in shards:
        positions = [index_of[point] for point in shard]
        assert positions == sorted(positions)


@settings(max_examples=60, deadline=None)
@given(axes=AXES_STRATEGY)
def test_point_payload_json_round_trip(axes):
    for point in ScenarioGrid("prop", axes).points():
        payload = point.payload()
        assert json.loads(json.dumps(payload)) == payload
        assert set(payload) == set(AXIS_ORDER)


# ---------------------------------------------------------------------------
# validation
# ---------------------------------------------------------------------------

def test_unknown_axis_name_rejected():
    with pytest.raises(ScenarioError, match="unknown axis 'bogus'"):
        ScenarioGrid("bad", {"benchmark": ["mvt"], "bogus": [1]})


@pytest.mark.parametrize(
    "axes, fragment",
    [
        ({"benchmark": ["mvt"], "scheme": ["bogus"]}, "axis 'scheme'"),
        ({"benchmark": ["not-a-benchmark"]}, "axis 'benchmark'"),
        ({"benchmark": ["mvt"], "engine": ["turbo"]}, "axis 'engine'"),
        ({"benchmark": ["mvt"], "l1_scale": [0]}, "axis 'l1_scale'"),
        ({"benchmark": ["mvt"], "l1_scale": [True]}, "axis 'l1_scale'"),
        ({"benchmark": ["mvt"], "l1_scale": ["2"]}, "axis 'l1_scale'"),
        ({"benchmark": ["mvt"], "l1_indexing": ["xor"]}, "axis 'l1_indexing'"),
        ({"benchmark": ["mvt"], "max_warps": [0]}, "axis 'max_warps'"),
        ({"benchmark": ["mvt"], "poise_strides": [(1,)]}, "axis 'poise_strides'"),
        ({"benchmark": ["mvt"], "poise_strides": [(1, -1)]}, "axis 'poise_strides'"),
        ({"benchmark": ["mvt"], "feature_mask": [(9,)]}, "axis 'feature_mask'"),
        ({"benchmark": ["mvt"], "feature_mask": [(2, 2)]}, "axis 'feature_mask'"),
        ({"benchmark": ["mvt"], "feature_mask": [()]}, "axis 'feature_mask'"),
        ({"benchmark": ["mvt"], "feature_mask": ["x6"]}, "axis 'feature_mask'"),
        ({"benchmark": ["mvt"], "scheme": []}, "has no values"),
        ({"benchmark": ["mvt", "mvt"]}, "duplicate values"),
        ({"scheme": ["gto"]}, "'benchmark' axis is required"),
    ],
)
def test_invalid_axes_rejected(axes, fragment):
    with pytest.raises(ScenarioError, match=fragment):
        ScenarioGrid("bad", axes)


def test_feature_mask_canonicalised_sorted():
    grid = ScenarioGrid(
        "mask",
        {"benchmark": ["mvt"], "scheme": ["poise_nosearch"], "feature_mask": [(6, 3)]},
    )
    assert grid.axes["feature_mask"] == ((3, 6),)


def test_max_warps_must_hold_the_widest_kernel():
    with pytest.raises(ScenarioError, match="launches kernels of 24 warps"):
        ScenarioGrid("bad", {"benchmark": ["mvt"], "max_warps": [8, 24]})


@pytest.mark.parametrize("axis, values", [
    ("poise_strides", [(0, 0), (2, 4)]),
    ("feature_mask", [None, (6,)]),
])
def test_poise_only_axes_need_a_poise_scheme(axis, values):
    # No scheme axis at all defaults to gto — rejected.
    with pytest.raises(ScenarioError, match=f"axis '{axis}' varies"):
        ScenarioGrid("bad", {"benchmark": ["mvt"], axis: values})
    with pytest.raises(ScenarioError, match="no scheme on the scheme axis is Poise-based"):
        ScenarioGrid("bad", {"benchmark": ["mvt"], "scheme": ["gto", "ccws"], axis: values})
    # A Poise-based scheme anywhere on the axis makes the grid legitimate...
    mixed = ScenarioGrid(
        "ok", {"benchmark": ["mvt"], "scheme": ["gto", "poise"], axis: values}
    )
    assert mixed.size == 2 * len(values)
    # ...and an all-None (non-varying) axis is always harmless.
    ScenarioGrid("ok", {"benchmark": ["mvt"], axis: [None]})


def test_with_axes_revalidates():
    grid = ScenarioGrid("ok", {"benchmark": ["mvt"], "scheme": ["gto"]})
    widened = grid.with_axes(scheme=["gto", "ccws"])
    assert widened.size == 2
    with pytest.raises(ScenarioError, match="axis 'scheme'"):
        grid.with_axes(scheme=["bogus"])


def test_grid_needs_a_name():
    with pytest.raises(ScenarioError, match="non-empty name"):
        ScenarioGrid("", {"benchmark": ["mvt"]})


def test_point_describe_mentions_non_default_axes():
    point = ScenarioPoint(
        scheme="poise", benchmark="mvt", l1_scale=2, poise_strides=(2, 4)
    )
    description = point.describe()
    assert "poise" in description and "mvt" in description
    assert "l1_scale=2" in description and "poise_strides=(2, 4)" in description
    assert "max_warps" not in description


def test_experiment_config_derivation(fast_config):
    point = ScenarioPoint(
        scheme="poise", benchmark="mvt", l1_scale=2, l1_indexing="linear",
        max_warps=48, poise_strides=(2, 4),
    )
    derived = point.experiment_config(fast_config)
    assert derived.gpu.l1.size_bytes == fast_config.gpu.l1.size_bytes * 2
    assert derived.gpu.l1.indexing == "linear"
    assert derived.gpu.sm.max_warps == 48
    assert derived.poise_params.stride_n == 2 and derived.poise_params.stride_p == 4
    # A defaults-only point leaves the configuration untouched.
    untouched = ScenarioPoint(scheme="gto", benchmark="mvt").experiment_config(fast_config)
    assert untouched == fast_config


# ---------------------------------------------------------------------------
# shard specs
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("spec, expected", [("1/1", (1, 1)), ("2/4", (2, 4)), ("4/4", (4, 4))])
def test_parse_shard_accepts_valid_specs(spec, expected):
    assert parse_shard(spec) == expected


@pytest.mark.parametrize(
    "spec", ["0/4", "5/4", "-1/4", "1/0", "x/4", "1/y", "1", "1/2/3", "", "/"]
)
def test_parse_shard_rejects_malformed_specs(spec):
    with pytest.raises(ScenarioError):
        parse_shard(spec)
