"""Tests for the durable write-ahead job queue behind ``repro serve``.

Everything here is process-free: durability is exercised by dropping the
:class:`JobQueue` object on the floor (simulating a ``kill -9``, which
never gets to flush or snapshot) and recovering a fresh one from the same
directory.
"""

from __future__ import annotations

import json

import pytest

from repro.serve.journal import (
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    JobQueue,
    QueueFullError,
    job_id_for,
)


def probe(tag, **extra):
    request = {"kind": "probe", "sleep": 0.0, "echo": tag, "fail": False}
    request.update(extra)
    return request


def make_queue(tmp_path, **kwargs):
    kwargs.setdefault("fsync", False)  # tests hammer the journal; no need
    return JobQueue(tmp_path / "serve", **kwargs)


# ---------------------------------------------------------------------------
# identity, dedup, admission
# ---------------------------------------------------------------------------

def test_submit_assigns_content_addressed_identity(tmp_path):
    queue = make_queue(tmp_path)
    job, created = queue.submit(probe("a"))
    assert created
    assert job.id == job_id_for(probe("a"))
    assert job.state == QUEUED


def test_identical_submissions_coalesce(tmp_path):
    queue = make_queue(tmp_path)
    first, created_first = queue.submit(probe("a"))
    again, created_again = queue.submit(probe("a"))
    assert created_first and not created_again
    assert again is first
    assert first.submissions == 2
    assert queue.depth() == 1


def test_done_job_resubmission_returns_completed_job(tmp_path):
    queue = make_queue(tmp_path)
    job, _ = queue.submit(probe("a"))
    queue.mark_running(job, "w0")
    queue.mark_done(job, {"echo": "a"})
    again, created = queue.submit(probe("a"))
    assert not created
    assert again.state == DONE
    assert again.result == {"echo": "a"}


def test_failed_job_resubmission_revives_it(tmp_path):
    queue = make_queue(tmp_path)
    job, _ = queue.submit(probe("a"))
    queue.mark_running(job, "w0")
    queue.mark_failed(job, "boom")
    revived, created = queue.submit(probe("a"))
    assert created
    assert revived.state == QUEUED
    assert revived.attempts == 0
    assert revived.error is None


def test_admission_control_rejects_beyond_max_depth(tmp_path):
    queue = make_queue(tmp_path, max_depth=2)
    queue.submit(probe("a"))
    queue.submit(probe("b"))
    with pytest.raises(QueueFullError) as exc_info:
        queue.submit(probe("c"))
    payload = exc_info.value.to_payload()
    assert payload["error"] == "queue-full"
    assert payload["retry_after_seconds"] >= 1.0
    # Dedup onto an existing job is never rejected — it queues nothing new.
    _, created = queue.submit(probe("a"))
    assert not created


# ---------------------------------------------------------------------------
# scheduling order
# ---------------------------------------------------------------------------

def test_priority_then_backfill_then_fifo(tmp_path):
    queue = make_queue(tmp_path)
    queue.submit(probe("big-early"), priority=0, cost=100)
    queue.submit(probe("small-late"), priority=0, cost=1)
    queue.submit(probe("urgent"), priority=5, cost=1000)
    order = []
    while True:
        job = queue.next_job()
        if job is None:
            break
        queue.mark_running(job, "w0")
        order.append(job.request["echo"])
    assert order == ["urgent", "small-late", "big-early"]


def test_cancel_only_touches_queued_jobs(tmp_path):
    queue = make_queue(tmp_path)
    job, _ = queue.submit(probe("a"))
    running, _ = queue.submit(probe("b"))
    queue.mark_running(running, "w0")
    assert queue.cancel(job.id) is not None
    assert queue.cancel(running.id) is None
    assert queue.cancel("job-missing") is None


# ---------------------------------------------------------------------------
# durability: recovery, torn tails, snapshots
# ---------------------------------------------------------------------------

def test_recovery_replays_journal_and_requeues_running(tmp_path):
    queue = make_queue(tmp_path)
    done, _ = queue.submit(probe("done"))
    queue.mark_running(done, "w0")
    queue.mark_done(done, {"echo": "done"})
    in_flight, _ = queue.submit(probe("in-flight"))
    queue.mark_running(in_flight, "w1")
    queued, _ = queue.submit(probe("queued"))
    # kill -9: no close, no snapshot.
    recovered = make_queue(tmp_path)
    assert recovered.get(done.id).state == DONE
    assert recovered.get(done.id).result == {"echo": "done"}
    assert recovered.get(in_flight.id).state == QUEUED  # requeued
    assert recovered.get(queued.id).state == QUEUED
    assert in_flight.id in recovered.recovery.requeued


def test_torn_journal_tail_is_skipped_and_sealed(tmp_path):
    queue = make_queue(tmp_path)
    survivor, _ = queue.submit(probe("survivor"))
    # A record half-written when the daemon died: no newline, invalid JSON.
    with open(queue.journal_path, "ab") as handle:
        handle.write(b'{"event": "submit", "job": {"id": "job-to')
    recovered = make_queue(tmp_path)
    assert recovered.recovery.torn_records == 1
    assert recovered.recovery.sealed_tail
    assert recovered.get(survivor.id).state == QUEUED
    # The sealed tail must not swallow the next append.
    addition, _ = recovered.submit(probe("after-tear"))
    third = make_queue(tmp_path)
    assert third.get(addition.id) is not None
    assert third.get(survivor.id) is not None


def test_snapshot_compaction_truncates_journal_and_preserves_state(tmp_path):
    queue = make_queue(tmp_path, snapshot_every=5)
    jobs = [queue.submit(probe(f"j{index}"))[0] for index in range(4)]
    for job in jobs:
        queue.mark_running(job, "w0")
        queue.mark_done(job, {"echo": job.request["echo"]})
    assert queue.snapshot_path.exists()
    assert queue.journal_path.stat().st_size < 200  # truncated post-snapshot
    recovered = make_queue(tmp_path, snapshot_every=5)
    assert recovered.recovery.snapshot_loaded
    for job in jobs:
        assert recovered.get(job.id).state == DONE
    # seq survives compaction: new jobs never collide with compacted ones.
    fresh, _ = recovered.submit(probe("fresh"))
    assert fresh.seq >= jobs[-1].seq + 1


def test_injected_torn_append_still_durable_via_snapshot(tmp_path, monkeypatch):
    queue = make_queue(tmp_path)
    monkeypatch.setenv("REPRO_FAULTS", "serve.journal:torn:1")
    with pytest.warns(RuntimeWarning, match="journal append failed"):
        job, created = queue.submit(probe("tear-me"))
    assert created
    monkeypatch.delenv("REPRO_FAULTS")
    recovered = make_queue(tmp_path)
    assert recovered.get(job.id) is not None
    assert recovered.get(job.id).state == QUEUED


def test_corrupt_snapshot_falls_back_to_journal(tmp_path):
    queue = make_queue(tmp_path)
    job, _ = queue.submit(probe("a"))
    queue.snapshot()
    queue.mark_running(job, "w0")
    queue.mark_done(job, {"echo": "a"})
    queue.snapshot_path.write_text("not json{")
    with pytest.warns(RuntimeWarning, match="snapshot .* corrupt"):
        recovered = make_queue(tmp_path)
    # The snapshot held the submit; only post-snapshot journal records
    # survive, and they reference a compacted-away job — recovery must not
    # crash, and the queue must still be usable.
    resubmitted, created = recovered.submit(probe("a"))
    assert created
    assert resubmitted.state == QUEUED


def test_journal_records_are_canonical_json_lines(tmp_path):
    queue = make_queue(tmp_path)
    queue.submit(probe("a"))
    lines = queue.journal_path.read_bytes().splitlines()
    assert len(lines) == 1
    record = json.loads(lines[0])
    assert record["event"] == "submit"
    assert record["job"]["state"] == QUEUED


def test_stats_counts_every_state(tmp_path):
    queue = make_queue(tmp_path)
    a, _ = queue.submit(probe("a"))
    b, _ = queue.submit(probe("b"))
    c, _ = queue.submit(probe("c"))
    queue.mark_running(a, "w0")
    queue.mark_running(b, "w1")
    queue.mark_failed(b, "boom")
    stats = queue.stats()
    assert stats[RUNNING] == 1
    assert stats[FAILED] == 1
    assert stats[QUEUED] == 1
    assert stats["total"] == 3
