"""Unit tests for performance counters, energy model and reuse tracker."""

import pytest

from repro.gpu.config import EnergyConfig
from repro.gpu.counters import PerfCounters
from repro.gpu.energy import EnergyModel
from repro.gpu.reuse import ReuseDistanceTracker


class TestPerfCounters:
    def test_derived_rates_with_zero_activity(self):
        counters = PerfCounters()
        assert counters.ipc == 0.0
        assert counters.l1_hit_rate == 0.0
        assert counters.aml == 0.0
        assert counters.instructions_per_load == 0.0

    def test_hit_and_miss_rates(self):
        counters = PerfCounters(l1_accesses=10, l1_hits=4, l1_misses=6)
        assert counters.l1_hit_rate == pytest.approx(0.4)
        assert counters.l1_miss_rate == pytest.approx(0.6)

    def test_per_class_hit_rates(self):
        counters = PerfCounters(
            polluting_accesses=4, polluting_hits=3, nonpolluting_accesses=6, nonpolluting_hits=1
        )
        assert counters.polluting_hit_rate == pytest.approx(0.75)
        assert counters.nonpolluting_hit_rate == pytest.approx(1 / 6)

    def test_intra_inter_shares(self):
        counters = PerfCounters(l1_accesses=10, l1_hits=5, intra_warp_hits=4, inter_warp_hits=1)
        assert counters.intra_warp_hit_rate == pytest.approx(0.4)
        assert counters.intra_warp_hit_share == pytest.approx(0.8)
        assert counters.inter_warp_hit_share == pytest.approx(0.2)

    def test_aml_and_instructions_per_load(self):
        counters = PerfCounters(miss_requests=4, miss_latency_total=1200, instructions=90, loads=30)
        assert counters.aml == pytest.approx(300.0)
        assert counters.instructions_per_load == pytest.approx(3.0)

    def test_subtraction_gives_window_deltas(self):
        before = PerfCounters(cycles=100, instructions=50, l1_hits=5)
        after = PerfCounters(cycles=180, instructions=90, l1_hits=12)
        window = after - before
        assert window.cycles == 80
        assert window.instructions == 40
        assert window.l1_hits == 7

    def test_addition_merges_counters(self):
        a = PerfCounters(cycles=10, loads=3)
        b = PerfCounters(cycles=5, loads=2)
        merged = a + b
        assert merged.cycles == 15 and merged.loads == 5

    def test_copy_is_independent(self):
        counters = PerfCounters(cycles=1)
        clone = counters.copy()
        clone.cycles = 99
        assert counters.cycles == 1

    def test_as_dict_contains_derived_metrics(self):
        payload = PerfCounters(cycles=10, instructions=5).as_dict()
        assert payload["ipc"] == pytest.approx(0.5)
        assert "l1_hit_rate" in payload


class TestEnergyModel:
    def test_breakdown_adds_up(self):
        model = EnergyModel(EnergyConfig())
        counters = PerfCounters(
            cycles=1000, instructions=500, loads=100, l1_accesses=100, l2_accesses=40, dram_accesses=10
        )
        report = model.estimate(counters)
        assert report.total_pj == pytest.approx(report.dynamic_pj + report.static_pj)
        assert report.total_uj == pytest.approx(report.total_pj / 1e6)

    def test_dram_traffic_dominates_when_present(self):
        config = EnergyConfig()
        model = EnergyModel(config)
        with_dram = model.estimate(PerfCounters(cycles=100, instructions=100, loads=50,
                                                l1_accesses=50, l2_accesses=50, dram_accesses=50))
        without_dram = model.estimate(PerfCounters(cycles=100, instructions=100, loads=50,
                                                   l1_accesses=50, l2_accesses=50, dram_accesses=0))
        assert with_dram.total_pj - without_dram.total_pj == pytest.approx(50 * config.dram_access_pj)

    def test_longer_runtime_costs_leakage(self):
        model = EnergyModel(EnergyConfig())
        short = model.estimate(PerfCounters(cycles=1000, instructions=100, loads=0))
        long = model.estimate(PerfCounters(cycles=5000, instructions=100, loads=0))
        assert long.static_pj > short.static_pj
        assert long.dynamic_pj == short.dynamic_pj


class TestReuseDistanceTracker:
    def test_cold_access_has_no_distance(self):
        tracker = ReuseDistanceTracker()
        assert tracker.record(0, 10) == -1
        assert tracker.cold_count == 1
        assert tracker.average_distance == 0.0

    def test_immediate_rereference_distance_zero(self):
        tracker = ReuseDistanceTracker()
        tracker.record(0, 10)
        assert tracker.record(0, 10) == 0

    def test_stack_distance_counts_unique_intervening_lines(self):
        tracker = ReuseDistanceTracker()
        for line in (1, 2, 3, 4):
            tracker.record(0, line)
        assert tracker.record(0, 1) == 3

    def test_per_warp_isolation(self):
        tracker = ReuseDistanceTracker()
        tracker.record(0, 1)
        tracker.record(1, 2)
        # Warp 1 never touched line 1: its access is cold.
        assert tracker.record(1, 1) == -1

    def test_reset(self):
        tracker = ReuseDistanceTracker()
        tracker.record(0, 1)
        tracker.record(0, 1)
        tracker.reset()
        assert tracker.reuse_count == 0 and tracker.cold_count == 0
