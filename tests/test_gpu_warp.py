"""Unit tests for warp state and the load/use dependency model."""

import pytest

from repro.gpu.isa import alu, load
from repro.gpu.warp import Warp, make_warps


def make_warp(program):
    return Warp(wid=0, program=program)


class TestWarpBasics:
    def test_empty_program_is_done_immediately(self):
        warp = make_warp([])
        assert warp.done

    def test_advance_tracks_issued_instructions(self):
        warp = make_warp([alu(), alu(), alu()])
        warp.advance()
        warp.advance()
        assert warp.issued_instructions == 2
        assert warp.pc == 2
        assert not warp.done
        warp.advance()
        assert warp.done

    def test_current_instruction_none_after_end(self):
        warp = make_warp([alu()])
        warp.advance()
        assert warp.current_instruction() is None

    def test_make_warps_orders_by_age(self):
        warps = make_warps([[alu()], [alu()], [alu()]])
        assert [warp.wid for warp in warps] == [0, 1, 2]


class TestDependencyStalls:
    def test_warp_schedulable_until_first_dependent_instruction(self):
        # Load at index 0 with dep_distance 2: indices 1 and 2 are independent,
        # index 3 depends on the load.
        program = [load(10, dep_distance=2), alu(), alu(), alu()]
        warp = make_warp(program)
        warp.record_load_issue(token=1, dep_distance=2, cycle=0)
        warp.advance()  # issued the load, pc=1
        assert warp.is_schedulable()
        warp.advance()  # pc=2
        assert warp.is_schedulable()
        warp.advance()  # pc=3 -> dependent instruction
        assert not warp.is_schedulable()
        assert warp.blocking_load().token == 1

    def test_completing_the_load_unblocks_the_warp(self):
        program = [load(10, dep_distance=0), alu()]
        warp = make_warp(program)
        warp.record_load_issue(token=5, dep_distance=0, cycle=3)
        warp.advance()
        assert not warp.is_schedulable()
        pending = warp.complete_load(5)
        assert pending.issue_cycle == 3
        assert warp.is_schedulable()

    def test_completing_unknown_token_raises(self):
        warp = make_warp([alu()])
        with pytest.raises(KeyError):
            warp.complete_load(99)

    def test_warp_not_done_with_outstanding_loads(self):
        program = [load(10, dep_distance=0)]
        warp = make_warp(program)
        warp.record_load_issue(token=1, dep_distance=0, cycle=0)
        warp.advance()
        assert warp.finished_issuing
        assert not warp.done
        warp.complete_load(1)
        assert warp.done

    def test_multiple_outstanding_loads_block_on_earliest_dependence(self):
        program = [load(1, dep_distance=5), alu(), load(2, dep_distance=0), alu(), alu()]
        warp = make_warp(program)
        warp.record_load_issue(token=1, dep_distance=5, cycle=0)
        warp.advance()
        warp.advance()
        warp.record_load_issue(token=2, dep_distance=0, cycle=2)
        warp.advance()  # pc=3 -> depends on the second load (0 distance)
        assert not warp.is_schedulable()
        warp.complete_load(2)
        assert warp.is_schedulable()

    def test_reset_restores_initial_state(self):
        program = [load(1, dep_distance=0), alu()]
        warp = make_warp(program)
        warp.record_load_issue(token=1, dep_distance=0, cycle=0)
        warp.advance()
        warp.reset()
        assert warp.pc == 0
        assert not warp.outstanding
        assert warp.issued_instructions == 0
