"""Round-trip and corruption tests for the serialization + DiskCache layer.

These complement ``test_runtime_executor.py`` (which exercises the full
simulate→cache→reload path): here the objects are synthetic, so every edge
— tuple-keyed telemetry, NaN-free energy floats, truncated and partially
written cache entries — is pinned without running the simulator.
"""

from __future__ import annotations

import json

import pytest

from repro.gpu.counters import PerfCounters
from repro.gpu.energy import EnergyReport
from repro.gpu.gpu import RunResult
from repro.profiling.profiler import StaticProfile
from repro.runtime import serialization
from repro.runtime.cache import DiskCache
from repro.workloads.spec import KernelSpec


def make_run_result() -> RunResult:
    counters = PerfCounters(
        cycles=1234,
        busy_cycles=456,
        stall_cycles=778,
        instructions=456,
        loads=152,
        l1_accesses=152,
        l1_hits=31,
        l1_misses=121,
        miss_requests=119,
        miss_latency_total=21341,
        l2_accesses=121,
        l2_hits=64,
        dram_accesses=57,
    )
    energy = EnergyReport(alu_pj=10.5, l1_pj=4.25, l2_pj=8.75, dram_pj=91.0, static_pj=33.5)
    telemetry = {
        "predicted_tuples": [(6, 2), (5, 1)],
        "searched_tuples": [(7, 2), (5, 2)],
        "compute_intensive_epochs": 0,
        "nested": {"warp_tuple": (4, 2), "trail": [(1, 1), (2, 1)]},
    }
    return RunResult(
        counters=counters,
        cycles=1234,
        energy=energy,
        warp_tuple=(6, 2),
        completed=False,
        telemetry=telemetry,
    )


def make_profile() -> StaticProfile:
    spec = KernelSpec(name="rt_kernel", num_warps=4, instructions_per_warp=400, seed=3)
    return StaticProfile(
        kernel=spec,
        max_warps=4,
        baseline_ipc=0.75,
        ipc={(1, 1): 0.30, (2, 1): 0.55, (4, 2): 0.75, (4, 4): 0.60},
        baseline_counters=PerfCounters(cycles=100, instructions=75),
    )


class TestValueEncoding:
    def test_nested_tuples_survive(self):
        value = {"a": (1, (2, 3)), "b": [(4, 5)], "c": {"d": ((6,),)}}
        assert serialization.decode_value(serialization.encode_value(value)) == value

    def test_encoding_is_json_serialisable(self):
        encoded = serialization.encode_value({"point": (3, 1), "trail": [(1, 2)]})
        assert serialization.decode_value(json.loads(json.dumps(encoded))) == {
            "point": (3, 1),
            "trail": [(1, 2)],
        }

    def test_non_tuple_marker_dict_untouched(self):
        value = {"__tuple__": [1], "other": 2}  # not a pure marker: two keys
        assert serialization.decode_value(serialization.encode_value(value)) == value


class TestRunResultRoundTrip:
    def test_equality_through_json(self):
        result = make_run_result()
        restored = serialization.run_result_from_dict(
            json.loads(json.dumps(serialization.run_result_to_dict(result)))
        )
        assert restored == result
        assert isinstance(restored.warp_tuple, tuple)
        assert restored.telemetry["predicted_tuples"][0] == (6, 2)
        assert isinstance(restored.telemetry["nested"]["warp_tuple"], tuple)

    def test_unknown_counter_fields_ignored(self):
        data = serialization.run_result_to_dict(make_run_result())
        data["counters"]["counter_from_the_future"] = 7
        restored = serialization.run_result_from_dict(data)
        assert restored.counters == make_run_result().counters


class TestProfileRoundTrip:
    def test_equality_through_json(self):
        profile = make_profile()
        restored = serialization.profile_from_dict(
            json.loads(json.dumps(serialization.profile_to_dict(profile)))
        )
        assert restored == profile
        assert all(isinstance(point, tuple) for point in restored.ipc)

    def test_profile_without_baseline_counters(self):
        profile = make_profile()
        data = serialization.profile_to_dict(profile)
        data["baseline_counters"] = None
        restored = serialization.profile_from_dict(data)
        assert restored.baseline_counters is None
        assert restored.ipc == profile.ipc


class TestDiskCacheCorruption:
    PAYLOAD = {"kind": "test", "knob": 1}

    def _recompute_pattern(self, cache: DiskCache) -> dict:
        """The caller idiom everywhere in common.py: miss → recompute → store."""
        document = cache.load(self.PAYLOAD)
        if document is None:
            document = {"value": 42}
            cache.store(self.PAYLOAD, document)
        return document

    def test_truncated_entry_falls_back_to_recompute(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.store(self.PAYLOAD, {"value": 42})
        path = cache.path_for(self.PAYLOAD)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        assert cache.load(self.PAYLOAD) is None
        assert not path.exists()  # the corrupt entry is evicted…
        assert self._recompute_pattern(cache) == {"value": 42}
        assert cache.load(self.PAYLOAD) == {"value": 42}  # …and healed

    def test_garbage_entry_is_a_miss(self, tmp_path):
        cache = DiskCache(tmp_path)
        path = cache.path_for(self.PAYLOAD)
        path.parent.mkdir(parents=True)
        path.write_text("not json at all {{{")
        assert cache.load(self.PAYLOAD) is None
        assert self._recompute_pattern(cache) == {"value": 42}

    def test_wrong_format_version_is_a_miss(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.store(self.PAYLOAD, {"value": 42})
        path = cache.path_for(self.PAYLOAD)
        document = json.loads(path.read_text())
        document["format_version"] = 999
        path.write_text(json.dumps(document))
        assert cache.load(self.PAYLOAD) is None

    def test_leftover_partial_write_is_invisible(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.store(self.PAYLOAD, {"value": 42})
        path = cache.path_for(self.PAYLOAD)
        # A writer that died mid-write leaves only a temp file behind; it must
        # never be read as an entry, and a later store must still land.
        tmp_file = path.with_name(f".{path.name}.12345.tmp")
        tmp_file.write_text('{"format_version":')
        assert cache.load(self.PAYLOAD) == {"value": 42}
        cache.store(self.PAYLOAD, {"value": 43})
        assert cache.load(self.PAYLOAD) == {"value": 43}

    def test_missing_result_key_is_a_miss(self, tmp_path):
        cache = DiskCache(tmp_path)
        path = cache.path_for(self.PAYLOAD)
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps({"format_version": 1}))
        assert cache.load(self.PAYLOAD) is None


class TestRunResultThroughDiskCache:
    def test_tuple_preserving_cache_round_trip(self, tmp_path):
        cache = DiskCache(tmp_path)
        result = make_run_result()
        payload = {"kind": "run", "x": 1}
        cache.store(payload, serialization.run_result_to_dict(result))
        assert serialization.run_result_from_dict(cache.load(payload)) == result

    def test_profile_cache_round_trip(self, tmp_path):
        cache = DiskCache(tmp_path)
        profile = make_profile()
        payload = {"kind": "profile", "x": 1}
        cache.store(payload, serialization.profile_to_dict(profile))
        assert serialization.profile_from_dict(cache.load(payload)) == profile
