"""End-to-end tests of the ``repro serve`` daemon.

The HTTP-surface tests host the dispatcher in a thread with probe jobs
(milliseconds).  The acceptance tests at the bottom run the real daemon as
a subprocess, ``kill -9`` it mid-sweep, restart it, and require the
artifacts it converges on to be **byte-identical** to a direct
``repro sweep run`` — the paper-shaped crash-safety guarantee.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.serve.client import ServeClient, ServeClientError, ServeUnreachable
from repro.serve.dispatcher import Dispatcher, ServeConfig

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")


# ---------------------------------------------------------------------------
# thread-hosted daemon (probe jobs, milliseconds)
# ---------------------------------------------------------------------------

@pytest.fixture
def daemon(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    config = ServeConfig(
        pool_size=1,
        job_timeout=20.0,
        heartbeat_interval=0.1,
        heartbeat_timeout=10.0,
        drain_grace=5.0,
        max_depth=3,
    )
    dispatcher = Dispatcher(tmp_path, config)
    thread = threading.Thread(target=dispatcher.run, daemon=True)
    thread.start()
    deadline = time.monotonic() + 20.0
    while not dispatcher.endpoint_path.exists():
        assert time.monotonic() < deadline, "daemon never wrote endpoint.json"
        time.sleep(0.05)
    client = ServeClient.discover(tmp_path, timeout=10.0)
    yield dispatcher, client
    if not dispatcher.draining.is_set():
        try:
            client.drain()
        except (ServeClientError, ServeUnreachable):
            dispatcher.draining.set()
    thread.join(20.0)
    assert not thread.is_alive()


def probe(tag, **extra):
    request = {"kind": "probe", "echo": tag}
    request.update(extra)
    return request


def test_submit_wait_result_roundtrip(daemon):
    _, client = daemon
    submitted = client.submit(probe("roundtrip"))
    assert submitted["created"]
    result = client.wait(submitted["job_id"], timeout=30.0)
    assert result["result"]["echo"] == "roundtrip"
    status = client.status(submitted["job_id"])
    assert status["state"] == "done"
    assert "result" not in status  # results travel via /result only


def test_identical_requests_deduplicate_over_http(daemon):
    _, client = daemon
    first = client.submit(probe("dedup"))
    second = client.submit(probe("dedup"))
    assert second["job_id"] == first["job_id"]
    assert second["deduplicated"]
    client.wait(first["job_id"], timeout=30.0)
    # A post-completion resubmission returns the done job immediately.
    third = client.submit(probe("dedup"))
    assert third["state"] == "done"


def test_bad_requests_are_structured_400s(daemon):
    _, client = daemon
    with pytest.raises(ServeClientError) as exc_info:
        client.submit({"kind": "nonsense"})
    assert exc_info.value.status == 400
    assert exc_info.value.payload["error"] == "bad-request"
    with pytest.raises(ServeClientError) as exc_info:
        client.status("job-does-not-exist")
    assert exc_info.value.status == 404


def test_overload_gets_structured_rejection_never_a_hang(daemon):
    _, client = daemon  # max_depth=3, one worker
    client.submit(probe("blocker", sleep=2.0))
    for index in range(6):
        try:
            client.submit(probe(f"filler-{index}"))
        except ServeClientError as error:
            assert error.status == 429
            payload = error.payload
            assert payload["error"] == "queue-full"
            assert payload["retry_after_seconds"] >= 1.0
            assert payload["max_depth"] == 3
            break
    else:
        raise AssertionError("queue never rejected beyond max_depth")


def test_cancel_queued_but_not_running(daemon):
    _, client = daemon
    blocker = client.submit(probe("cancel-blocker", sleep=1.5))
    victim = client.submit(probe("cancel-victim"))
    cancelled = client.cancel(victim["job_id"])
    assert cancelled["state"] == "cancelled"
    deadline = time.monotonic() + 10.0
    while client.status(blocker["job_id"])["state"] != "running":
        assert time.monotonic() < deadline
        time.sleep(0.05)
    with pytest.raises(ServeClientError) as exc_info:
        client.cancel(blocker["job_id"])
    assert exc_info.value.status == 409


def test_failed_job_surfaces_as_410(daemon):
    _, client = daemon
    submitted = client.submit({"kind": "probe", "fail": True})
    with pytest.raises(ServeClientError) as exc_info:
        client.wait(submitted["job_id"], timeout=30.0)
    assert exc_info.value.status == 410
    assert "probe requested failure" in exc_info.value.payload["message"]


def test_health_reports_queue_and_pool(daemon):
    _, client = daemon
    health = client.health()
    assert health["ok"]
    assert health["workers"]["pool_size"] == 1
    assert health["queue"]["max_depth"] == 3
    assert "serve_telemetry" in health


def test_worker_crash_chaos_job_still_completes(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_FAULTS", "serve.worker:crash:1")
    config = ServeConfig(
        pool_size=1,
        job_timeout=20.0,
        heartbeat_interval=0.1,
        heartbeat_timeout=10.0,
        drain_grace=5.0,
    )
    dispatcher = Dispatcher(tmp_path, config)
    thread = threading.Thread(target=dispatcher.run, daemon=True)
    thread.start()
    try:
        deadline = time.monotonic() + 20.0
        while not dispatcher.endpoint_path.exists():
            assert time.monotonic() < deadline
            time.sleep(0.05)
        client = ServeClient.discover(tmp_path, timeout=10.0)
        submitted = client.submit(probe("survives-chaos"))
        # First dispatch crashes the worker (budget 1); the job is lost,
        # requeued, and a restarted worker completes it.
        result = client.wait(submitted["job_id"], timeout=60.0)
        assert result["result"]["echo"] == "survives-chaos"
        health = client.health()
        assert health["workers"]["restarts"] >= 1
        status = client.status(submitted["job_id"])
        assert status["attempts"] == 2  # one lost dispatch + one clean run
    finally:
        dispatcher.draining.set()
        thread.join(20.0)


# ---------------------------------------------------------------------------
# subprocess daemon: kill -9 differential, SIGTERM drain
# ---------------------------------------------------------------------------

def daemon_env(cache_dir, faults=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC
    env["REPRO_CACHE_DIR"] = str(cache_dir)
    env.pop("REPRO_FAULTS", None)
    if faults:
        env["REPRO_FAULTS"] = faults
    return env


def start_daemon(cache_dir, *extra, faults=None):
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve", "start",
            "--workers", "1", "--job-timeout", "60", "--drain-grace", "8",
            *extra,
        ],
        env=daemon_env(cache_dir, faults=faults),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    endpoint = Path(cache_dir) / "serve" / "endpoint.json"
    deadline = time.monotonic() + 60.0
    while time.monotonic() < deadline:
        if endpoint.exists():
            try:
                document = json.loads(endpoint.read_text())
                if document.get("pid") == process.pid:
                    return process, ServeClient(document["url"], timeout=10.0)
            except (ValueError, KeyError):
                pass
        assert process.poll() is None, (
            f"daemon exited early:\n{process.stdout.read()}"
        )
        time.sleep(0.1)
    process.kill()
    raise AssertionError("daemon never published its endpoint")


SWEEP_REQUEST = {
    "kind": "sweep",
    "grid": "smoke",
    "preset": "fast",
    "overrides": ["engine=fast"],
}


def sweep_tree(cache_dir):
    """``{relative_path: bytes}`` of the served grid's content-stable files."""
    sweeps = Path(cache_dir) / "artifacts" / "sweeps"
    trees = {}
    for path in sorted(sweeps.rglob("*.json")):
        relative = path.relative_to(sweeps)
        if "quarantine" in relative.parts or relative.name == "run_telemetry.json":
            continue
        trees[str(relative)] = path.read_bytes()
    return trees


def test_kill_dash_nine_recovery_is_byte_identical(tmp_path):
    served = tmp_path / "served"
    direct = tmp_path / "direct"
    served.mkdir()
    direct.mkdir()

    # The reference: a direct, crash-free sweep run + report.
    for command in (
        ["sweep", "run", "smoke", "--fast", "--set", "engine=fast"],
        ["sweep", "report", "smoke", "--fast", "--set", "engine=fast"],
    ):
        completed = subprocess.run(
            [sys.executable, "-m", "repro", *command],
            env=daemon_env(direct), capture_output=True, text=True, timeout=600,
        )
        assert completed.returncode == 0, completed.stdout + completed.stderr

    # The victim: a daemon killed -9 mid-sweep...
    process, client = start_daemon(served)
    submitted = client.submit(SWEEP_REQUEST)
    assert submitted["created"]
    deadline = time.monotonic() + 60.0
    while client.status(submitted["job_id"])["state"] == "queued":
        assert time.monotonic() < deadline
        time.sleep(0.1)
    time.sleep(1.0)  # let it get some points deep into the sweep
    process.kill()  # SIGKILL: no drain, no snapshot, no goodbye
    process.wait(30)

    # ...restarted over the same journal.  Recovery requeues the in-flight
    # job; resume-idempotent execution finishes the remaining points.
    process, client = start_daemon(served)
    try:
        result = client.wait(submitted["job_id"], timeout=300.0)
        assert result["result"]["num_points"] == 8  # smoke grid, engine pinned
        health = client.health()
        assert "requeued" in health["recovery"]
    finally:
        process.send_signal(signal.SIGTERM)
        assert process.wait(60) == 0, "SIGTERM drain must exit 0"

    reference = sweep_tree(direct)
    recovered = sweep_tree(served)
    assert reference.keys() == recovered.keys()
    for relative in reference:
        assert recovered[relative] == reference[relative], (
            f"{relative} differs between crashed-and-recovered serve run "
            f"and direct run"
        )


def test_sigterm_drain_requeues_and_restart_finishes(tmp_path):
    process, client = start_daemon(tmp_path)
    blocker = client.submit({"kind": "probe", "sleep": 15.0, "echo": "in-flight"})
    queued = client.submit({"kind": "probe", "echo": "waiting"})
    deadline = time.monotonic() + 30.0
    while client.status(blocker["job_id"])["state"] != "running":
        assert time.monotonic() < deadline
        time.sleep(0.1)
    process.send_signal(signal.SIGTERM)
    # The blocker sleeps far past the 8s drain grace: the daemon must
    # requeue it (journaled) and still exit 0, well before the sleep ends.
    assert process.wait(45) == 0
    endpoint = Path(tmp_path) / "serve" / "endpoint.json"
    assert not endpoint.exists()  # a drained daemon retracts its address

    snapshot = json.loads((Path(tmp_path) / "serve" / "snapshot.json").read_text())
    states = {job["id"]: job["state"] for job in snapshot["jobs"]}
    assert states[blocker["job_id"]] == "queued"  # requeued, not lost
    assert states[queued["job_id"]] == "queued"

    process, client = start_daemon(tmp_path)
    try:
        # Resubmission coalesces onto the journaled jobs; both complete.
        again = client.submit({"kind": "probe", "echo": "waiting"})
        assert again["job_id"] == queued["job_id"]
        assert not again["created"]
        result = client.wait(queued["job_id"], timeout=60.0)
        assert result["result"]["echo"] == "waiting"
    finally:
        process.send_signal(signal.SIGTERM)
        assert process.wait(60) == 0
