"""Unit tests for the Eq. 12 neighbourhood scoring."""

import pytest

from repro.core.scoring import (
    DEFAULT_WEIGHTS,
    best_raw_point,
    score_grid,
    score_point,
    select_training_target,
)


def flat_grid(value=1.0, size=5):
    return {(n, p): value for n in range(1, size + 1) for p in range(1, n + 1)}


class TestScorePoint:
    def test_isolated_point_scores_its_own_speedup(self):
        grid = {(3, 3): 1.4}
        assert score_point(grid, (3, 3)) == pytest.approx(1.4)

    def test_unknown_point_raises(self):
        with pytest.raises(KeyError):
            score_point({(1, 1): 1.0}, (2, 2))

    def test_uniform_grid_scores_uniformly(self):
        grid = flat_grid(1.2)
        scores = score_grid(grid)
        for value in scores.values():
            assert value == pytest.approx(1.2)

    def test_score_is_weighted_neighbourhood_average(self):
        # Centre point with one edge neighbour: (1*a + 0.5*b) / 1.5.
        grid = {(2, 2): 1.0, (3, 2): 2.0}
        expected = (1.0 * 1.0 + 0.5 * 2.0) / 1.5
        assert score_point(grid, (2, 2)) == pytest.approx(expected)

    def test_diagonal_neighbours_use_third_weight(self):
        grid = {(2, 2): 1.0, (3, 3): 2.0}
        expected = (1.0 * 1.0 + 0.25 * 2.0) / 1.25
        assert score_point(grid, (2, 2)) == pytest.approx(expected)

    def test_missing_neighbours_do_not_penalise_boundary_points(self):
        # A corner point surrounded by equal speedups scores the same as an
        # interior point surrounded by equal speedups.
        grid = flat_grid(1.3, size=6)
        scores = score_grid(grid)
        assert scores[(1, 1)] == pytest.approx(scores[(4, 2)])


class TestTargetSelection:
    def test_cliff_peak_loses_to_safe_plateau(self):
        # A tall spike next to deep slowdowns vs a slightly lower plateau.
        grid = {}
        for n in range(1, 8):
            for p in range(1, n + 1):
                grid[(n, p)] = 1.0
        grid[(2, 1)] = 1.5   # the spike...
        grid[(3, 1)] = 0.4   # ...next to a cliff
        grid[(2, 2)] = 0.5
        for point in ((6, 3), (6, 4), (5, 3), (5, 4), (7, 3), (7, 4), (6, 2), (5, 2), (7, 2)):
            grid[point] = 1.35  # the safe plateau
        target = select_training_target(grid)
        assert target.point != (2, 1)
        assert grid[target.point] >= 1.3

    def test_scored_target_speedup_never_exceeds_raw_peak(self):
        grid = {(n, p): 1.0 + 0.01 * n * p for n in range(1, 10) for p in range(1, n + 1)}
        peak = best_raw_point(grid)
        target = select_training_target(grid)
        assert target.speedup <= peak.speedup + 1e-12

    def test_empty_grid_raises(self):
        with pytest.raises(ValueError):
            select_training_target({})
        with pytest.raises(ValueError):
            best_raw_point({})

    def test_custom_weights_change_selection(self):
        grid = {(1, 1): 1.0, (2, 1): 1.2, (2, 2): 0.2}
        # With aggressive neighbour weighting the lonely-but-safe point wins.
        selfish = select_training_target(grid, weights=(1.0, 0.0, 0.0))
        assert selfish.point == (2, 1)

    def test_default_weights_are_table_iv(self):
        assert DEFAULT_WEIGHTS == (1.0, 0.50, 0.25)
