"""Tests for the run-telemetry layer: cache counters, phase timers, the
sweep telemetry sidecar and the bench entry's telemetry block."""

from __future__ import annotations

import json
from dataclasses import replace
from pathlib import Path

import pytest

from repro.experiments.common import ExperimentConfig
from repro.obs.telemetry import (
    describe_cache,
    describe_phases,
    phase,
    phase_totals,
    phases_delta,
    reset_phases,
    telemetry_delta,
    telemetry_snapshot,
)
from repro.runtime.cache import DiskCache, cache_stats, reset_cache_stats
from repro.runtime.executor import JobReport
from repro.scenarios.grid import ScenarioGrid
from repro.scenarios.runner import POINT_METRICS, SweepRunner


@pytest.fixture(autouse=True)
def fresh_counters():
    reset_cache_stats()
    reset_phases()
    yield
    reset_cache_stats()
    reset_phases()


# ---------------------------------------------------------------------------
# DiskCache counters
# ---------------------------------------------------------------------------


def test_cache_counters_track_miss_store_hit(tmp_path):
    cache = DiskCache(tmp_path)
    payload = {"kind": "test", "key": 1}
    assert cache.load(payload) is None
    assert cache.store(payload, {"value": 42}) is not None
    assert cache.load(payload) == {"value": 42}
    stats = cache_stats()
    assert (stats.hits, stats.misses, stats.corrupt, stats.stores,
            stats.store_failures) == (1, 1, 0, 1, 0)
    assert stats.lookups == 2


def test_cache_counters_track_corrupt_fallback(tmp_path):
    cache = DiskCache(tmp_path)
    payload = {"kind": "test", "key": 2}
    path = cache.path_for(payload)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text("{truncated")
    assert cache.load(payload) is None  # corrupt entry degrades to a miss
    assert not path.exists()  # and is deleted so a recompute replaces it
    stats = cache_stats()
    assert (stats.hits, stats.misses, stats.corrupt) == (0, 1, 1)


def test_cache_counters_track_store_failures(tmp_path, monkeypatch):
    from repro.runtime.faults import reset_fault_state

    monkeypatch.setenv("REPRO_FAULTS", "cache.store:oserror:1:all")
    reset_fault_state()
    try:
        cache = DiskCache(tmp_path)
        assert cache.store({"kind": "test", "key": 3}, {"value": 1}) is None
        assert cache_stats().store_failures == 1
        assert cache_stats().stores == 0
    finally:
        monkeypatch.delenv("REPRO_FAULTS")
        reset_fault_state()


def test_cache_stats_snapshot_and_delta(tmp_path):
    cache = DiskCache(tmp_path)
    payload = {"kind": "test", "key": 4}
    cache.store(payload, {"value": 1})
    before = cache_stats().snapshot()
    cache.load(payload)
    delta = cache_stats().delta(before)
    assert (delta.hits, delta.stores) == (1, 0)


def test_describe_cache_reads_naturally():
    text = describe_cache(
        {"hits": 1, "misses": 2, "corrupt": 1, "stores": 2, "store_failures": 0})
    assert text == "1 hit, 2 misses (1 corrupt fallback), 2 stores"


# ---------------------------------------------------------------------------
# Phase timers
# ---------------------------------------------------------------------------


def test_phase_accumulates_seconds_and_calls():
    with phase("simulate"):
        pass
    with phase("simulate"):
        pass
    with phase("profile"):
        pass
    totals = phase_totals()
    assert totals["simulate"]["calls"] == 2
    assert totals["profile"]["calls"] == 1
    assert totals["simulate"]["seconds"] >= 0.0


def test_phase_records_even_when_the_body_raises():
    with pytest.raises(RuntimeError):
        with phase("simulate"):
            raise RuntimeError("boom")
    assert phase_totals()["simulate"]["calls"] == 1


def test_phases_delta_omits_idle_phases():
    with phase("profile"):
        pass
    before = phase_totals()
    with phase("simulate"):
        pass
    delta = phases_delta(before)
    assert set(delta) == {"simulate"}
    assert describe_phases(delta).startswith("simulate ")


def test_telemetry_snapshot_combines_cache_and_phases(tmp_path):
    before = telemetry_snapshot()
    DiskCache(tmp_path).store({"kind": "test", "key": 5}, {"value": 1})
    with phase("simulate"):
        pass
    delta = telemetry_delta(before)
    assert delta["cache"]["stores"] == 1
    assert delta["phases"]["simulate"]["calls"] == 1


# ---------------------------------------------------------------------------
# JobReport serialization
# ---------------------------------------------------------------------------


def test_job_report_to_dict_roundtrips():
    report = JobReport(jobs=3, attempts=4, retries=1, timeouts=1,
                       transient_errors=0, salvaged=0, escalated=1,
                       pool_restarts=0, injected=0)
    payload = report.to_dict()
    assert payload["jobs"] == 3 and payload["escalated"] == 1
    json.dumps(payload)
    assert JobReport(**payload) == report


# ---------------------------------------------------------------------------
# Sweep telemetry sidecar + summary lines
# ---------------------------------------------------------------------------


def stub_metrics(point):
    metrics = {name: 1.0 for name in POINT_METRICS}
    metrics["kernels"] = {}
    return metrics


def make_runner(tmp_path):
    grid = ScenarioGrid(
        "telemetry-grid", {"benchmark": ["mvt"], "scheme": ["gto", "swl"]}
    )
    config = replace(ExperimentConfig.fast(), cache_dir=Path(tmp_path))
    return SweepRunner(grid, config, evaluate=stub_metrics)


def test_sweep_run_writes_telemetry_sidecar_outside_points(tmp_path):
    runner = make_runner(tmp_path)
    report = runner.run_report()
    sidecar = runner.root / "run_telemetry.json"
    assert sidecar.exists()
    payload = json.loads(sidecar.read_text())
    assert payload["kind"] == "sweep-run-telemetry"
    assert payload["grid"] == "telemetry-grid"
    assert payload["computed"] == 2
    assert set(payload["telemetry"]) == {"phases", "cache", "serve"}
    # The content-stable tree stays content-stable: nothing new in points/.
    assert sorted(p.name for p in (runner.root / "points").glob("*")) == sorted(
        f"{point.point_id}.json" for point in runner.grid.points())
    # And the report surfaces the counters in its summary.
    assert report.telemetry is not None
    assert any(line.startswith("cache: ") for line in report.summary_lines())


def test_resumed_sweep_sidecar_reports_skips(tmp_path):
    runner = make_runner(tmp_path)
    runner.run_report()
    report = runner.run_report(resume=True)
    payload = json.loads((runner.root / "run_telemetry.json").read_text())
    assert payload["computed"] == 0 and payload["skipped"] == 2
    assert report.skipped == 2
