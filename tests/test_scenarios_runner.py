"""Tests for the sweep runner, per-point artifacts, resume and aggregation.

The cheap Hypothesis properties inject a deterministic stub evaluator so
hundreds of shard/union/resume cases run without simulating; the
acceptance tests at the bottom run the real simulator on the tiny ``smoke``
grid and pin the headline guarantees: shard unions are byte-identical to a
full run, ``--resume`` recomputes exactly the deleted point, and the two
engines produce identical point metrics.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import replace
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.common import ExperimentConfig
from repro.scenarios.grid import ScenarioError, ScenarioGrid
from repro.scenarios.library import get_grid, named_grids
from repro.scenarios.report import (
    SweepSchema,
    aggregate,
    sweep_artifact_path,
    sweep_tables,
    write_sweep_artifact,
)
from repro.scenarios.runner import (
    POINT_METRICS,
    CorruptPointArtifact,
    SweepRunner,
    evaluate_point,
)

_dir_counter = itertools.count()


def stub_metrics(point):
    """Deterministic, point-dependent metrics (no simulation)."""
    weight = (hash(point.point_id) % 1000) / 1000.0
    metrics = {name: 1.0 + weight for name in POINT_METRICS}
    metrics["speedup"] = 1.0 + weight
    metrics["kernels"] = {}
    return metrics


def make_runner(grid, cache_dir, evaluate=stub_metrics):
    config = replace(ExperimentConfig.fast(), cache_dir=Path(cache_dir))
    return SweepRunner(grid, config, evaluate=evaluate)


def artifact_bytes(runner):
    directory = runner.root / "points"
    return {
        path.name: path.read_bytes() for path in sorted(directory.glob("*.json"))
    }


SMALL_AXES = st.fixed_dictionaries(
    {"benchmark": st.lists(st.sampled_from(("mvt", "bfs", "syr2k")), min_size=1,
                           max_size=2, unique=True)},
    optional={
        "scheme": st.lists(st.sampled_from(("gto", "ccws", "apcm")), min_size=1,
                           max_size=2, unique=True),
        "l1_scale": st.lists(st.sampled_from((1, 2)), min_size=1, max_size=2, unique=True),
    },
)


@settings(max_examples=25, deadline=None)
@given(axes=SMALL_AXES, num_shards=st.integers(min_value=1, max_value=4))
def test_shard_union_byte_identical_to_full_run(tmp_path_factory, axes, num_shards):
    base = tmp_path_factory.mktemp("sweep") / str(next(_dir_counter))
    grid = ScenarioGrid("prop-sweep", axes)
    sharded = make_runner(grid, base / "sharded")
    for shard_index in range(1, num_shards + 1):
        sharded.run(shard=(shard_index, num_shards))
    full = make_runner(grid, base / "full")
    full.run()
    assert artifact_bytes(sharded) == artifact_bytes(full)
    # And aggregation over either directory yields identical sweep payloads.
    config = replace(ExperimentConfig.fast(), cache_dir=base / "sharded")
    from_shards = aggregate(grid, config)
    config = replace(ExperimentConfig.fast(), cache_dir=base / "full")
    from_full = aggregate(grid, config)
    assert from_shards == from_full


def test_resume_recomputes_only_missing_points(tmp_path):
    grid = ScenarioGrid("resume", {"benchmark": ["mvt", "bfs"], "scheme": ["gto", "ccws"]})
    computed = []

    def counting(point):
        computed.append(point.point_id)
        return stub_metrics(point)

    runner = make_runner(grid, tmp_path, evaluate=counting)
    statuses = runner.run()
    assert [status.status for status in statuses] == ["computed"] * 4
    assert len(computed) == 4

    victim = statuses[2]
    victim.path.unlink()
    computed.clear()
    statuses = runner.run(resume=True)
    assert computed == [victim.point.point_id]
    assert {status.status for status in statuses} == {"computed", "skipped"}
    assert sum(status.status == "computed" for status in statuses) == 1
    # Without --resume everything recomputes.
    computed.clear()
    runner.run()
    assert len(computed) == 4


def test_resume_skips_are_byte_stable(tmp_path):
    grid = ScenarioGrid("stable", {"benchmark": ["mvt"], "scheme": ["gto", "ccws"]})
    runner = make_runner(grid, tmp_path)
    runner.run()
    before = artifact_bytes(runner)
    runner.run(resume=True)
    assert artifact_bytes(runner) == before


@pytest.mark.parametrize(
    "corruption, fragment",
    [
        (lambda path: path.write_text("{truncated"), "not valid JSON"),
        (lambda path: path.write_text(json.dumps({"format_version": 99})), "unsupported format"),
        (
            lambda path: path.write_text(
                json.dumps(dict(json.loads(path.read_text()), point={"scheme": "other"}))
            ),
            "different scenario",
        ),
        (
            lambda path: path.write_text(
                json.dumps({k: v for k, v in json.loads(path.read_text()).items()
                            if k != "metrics"})
            ),
            "no metrics object",
        ),
        (
            lambda path: path.write_text(
                json.dumps(dict(json.loads(path.read_text()), metrics={}))
            ),
            "missing metrics",
        ),
    ],
)
def test_corrupt_point_artifact_is_quarantined_and_recomputed_on_resume(
    tmp_path, corruption, fragment
):
    grid = ScenarioGrid("corrupt", {"benchmark": ["mvt"], "scheme": ["gto", "ccws"]})
    runner = make_runner(grid, tmp_path)
    statuses = runner.run()
    pristine = artifact_bytes(runner)
    corruption(statuses[0].path)
    corrupt_bytes = statuses[0].path.read_bytes()

    # Aggregation still refuses corrupt inputs — only a resumed *run* heals.
    config = replace(ExperimentConfig.fast(), cache_dir=tmp_path)
    with pytest.raises(CorruptPointArtifact, match=fragment):
        aggregate(grid, config)

    report = runner.run_report(resume=True)
    # Exactly the corrupt point was quarantined and recomputed.
    assert [record.point.point_id for record in report.quarantined] == [
        statuses[0].point.point_id
    ]
    assert report.computed == 1 and report.skipped == 1
    # The corrupt file was moved aside, not deleted: the quarantined copy is
    # byte-for-byte what the corruption produced.
    record = report.quarantined[0]
    assert record.destination.parent == runner.quarantine_root
    assert record.destination.read_bytes() == corrupt_bytes
    # The recomputed artifact restores the pristine bytes, so aggregation works.
    assert artifact_bytes(runner) == pristine
    aggregate(grid, config)


# ---------------------------------------------------------------------------
# aggregation / schema
# ---------------------------------------------------------------------------

def test_aggregate_requires_every_point(tmp_path):
    grid = ScenarioGrid("partial", {"benchmark": ["mvt", "bfs"], "scheme": ["gto", "ccws"]})
    runner = make_runner(grid, tmp_path)
    runner.run(shard=(1, 2))
    config = replace(ExperimentConfig.fast(), cache_dir=tmp_path)
    with pytest.raises(ScenarioError, match="missing 2 of 4 point artifacts"):
        aggregate(grid, config)


def test_aggregate_payload_structure(tmp_path):
    grid = ScenarioGrid(
        "agg", {"benchmark": ["mvt", "bfs"], "scheme": ["gto", "ccws"], "l1_scale": [1, 2]}
    )
    runner = make_runner(grid, tmp_path)
    runner.run()
    config = replace(ExperimentConfig.fast(), cache_dir=tmp_path)
    payload = aggregate(grid, config)
    SweepSchema().validate(payload)
    assert payload["num_points"] == grid.size == len(payload["points"])
    # Every swept axis gets a sensitivity table covering its values.
    assert set(payload["sensitivity"]) == {"benchmark", "scheme", "l1_scale"}
    for axis, rows in payload["sensitivity"].items():
        assert [row["value"] for row in rows] == list(payload["axes"][axis])
        assert all(row["points"] == grid.size // len(rows) for row in rows)
    # best_scheme: one winner per non-scheme combination, argmax by speedup.
    assert len(payload["best_scheme"]) == 4  # 2 benchmarks × 2 scales
    by_point = {
        (entry["point"]["benchmark"], entry["point"]["l1_scale"]): entry
        for entry in payload["best_scheme"]
    }
    for entry_point, winner in by_point.items():
        competitors = [
            point_entry["metrics"]["speedup"]
            for point_entry in payload["points"]
            if (point_entry["point"]["benchmark"], point_entry["point"]["l1_scale"]) == entry_point
        ]
        assert winner["speedup"] == max(competitors)
    tables = sweep_tables(payload)
    assert len(tables) == 4  # three sensitivity tables + best-scheme
    path = write_sweep_artifact(payload, tmp_path)
    assert path == sweep_artifact_path(tmp_path, "agg", "fast")
    assert json.loads(path.read_text()) == payload


def test_best_scheme_tie_breaks_toward_first_scheme(tmp_path):
    grid = ScenarioGrid("tie", {"benchmark": ["mvt"], "scheme": ["ccws", "gto"]})

    def tied(point):
        metrics = stub_metrics(point)
        metrics["speedup"] = 1.0
        return metrics

    runner = make_runner(grid, tmp_path, evaluate=tied)
    runner.run()
    config = replace(ExperimentConfig.fast(), cache_dir=tmp_path)
    payload = aggregate(grid, config)
    assert payload["best_scheme"][0]["scheme"] == "ccws"


def test_schema_rejects_malformed_payloads(tmp_path):
    grid = ScenarioGrid("schema", {"benchmark": ["mvt"], "scheme": ["gto", "ccws"]})
    runner = make_runner(grid, tmp_path)
    runner.run()
    config = replace(ExperimentConfig.fast(), cache_dir=tmp_path)
    payload = aggregate(grid, config)
    schema = SweepSchema()
    schema.validate(payload)

    def broken(**changes):
        mutated = json.loads(json.dumps(payload))
        mutated.update(changes)
        return mutated

    with pytest.raises(ValueError, match="missing the 'axes'"):
        schema.validate({k: v for k, v in payload.items() if k != "axes"})
    with pytest.raises(ValueError, match="unexpected artifact kind"):
        schema.validate(broken(kind="other"))
    with pytest.raises(ValueError, match="num_points"):
        schema.validate(broken(num_points=99))
    with pytest.raises(ValueError, match="unknown axes"):
        schema.validate(broken(axes={"bogus": [1]}))
    with pytest.raises(ValueError, match="no points"):
        schema.validate(broken(points=[]))
    with pytest.raises(ValueError, match="missing metrics"):
        schema.validate(
            broken(points=[{**payload["points"][0], "metrics": {}}] + payload["points"][1:])
        )
    with pytest.raises(ValueError, match="duplicate point id"):
        schema.validate(
            broken(points=[payload["points"][0]] * 2, num_points=2)
        )
    with pytest.raises(ValueError, match="no sensitivity table"):
        schema.validate(broken(sensitivity={}))
    with pytest.raises(ValueError, match="does not cover the axis"):
        schema.validate(
            broken(sensitivity={**payload["sensitivity"], "scheme": []})
        )
    with pytest.raises(ValueError, match="unknown scheme"):
        schema.validate(broken(best_scheme=[{"point": {}, "scheme": "bogus", "speedup": 1.0}]))


# ---------------------------------------------------------------------------
# named grids
# ---------------------------------------------------------------------------

def test_named_grids_are_valid_and_unique():
    grids = named_grids()
    assert {"fig11-strides", "fig12-l1-size", "fig13-ablation", "smoke"} <= set(grids)
    for name, grid in grids.items():
        assert grid.name == name
        assert grid.size == len(grid.points())
    assert grids["smoke"].size == 16  # the CI shard-check grid stays tiny


def test_get_grid_unknown_name():
    with pytest.raises(ScenarioError, match="unknown sweep grid"):
        get_grid("bogus")


# ---------------------------------------------------------------------------
# real-simulation acceptance (tiny budgets)
# ---------------------------------------------------------------------------

def tiny_config(cache_dir) -> ExperimentConfig:
    return replace(
        ExperimentConfig.fast(), run_max_cycles=20_000, cache_dir=Path(cache_dir)
    )


def test_real_shard_union_matches_full_run(tmp_path):
    grid = get_grid("smoke")
    sharded = SweepRunner(grid, tiny_config(tmp_path / "A"), cache_dir=tmp_path / "A")
    sharded.run(shard=(1, 2))
    sharded.run(shard=(2, 2))
    full = SweepRunner(grid, tiny_config(tmp_path / "B"), cache_dir=tmp_path / "B")
    full.run()
    union = artifact_bytes(sharded)
    assert union == artifact_bytes(full)
    assert len(union) == grid.size
    # --resume after deleting one artifact recomputes exactly that point.
    victim = sharded.point_path(grid.points()[1])
    victim.unlink()
    statuses = sharded.run(resume=True)
    recomputed = [status.point.point_id for status in statuses if status.status == "computed"]
    assert recomputed == [grid.points()[1].point_id]
    assert artifact_bytes(sharded) == union


def test_real_parallel_jobs_match_serial_bytes(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    grid = get_grid("smoke")
    serial = SweepRunner(grid, tiny_config(tmp_path / "serial"), cache_dir=tmp_path / "serial")
    serial.run()
    parallel = SweepRunner(
        grid, tiny_config(tmp_path / "parallel"), cache_dir=tmp_path / "parallel"
    )
    parallel.run(jobs=2)
    assert artifact_bytes(parallel) == artifact_bytes(serial)


def test_engine_axis_points_have_identical_metrics(tmp_path):
    """The engine-parity grid's reason to exist: the same scenario pinned to
    each registered engine must produce identical metrics (caches are
    bypassed).  Enumerating ``ENGINES`` means a new engine is covered here
    the moment it is registered."""
    from repro.gpu.engine import ENGINES

    grid = ScenarioGrid(
        "parity", {"engine": list(ENGINES), "scheme": ["ccws"], "benchmark": ["mvt"]}
    )
    config = tiny_config(tmp_path)
    points = grid.points()
    assert tuple(point.engine for point in points) == ENGINES
    metrics = [evaluate_point(point, config) for point in points]
    for point, point_metrics in zip(points[1:], metrics[1:]):
        assert point_metrics == metrics[0], f"engine {point.engine} diverged"


def test_engine_axis_bypasses_profile_caches_too(tmp_path):
    """A profile-based scheme under a pinned engine must execute its
    profiling sweep on that engine: no result/profile cache entry is read
    or written, and every engine still agrees."""
    from repro.experiments import common as experiments_common
    from repro.gpu.engine import ENGINES

    config = replace(
        tiny_config(tmp_path),
        profile_cycles=2_000,
        profile_warmup=2_000,
        profile_n_step=12,
        profile_p_step=12,
        run_max_cycles=10_000,
    )
    saved_profiles = dict(experiments_common._PROFILE_CACHE)
    experiments_common._PROFILE_CACHE.clear()
    try:
        points = ScenarioGrid(
            "parity-swl",
            {"engine": list(ENGINES), "scheme": ["swl"], "benchmark": ["mvt"]},
        ).points()
        metrics = [evaluate_point(point, config) for point in points]
        for point, point_metrics in zip(points[1:], metrics[1:]):
            assert point_metrics == metrics[0], f"engine {point.engine} diverged"
        # Nothing leaked into the engine-agnostic caches.
        assert not (tmp_path / "runs").exists()
        assert not experiments_common._PROFILE_CACHE
    finally:
        experiments_common._PROFILE_CACHE.update(saved_profiles)
