"""Integration tests for the trace subsystem.

The load-bearing guarantee: capturing a simulated kernel and replaying the
trace reproduces the performance counters **bit-identically** to live
generation — under plain GTO and under the model-driven Poise controller.
Around that, these tests pin the adapter's flow through the profiler, the
scheme runners, the content-addressed cache, serialization, the registry
and the CLI.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.core.training import TrainedModel
from repro.experiments.common import (
    ExperimentConfig,
    _run_cache_key,
    clear_caches,
    get_profile,
    run_scheme_on_kernel,
)
from repro.runtime import serialization
from repro.trace.adapter import TraceKernelSpec, trace_benchmark_from_files, trace_kernel_from_file
from repro.trace.capture import TraceCapture, capture_kernel, capture_kernel_to_file
from repro.trace.codec import write_trace
from repro.trace.families import build_trace_benchmarks, family_kernel, family_names, generate_family_programs
from repro.workloads.generator import _PROGRAM_CACHE, generate_kernel_programs
from repro.workloads.registry import TRACE_ORDER, all_benchmarks, get_benchmark, trace_benchmarks
from repro.workloads.spec import KernelSpec

#: Small and memory-sensitive enough that schemes diverge but runs take
#: fractions of a second.
TINY_KERNEL = KernelSpec(
    name="trace_tiny",
    num_warps=6,
    instructions_per_warp=400,
    instructions_per_load=3,
    dep_distance=4,
    intra_warp_fraction=0.7,
    inter_warp_fraction=0.15,
    private_lines=48,
    shared_lines=96,
    seed=11,
)


def fixed_model() -> TrainedModel:
    """Hand-written weights: Poise behaviour without the training pipeline."""
    return TrainedModel(
        alpha_weights=[0.02, -0.03, 0.05, 0.01, -0.02, 0.04, 0.60, 0.30],
        beta_weights=[0.01, -0.02, 0.03, 0.02, -0.01, 0.02, 0.30, 0.15],
        max_warps=24,
    )


def tiny_config(cache_dir) -> ExperimentConfig:
    return replace(ExperimentConfig.fast(), run_max_cycles=30_000, cache_dir=cache_dir)


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_caches()
    yield
    clear_caches()


# ---------------------------------------------------------------------------
# Capture → replay bit-identity (the golden guarantee)
# ---------------------------------------------------------------------------


class TestCaptureReplay:
    @pytest.fixture(scope="class")
    def captured(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("captures") / "tiny.trc"
        content_hash, live = capture_kernel_to_file(TINY_KERNEL, path)
        return path, content_hash, live

    def test_capture_records_the_full_program(self, captured):
        path, _, _ = captured
        replayed = trace_kernel_from_file(path)
        assert generate_kernel_programs(replayed) == generate_kernel_programs(TINY_KERNEL)

    @pytest.mark.parametrize("scheme", ["gto", "poise"])
    def test_counters_bit_identical_to_live_generation(self, captured, scheme, tmp_path):
        path, _, _ = captured
        config = tiny_config(tmp_path)
        model = fixed_model() if scheme == "poise" else None
        trace_spec = trace_kernel_from_file(path)
        live = run_scheme_on_kernel(scheme, TINY_KERNEL, config, model=model, use_cache=False)
        replay = run_scheme_on_kernel(scheme, trace_spec, config, model=model, use_cache=False)
        assert replay.counters == live.counters
        assert replay.cycles == live.cycles
        assert replay.warp_tuple == live.warp_tuple

    def test_file_backed_spec_pins_the_content_hash(self, captured):
        path, content_hash, _ = captured
        spec = trace_kernel_from_file(path)
        assert spec.trace_hash == content_hash
        assert spec.num_warps == TINY_KERNEL.num_warps

    def test_tampered_trace_refuses_to_replay(self, captured, tmp_path):
        path, _, _ = captured
        spec = trace_kernel_from_file(path)
        other = tmp_path / "other.trc"
        write_trace(other, generate_kernel_programs(TINY_KERNEL)[:2], meta={"kernel": "x"})
        swapped = replace(spec, trace_path=str(other))
        with pytest.raises(ValueError, match="does not match"):
            generate_kernel_programs(swapped)

    def test_incomplete_capture_raises(self):
        with pytest.raises(RuntimeError, match="did not complete"):
            capture_kernel(TINY_KERNEL, max_cycles=50)

    def test_capture_hook_sees_every_issued_instruction(self):
        capture, result = capture_kernel(TINY_KERNEL)
        assert capture.num_warps == TINY_KERNEL.num_warps
        assert capture.instructions == result.counters.instructions


# ---------------------------------------------------------------------------
# Trace-native families through the whole scheme stack
# ---------------------------------------------------------------------------


def small_family_kernel(family: str) -> TraceKernelSpec:
    return family_kernel(
        family,
        f"{family}_small",
        num_warps=4,
        instructions_per_warp=300,
        seed=5,
        params=(("leaves", 512), ("matrix_lines", 16), ("table_lines", 256), ("width", 24)),
    )


class TestFamilies:
    def test_at_least_four_families_exist(self):
        assert len(family_names()) >= 4
        assert set(TRACE_ORDER) == set(name for name in family_names())

    @pytest.mark.parametrize("family", sorted({"stencil", "transpose", "gather", "treereduce", "phasemix"}))
    def test_family_generation_is_deterministic(self, family):
        spec = small_family_kernel(family)
        first = generate_family_programs(spec)
        second = generate_family_programs(spec)
        assert first == second
        assert len(first) == spec.num_warps
        assert any(instruction.is_load for program in first for instruction in program)

    def test_gather_chase_is_fully_dependent(self):
        programs = generate_family_programs(small_family_kernel("gather"))
        for program in programs:
            for instruction in program:
                if instruction.is_load:
                    assert instruction.dep_distance == 0

    def test_treereduce_produces_warp_imbalance(self):
        spec = family_kernel("treereduce", "imbalance", num_warps=8,
                             instructions_per_warp=100_000, params=(("leaves", 1024),))
        lengths = {len(program) for program in generate_family_programs(spec)}
        assert len(lengths) > 1  # warps retire at different tree depths

    @pytest.mark.parametrize("scheme", ["gto", "swl", "pcal", "poise", "static_best"])
    def test_families_run_end_to_end_on_every_scheme(self, scheme, tmp_path):
        config = tiny_config(tmp_path)
        model = fixed_model() if scheme == "poise" else None
        for family in family_names():
            spec = small_family_kernel(family)
            result = run_scheme_on_kernel(scheme, spec, config, model=model)
            assert result.cycles > 0
            assert result.counters.instructions > 0

    def test_registered_trace_suite(self):
        suite = trace_benchmarks()
        assert [benchmark.name for benchmark in suite] == TRACE_ORDER
        assert len(suite) >= 4
        for benchmark in suite:
            assert benchmark.role == "trace"
            assert benchmark.suite == "Trace"
            for kernel in benchmark.kernels:
                assert isinstance(kernel, TraceKernelSpec)
        assert set(TRACE_ORDER) <= set(all_benchmarks())
        assert get_benchmark("stencil").kernels[0].family == "stencil"
        assert build_trace_benchmarks()[0].name == TRACE_ORDER[0]


# ---------------------------------------------------------------------------
# Profiler, cache keys, serialization
# ---------------------------------------------------------------------------


class TestIntegration:
    def test_trace_kernel_flows_through_the_profiler(self, tmp_path):
        config = tiny_config(tmp_path)
        spec = small_family_kernel("phasemix")
        profile = get_profile(spec, config)
        assert profile.kernel == spec
        assert profile.ipc
        # The profile (including its trace-backed kernel) round-trips.
        restored = serialization.profile_from_dict(serialization.profile_to_dict(profile))
        assert restored.kernel == spec
        assert restored.ipc == profile.ipc

    def test_spec_payload_is_content_addressed_not_path_addressed(self, tmp_path):
        programs = generate_kernel_programs(TINY_KERNEL)
        write_trace(tmp_path / "a.trc", programs, meta={"kernel": "k"})
        write_trace(tmp_path / "b.trc", programs, meta={"kernel": "k"})
        write_trace(tmp_path / "c.trc", programs[:3], meta={"kernel": "k"})
        same_a = serialization.spec_payload(trace_kernel_from_file(tmp_path / "a.trc", name="k"))
        same_b = serialization.spec_payload(trace_kernel_from_file(tmp_path / "b.trc", name="k"))
        different = serialization.spec_payload(trace_kernel_from_file(tmp_path / "c.trc", name="k"))
        assert same_a == same_b  # same content, different path -> same key
        assert same_a != different  # different content -> different key
        assert "trace_path" not in same_a
        assert same_a["trace_hash"]

    def test_unverified_specs_fall_back_to_path_addressing(self, tmp_path):
        # Without a pinned hash the path must stay in the payload: two
        # same-shaped traces with different address streams may otherwise
        # serialise to the same cache key.
        write_trace(tmp_path / "a.trc", generate_kernel_programs(TINY_KERNEL),
                    meta={"kernel": "k"})
        write_trace(tmp_path / "b.trc",
                    generate_kernel_programs(replace(TINY_KERNEL, seed=12)),
                    meta={"kernel": "k"})
        unverified_a = serialization.spec_payload(
            trace_kernel_from_file(tmp_path / "a.trc", name="k", verify=False)
        )
        unverified_b = serialization.spec_payload(
            trace_kernel_from_file(tmp_path / "b.trc", name="k", verify=False)
        )
        assert unverified_a != unverified_b
        assert unverified_a["trace_path"]

    def test_run_cache_distinguishes_same_named_specs(self, tmp_path):
        config = tiny_config(tmp_path)
        path = tmp_path / "same_name.trc"
        write_trace(path, generate_kernel_programs(TINY_KERNEL)[:2], meta={"kernel": TINY_KERNEL.name})
        trace_spec = trace_kernel_from_file(path)
        assert trace_spec.name == TINY_KERNEL.name
        assert _run_cache_key("gto", TINY_KERNEL, config, None) != _run_cache_key(
            "gto", trace_spec, config, None
        )

    def test_kernel_spec_from_dict_restores_trace_subclass(self):
        import dataclasses
        import json

        spec = small_family_kernel("stencil")
        # Through JSON the params tuple pairs become lists, as in a disk entry.
        decoded = json.loads(json.dumps(dataclasses.asdict(spec)))
        restored = serialization.kernel_spec_from_dict(decoded)
        assert restored == spec
        assert isinstance(restored, TraceKernelSpec)
        assert hash(restored) == hash(spec)

    def test_training_pipeline_builds_examples_from_traces(self, tmp_path):
        from repro.workloads.spec import BenchmarkSpec

        config = tiny_config(tmp_path)
        spec = small_family_kernel("phasemix")
        benchmark = BenchmarkSpec(
            name="trace_training", suite="Trace", role="trace", kernels=[spec]
        )
        pipeline = config.training_pipeline()
        example = pipeline.build_example(benchmark, spec)
        assert example.kernel_name == spec.name
        assert example.max_warps == spec.num_warps
        assert len(example.features.as_list()) > 0

    def test_trace_benchmark_from_files(self, tmp_path):
        paths = []
        for index in range(2):
            path = tmp_path / f"part{index}.trc"
            write_trace(path, generate_kernel_programs(TINY_KERNEL)[: index + 2],
                        meta={"kernel": f"part{index}"})
            paths.append(path)
        benchmark = trace_benchmark_from_files("captured_pair", paths)
        assert benchmark.role == "trace"
        assert benchmark.num_kernels == 2
        assert [kernel.name for kernel in benchmark.kernels] == ["part0", "part1"]


# ---------------------------------------------------------------------------
# The bounded program cache (satellite)
# ---------------------------------------------------------------------------


class TestBoundedProgramCache:
    def test_capacity_is_enforced(self):
        _PROGRAM_CACHE.clear()
        for seed in range(_PROGRAM_CACHE.capacity + 4):
            generate_kernel_programs(
                KernelSpec(name=f"evict{seed}", num_warps=1, instructions_per_warp=30, seed=seed)
            )
        assert len(_PROGRAM_CACHE) == _PROGRAM_CACHE.capacity
        _PROGRAM_CACHE.clear()

    def test_synthetic_specs_hit_the_cache(self):
        _PROGRAM_CACHE.clear()
        spec = KernelSpec(name="cached", num_warps=2, instructions_per_warp=40)
        first = generate_kernel_programs(spec)
        assert len(_PROGRAM_CACHE) == 1
        assert generate_kernel_programs(spec) == first
        _PROGRAM_CACHE.clear()

    def test_trace_replay_bypasses_the_cache(self, tmp_path):
        _PROGRAM_CACHE.clear()
        path = tmp_path / "bypass.trc"
        write_trace(path, generate_kernel_programs(TINY_KERNEL), meta={"kernel": "bypass"})
        _PROGRAM_CACHE.clear()
        generate_kernel_programs(trace_kernel_from_file(path))
        generate_kernel_programs(small_family_kernel("gather"))
        assert len(_PROGRAM_CACHE) == 0  # trace-backed programs are never pinned
        _PROGRAM_CACHE.clear()


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestTraceCLI:
    def _main(self, argv, capsys):
        from repro.cli.main import main

        status = main(argv)
        return status, capsys.readouterr().out

    def test_gen_info_replay_workflow(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        out_dir = tmp_path / "traces"
        status, output = self._main(
            ["trace", "gen", "--out", str(out_dir), "--family", "gather"], capsys
        )
        assert status == 0
        trace_file = out_dir / "gather_k0.trc"
        assert trace_file.exists()
        assert "gather_k0" in output

        status, output = self._main(["trace", "info", str(trace_file)], capsys)
        assert status == 0
        assert "content hash" in output

        status, output = self._main(
            ["trace", "replay", str(trace_file), "--schemes", "gto", "--fast"], capsys
        )
        assert status == 0
        assert "gather_k0" in output and "gto" in output

    def test_capture_verify_roundtrip(self, tmp_path, capsys, monkeypatch):
        # The CLI captures registered benchmarks; register-free capture is
        # covered above, so drive the smallest registered one.
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        status, output = self._main(
            ["trace", "capture", "mvt", "--out", str(tmp_path), "--verify"], capsys
        )
        assert status == 0
        assert "bit-identical" in output
        assert (tmp_path / "mvt_k0.trc").exists()

    def test_info_reports_invalid_files(self, tmp_path, capsys):
        bad = tmp_path / "bad.trc"
        bad.write_bytes(b"junk")
        status = self._main(["trace", "info", str(bad)], capsys)[0]
        assert status == 1

    def test_list_workloads_flag(self, capsys):
        status, output = self._main(["list", "--workloads"], capsys)
        assert status == 0
        assert "Registered workloads" in output
        assert "trace-native" in output
        assert "stencil" in output
        assert "Registered experiments" in output
