"""Golden-counter regression tests.

PR 1 established the invariant that simulator/runtime optimisations keep the
performance counters **bit-identical**.  This test pins that guarantee to a
committed fixture: a tiny kernel is run under every evaluation scheme
(gto/swl/pcal/poise/static_best) and the resulting ``RunResult`` counters
must replay exactly — any drift (a changed int anywhere) fails the suite.

The Poise run uses a hand-written model with fixed weights, so the golden
run depends on no training pipeline and is deterministic by construction.

To regenerate the fixture after an *intentional* behaviour change::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden_counters.py -q
"""

from __future__ import annotations

import json
import os
from dataclasses import replace
from pathlib import Path

import pytest

from repro.core.training import TrainedModel
from repro.experiments.common import ExperimentConfig, run_scheme_on_kernel
from repro.runtime import serialization
from repro.workloads.spec import KernelSpec

FIXTURE_PATH = Path(__file__).resolve().parent / "data" / "golden_counters.json"

GOLDEN_SCHEMES = ("gto", "swl", "pcal", "poise", "static_best")

#: Small enough that all five runs take a few seconds, memory-sensitive
#: enough that the schemes actually diverge (different warp-tuples, different
#: hit rates) — a golden fixture where every scheme ties would catch nothing.
GOLDEN_KERNEL = KernelSpec(
    name="golden_kernel",
    num_warps=8,
    instructions_per_warp=900,
    instructions_per_load=3,
    dep_distance=4,
    intra_warp_fraction=0.7,
    inter_warp_fraction=0.15,
    private_lines=48,
    shared_lines=96,
    seed=7,
)


def golden_config(cache_dir: Path) -> ExperimentConfig:
    return replace(
        ExperimentConfig.fast(),
        run_max_cycles=40_000,
        cache_dir=cache_dir,
        label="golden",
    )


def golden_model() -> TrainedModel:
    """Fixed-weight model: the Poise controller's behaviour is pinned without
    depending on the (expensive) training pipeline."""
    return TrainedModel(
        alpha_weights=[0.02, -0.03, 0.05, 0.01, -0.02, 0.04, 0.60, 0.30],
        beta_weights=[0.01, -0.02, 0.03, 0.02, -0.01, 0.02, 0.30, 0.15],
        max_warps=24,
        dispersion_n=0.1,
        dispersion_p=0.1,
        num_training_kernels=0,
    )


def run_golden(cache_dir: Path) -> dict:
    config = golden_config(cache_dir)
    model = golden_model()
    schemes = {}
    for scheme in GOLDEN_SCHEMES:
        result = run_scheme_on_kernel(
            scheme,
            GOLDEN_KERNEL,
            config,
            model=model if scheme.startswith("poise") else None,
            use_cache=False,
        )
        schemes[scheme] = {
            "counters": serialization.counters_to_dict(result.counters),
            "cycles": result.cycles,
            "warp_tuple": list(result.warp_tuple),
            "completed": result.completed,
        }
    return {
        "kernel": GOLDEN_KERNEL.name,
        "run_max_cycles": config.run_max_cycles,
        "schemes": schemes,
    }


@pytest.fixture(scope="module")
def golden_replay(tmp_path_factory) -> dict:
    return run_golden(tmp_path_factory.mktemp("golden-cache"))


def test_fixture_exists_or_regenerate(golden_replay):
    if os.environ.get("REPRO_REGEN_GOLDEN") == "1":
        FIXTURE_PATH.parent.mkdir(parents=True, exist_ok=True)
        FIXTURE_PATH.write_text(json.dumps(golden_replay, indent=2, sort_keys=True) + "\n")
    assert FIXTURE_PATH.exists(), (
        f"golden fixture missing — regenerate with "
        f"REPRO_REGEN_GOLDEN=1 pytest {Path(__file__).name}"
    )


@pytest.mark.parametrize("scheme", GOLDEN_SCHEMES)
def test_counters_replay_bit_identical(golden_replay, scheme):
    fixture = json.loads(FIXTURE_PATH.read_text())
    expected = fixture["schemes"][scheme]
    actual = golden_replay["schemes"][scheme]
    assert actual["cycles"] == expected["cycles"]
    assert actual["warp_tuple"] == expected["warp_tuple"]
    assert actual["completed"] == expected["completed"]
    # Compare counter-by-counter so a drift names the counter that moved.
    for name, value in expected["counters"].items():
        assert actual["counters"][name] == value, f"{scheme}: counter {name!r} drifted"
    assert set(actual["counters"]) == set(expected["counters"])


def test_schemes_actually_diverge(golden_replay):
    """Guard the guard: if every scheme produced identical counters the
    fixture would be vacuous (e.g. the kernel became compute-bound)."""
    fingerprints = {
        json.dumps(entry["counters"], sort_keys=True)
        for entry in golden_replay["schemes"].values()
    }
    assert len(fingerprints) > 1
