"""Golden-counter regression tests.

PR 1 established the invariant that simulator/runtime optimisations keep the
performance counters **bit-identical**.  This test pins that guarantee to a
committed fixture: a tiny kernel is run under every evaluation scheme
(gto/swl/pcal/poise/static_best) and the resulting ``RunResult`` counters
must replay exactly — any drift (a changed int anywhere) fails the suite.

The Poise run uses a hand-written model with fixed weights, so the golden
run depends on no training pipeline and is deterministic by construction.

The fixture is engine-independent: both its base section and its
``extended`` section (a trace-family kernel whose structured address
stream the synthetic generator cannot express, plus a non-default
architecture point — 4 KB L1, 48-warp scheduler, 32-warp kernel) are
replayed under **every** engine registered in ``ENGINES`` against the same
golden counters.  A new engine must therefore reproduce the committed
fixture byte for byte *without regenerating it* — regeneration would mask
exactly the drift these tests exist to catch.

To regenerate the fixture after an *intentional* behaviour change::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden_counters.py -q
"""

from __future__ import annotations

import json
import os
from dataclasses import replace
from pathlib import Path

import pytest

from repro.core.training import TrainedModel
from repro.experiments.common import ExperimentConfig, run_scheme_on_kernel
from repro.gpu.config import CacheConfig, SMConfig
from repro.gpu.engine import ENGINES, pinned_engine
from repro.runtime import serialization
from repro.workloads.registry import get_benchmark
from repro.workloads.spec import KernelSpec

FIXTURE_PATH = Path(__file__).resolve().parent / "data" / "golden_counters.json"

GOLDEN_SCHEMES = ("gto", "swl", "pcal", "poise", "static_best")

#: Schemes used by the extended (engine-parity) cases — deliberately the
#: profile-free ones so the cases stay cheap under both engines.
EXTENDED_SCHEMES = ("gto", "ccws", "apcm")

#: Small enough that all five runs take a few seconds, memory-sensitive
#: enough that the schemes actually diverge (different warp-tuples, different
#: hit rates) — a golden fixture where every scheme ties would catch nothing.
GOLDEN_KERNEL = KernelSpec(
    name="golden_kernel",
    num_warps=8,
    instructions_per_warp=900,
    instructions_per_load=3,
    dep_distance=4,
    intra_warp_fraction=0.7,
    inter_warp_fraction=0.15,
    private_lines=48,
    shared_lines=96,
    seed=7,
)


def golden_config(cache_dir: Path) -> ExperimentConfig:
    return replace(
        ExperimentConfig.fast(),
        run_max_cycles=40_000,
        cache_dir=cache_dir,
        label="golden",
    )


def golden_model() -> TrainedModel:
    """Fixed-weight model: the Poise controller's behaviour is pinned without
    depending on the (expensive) training pipeline."""
    return TrainedModel(
        alpha_weights=[0.02, -0.03, 0.05, 0.01, -0.02, 0.04, 0.60, 0.30],
        beta_weights=[0.01, -0.02, 0.03, 0.02, -0.01, 0.02, 0.30, 0.15],
        max_warps=24,
        dispersion_n=0.1,
        dispersion_p=0.1,
        num_training_kernels=0,
    )


def extended_cases(cache_dir: Path) -> dict:
    """The engine-parity cases: (kernel, config) pairs beyond the baseline."""
    base = golden_config(cache_dir)
    trace_kernel = get_benchmark("stencil").kernels[0]
    wide_kernel = replace(
        GOLDEN_KERNEL, name="golden_kernel_wide", num_warps=32, private_lines=24
    )
    small_l1_wide_gpu = replace(
        base.gpu,
        sm=SMConfig(max_warps=48),
        l1=CacheConfig(size_bytes=4 * 1024, assoc=4, line_size=128, mshr_entries=32),
    )
    return {
        "trace_stencil": (trace_kernel, base),
        "small_l1_wide": (wide_kernel, base.with_gpu(small_l1_wide_gpu)),
    }


def _replay_schemes(kernel: KernelSpec, config: ExperimentConfig, schemes) -> dict:
    result_by_scheme = {}
    for scheme in schemes:
        result = run_scheme_on_kernel(
            scheme,
            kernel,
            config,
            model=golden_model() if scheme.startswith("poise") else None,
            use_cache=False,
        )
        result_by_scheme[scheme] = {
            "counters": serialization.counters_to_dict(result.counters),
            "cycles": result.cycles,
            "warp_tuple": list(result.warp_tuple),
            "completed": result.completed,
        }
    return result_by_scheme


def run_golden(cache_dir: Path) -> dict:
    config = golden_config(cache_dir)
    return {
        "kernel": GOLDEN_KERNEL.name,
        "run_max_cycles": config.run_max_cycles,
        "schemes": _replay_schemes(GOLDEN_KERNEL, config, GOLDEN_SCHEMES),
        "extended": {
            case: {
                "kernel": kernel.name,
                "schemes": _replay_schemes(kernel, case_config, EXTENDED_SCHEMES),
            }
            for case, (kernel, case_config) in extended_cases(cache_dir).items()
        },
    }


@pytest.fixture(scope="module")
def golden_replay(tmp_path_factory) -> dict:
    return run_golden(tmp_path_factory.mktemp("golden-cache"))


def test_fixture_exists_or_regenerate(golden_replay):
    if os.environ.get("REPRO_REGEN_GOLDEN") == "1":
        FIXTURE_PATH.parent.mkdir(parents=True, exist_ok=True)
        FIXTURE_PATH.write_text(json.dumps(golden_replay, indent=2, sort_keys=True) + "\n")
    assert FIXTURE_PATH.exists(), (
        f"golden fixture missing — regenerate with "
        f"REPRO_REGEN_GOLDEN=1 pytest {Path(__file__).name}"
    )


@pytest.mark.parametrize("scheme", GOLDEN_SCHEMES)
def test_counters_replay_bit_identical(golden_replay, scheme):
    fixture = json.loads(FIXTURE_PATH.read_text())
    expected = fixture["schemes"][scheme]
    actual = golden_replay["schemes"][scheme]
    assert actual["cycles"] == expected["cycles"]
    assert actual["warp_tuple"] == expected["warp_tuple"]
    assert actual["completed"] == expected["completed"]
    # Compare counter-by-counter so a drift names the counter that moved.
    for name, value in expected["counters"].items():
        assert actual["counters"][name] == value, f"{scheme}: counter {name!r} drifted"
    assert set(actual["counters"]) == set(expected["counters"])


@pytest.mark.parametrize("engine", ENGINES)
def test_base_counters_replay_under_every_engine(engine, tmp_path):
    """The base golden section replays byte-identically under every
    registered engine, against the committed fixture as-is.  This is the
    strongest form of the engine-parity guarantee: ``legacy``, ``fast`` and
    ``event`` all serialize to the very bytes already on disk."""
    fixture = json.loads(FIXTURE_PATH.read_text())
    config = golden_config(tmp_path / "cache")
    with pinned_engine(engine):
        replayed = _replay_schemes(GOLDEN_KERNEL, config, GOLDEN_SCHEMES)
    expected = {scheme: fixture["schemes"][scheme] for scheme in GOLDEN_SCHEMES}
    assert json.dumps(replayed, sort_keys=True) == json.dumps(expected, sort_keys=True), (
        f"base golden section drifted under engine {engine!r}"
    )


def test_schemes_actually_diverge(golden_replay):
    """Guard the guard: if every scheme produced identical counters the
    fixture would be vacuous (e.g. the kernel became compute-bound)."""
    fingerprints = {
        json.dumps(entry["counters"], sort_keys=True)
        for entry in golden_replay["schemes"].values()
    }
    assert len(fingerprints) > 1


# ---------------------------------------------------------------------------
# Extended cases: trace-family kernel + non-default architecture, both engines
# ---------------------------------------------------------------------------

EXTENDED_CASES = ("trace_stencil", "small_l1_wide")


@pytest.mark.parametrize("case", EXTENDED_CASES)
def test_extended_counters_replay(golden_replay, case):
    fixture = json.loads(FIXTURE_PATH.read_text())
    expected = fixture["extended"][case]
    actual = golden_replay["extended"][case]
    assert actual["kernel"] == expected["kernel"]
    for scheme, entry in expected["schemes"].items():
        assert actual["schemes"][scheme] == entry, f"{case}/{scheme} drifted"
    assert set(actual["schemes"]) == set(expected["schemes"])


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("case", EXTENDED_CASES)
def test_extended_engine_parity(case, engine, tmp_path):
    """Both engines replay the extended cases to the same golden counters —
    parity is pinned beyond the default architecture and workload family."""
    fixture = json.loads(FIXTURE_PATH.read_text())
    kernel, config = extended_cases(tmp_path)[case]
    with pinned_engine(engine):
        replayed = _replay_schemes(kernel, config, EXTENDED_SCHEMES)
    assert replayed == fixture["extended"][case]["schemes"], f"{case} under {engine}"


@pytest.mark.parametrize("case", EXTENDED_CASES)
def test_extended_schemes_diverge(golden_replay, case):
    fingerprints = {
        json.dumps(entry["counters"], sort_keys=True)
        for entry in golden_replay["extended"][case]["schemes"].values()
    }
    assert len(fingerprints) > 1
