"""End-to-end integration tests on the fast configuration.

These exercise the full train → save → load → infer → schedule pipeline on
the scaled-down configuration.  They are the slowest tests in the suite
(tens of seconds in total); the session-scoped ``tiny_model`` fixture is
shared between them.
"""

import pytest

from repro.core.model_store import load_model, save_model
from repro.experiments.common import run_scheme_on_benchmark, run_scheme_on_kernel
from repro.workloads.registry import get_benchmark


class TestTrainingPipeline:
    def test_model_trained_on_training_split_only(self, tiny_model):
        assert tiny_model.num_training_kernels >= 8
        assert len(tiny_model.alpha_weights) == 8
        assert len(tiny_model.beta_weights) == 8

    def test_model_round_trips_through_store(self, tiny_model, tmp_path):
        path = save_model(tiny_model, tmp_path / "model.json")
        loaded = load_model(path)
        assert loaded.alpha_weights == pytest.approx(tiny_model.alpha_weights)

    def test_model_predicts_valid_tuples_for_unseen_kernels(self, tiny_model, fast_config):
        pipeline = fast_config.training_pipeline()
        for benchmark_name in ("ii", "bfs"):
            spec = get_benchmark(benchmark_name).kernels[0]
            features = pipeline.sample_features(spec)
            n, p = tiny_model.predict(features, max_warps=spec.num_warps)
            assert 1 <= p <= n <= spec.num_warps


class TestSchemeExecution:
    def test_poise_runs_and_reports_epochs(self, tiny_model, fast_config):
        outcome = run_scheme_on_benchmark("poise", "ii", fast_config, model=tiny_model)
        assert outcome.speedup > 0.5
        assert outcome.telemetry  # per-kernel HIE telemetry present
        for telemetry in outcome.telemetry.values():
            assert telemetry["epochs"] >= 1

    def test_poise_benign_on_compute_intensive_benchmark(self, tiny_model, fast_config):
        outcome = run_scheme_on_benchmark("poise", "hotspot", fast_config, model=tiny_model)
        assert outcome.speedup > 0.85

    def test_static_best_never_far_below_baseline(self, fast_config):
        outcome = run_scheme_on_benchmark("static_best", "mm", fast_config)
        assert outcome.speedup >= 0.9

    def test_run_cache_returns_identical_result(self, fast_config):
        spec = get_benchmark("ii").kernels[0]
        first = run_scheme_on_kernel("gto", spec, fast_config)
        second = run_scheme_on_kernel("gto", spec, fast_config)
        assert first is second  # cached

    def test_warp_tuple_schemes_raise_l1_hit_rate_on_thrashing_benchmark(self, fast_config):
        gto = run_scheme_on_benchmark("gto", "mm", fast_config)
        swl = run_scheme_on_benchmark("swl", "mm", fast_config)
        assert swl.l1_hit_rate >= gto.l1_hit_rate - 0.02
