"""Unit tests for the GTO scheduler with vital/pollute bits."""

from repro.gpu.isa import alu, load
from repro.gpu.scheduler import GTOScheduler
from repro.gpu.warp import make_warps


def make_scheduler(num_warps=4, program_length=4, max_warps=4):
    programs = [[alu(pc=i) for i in range(program_length)] for _ in range(num_warps)]
    warps = make_warps(programs)
    return GTOScheduler(warps, max_warps=max_warps), warps


class TestWarpTupleControl:
    def test_default_tuple_is_maximum(self):
        scheduler, _ = make_scheduler()
        assert scheduler.warp_tuple == (4, 4)

    def test_set_warp_tuple_clamps_to_bounds(self):
        scheduler, _ = make_scheduler()
        scheduler.set_warp_tuple(100, 50)
        assert scheduler.warp_tuple == (4, 4)
        scheduler.set_warp_tuple(0, 0)
        assert scheduler.warp_tuple == (1, 1)
        scheduler.set_warp_tuple(3, 5)  # p must not exceed n
        assert scheduler.warp_tuple == (3, 3)

    def test_vital_and_pollute_bits_follow_oldest_warps(self):
        scheduler, warps = make_scheduler()
        scheduler.set_warp_tuple(2, 1)
        assert scheduler.is_vital(warps[0]) and scheduler.is_vital(warps[1])
        assert not scheduler.is_vital(warps[2]) and not scheduler.is_vital(warps[3])
        assert scheduler.is_polluting(warps[0]) and not scheduler.is_polluting(warps[1])

    def test_bits_refresh_when_a_warp_exits(self):
        scheduler, warps = make_scheduler(program_length=1)
        scheduler.set_warp_tuple(1, 1)
        # Retire the oldest warp; the next oldest must inherit the privileges.
        warps[0].advance()
        assert warps[0].done
        scheduler.on_warp_exit()
        assert scheduler.is_vital(warps[1]) and scheduler.is_polluting(warps[1])
        assert not scheduler.is_vital(warps[2])


class TestArbitration:
    def test_only_vital_warps_are_picked(self):
        scheduler, warps = make_scheduler()
        scheduler.set_warp_tuple(2, 2)
        picked = set()
        for _ in range(16):
            warp = scheduler.pick()
            assert warp is not None
            picked.add(warp.wid)
            warp.advance()
            if warp.done:
                scheduler.on_warp_exit()
        assert picked.issubset({0, 1, 2, 3})
        # The two oldest must have been scheduled before the others started.
        assert 0 in picked and 1 in picked

    def test_greedy_keeps_issuing_from_same_warp(self):
        scheduler, warps = make_scheduler()
        first = scheduler.pick()
        scheduler.note_issue(first)
        second = scheduler.pick()
        assert second is first

    def test_falls_back_to_oldest_ready_warp(self):
        programs = [[load(1, dep_distance=0), alu()], [alu(), alu()]]
        warps = make_warps(programs)
        scheduler = GTOScheduler(warps, max_warps=2)
        first = scheduler.pick()
        assert first.wid == 0
        # Warp 0 issues its load and stalls immediately on the dependence.
        first.record_load_issue(token=1, dep_distance=0, cycle=0)
        first.advance()
        scheduler.note_issue(first)
        assert not first.is_schedulable()
        fallback = scheduler.pick()
        assert fallback.wid == 1

    def test_pick_returns_none_when_all_vital_warps_stalled(self):
        programs = [[load(1, dep_distance=0), alu()], [alu(), alu()]]
        warps = make_warps(programs)
        scheduler = GTOScheduler(warps, max_warps=2)
        scheduler.set_warp_tuple(1, 1)
        warp = scheduler.pick()
        warp.record_load_issue(token=1, dep_distance=0, cycle=0)
        warp.advance()
        assert scheduler.pick() is None  # warp 1 is not vital

    def test_any_warp_active(self):
        scheduler, warps = make_scheduler(num_warps=1, program_length=1)
        assert scheduler.any_warp_active()
        warps[0].advance()
        assert not scheduler.any_warp_active()

    def test_reset_clears_greedy_state(self):
        scheduler, warps = make_scheduler()
        scheduler.note_issue(warps[2])
        scheduler.reset()
        assert scheduler.pick().wid == 0
