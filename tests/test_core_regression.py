"""Unit tests for the Negative Binomial / Poisson GLM estimators."""

import numpy as np
import pytest

from repro.core.regression import (
    NegativeBinomialRegression,
    PoissonRegression,
    RegressionError,
)


def synthetic_count_data(weights, n_samples=400, seed=0, dispersion=None):
    """Draw (X, y) with ln(E[y]) = X @ weights, optionally over-dispersed."""
    rng = np.random.default_rng(seed)
    n_features = len(weights)
    X = np.hstack([rng.uniform(0, 1, size=(n_samples, n_features - 1)), np.ones((n_samples, 1))])
    mu = np.exp(X @ np.asarray(weights))
    if dispersion is None:
        y = rng.poisson(mu)
    else:
        # NB2: gamma-mixed Poisson with variance mu + dispersion * mu^2.
        shape = 1.0 / dispersion
        y = rng.poisson(rng.gamma(shape, mu / shape))
    return X.tolist(), y.tolist()


class TestPoissonRegression:
    def test_recovers_known_weights(self):
        true_weights = [0.8, -0.5, 1.2]
        X, y = synthetic_count_data(true_weights)
        model = PoissonRegression()
        result = model.fit(X, y)
        assert result.converged
        assert np.allclose(model.weights, true_weights, atol=0.15)

    def test_predictions_match_conditional_mean(self):
        true_weights = [2.0, 1.0]
        X, y = synthetic_count_data(true_weights, n_samples=600, seed=3)
        model = PoissonRegression()
        model.fit(X, y)
        predicted = model.predict_mean(X)
        assert np.corrcoef(predicted, np.asarray(y))[0, 1] > 0.5

    def test_predict_before_fit_raises(self):
        with pytest.raises(RegressionError):
            PoissonRegression().predict([[1.0, 1.0]])

    def test_feature_dimension_mismatch_raises(self):
        X, y = synthetic_count_data([0.5, 1.0])
        model = PoissonRegression()
        model.fit(X, y)
        with pytest.raises(ValueError):
            model.predict([[1.0, 2.0, 3.0]])

    def test_too_few_samples_raises(self):
        with pytest.raises(RegressionError):
            PoissonRegression().fit([[1.0, 0.5, 1.0]], [3])

    def test_negative_targets_rejected(self):
        with pytest.raises(ValueError):
            PoissonRegression().fit([[1.0], [1.0]], [1, -2])


class TestNegativeBinomialRegression:
    def test_recovers_weights_under_overdispersion(self):
        true_weights = [1.0, -0.8, 1.5]
        X, y = synthetic_count_data(true_weights, n_samples=800, seed=7, dispersion=0.3)
        model = NegativeBinomialRegression()
        result = model.fit(X, y)
        assert np.allclose(model.weights, true_weights, atol=0.25)
        assert result.dispersion > 0.0

    def test_estimates_positive_dispersion_for_overdispersed_data(self):
        X, y = synthetic_count_data([1.2, 1.0], n_samples=800, seed=11, dispersion=0.5)
        model = NegativeBinomialRegression()
        model.fit(X, y)
        assert model.alpha > 0.05

    def test_fixed_alpha_is_respected(self):
        X, y = synthetic_count_data([0.7, 1.0], seed=5)
        model = NegativeBinomialRegression(alpha=0.25)
        model.fit(X, y)
        assert model.alpha == pytest.approx(0.25)

    def test_predictions_are_nonnegative_integers(self):
        X, y = synthetic_count_data([0.6, 0.9], seed=9, dispersion=0.2)
        model = NegativeBinomialRegression()
        model.fit(X, y)
        predictions = model.predict(X[:20])
        assert predictions.dtype.kind in "iu"
        assert (predictions >= 0).all()

    def test_predict_one_returns_scalar(self):
        X, y = synthetic_count_data([0.6, 0.9], seed=9)
        model = NegativeBinomialRegression()
        model.fit(X, y)
        value = model.predict_one(X[0])
        assert isinstance(value, float) and value >= 0.0

    def test_sample_count_mismatch_raises(self):
        with pytest.raises(ValueError):
            NegativeBinomialRegression().fit([[1.0], [1.0]], [1, 2, 3])

    def test_nb_and_poisson_agree_on_equidispersed_data(self):
        true_weights = [0.9, 1.1]
        X, y = synthetic_count_data(true_weights, n_samples=600, seed=13)
        nb = NegativeBinomialRegression()
        poisson = PoissonRegression()
        nb.fit(X, y)
        poisson.fit(X, y)
        assert np.allclose(nb.weights, poisson.weights, atol=0.1)
