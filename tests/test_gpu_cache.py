"""Unit tests for the set-associative cache model."""

import pytest

from repro.gpu.cache import SetAssociativeCache
from repro.gpu.config import CacheConfig


def make_cache(num_sets=4, assoc=2, indexing="linear"):
    config = CacheConfig(
        size_bytes=num_sets * assoc * 128,
        assoc=assoc,
        line_size=128,
        mshr_entries=4,
        indexing=indexing,
    )
    return SetAssociativeCache(config, name="test")


class TestBasicAccess:
    def test_first_access_misses_then_hits(self):
        cache = make_cache()
        first = cache.access(10, warp_id=0)
        assert not first.hit and first.allocated
        second = cache.access(10, warp_id=0)
        assert second.hit
        assert cache.hits == 1 and cache.misses == 1

    def test_probe_does_not_change_state(self):
        cache = make_cache()
        assert not cache.probe(5)
        cache.access(5, warp_id=0)
        hits_before = cache.hits
        assert cache.probe(5)
        assert cache.hits == hits_before

    def test_bypass_miss_does_not_allocate(self):
        cache = make_cache()
        result = cache.access(7, warp_id=0, allocate=False)
        assert not result.hit and not result.allocated
        assert cache.bypasses == 1
        assert not cache.probe(7)

    def test_bypassed_request_can_still_hit(self):
        cache = make_cache()
        cache.access(7, warp_id=0, allocate=True)
        result = cache.access(7, warp_id=1, allocate=False)
        assert result.hit

    def test_hit_rate_property(self):
        cache = make_cache()
        cache.access(1, 0)
        cache.access(1, 0)
        cache.access(2, 0)
        assert cache.accesses == 3
        assert cache.hit_rate == pytest.approx(1 / 3)


class TestReplacement:
    def test_lru_eviction_within_set(self):
        cache = make_cache(num_sets=1, assoc=2)
        cache.access(1, 0)
        cache.access(2, 0)
        cache.access(1, 0)  # touch 1, making 2 the LRU victim
        result = cache.access(3, 0)
        assert result.evicted_line_addr == 2
        assert cache.probe(1) and cache.probe(3) and not cache.probe(2)

    def test_invalid_lines_are_preferred_victims(self):
        cache = make_cache(num_sets=1, assoc=4)
        cache.access(1, 0)
        result = cache.access(2, 0)
        assert result.evicted_line_addr is None  # filled an invalid way
        assert cache.evictions == 0

    def test_working_set_larger_than_cache_thrashes(self):
        cache = make_cache(num_sets=2, assoc=2, indexing="linear")
        # 8 distinct lines cycling through a 4-line cache: zero hits.
        for _ in range(5):
            for line in range(8):
                cache.access(line, 0)
        assert cache.hits == 0

    def test_working_set_fitting_in_cache_hits(self):
        cache = make_cache(num_sets=2, assoc=2, indexing="linear")
        for _ in range(5):
            for line in range(4):
                cache.access(line, 0)
        assert cache.hit_rate > 0.7


class TestIndexing:
    def test_linear_indexing_maps_consecutive_lines_to_consecutive_sets(self):
        cache = make_cache(num_sets=4, assoc=2, indexing="linear")
        assert [cache.set_index(line) for line in range(4)] == [0, 1, 2, 3]
        assert cache.set_index(4) == 0

    def test_hash_indexing_stays_in_range(self):
        cache = make_cache(num_sets=4, assoc=2, indexing="hash")
        for line in range(0, 10_000, 37):
            assert 0 <= cache.set_index(line) < 4

    def test_hash_indexing_spreads_strided_addresses(self):
        # Addresses with stride == num_sets all collide under linear indexing;
        # the hashed index must spread them across more than one set.
        linear = make_cache(num_sets=8, assoc=2, indexing="linear")
        hashed = make_cache(num_sets=8, assoc=2, indexing="hash")
        addresses = [i * 8 for i in range(64)]
        linear_sets = {linear.set_index(a) for a in addresses}
        hashed_sets = {hashed.set_index(a) for a in addresses}
        assert len(linear_sets) == 1
        assert len(hashed_sets) > 1


class TestIntraInterWarpClassification:
    def test_same_warp_rereference_is_intra_warp(self):
        cache = make_cache()
        cache.access(9, warp_id=3)
        result = cache.access(9, warp_id=3)
        assert result.hit and result.intra_warp

    def test_other_warp_rereference_is_inter_warp(self):
        cache = make_cache()
        cache.access(9, warp_id=3)
        result = cache.access(9, warp_id=4)
        assert result.hit and not result.intra_warp

    def test_ownership_transfers_on_hit(self):
        cache = make_cache()
        cache.access(9, warp_id=3)
        cache.access(9, warp_id=4)
        result = cache.access(9, warp_id=4)
        assert result.intra_warp


class TestManagement:
    def test_flush_empties_the_cache(self):
        cache = make_cache()
        cache.access(1, 0)
        cache.access(2, 0)
        cache.flush()
        assert cache.resident_lines() == 0
        assert not cache.probe(1)

    def test_reset_stats_keeps_contents(self):
        cache = make_cache()
        cache.access(1, 0)
        cache.reset_stats()
        assert cache.hits == cache.misses == 0
        assert cache.probe(1)

    def test_resident_lines_counts_valid_lines(self):
        cache = make_cache(num_sets=2, assoc=2)
        for line in range(3):
            cache.access(line, 0)
        assert cache.resident_lines() == 3
