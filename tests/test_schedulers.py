"""Unit tests for the baseline warp-scheduling controllers."""

import pytest

from repro.gpu.gpu import GPU
from repro.profiling.profiler import StaticProfile
from repro.schedulers import (
    APCMPolicy,
    CCWSController,
    FixedTupleController,
    GTOController,
    PCALController,
    RandomRestartController,
    StaticBestController,
    SWLController,
    derive_swl_limit,
)
from repro.schedulers.apcm import APCMParameters
from repro.schedulers.ccws import CCWSParameters
from repro.schedulers.pcal import PCALParameters
from repro.schedulers.random_restart import RandomRestartParameters
from repro.workloads.generator import generate_kernel_programs
from repro.workloads.spec import KernelSpec
from tests.conftest import make_looping_program, make_streaming_program


def make_profile(grid, kernel=None, max_warps=8, baseline_ipc=1.0):
    profile = StaticProfile(
        kernel=kernel or KernelSpec(name="profiled"), max_warps=max_warps, baseline_ipc=baseline_ipc
    )
    profile.ipc.update(grid)
    return profile


@pytest.fixture
def memory_kernel_programs():
    spec = KernelSpec(
        name="sched_kernel", num_warps=12, instructions_per_warp=4000,
        instructions_per_load=3, dep_distance=5, intra_warp_fraction=0.85,
        inter_warp_fraction=0.08, private_lines=50, shared_lines=120, seed=21,
    )
    return generate_kernel_programs(spec)


class TestControllerBasics:
    def test_clamp_tuple(self):
        assert FixedTupleController.clamp_tuple(40, 40, 24) == (24, 24)
        assert FixedTupleController.clamp_tuple(0, 0, 24) == (1, 1)
        assert FixedTupleController.clamp_tuple(5, 9, 24) == (5, 5)

    def test_gto_runs_at_maximum_warps(self, small_gpu_config):
        result = GPU(small_gpu_config).run_kernel(
            [make_streaming_program(20)] * small_gpu_config.max_warps,
            controller=GTOController(),
        )
        assert result.warp_tuple == (small_gpu_config.max_warps, small_gpu_config.max_warps)

    def test_fixed_tuple_controller(self, small_gpu_config):
        result = GPU(small_gpu_config).run_kernel(
            [make_streaming_program(20)] * 4, controller=FixedTupleController(3, 1)
        )
        assert result.warp_tuple == (3, 1)


class TestSWL:
    def test_limit_derived_from_diagonal_best(self):
        grid = {(8, 8): 1.0, (4, 4): 1.3, (2, 2): 1.1, (6, 1): 1.5}
        assert derive_swl_limit(make_profile(grid)) == 4

    def test_limit_falls_back_to_baseline_when_diagonal_flat(self):
        grid = {(8, 8): 1.0, (4, 4): 1.001, (2, 2): 0.99}
        assert derive_swl_limit(make_profile(grid)) == 8

    def test_requires_limit_or_profile(self):
        with pytest.raises(ValueError):
            SWLController()

    def test_runs_on_the_diagonal(self, small_gpu_config):
        result = GPU(small_gpu_config).run_kernel(
            [make_streaming_program(20)] * 4, controller=SWLController(limit=2)
        )
        assert result.warp_tuple == (2, 2)
        assert result.telemetry["swl_limit"] == 2


class TestStaticBest:
    def test_uses_profile_best_point(self, small_gpu_config):
        grid = {(4, 4): 1.0, (3, 1): 1.4, (2, 2): 1.2}
        controller = StaticBestController(profile=make_profile(grid, max_warps=4))
        result = GPU(small_gpu_config).run_kernel(
            [make_streaming_program(20)] * 4, controller=controller
        )
        assert result.warp_tuple == (3, 1)

    def test_requires_tuple_or_profile(self):
        with pytest.raises(ValueError):
            StaticBestController()


class TestPCAL:
    def test_requires_start_point(self):
        with pytest.raises(ValueError):
            PCALController()

    def test_search_converges_to_valid_tuple(self, baseline_gpu_config, memory_kernel_programs):
        controller = PCALController(
            swl_limit=6,
            params=PCALParameters(warmup_cycles=200, sample_cycles=600, max_hill_steps=3),
        )
        result = GPU(baseline_gpu_config).run_kernel(
            memory_kernel_programs, controller=controller, max_cycles=25_000
        )
        n, p = result.telemetry["warp_tuple"]
        assert 1 <= p <= n <= 12
        assert result.telemetry["swl_limit"] == 6
        assert len(result.telemetry["visited"]) >= 1

    def test_visited_points_stay_in_bounds(self, baseline_gpu_config, memory_kernel_programs):
        controller = PCALController(
            swl_limit=4,
            params=PCALParameters(warmup_cycles=100, sample_cycles=300, max_hill_steps=2),
        )
        result = GPU(baseline_gpu_config).run_kernel(
            memory_kernel_programs, controller=controller, max_cycles=15_000
        )
        for n, p in result.telemetry["visited"]:
            assert 1 <= p <= n <= 12


class TestCCWS:
    def test_throttles_on_thrashing_workload(self, baseline_gpu_config):
        # Disjoint per-warp footprints much larger than the L1 thrash badly.
        programs = [
            make_looping_program(3000, footprint=60, base=warp * 1_000_000, dep=4)
            for warp in range(12)
        ]
        controller = CCWSController(CCWSParameters(epoch_cycles=2_000))
        result = GPU(baseline_gpu_config).run_kernel(
            programs, controller=controller, max_cycles=30_000
        )
        final_n, final_p = result.telemetry["warp_tuple"]
        assert final_n == final_p  # CCWS couples scheduling and allocation
        assert final_n < 12

    def test_does_not_throttle_cache_friendly_workload(self, baseline_gpu_config):
        programs = [
            make_looping_program(3000, footprint=2, base=warp * 10, dep=2) for warp in range(8)
        ]
        controller = CCWSController(CCWSParameters(epoch_cycles=2_000))
        result = GPU(baseline_gpu_config).run_kernel(
            programs, controller=controller, max_cycles=20_000
        )
        final_n, _ = result.telemetry["warp_tuple"]
        assert final_n == 8


class TestRandomRestart:
    def test_is_deterministic_for_a_seed(self, baseline_gpu_config, memory_kernel_programs):
        params = RandomRestartParameters(
            epoch_cycles=8_000, warmup_cycles=200, sample_cycles=500, seed=5
        )
        results = []
        for _ in range(2):
            result = GPU(baseline_gpu_config).run_kernel(
                memory_kernel_programs, controller=RandomRestartController(params),
                max_cycles=20_000,
            )
            results.append(tuple(result.telemetry["chosen_tuples"]))
        assert results[0] == results[1]

    def test_chosen_tuples_in_bounds(self, baseline_gpu_config, memory_kernel_programs):
        result = GPU(baseline_gpu_config).run_kernel(
            memory_kernel_programs,
            controller=RandomRestartController(
                RandomRestartParameters(epoch_cycles=6_000, warmup_cycles=100, sample_cycles=300)
            ),
            max_cycles=18_000,
        )
        for n, p in result.telemetry["chosen_tuples"]:
            assert 1 <= p <= n <= 12


class TestAPCM:
    def test_streaming_pc_gets_bypassed_after_learning(self):
        policy = APCMPolicy(APCMParameters(learning_accesses=8, bypass_hit_rate=0.1))
        from repro.gpu.isa import load

        streaming_load = load(1, pc=7)
        for _ in range(8):
            policy.observe_access(streaming_load, warp_id=0, hit=False)
        assert not policy.allow_allocate(streaming_load, warp_id=0)
        assert 7 in policy.bypassed_pcs()

    def test_high_locality_pc_keeps_allocating(self):
        policy = APCMPolicy(APCMParameters(learning_accesses=8, bypass_hit_rate=0.1))
        from repro.gpu.isa import load

        hot_load = load(2, pc=9)
        for index in range(10):
            policy.observe_access(hot_load, warp_id=0, hit=index > 0)
        assert policy.allow_allocate(hot_load, warp_id=0)
        assert 9 not in policy.bypassed_pcs()

    def test_policy_defaults_to_allocate_while_learning(self):
        policy = APCMPolicy()
        from repro.gpu.isa import load

        assert policy.allow_allocate(load(3, pc=1), warp_id=0)

    def test_apcm_reduces_pollution_from_streaming_warps(self, baseline_gpu_config):
        # One warp loops over a small footprint, others stream from a single
        # static load site each.  APCM should learn to bypass the streaming
        # PCs, protecting the hot warp's lines.
        from repro.gpu.isa import load

        hot = make_looping_program(2000, footprint=16, base=0, dep=3)
        streams = [
            [load((warp + 1) * 1_000_000 + index, dep_distance=3, pc=500 + warp) for index in range(2000)]
            for warp in range(8)
        ]
        policy = APCMPolicy(APCMParameters(learning_accesses=32, bypass_hit_rate=0.05))
        gpu = GPU(baseline_gpu_config)
        with_apcm = gpu.run_kernel([hot] + streams, cache_policy=policy, max_cycles=25_000)
        without = gpu.run_kernel([hot] + streams, max_cycles=25_000)
        assert with_apcm.counters.l1_bypasses > 0
        assert with_apcm.l1_hit_rate >= without.l1_hit_rate - 0.02
