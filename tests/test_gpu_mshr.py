"""Unit tests for the MSHR file."""

import pytest

from repro.gpu.mshr import MSHRFile


class TestMSHRFile:
    def test_requires_positive_capacity(self):
        with pytest.raises(ValueError):
            MSHRFile(0)

    def test_allocate_new_entry(self):
        mshr = MSHRFile(2)
        assert mshr.allocate(100, warp_id=0, token=1) == "allocated"
        assert mshr.occupancy == 1
        assert mshr.allocations == 1

    def test_merge_into_existing_entry(self):
        mshr = MSHRFile(2)
        mshr.allocate(100, warp_id=0, token=1)
        assert mshr.allocate(100, warp_id=1, token=2) == "merged"
        assert mshr.occupancy == 1
        assert mshr.merges == 1

    def test_full_file_rejects_new_lines_but_merges_existing(self):
        mshr = MSHRFile(1)
        mshr.allocate(100, 0, 1)
        assert mshr.allocate(200, 0, 2) == "full"
        assert mshr.stalls == 1
        assert mshr.allocate(100, 1, 3) == "merged"

    def test_release_returns_all_waiters_in_order(self):
        mshr = MSHRFile(2)
        mshr.allocate(100, 0, 1)
        mshr.allocate(100, 1, 2)
        mshr.allocate(100, 2, 3)
        waiters = mshr.release(100)
        assert waiters == [(0, 1), (1, 2), (2, 3)]
        assert mshr.occupancy == 0

    def test_release_unknown_line_is_empty(self):
        mshr = MSHRFile(2)
        assert mshr.release(123) == []

    def test_release_frees_capacity(self):
        mshr = MSHRFile(1)
        mshr.allocate(100, 0, 1)
        mshr.release(100)
        assert mshr.allocate(200, 0, 2) == "allocated"

    def test_lookup(self):
        mshr = MSHRFile(2)
        assert mshr.lookup(5) is None
        mshr.allocate(5, 0, 1)
        assert mshr.lookup(5).line_addr == 5

    def test_clear(self):
        mshr = MSHRFile(2)
        mshr.allocate(5, 0, 1)
        mshr.clear()
        assert mshr.occupancy == 0
