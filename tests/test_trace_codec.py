"""Codec tests: Hypothesis round-trips plus malformed-file behaviour.

The codec's contract: any per-warp instruction stream survives a
write→read round trip exactly, identical content always produces identical
bytes and content hashes, and every damaged input — truncation, corruption,
a foreign file, a future format version — raises :class:`TraceFormatError`
rather than yielding garbage programs.
"""

from __future__ import annotations

import gzip
import json
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.isa import Instruction, alu, load
from repro.trace.codec import (
    FORMAT_VERSION,
    MAGIC,
    TraceFormatError,
    TraceReader,
    TraceWriter,
    read_trace_meta,
    read_trace_programs,
    trace_content_hash,
    trace_stats,
    write_trace,
)

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

_alu = st.builds(alu, pc=st.integers(min_value=0, max_value=2**32 - 1))
_load = st.builds(
    load,
    st.integers(min_value=0, max_value=2**64 - 1),
    dep_distance=st.integers(min_value=0, max_value=2**16 - 1),
    pc=st.integers(min_value=0, max_value=2**32 - 1),
)
_program = st.lists(st.one_of(_alu, _load), max_size=120)
_programs = st.lists(_program, min_size=0, max_size=6)


# ---------------------------------------------------------------------------
# Round trips
# ---------------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(programs=_programs)
def test_roundtrip_arbitrary_streams(tmp_path_factory, programs):
    path = tmp_path_factory.mktemp("codec") / "t.trc"
    write_trace(path, programs, meta={"kernel": "hyp"})
    assert read_trace_programs(path) == programs


@settings(max_examples=25, deadline=None)
@given(programs=_programs, meta_extra=st.dictionaries(st.text(max_size=8), st.integers(), max_size=3))
def test_meta_roundtrip(tmp_path_factory, programs, meta_extra):
    path = tmp_path_factory.mktemp("codec") / "t.trc"
    meta = {"kernel": "hyp", **{f"x_{k}": v for k, v in meta_extra.items()}}
    write_trace(path, programs, meta=meta)
    read_meta, num_warps = read_trace_meta(path)
    assert num_warps == len(programs)
    for key, value in meta.items():
        assert read_meta[key] == value
    assert read_meta["instruction_counts"] == [len(p) for p in programs]


def test_sequential_alu_runs_collapse_and_restore(tmp_path):
    # The ALU_RUN record: sequential-PC ALU stretches are the common case and
    # must restore instruction-for-instruction.
    program = [alu(pc=pc) for pc in range(50)]
    program.append(load(123, dep_distance=3, pc=7))
    program.extend(alu(pc=pc) for pc in range(90, 95))
    program.append(alu(pc=17))  # non-sequential ALU after a run
    path = tmp_path / "runs.trc"
    write_trace(path, [program], meta={"kernel": "runs"})
    assert read_trace_programs(path) == [program]


def test_identical_content_identical_bytes_and_hash(tmp_path):
    program = [alu(pc=0), load(42, dep_distance=2, pc=1), alu(pc=2)]
    h1 = write_trace(tmp_path / "a.trc", [program], meta={"kernel": "k"})
    h2 = write_trace(tmp_path / "b.trc", [program], meta={"kernel": "k"})
    assert h1 == h2
    assert (tmp_path / "a.trc").read_bytes() == (tmp_path / "b.trc").read_bytes()
    assert trace_content_hash(tmp_path / "a.trc") == h1


def test_different_content_different_hash(tmp_path):
    h1 = write_trace(tmp_path / "a.trc", [[load(1, pc=0)]], meta={"kernel": "k"})
    h2 = write_trace(tmp_path / "b.trc", [[load(2, pc=0)]], meta={"kernel": "k"})
    assert h1 != h2


def test_lazy_iteration_stops_early(tmp_path):
    programs = [[alu(pc=i) for i in range(20)] for _ in range(4)]
    path = tmp_path / "lazy.trc"
    write_trace(path, programs, meta={"kernel": "k"})
    with TraceReader(path) as reader:
        warp_id, first = next(reader.iter_warps())
    assert warp_id == 0
    assert first == programs[0]


def test_stats_summarise_without_materialising(tmp_path):
    programs = [
        [alu(pc=0), load(10, pc=1), load(10, pc=2)],
        [load(11, pc=0)],
    ]
    path = tmp_path / "stats.trc"
    write_trace(path, programs, meta={"kernel": "k"})
    stats = trace_stats(path)
    assert stats["num_warps"] == 2
    assert stats["instructions"] == 4
    assert stats["loads"] == 3
    assert stats["unique_lines"] == 2
    assert [row["instructions"] for row in stats["per_warp"]] == [3, 1]


# ---------------------------------------------------------------------------
# Writer validation
# ---------------------------------------------------------------------------


def test_writer_rejects_out_of_range_fields(tmp_path):
    with pytest.raises(ValueError, match="16-bit"):
        write_trace(tmp_path / "dep.trc", [[load(1, dep_distance=1 << 16, pc=0)]])
    with pytest.raises(ValueError, match="32-bit"):
        write_trace(tmp_path / "pc.trc", [[alu(pc=1 << 32)]])


def test_writer_enforces_declared_warp_count(tmp_path):
    writer = TraceWriter(tmp_path / "short.trc", meta={}, num_warps=2)
    writer.write_warp(0, [alu(pc=0)])
    with pytest.raises(ValueError, match="2 warps but 1"):
        writer.close()
    with pytest.raises(ValueError, match="closed"):
        writer.write_warp(1, [])


# ---------------------------------------------------------------------------
# Malformed files
# ---------------------------------------------------------------------------


def _valid_trace(tmp_path, warps: int = 3):
    programs = [
        [alu(pc=i) for i in range(30)] + [load(100 + w, dep_distance=1, pc=31)]
        for w in range(warps)
    ]
    path = tmp_path / "valid.trc"
    write_trace(path, programs, meta={"kernel": "victim"})
    return path


def test_truncated_file_raises(tmp_path):
    path = _valid_trace(tmp_path)
    data = path.read_bytes()
    for cut in (0, 10, len(data) // 2, len(data) - 2):
        (tmp_path / "cut.trc").write_bytes(data[:cut])
        with pytest.raises(TraceFormatError):
            read_trace_programs(tmp_path / "cut.trc")


def test_not_a_gzip_file_raises(tmp_path):
    path = tmp_path / "garbage.trc"
    path.write_bytes(b"this is definitely not a trace file, not even gzip")
    with pytest.raises(TraceFormatError):
        read_trace_programs(path)


def test_wrong_magic_raises(tmp_path):
    path = tmp_path / "foreign.trc"
    with gzip.open(path, "wb") as stream:
        stream.write(struct.pack("<8sHHI", b"NOTPOISE", FORMAT_VERSION, 0, 0))
    with pytest.raises(TraceFormatError, match="magic"):
        read_trace_programs(path)


def test_version_mismatch_raises(tmp_path):
    path = tmp_path / "future.trc"
    with gzip.open(path, "wb") as stream:
        stream.write(struct.pack("<8sHHI", MAGIC, 99, 0, 0))
    with pytest.raises(TraceFormatError, match="version 99"):
        read_trace_programs(path)


def test_unknown_flags_raise(tmp_path):
    path = tmp_path / "flags.trc"
    with gzip.open(path, "wb") as stream:
        stream.write(struct.pack("<8sHHI", MAGIC, FORMAT_VERSION, 0x8000, 0))
    with pytest.raises(TraceFormatError, match="flags"):
        read_trace_programs(path)


def test_corrupt_metadata_raises(tmp_path):
    path = tmp_path / "meta.trc"
    blob = b"{not json"
    with gzip.open(path, "wb") as stream:
        stream.write(struct.pack("<8sHHI", MAGIC, FORMAT_VERSION, 0, len(blob)))
        stream.write(blob)
    with pytest.raises(TraceFormatError, match="metadata"):
        read_trace_programs(path)


def test_unknown_record_kind_raises(tmp_path):
    path = tmp_path / "record.trc"
    meta = json.dumps({}).encode()
    with gzip.open(path, "wb") as stream:
        stream.write(struct.pack("<8sHHI", MAGIC, FORMAT_VERSION, 0, len(meta)))
        stream.write(meta)
        stream.write(struct.pack("<I", 1))  # one warp
        stream.write(bytes((0xA0,)) + struct.pack("<I", 0))  # warp start
        stream.write(bytes((0x77,)))  # bogus record kind
    with pytest.raises(TraceFormatError, match="unknown record kind"):
        read_trace_programs(path)


def test_flipped_payload_byte_never_yields_wrong_programs(tmp_path):
    """Bit flips in the compressed stream must surface as TraceFormatError
    (zlib/CRC/structural), never as a silently different program."""
    path = _valid_trace(tmp_path)
    original = read_trace_programs(path)
    data = bytearray(path.read_bytes())
    detected = 0
    for offset in range(12, len(data) - 9, 7):  # skip gzip header, vary offsets
        mutated = bytearray(data)
        mutated[offset] ^= 0xFF
        target = tmp_path / "flip.trc"
        target.write_bytes(bytes(mutated))
        try:
            programs = read_trace_programs(target)
            # The flip may land in bytes gzip tolerates (e.g. ISIZE field);
            # if the decode succeeds the content must be untouched.
            assert programs == original
        except TraceFormatError:
            detected += 1
    assert detected > 0  # most flips must be caught loudly
