"""Pre/post-refactor artifact regression for the sensitivity figures.

PR 5 refactored fig11/fig12/fig13 from bespoke nested loops onto the
declarative :mod:`repro.scenarios` grid subsystem.  These tests pin the
refactor's contract: the emitted artifact JSON — tables, scalars, notes,
every float bit — is identical to what the pre-refactor loops produced.

The committed fixtures under ``tests/data/prerefactor_*.json`` were
generated *before* the refactor (same commit, loop implementation) on a
reduced ``--fast`` budget: two evaluation benchmarks and a two-value axis
per figure, so the whole file runs in well under a minute while still
exercising the model/stride/L1-scale/feature-mask paths.

To regenerate after an *intentional* behaviour change::

    REPRO_REGEN_FIG_FIXTURES=1 PYTHONPATH=src \
        python -m pytest tests/test_fig_refactor_regression.py -q
"""

from __future__ import annotations

import json
import os
from dataclasses import replace
from pathlib import Path

import pytest

from repro.experiments import (
    fig11_stride_sensitivity,
    fig12_l1_size_sensitivity,
    fig13_feature_ablation,
)
from repro.experiments.common import _MODEL_CACHE, ExperimentConfig

DATA_DIR = Path(__file__).resolve().parent / "data"

#: Reduced axes: enough to exercise every code path the full figures use
#: (reference + swept value, model reuse across points) at test-budget cost.
REGRESSION_BENCHMARKS = ["syr2k", "syrk"]

CASES = {
    "fig11": (
        fig11_stride_sensitivity.Fig11StrideSensitivity,
        {"strides": [(0, 0), (1, 1)], "benchmarks": REGRESSION_BENCHMARKS},
    ),
    "fig12": (
        fig12_l1_size_sensitivity.Fig12L1SizeSensitivity,
        {"scales": [1, 2], "benchmarks": REGRESSION_BENCHMARKS},
    ),
    "fig13": (
        fig13_feature_ablation.Fig13FeatureAblation,
        {"ablations": [6], "benchmarks": REGRESSION_BENCHMARKS},
    ),
}


def fixture_path(experiment_id: str) -> Path:
    return DATA_DIR / f"prerefactor_{experiment_id}_fast.json"


@pytest.fixture()
def regression_config(tmp_path, tiny_model) -> ExperimentConfig:
    """The fast configuration on a throwaway cache, with the session-trained
    model primed so ``train_or_load_model`` never retrains inside the test."""
    config = replace(ExperimentConfig.fast(), cache_dir=tmp_path)
    _MODEL_CACHE.setdefault(f"{config.cache_key}-masknone", tiny_model)
    return config


@pytest.mark.parametrize("experiment_id", sorted(CASES))
def test_artifact_identical_to_prerefactor(regression_config, experiment_id):
    cls, overrides = CASES[experiment_id]
    payload = cls().build(regression_config, **overrides).to_dict()
    path = fixture_path(experiment_id)
    if os.environ.get("REPRO_REGEN_FIG_FIXTURES") == "1":
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    assert path.exists(), (
        f"fixture {path.name} missing — regenerate with REPRO_REGEN_FIG_FIXTURES=1"
    )
    expected = json.loads(path.read_text())
    # Compare piecewise so a drift names what moved before the full diff.
    assert payload["scalars"] == expected["scalars"]
    assert payload["notes"] == expected["notes"]
    actual_tables = {table["title"]: table for table in payload["tables"]}
    expected_tables = {table["title"]: table for table in expected["tables"]}
    assert sorted(actual_tables) == sorted(expected_tables)
    for title, table in expected_tables.items():
        assert actual_tables[title]["columns"] == table["columns"], title
        assert actual_tables[title]["rows"] == table["rows"], title
    assert payload == expected


@pytest.mark.parametrize("experiment_id", sorted(CASES))
def test_schema_still_validates_defaults(experiment_id):
    """The declared artifact schemas (full default axes) survived the
    refactor: required scalar/table names still match the default grids."""
    cls, _ = CASES[experiment_id]
    schema = cls.schema
    assert schema.required_scalars, experiment_id
    assert schema.required_tables, experiment_id
