"""Tests for the hardware cost accounting of Section VII-I."""

import pytest

from repro.core.hardware_cost import HardwareCostModel


class TestHardwareCost:
    def test_matches_paper_inventory(self):
        cost = HardwareCostModel()
        assert cost.counter_bits_total == 7 * 32
        assert cost.fsm_bits_total == 6
        assert cost.warp_bits_total == 96

    def test_bytes_per_sm_close_to_paper_value(self):
        cost = HardwareCostModel()
        assert cost.bytes_per_sm == pytest.approx(40.75, abs=0.01)

    def test_total_close_to_paper_value(self):
        cost = HardwareCostModel()
        assert cost.bytes_total == pytest.approx(1304, abs=1.0)

    def test_breakdown_sums_to_total(self):
        cost = HardwareCostModel()
        breakdown = cost.breakdown()
        assert (
            breakdown["performance_counter_bits"]
            + breakdown["fsm_bits"]
            + breakdown["warp_queue_bits"]
        ) == cost.bits_per_sm

    def test_scaling_with_more_sms(self):
        cost = HardwareCostModel(num_sms=64)
        assert cost.bytes_total == pytest.approx(2 * 1304, abs=2.0)
