"""Multi-SM chips and DAG-structured workloads.

Covers the multi-SM / kernel-graph subsystem end to end:

* :class:`~repro.workloads.graph.KernelGraph` validation (duplicate names,
  unknown edges, self-edges, cycles) and the standard mix shapes;
* engine conformance — the legacy N-SM chip is the oracle and fast/event
  must reproduce it bit for bit, both for plain multi-SM kernel runs and
  for whole DAG schedules (Hypothesis over small graphs, ``num_sms`` ∈
  {1, 2, 4});
* the single-SM escape hatch: ``num_sms=1`` replays the committed golden
  fixture byte-identically under every engine, so the chip model cannot
  perturb the seed's counters;
* measurable contention: a memory-bound parallel mix on a 2-SM chip must
  show *sub-linear* aggregate IPC versus two isolated runs (the shared
  L2/DRAM busy-servers are actually shared);
* graph capture/replay through the POISETRC codec (bit-identical replay,
  tamper detection);
* cache-key hygiene: every ``GPUConfig`` field — present and future —
  must perturb ``ExperimentConfig.cache_key`` (the guard the field-digest
  in ``cache_key`` exists to satisfy), and graph runs must hit their own
  result caches;
* the ``num_sms`` / ``kernel_mix`` scenario axes (validation, config
  plumbing, override parsing, sweep metrics).
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import replace
from pathlib import Path

import pytest
from hypothesis import given, settings

from engine_conformance import (
    CANDIDATE_ENGINES,
    SM_COUNTS,
    assert_conformance,
    assert_graph_conformance,
    kernel_specs,
    multi_sm_archs,
    run_graph_snapshot,
    small_graphs,
)
from repro.experiments.common import (
    ExperimentConfig,
    mix_graph_for_benchmark,
    run_graph_for_config,
    run_mix_on_benchmark,
)
from repro.gpu.config import GPUConfig, baseline_config
from repro.gpu.engine import ENGINE_LEGACY, ENGINES
from repro.gpu.gpu import GPU
from repro.runtime import serialization
from repro.scenarios.grid import ScenarioError, ScenarioGrid, ScenarioPoint, canonical_axis_value
from repro.scenarios.library import parse_override_value
from repro.trace.codec import TraceFormatError
from repro.trace.graphio import capture_graph_to_dir, load_graph_trace
from repro.workloads.generator import generate_kernel_programs
from repro.workloads.graph import (
    MIX_SHAPES,
    GraphError,
    KernelGraph,
    mix_graph,
    shaped_graph,
)
from repro.workloads.spec import KernelSpec


def _spec(name: str, seed: int = 11, **changes) -> KernelSpec:
    base = dict(
        name=name,
        num_warps=6,
        instructions_per_warp=240,
        instructions_per_load=3,
        dep_distance=2,
        intra_warp_fraction=0.5,
        inter_warp_fraction=0.1,
        private_lines=24,
        shared_lines=48,
        seed=seed,
    )
    base.update(changes)
    return KernelSpec(**base)


def _chip_config(num_sms: int = 2, **overrides) -> GPUConfig:
    return baseline_config(max_cycles=60_000, num_sms=num_sms, **overrides)


# ---------------------------------------------------------------------------
# KernelGraph validation and shapes
# ---------------------------------------------------------------------------

class TestKernelGraph:
    def test_duplicate_node_names_rejected(self):
        with pytest.raises(GraphError, match="duplicate node names"):
            KernelGraph(nodes=(_spec("a"), _spec("a")))

    def test_unknown_edge_endpoint_rejected(self):
        with pytest.raises(GraphError, match="unknown node"):
            KernelGraph(nodes=(_spec("a"), _spec("b")), edges=(("a", "zz"),))

    def test_self_edge_rejected(self):
        with pytest.raises(GraphError, match="self-edge"):
            KernelGraph(nodes=(_spec("a"), _spec("b")), edges=(("a", "a"),))

    def test_cycle_rejected(self):
        with pytest.raises(GraphError, match="cycle"):
            KernelGraph(
                nodes=(_spec("a"), _spec("b"), _spec("c")),
                edges=(("a", "b"), ("b", "c"), ("c", "a")),
            )

    def test_topo_order_prefers_node_position(self):
        graph = KernelGraph(
            nodes=(_spec("c"), _spec("a"), _spec("b")),
            edges=(("c", "b"),),
        )
        # 'c' and 'a' are both ready; 'c' comes first in the node tuple.
        assert graph.topo_order() == ("c", "a", "b")

    @pytest.mark.parametrize("shape,expected", [
        ("chain", (("a", "b"), ("b", "c"))),
        ("fanout", (("a", "b"), ("a", "c"))),
        ("diamond", (("a", "b"), ("b", "c"))),
        ("parallel", ()),
    ])
    def test_shapes_three_nodes(self, shape, expected):
        graph = shaped_graph((_spec("a"), _spec("b"), _spec("c")), shape)
        assert graph.edges == expected

    def test_diamond_four_nodes(self):
        graph = shaped_graph((_spec("a"), _spec("b"), _spec("c"), _spec("d")), "diamond")
        assert graph.edges == (("a", "b"), ("a", "c"), ("b", "d"), ("c", "d"))

    def test_mix_graph_pads_single_kernel(self):
        graph = mix_graph([_spec("solo", seed=5)], "chain")
        assert len(graph.nodes) == 2
        assert graph.node_names == ("solo", "solo_mix0")
        assert graph.nodes[1].seed == 5 + 101
        assert graph.edges == (("solo", "solo_mix0"),)

    def test_mix_graph_rejects_unknown_shape(self):
        with pytest.raises(GraphError, match="unknown kernel mix"):
            mix_graph([_spec("a")], "ring")

    def test_mix_graph_rejects_empty(self):
        with pytest.raises(GraphError, match="at least one kernel"):
            mix_graph([], "chain")

    def test_payload_is_content_identity(self):
        graph = shaped_graph((_spec("a"), _spec("b")), "chain", name="g")
        same = shaped_graph((_spec("a"), _spec("b")), "chain", name="g")
        different = shaped_graph((_spec("a"), _spec("b", seed=99)), "chain", name="g")
        assert graph.payload() == same.payload()
        assert graph.payload() != different.payload()


# ---------------------------------------------------------------------------
# Engine conformance: N-SM chips and DAG schedules
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("num_sms", [2, 4])
def test_chip_engines_bit_identical(num_sms):
    """The legacy N-SM chip is the oracle; fast and event must reproduce
    every counter of a plain kernel run on a shared-memory chip."""
    spec = _spec("chipk", seed=23, num_warps=8, instructions_per_warp=400)
    assert_conformance(
        _chip_config(num_sms=num_sms),
        generate_kernel_programs(spec),
        max_cycles=40_000,
    )


@settings(max_examples=8, deadline=None)
@given(spec=kernel_specs, config=multi_sm_archs)
def test_chip_conformance_fuzzed(spec, config):
    """Hypothesis sweep: random kernels on random small chips (num_sms ∈
    {1, 2, 4}, varied quanta) — all engines bit-identical to legacy."""
    assert_conformance(config, generate_kernel_programs(spec), max_cycles=15_000)


def test_graph_engines_bit_identical():
    """A diamond DAG on a 2-SM chip: schedule, per-node counters and
    aggregate counters must match the legacy oracle exactly."""
    graph = shaped_graph(
        (_spec("a", seed=3), _spec("b", seed=4), _spec("c", seed=5), _spec("d", seed=6)),
        "diamond",
        name="conf-diamond",
    )
    assert_graph_conformance(_chip_config(num_sms=2), graph)


@settings(max_examples=6, deadline=None)
@given(graph=small_graphs, config=multi_sm_archs)
def test_graph_conformance_fuzzed(graph, config):
    """Hypothesis sweep: random small DAGs on random chips — the whole
    GraphRunResult (schedule included) must be engine-invariant."""
    assert_graph_conformance(config, graph, max_cycles=10_000)


def test_graph_run_is_deterministic():
    """Two identical runs produce byte-identical snapshots (no hidden
    global state leaks across GPU instances)."""
    graph = shaped_graph((_spec("a", seed=9), _spec("b", seed=10)), "parallel")
    config = _chip_config(num_sms=2)
    first = run_graph_snapshot("fast", config, graph)
    second = run_graph_snapshot("fast", config, graph)
    assert first == second


def test_graph_schedule_respects_dependencies():
    """In a chain, a successor never starts before its predecessor ends;
    in a parallel mix on 2 SMs, both nodes start together at cycle 0."""
    kernels = (_spec("a", seed=9), _spec("b", seed=10))
    config = _chip_config(num_sms=2)

    chain = GPU(config).run_graph(shaped_graph(kernels, "chain"))
    assert chain.completed
    spans = {entry.name: entry for entry in chain.schedule}
    assert spans["b"].start_cycle >= spans["a"].end_cycle

    both = GPU(config).run_graph(shaped_graph(kernels, "parallel"))
    assert both.completed
    starts = sorted(entry.start_cycle for entry in both.schedule)
    slots = sorted(entry.sm_slot for entry in both.schedule)
    assert starts == [0, 0]
    assert slots == [0, 1]
    # Co-residency: the parallel makespan beats running the chain serially.
    assert both.makespan < chain.makespan


def test_aggregate_counters_sum_nodes():
    graph = shaped_graph((_spec("a", seed=9), _spec("b", seed=10)), "parallel")
    result = GPU(_chip_config(num_sms=2)).run_graph(graph)
    total = sum(node.counters.instructions for node in result.node_results.values())
    assert result.aggregate.instructions == total
    assert result.aggregate_ipc == pytest.approx(total / result.makespan)


# ---------------------------------------------------------------------------
# The single-SM escape hatch: golden fixture survives under num_sms=1
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("engine", ENGINES)
def test_golden_fixture_survives_num_sms_one(engine, tmp_path):
    """An *explicit* ``num_sms=1`` replay of the committed golden fixture
    is byte-identical under every engine — the chip-model PR cannot have
    perturbed the seed's single-SM counters (the fixture itself is
    unchanged)."""
    from test_golden_counters import (
        FIXTURE_PATH,
        GOLDEN_KERNEL,
        GOLDEN_SCHEMES,
        _replay_schemes,
        golden_config,
    )

    fixture = json.loads(FIXTURE_PATH.read_text())
    config = golden_config(tmp_path / "cache")
    config = config.with_gpu(replace(config.gpu, num_sms=1))
    from repro.gpu.engine import pinned_engine

    with pinned_engine(engine):
        replay = _replay_schemes(GOLDEN_KERNEL, config, GOLDEN_SCHEMES)
    assert replay == fixture["schemes"], (
        f"num_sms=1 drifted from the committed golden fixture under {engine!r}"
    )


# ---------------------------------------------------------------------------
# Contention is measurable: sub-linear aggregate IPC on a shared memory
# ---------------------------------------------------------------------------

def test_parallel_mix_shows_sublinear_aggregate_ipc():
    """Two memory-bound low-reuse kernels co-resident on a 2-SM chip must
    *not* double throughput: the shared L2/DRAM busy-servers serialize the
    interleaved miss streams, so aggregate IPC stays well below 2× a solo
    run.  (Reuse-heavy kernels would instead *benefit* from a warmed shared
    L2 — low reuse isolates the bandwidth bottleneck.)"""
    def memory_bound(name: str, seed: int) -> KernelSpec:
        return _spec(
            name,
            seed=seed,
            num_warps=12,
            instructions_per_warp=600,
            instructions_per_load=2,
            intra_warp_fraction=0.1,
            inter_warp_fraction=0.05,
            private_lines=400,
            shared_lines=2048,
        )

    solo_config = baseline_config(max_cycles=120_000, num_sms=1)
    solo = GPU(solo_config).run_kernel(
        generate_kernel_programs(memory_bound("mb0", seed=31)), max_cycles=120_000
    )
    assert solo.completed
    solo_ipc = solo.counters.instructions / solo.cycles

    chip_config = baseline_config(max_cycles=120_000, num_sms=2)
    pair = GPU(chip_config).run_graph(
        shaped_graph((memory_bound("mb0", seed=31), memory_bound("mb1", seed=32)), "parallel"),
        max_cycles=240_000,
    )
    assert pair.completed
    ratio = pair.aggregate_ipc / (2 * solo_ipc)
    assert ratio < 0.75, (
        f"expected sub-linear scaling under shared-memory contention, got "
        f"aggregate IPC {pair.aggregate_ipc:.4f} = {ratio:.2%} of 2x solo "
        f"({solo_ipc:.4f})"
    )
    # ...and the contention is visible in latency too: the co-resident AML
    # exceeds the solo AML.
    assert pair.aggregate.aml > solo.counters.aml


# ---------------------------------------------------------------------------
# Graph capture/replay through the POISETRC codec
# ---------------------------------------------------------------------------

class TestGraphTrace:
    def _graph(self) -> KernelGraph:
        return shaped_graph(
            (_spec("ga", seed=41), _spec("gb", seed=42)), "chain", name="trc-chain"
        )

    def test_roundtrip_bit_identical(self, tmp_path):
        config = _chip_config(num_sms=2)
        manifest_path, captured = capture_graph_to_dir(
            self._graph(), tmp_path, config=config, engine="fast"
        )
        assert manifest_path.name == "graph.json"
        replayed_graph = load_graph_trace(tmp_path)
        assert replayed_graph.name == "trc-chain"
        assert replayed_graph.node_names == ("ga", "gb")
        assert replayed_graph.edges == (("ga", "gb"),)
        for engine in ("fast", ENGINE_LEGACY):
            replay = GPU(config).run_graph(replayed_graph, engine=engine)
            assert replay.makespan == captured.makespan
            assert [e.as_dict() for e in replay.schedule] == [
                e.as_dict() for e in captured.schedule
            ]
            for name, node in captured.node_results.items():
                assert (
                    serialization.counters_to_dict(replay.node_results[name].counters)
                    == serialization.counters_to_dict(node.counters)
                ), f"node {name!r} drifted on graph-trace replay under {engine!r}"

    def test_capture_refuses_truncated_runs(self, tmp_path):
        with pytest.raises(RuntimeError, match="did not complete"):
            capture_graph_to_dir(
                self._graph(), tmp_path, config=_chip_config(num_sms=2), max_cycles=50
            )

    def test_tampered_trace_detected(self, tmp_path):
        capture_graph_to_dir(self._graph(), tmp_path, config=_chip_config(num_sms=2))
        manifest = json.loads((tmp_path / "graph.json").read_text())
        # Swap one node's trace file for the other's: hashes no longer match.
        a, b = manifest["nodes"][0]["trace"], manifest["nodes"][1]["trace"]
        (tmp_path / a).write_bytes((tmp_path / b).read_bytes())
        with pytest.raises(TraceFormatError, match="not match"):
            load_graph_trace(tmp_path)

    def test_missing_manifest_rejected(self, tmp_path):
        with pytest.raises(TraceFormatError, match="no graph.json"):
            load_graph_trace(tmp_path)


# ---------------------------------------------------------------------------
# Cache-key hygiene
# ---------------------------------------------------------------------------

def _perturbed(value):
    """A type-appropriate different value (recursing into one leaf of a
    nested config dataclass)."""
    if dataclasses.is_dataclass(value):
        for leaf in dataclasses.fields(value):
            try:
                return dataclasses.replace(
                    value, **{leaf.name: _perturbed(getattr(value, leaf.name))}
                )
            except ValueError:
                continue  # leaf perturbation violated validation; try next
        raise AssertionError(f"no perturbable leaf in {value!r}")
    if isinstance(value, bool):
        return not value
    if isinstance(value, (int, float)):
        return value * 2 if value else 1
    if isinstance(value, str):
        return value + "_x"
    raise AssertionError(f"don't know how to perturb {value!r}")


def test_every_gpu_field_perturbs_cache_key(tmp_path):
    """Any change to any ``GPUConfig`` field — including ones added after
    this test was written — must change ``ExperimentConfig.cache_key``, or
    stale disk-cache entries would be served across the change."""
    base = replace(ExperimentConfig.fast(), cache_dir=tmp_path)
    for field in dataclasses.fields(GPUConfig):
        perturbed_gpu = dataclasses.replace(
            base.gpu, **{field.name: _perturbed(getattr(base.gpu, field.name))}
        )
        perturbed = base.with_gpu(perturbed_gpu)
        assert perturbed.cache_key != base.cache_key, (
            f"GPUConfig.{field.name} does not perturb ExperimentConfig.cache_key"
        )
        assert serialization.gpu_payload(perturbed_gpu) != serialization.gpu_payload(base.gpu), (
            f"GPUConfig.{field.name} does not perturb gpu_payload"
        )


def test_graph_run_caches_hit(tmp_path):
    """A repeated graph run must be served from the in-memory cache, and a
    cold process-equivalent (cleared memory cache) from the disk cache —
    both bit-identical to the live run."""
    from repro.experiments.common import _GRAPH_RUN_CACHE, clear_caches

    config = replace(
        ExperimentConfig.fast(),
        cache_dir=tmp_path,
        gpu=replace(ExperimentConfig.fast().gpu, num_sms=2),
    )
    graph = mix_graph_for_benchmark("gather", config, "parallel")
    clear_caches()
    live = run_graph_for_config(graph, config)
    assert _GRAPH_RUN_CACHE, "graph run did not populate the in-memory cache"
    warm = run_graph_for_config(graph, config)
    assert warm is live  # in-memory hit returns the same object
    _GRAPH_RUN_CACHE.clear()
    disk = run_graph_for_config(graph, config)
    assert serialization.graph_result_to_dict(disk) == serialization.graph_result_to_dict(live)


def test_num_sms_changes_graph_cache_key(tmp_path):
    """The same graph on a different chip width must never share a cache
    entry: the disk payloads must differ in their gpu section."""
    from repro.experiments.common import _graph_key_payload

    base = replace(ExperimentConfig.fast(), cache_dir=tmp_path)
    two = base.with_gpu(replace(base.gpu, num_sms=2))
    graph = mix_graph_for_benchmark("gather", base, "chain")
    assert _graph_key_payload(graph, base) != _graph_key_payload(graph, two)
    assert base.cache_key != two.cache_key


# ---------------------------------------------------------------------------
# Scenario axes: num_sms and kernel_mix
# ---------------------------------------------------------------------------

class TestScenarioAxes:
    def test_canonical_values(self):
        assert canonical_axis_value("num_sms", None) is None
        assert canonical_axis_value("num_sms", 4) == 4
        assert canonical_axis_value("kernel_mix", None) is None
        for shape in MIX_SHAPES:
            assert canonical_axis_value("kernel_mix", shape) == shape

    def test_invalid_values_rejected(self):
        with pytest.raises(ScenarioError):
            canonical_axis_value("num_sms", 0)
        with pytest.raises(ScenarioError):
            canonical_axis_value("kernel_mix", "ring")

    def test_kernel_mix_requires_gto(self):
        with pytest.raises(ScenarioError, match="kernel_mix"):
            ScenarioGrid(
                "bad",
                {
                    "scheme": ("poise",),
                    "benchmark": ("gather",),
                    "kernel_mix": ("chain",),
                },
            )
        # gto-only grids (and all-None mix axes) are fine.
        ScenarioGrid(
            "ok",
            {"scheme": ("gto",), "benchmark": ("gather",), "kernel_mix": ("chain",)},
        )
        ScenarioGrid(
            "ok2",
            {"scheme": ("poise",), "benchmark": ("gather",), "kernel_mix": (None,)},
        )

    def test_point_config_applies_num_sms(self):
        point = ScenarioPoint(scheme="gto", benchmark="gather", num_sms=2)
        config = point.experiment_config(ExperimentConfig.fast())
        assert config.gpu.num_sms == 2
        default = ScenarioPoint(scheme="gto", benchmark="gather")
        assert default.experiment_config(ExperimentConfig.fast()).gpu.num_sms == 1

    def test_override_parsing(self):
        assert parse_override_value("num_sms", "4") == 4
        assert parse_override_value("num_sms", "none") is None
        assert parse_override_value("kernel_mix", "chain") == "chain"
        with pytest.raises(ScenarioError):
            parse_override_value("num_sms", "wide")

    def test_point_ids_distinguish_mix_points(self):
        plain = ScenarioPoint(scheme="gto", benchmark="gather")
        mixed = ScenarioPoint(scheme="gto", benchmark="gather", kernel_mix="chain", num_sms=2)
        assert plain.point_id != mixed.point_id
        assert "num_sms=2" in mixed.describe()
        assert "kernel_mix=chain" in mixed.describe()


def test_mix_outcome_metrics(tmp_path):
    """``run_mix_on_benchmark`` produces a sweep-compatible outcome whose
    graph telemetry flows into the point metrics."""
    from repro.scenarios.runner import evaluate_point, outcome_metrics

    config = replace(ExperimentConfig.fast(), cache_dir=tmp_path)
    outcome = run_mix_on_benchmark(
        "gather", config.with_gpu(replace(config.gpu, num_sms=2)), "parallel",
        use_cache=False,
    )
    graph_info = outcome.telemetry["graph"]
    assert graph_info["mix"] == "parallel"
    assert graph_info["num_sms"] == 2
    assert graph_info["makespan"] > 0
    assert outcome.ipc > 0

    point = ScenarioPoint(
        scheme="gto", benchmark="gather", num_sms=2, kernel_mix="parallel"
    )
    metrics = evaluate_point(point, config)
    assert metrics["graph"]["mix"] == "parallel"
    assert metrics["graph"]["num_sms"] == 2
    assert metrics["graph"]["schedule"], "schedule telemetry missing"


def test_table03b_reports_simulated_sm_count():
    from repro.experiments.table03b_architecture import Table03bArchitecture

    base = ExperimentConfig.fast()
    result = Table03bArchitecture().build(base)
    sms_row = [row for row in result.tables[0].rows if row[0] == "SMs"][0]
    assert "1 simulated" in sms_row[2]

    chip = Table03bArchitecture().build(base.with_gpu(replace(base.gpu, num_sms=2)))
    sms_row = [row for row in chip.tables[0].rows if row[0] == "SMs"][0]
    assert "2 simulated, sharing L2/DRAM" in sms_row[2]
