"""SIGINT/SIGTERM mid-sweep: graceful interrupt, clean checkpoint, and a
byte-identical ``--resume`` completion.

``repro sweep run`` runs as a real subprocess; the signal lands after the
first point artifact exists (so the run is provably mid-flight).  The
contract under test:

* exit code 130 with a "rerun with --resume" hint (no traceback);
* no stale ``.tmp`` files — the in-flight atomic write completed or never
  happened;
* the telemetry sidecar is consistent (``interrupted: true``, computed +
  skipped adds up);
* a ``--resume`` run finishes the grid, and the resulting artifact tree is
  **byte-identical** to a never-interrupted run.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")

GRID = "smoke"
SWEEP_ARGS = ["sweep", "run", GRID, "--fast"]


def sweep_env(cache_dir):
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC
    env["REPRO_CACHE_DIR"] = str(cache_dir)
    env.pop("REPRO_FAULTS", None)
    return env


def run_sweep(cache_dir, *extra):
    return subprocess.run(
        [sys.executable, "-m", "repro", *SWEEP_ARGS, *extra],
        env=sweep_env(cache_dir), capture_output=True, text=True, timeout=600,
    )


def points_dir(cache_dir):
    return Path(cache_dir) / "artifacts" / "sweeps" / GRID / "fast" / "points"


def artifact_bytes(cache_dir):
    return {
        path.name: path.read_bytes()
        for path in sorted(points_dir(cache_dir).glob("*.json"))
    }


def interrupt_mid_sweep(cache_dir, signum):
    """Start a sweep, deliver ``signum`` once the first artifact lands."""
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", *SWEEP_ARGS],
        env=sweep_env(cache_dir),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    directory = points_dir(cache_dir)
    deadline = time.monotonic() + 120.0
    while time.monotonic() < deadline:
        if any(directory.glob("*.json")):
            break
        if process.poll() is not None:
            raise AssertionError(
                f"sweep finished before it could be interrupted:\n{process.stdout.read()}"
            )
        time.sleep(0.02)
    process.send_signal(signum)
    output, _ = process.communicate(timeout=120)
    return process.returncode, output


@pytest.mark.parametrize("signum", [signal.SIGTERM, signal.SIGINT])
def test_interrupt_checkpoints_and_resume_is_byte_identical(tmp_path, signum):
    clean = tmp_path / "clean"
    interrupted = tmp_path / "interrupted"
    clean.mkdir()
    interrupted.mkdir()

    completed = run_sweep(clean)
    assert completed.returncode == 0, completed.stdout + completed.stderr
    reference = artifact_bytes(clean)

    returncode, output = interrupt_mid_sweep(interrupted, signum)
    assert returncode == 130, output
    assert "rerun with --resume" in output
    assert "Traceback" not in output

    # Clean checkpoint: whole artifacts only, no torn temp files anywhere.
    sweep_root = points_dir(interrupted).parent
    assert not list(sweep_root.rglob("*.tmp"))
    partial = artifact_bytes(interrupted)
    assert 0 < len(partial) < len(reference), (
        "the interrupt should land mid-grid: "
        f"{len(partial)} of {len(reference)} points"
    )
    for name, payload in partial.items():
        assert payload == reference[name]  # every landed artifact is whole

    # The telemetry sidecar agrees the run was interrupted, consistently.
    telemetry = json.loads((sweep_root / "run_telemetry.json").read_text())
    assert telemetry["interrupted"] is True
    assert telemetry["computed"] == len(partial)

    resumed = run_sweep(interrupted, "--resume")
    assert resumed.returncode == 0, resumed.stdout + resumed.stderr
    assert artifact_bytes(interrupted) == reference

    # And the resumed tree aggregates identically too.
    for cache in (clean, interrupted):
        report = subprocess.run(
            [sys.executable, "-m", "repro", "sweep", "report", GRID, "--fast"],
            env=sweep_env(cache), capture_output=True, text=True, timeout=600,
        )
        assert report.returncode == 0, report.stdout + report.stderr
    sweep_json = lambda cache: (points_dir(cache).parent / "sweep.json").read_bytes()
    assert sweep_json(interrupted) == sweep_json(clean)
