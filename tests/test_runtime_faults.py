"""Tests for the deterministic fault-injection harness and the recovery
machinery it exists to prove.

The load-bearing guarantee mirrors the fast-engine story: a sweep executed
under injected faults (worker crashes, stalls past the per-job timeout,
torn artifact writes, flaky cache I/O) must produce artifacts *byte
identical* to a fault-free run — the chaos differential at the bottom pins
exactly that on the real simulator.
"""

from __future__ import annotations

import json
import os
import time
import uuid
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace
from pathlib import Path

import pytest

from repro.experiments.common import ExperimentConfig
from repro.runtime import faults
from repro.runtime.cache import DiskCache, atomic_write_json, sweep_stale_tmps
from repro.runtime.executor import SweepExecutor
from repro.runtime.faults import (
    FaultInjectedError,
    FaultSpec,
    FaultSpecError,
    active_spec,
    maybe_raise,
    reset_fault_state,
)
from repro.scenarios.library import get_grid
from repro.scenarios.report import aggregate, write_sweep_artifact
from repro.scenarios.runner import SweepRunner


@pytest.fixture(autouse=True)
def clean_fault_state(monkeypatch):
    """Every test starts (and ends) with no spec and no fired budgets."""
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    reset_fault_state()
    yield
    reset_fault_state()


# ---------------------------------------------------------------------------
# spec parsing and deterministic targeting
# ---------------------------------------------------------------------------

class TestFaultSpec:
    def test_parse_full_grammar(self):
        spec = FaultSpec.parse(
            "seed=7, stall=2.5, crash_delay=0.1, executor:crash:2, "
            "executor:stall, runner.write:truncate:1:all, cache.store:oserror:3"
        )
        assert spec.seed == 7
        assert spec.stall_seconds == 2.5
        assert spec.crash_delay_seconds == 0.1
        assert spec.count("executor", "crash") == 2
        assert spec.count("executor", "stall") == 1  # COUNT defaults to 1
        assert spec.count("cache.store", "oserror") == 3
        assert spec.every_attempt("runner.write", "truncate")
        assert not spec.every_attempt("executor", "crash")

    def test_repeated_tokens_accumulate(self):
        spec = FaultSpec.parse("executor:oserror:1,executor:oserror:2:all")
        assert spec.count("executor", "oserror") == 3
        assert spec.every_attempt("executor", "oserror")

    @pytest.mark.parametrize(
        "text, fragment",
        [
            ("bogus=1,executor:crash", "unknown REPRO_FAULTS parameter"),
            ("seed=x,executor:crash", "not numeric"),
            ("nowhere:crash", "unknown fault site"),
            ("executor:melt", "no mode 'melt'"),
            ("executor", "expected SITE:MODE"),
            ("executor:crash:zero", "neither a count nor 'all'"),
            ("executor:crash:0", "count must be >= 1"),
            ("seed=3", "names no faults"),
            ("", "names no faults"),
        ],
    )
    def test_malformed_specs_raise(self, text, fragment):
        with pytest.raises(FaultSpecError, match=fragment):
            FaultSpec.parse(text)

    def test_targets_are_deterministic(self):
        spec = FaultSpec.parse("seed=11,executor:crash:5")
        first = spec.targets("executor", "crash", 100)
        assert len(first) == 5
        # Pure function of (seed, site, mode, population): stable across
        # calls and across freshly parsed copies of the same spec.
        assert spec.targets("executor", "crash", 100) == first
        assert FaultSpec.parse("seed=11,executor:crash:5").targets(
            "executor", "crash", 100
        ) == first
        assert FaultSpec.parse("seed=12,executor:crash:5").targets(
            "executor", "crash", 100
        ) != first

    def test_targets_clamp_to_population(self):
        spec = FaultSpec.parse("executor:oserror:10")
        assert spec.targets("executor", "oserror", 3) == frozenset({0, 1, 2})
        assert spec.targets("executor", "oserror", 0) == frozenset()

    def test_site_plan_resolves_overlap_by_mode_priority(self):
        spec = FaultSpec.parse("runner.write:truncate:2,runner.write:corrupt:2")
        plan = spec.site_plan("runner.write", 2)
        # Both modes target both points; 'truncate' is declared first in
        # SITES and wins every overlap.
        assert plan == {0: "truncate", 1: "truncate"}

    def test_executor_action_fires_on_first_attempt_only(self):
        spec = FaultSpec.parse("seed=0,executor:crash:1")
        (target,) = spec.targets("executor", "crash", 6)
        assert spec.executor_action(target, 0, 6) == "crash"
        assert spec.executor_action(target, 1, 6) is None
        others = set(range(6)) - {target}
        assert all(spec.executor_action(i, 0, 6) is None for i in others)

    def test_executor_action_all_fires_every_attempt(self):
        spec = FaultSpec.parse("seed=0,executor:oserror:1:all")
        (target,) = spec.targets("executor", "oserror", 4)
        assert spec.executor_action(target, 0, 4) == "oserror"
        assert spec.executor_action(target, 3, 4) == "oserror"

    def test_describe_is_compact_and_sorted(self):
        spec = FaultSpec.parse("seed=3,cache.store:oserror:2,executor:crash:1:all")
        assert spec.describe() == "seed=3 cache.store:oserror×2 executor:crash×1:all"


class TestActivation:
    def test_unset_means_disabled(self):
        assert active_spec() is None
        maybe_raise("cache.store")  # no-op, must not raise

    def test_blank_means_disabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "   ")
        assert active_spec() is None

    def test_malformed_env_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "executor:melt")
        with pytest.raises(FaultSpecError):
            active_spec()

    def test_counter_based_sites_fire_first_n_then_pass(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "cache.store:oserror:2")
        with pytest.raises(FaultInjectedError):
            maybe_raise("cache.store")
        with pytest.raises(FaultInjectedError):
            maybe_raise("cache.store")
        maybe_raise("cache.store")  # budget exhausted
        maybe_raise("cache.load")  # other site untouched

    def test_reset_restores_budgets(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "cache.load:oserror:1")
        with pytest.raises(FaultInjectedError):
            maybe_raise("cache.load")
        maybe_raise("cache.load")
        reset_fault_state()
        with pytest.raises(FaultInjectedError):
            maybe_raise("cache.load")


# ---------------------------------------------------------------------------
# executor recovery: salvage, timeouts, escalation
# ---------------------------------------------------------------------------

def _marked_square(marker_dir: str, x: int) -> int:
    """Sleeps briefly, then records one marker file per *completed* call."""
    time.sleep(0.01)
    Path(marker_dir, f"{os.getpid()}-{uuid.uuid4().hex}.marker").touch()
    return x * x


class TestExecutorUnderFaults:
    def test_crash_salvages_completed_jobs(self, tmp_path, monkeypatch):
        # seed=0 crashes job 0 of 6 (computed above); crash_delay gives the
        # sibling worker time to finish jobs 1-5, so they are salvaged from
        # the broken pool and only the crashed job reruns.
        monkeypatch.setenv("REPRO_FAULTS", "seed=0,executor:crash:1,crash_delay=1.0")
        executor = SweepExecutor(jobs=2, backoff_base=0.0)
        args = [(str(tmp_path), i) for i in range(6)]
        results, report = executor.map_with_report(_marked_square, args)
        assert results == [i * i for i in range(6)]
        # Every job ran to completion exactly once — salvage kept the five
        # finished results instead of recomputing them after the pool broke.
        assert len(list(tmp_path.glob("*.marker"))) == 6
        assert report.jobs == 6
        assert report.salvaged == 5
        assert report.retries == 1
        assert report.pool_restarts == 1
        assert report.injected == 1
        assert not report.clean

    def test_stall_past_timeout_is_abandoned_and_retried(self, tmp_path, monkeypatch):
        # seed=0 stalls job 5 of 6 for 30s; the 0.75s per-job timeout fires,
        # the wedged pool is torn down and the job reruns cleanly.
        monkeypatch.setenv("REPRO_FAULTS", "seed=0,executor:stall:1,stall=30")
        executor = SweepExecutor(jobs=2, timeout=0.75, retries=2, backoff_base=0.0)
        start = time.monotonic()
        results, report = executor.map_with_report(
            _marked_square, [(str(tmp_path), i) for i in range(6)]
        )
        elapsed = time.monotonic() - start
        assert results == [i * i for i in range(6)]
        assert report.timeouts >= 1
        assert report.pool_restarts >= 1
        assert not report.clean
        # The stalled worker was killed, not joined: nowhere near 30s.
        assert elapsed < 15

    def test_repeated_faults_escalate_to_serial(self, monkeypatch):
        # ':all' re-injects on every pool attempt, so the target job can only
        # succeed on the in-parent escalation path.
        monkeypatch.setenv("REPRO_FAULTS", "seed=0,executor:oserror:1:all")
        executor = SweepExecutor(jobs=2, retries=1, backoff_base=0.0)
        results, report = executor.map_with_report(
            _square_job, [(i,) for i in range(4)]
        )
        assert results == [i * i for i in range(4)]
        assert report.escalated == 1
        assert report.transient_errors == 2  # retries + 1 pool attempts
        assert report.injected == 1

    def test_serial_path_never_injects(self, monkeypatch):
        monkeypatch.setenv(
            "REPRO_FAULTS", "seed=0,executor:crash:4,executor:stall:4,stall=30"
        )
        executor = SweepExecutor(jobs=1)
        start = time.monotonic()
        assert executor.map(_square_job, [(i,) for i in range(4)]) == [0, 1, 4, 9]
        assert time.monotonic() - start < 5
        assert executor.last_report.clean


def _square_job(x: int) -> int:
    return x * x


# ---------------------------------------------------------------------------
# cache faults, concurrent writers and stale-tmp hygiene
# ---------------------------------------------------------------------------

class TestCacheResilience:
    def test_injected_store_fault_degrades_to_miss(self, tmp_path, monkeypatch):
        cache = DiskCache(tmp_path)
        monkeypatch.setenv("REPRO_FAULTS", "cache.store:oserror:1")
        payload = {"kernel": "k", "seed": 1}
        assert cache.store(payload, {"value": 1}) is None  # injected, swallowed
        assert cache.load(payload) is None
        assert cache.store(payload, {"value": 1}) is not None  # budget spent
        assert cache.load(payload) == {"value": 1}

    def test_injected_load_fault_degrades_to_recompute(self, tmp_path, monkeypatch):
        cache = DiskCache(tmp_path)
        payload = {"kernel": "k", "seed": 2}
        cache.store(payload, {"value": 2})
        monkeypatch.setenv("REPRO_FAULTS", "cache.load:oserror:1")
        assert cache.load(payload) is None  # injected: a miss, never a crash
        cache.store(payload, {"value": 2})
        assert cache.load(payload) == {"value": 2}

    def test_concurrent_writers_on_same_key_both_succeed(self, tmp_path):
        cache = DiskCache(tmp_path)
        payload = {"kernel": "race", "seed": 3}
        result = {"value": list(range(50))}

        with ThreadPoolExecutor(max_workers=8) as pool:
            paths = list(pool.map(lambda _: cache.store(payload, result), range(32)))
        assert all(path is not None for path in paths)
        # The surviving entry is valid JSON (no torn interleaving) and no
        # racing writer leaked its temp file.
        assert cache.load(payload) == result
        json.loads(cache.path_for(payload).read_text())
        assert list(cache.root.glob(".*.tmp")) == []

    def test_atomic_write_cleans_its_tmp_on_failure(self, tmp_path):
        target = tmp_path / "victim.json"
        target.mkdir()  # os.replace onto a directory fails
        with pytest.raises(OSError):
            atomic_write_json(target, {"x": 1})
        assert list(tmp_path.glob(".*.tmp")) == []

    def test_stale_tmps_swept_on_cache_init(self, tmp_path):
        runs = tmp_path / "runs"
        runs.mkdir(parents=True)
        stale = runs / ".dead.json.123.0.tmp"
        stale.write_text("{torn")
        old = time.time() - 7200
        os.utime(stale, (old, old))
        fresh = runs / ".live.json.456.0.tmp"
        fresh.write_text("{in-flight")
        DiskCache(tmp_path)
        assert not stale.exists()  # orphan reclaimed
        assert fresh.exists()  # concurrent writer left alone

    def test_sweep_stale_tmps_is_age_guarded(self, tmp_path):
        fresh = tmp_path / ".entry.json.1.0.tmp"
        fresh.write_text("{}")
        assert sweep_stale_tmps(tmp_path) == 0
        assert fresh.exists()
        old = time.time() - 7200
        os.utime(fresh, (old, old))
        assert sweep_stale_tmps(tmp_path) == 1
        assert not fresh.exists()


def _stub_metrics(point):
    from repro.scenarios.runner import POINT_METRICS

    metrics = {name: 1.5 for name in POINT_METRICS}
    metrics["kernels"] = {}
    return metrics


def test_sweep_runner_sweeps_stale_tmps(tmp_path):
    from repro.scenarios.grid import ScenarioGrid

    grid = ScenarioGrid("tmps", {"benchmark": ["mvt"], "scheme": ["gto"]})
    config = replace(ExperimentConfig.fast(), cache_dir=Path(tmp_path))
    runner = SweepRunner(grid, config, evaluate=_stub_metrics)
    points = runner.root / "points"
    points.mkdir(parents=True)
    stale = points / ".gto.json.99.0.tmp"
    stale.write_text("{torn")
    old = time.time() - 7200
    os.utime(stale, (old, old))
    report = runner.run_report()
    assert report.stale_tmps_removed == 1
    assert not stale.exists()
    assert any("stale temp file" in line for line in report.summary_lines())


# ---------------------------------------------------------------------------
# the chaos differential: faulted sweep == fault-free sweep, byte for byte
# ---------------------------------------------------------------------------

def _tiny_config(cache_dir) -> ExperimentConfig:
    return replace(
        ExperimentConfig.fast(), run_max_cycles=20_000, cache_dir=Path(cache_dir)
    )


def _artifact_bytes(runner: SweepRunner):
    return {
        path.name: path.read_bytes()
        for path in sorted((runner.root / "points").glob("*.json"))
    }


def test_chaos_sweep_is_byte_identical_to_fault_free_run(tmp_path, monkeypatch):
    """The PR's headline guarantee on the real simulator: a parallel sweep
    surviving a worker crash, an injected transient error, a torn artifact
    write and flaky cache I/O produces byte-identical artifacts — and a
    byte-identical aggregated ``sweep.json`` — to a clean serial run."""
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    grid = get_grid("smoke")

    clean = SweepRunner(grid, _tiny_config(tmp_path / "clean"))
    clean.run()
    clean_payload = aggregate(grid, clean.config)
    clean_sweep = write_sweep_artifact(clean_payload, tmp_path / "clean")

    # seed=0 over the 16 smoke points: crash and oserror target distinct
    # points (so both fire); one torn write and two cache faults on top.
    monkeypatch.setenv(
        "REPRO_FAULTS",
        "seed=0,crash_delay=1.0,executor:crash:1,executor:oserror:1,"
        "runner.write:truncate:1,cache.store:oserror:2",
    )
    reset_fault_state()
    chaos = SweepRunner(grid, _tiny_config(tmp_path / "chaos"))
    report = chaos.run_report(jobs=2)

    # The faults actually fired...
    assert report.job_report is not None
    assert report.job_report.injected >= 2
    assert report.job_report.pool_restarts >= 1
    assert report.job_report.retries >= 1
    assert report.repaired_writes == 1
    assert any(record.destination.exists() for record in report.quarantined)
    assert any("faults injected" in line for line in report.summary_lines())

    # ...and changed nothing observable.
    assert _artifact_bytes(chaos) == _artifact_bytes(clean)
    monkeypatch.delenv("REPRO_FAULTS")
    reset_fault_state()
    chaos_payload = aggregate(grid, chaos.config)
    chaos_sweep = write_sweep_artifact(chaos_payload, tmp_path / "chaos")
    assert chaos_sweep.read_bytes() == clean_sweep.read_bytes()
