"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.analytical import AnalyticalModel, WarpTupleScenario
from repro.core.regression import NegativeBinomialRegression, PoissonRegression
from repro.core.scoring import score_grid, select_training_target
from repro.core.training import TrainedModel
from repro.core.features import FeatureVector
from repro.gpu.cache import SetAssociativeCache
from repro.gpu.config import CacheConfig
from repro.gpu.mshr import MSHRFile
from repro.profiling.metrics import arithmetic_mean, harmonic_mean

# ---------------------------------------------------------------------------
# Cache invariants
# ---------------------------------------------------------------------------

addresses = st.lists(st.integers(min_value=0, max_value=500), min_size=1, max_size=300)
warp_ids = st.integers(min_value=0, max_value=7)


@given(addresses, st.sampled_from(["hash", "linear"]))
@settings(max_examples=60, deadline=None)
def test_cache_accounting_invariants(address_stream, indexing):
    """Hits + misses == accesses; resident lines never exceed capacity."""
    cache = SetAssociativeCache(
        CacheConfig(size_bytes=8 * 128, assoc=2, line_size=128, mshr_entries=4, indexing=indexing)
    )
    for address in address_stream:
        cache.access(address, warp_id=address % 3)
    assert cache.hits + cache.misses == len(address_stream)
    assert cache.resident_lines() <= cache.config.num_lines
    assert 0.0 <= cache.hit_rate <= 1.0


@given(addresses)
@settings(max_examples=60, deadline=None)
def test_cache_rereference_after_access_hits_when_capacity_allows(address_stream):
    """An address accessed twice in a row always hits the second time."""
    cache = SetAssociativeCache(
        CacheConfig(size_bytes=16 * 128, assoc=4, line_size=128, mshr_entries=4)
    )
    for address in address_stream:
        cache.access(address, warp_id=0)
        assert cache.access(address, warp_id=0).hit


@given(addresses)
@settings(max_examples=40, deadline=None)
def test_bypassing_never_changes_cache_contents(address_stream):
    cache = SetAssociativeCache(
        CacheConfig(size_bytes=8 * 128, assoc=2, line_size=128, mshr_entries=4)
    )
    for address in address_stream:
        cache.access(address, warp_id=0, allocate=False)
    assert cache.resident_lines() == 0


# ---------------------------------------------------------------------------
# MSHR invariants
# ---------------------------------------------------------------------------

@given(
    st.lists(st.tuples(st.integers(0, 20), st.integers(0, 7)), min_size=1, max_size=100),
    st.integers(min_value=1, max_value=8),
)
@settings(max_examples=50, deadline=None)
def test_mshr_occupancy_never_exceeds_capacity(requests, capacity):
    mshr = MSHRFile(capacity)
    token = 0
    for line, warp in requests:
        status = mshr.allocate(line, warp, token)
        token += 1
        assert status in ("allocated", "merged", "full")
        assert mshr.occupancy <= capacity
    # Releasing every line empties the file.
    for line, _ in requests:
        mshr.release(line)
    assert mshr.occupancy == 0


# ---------------------------------------------------------------------------
# Scoring invariants (Eq. 12)
# ---------------------------------------------------------------------------

speedup_grids = st.dictionaries(
    st.tuples(st.integers(1, 8), st.integers(1, 8)).filter(lambda point: point[1] <= point[0]),
    st.floats(min_value=0.1, max_value=3.0, allow_nan=False),
    min_size=1,
    max_size=36,
)


@given(speedup_grids)
@settings(max_examples=80, deadline=None)
def test_scores_bounded_by_grid_extremes(grid):
    """A weighted average of neighbour speedups stays within [min, max]."""
    scores = score_grid(grid)
    low, high = min(grid.values()), max(grid.values())
    for value in scores.values():
        assert low - 1e-9 <= value <= high + 1e-9


@given(speedup_grids)
@settings(max_examples=80, deadline=None)
def test_selected_target_is_a_profiled_point(grid):
    target = select_training_target(grid)
    assert target.point in grid
    assert target.speedup == grid[target.point]


@given(speedup_grids, st.floats(min_value=0.1, max_value=2.0))
@settings(max_examples=40, deadline=None)
def test_uniform_scaling_does_not_change_selected_target(grid, scale):
    scaled = {point: value * scale for point, value in grid.items()}
    original = select_training_target(grid)
    rescaled = select_training_target(scaled)
    if rescaled.point != original.point:
        # Scoring normalises by the neighbour weight sum, so two points with
        # mathematically equal scores can land on either side of a tie after
        # the multiplication rounds differently.  Selection is only required
        # to be scale-stable between points whose scores genuinely differ.
        scores = score_grid(grid)
        assert math.isclose(
            scores[rescaled.point], scores[original.point], rel_tol=1e-9
        )


# ---------------------------------------------------------------------------
# Regression invariants
# ---------------------------------------------------------------------------

@given(
    st.lists(st.floats(min_value=-1.0, max_value=1.0), min_size=2, max_size=3),
    st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=15, deadline=None)
def test_poisson_regression_recovers_generating_weights(true_weights, seed):
    rng = np.random.default_rng(seed)
    weights = np.asarray(list(true_weights) + [1.0])
    X = np.hstack([rng.uniform(0, 1, size=(300, len(true_weights))), np.ones((300, 1))])
    y = rng.poisson(np.exp(X @ weights))
    model = PoissonRegression()
    model.fit(X.tolist(), y.tolist())
    predictions = model.predict_mean(X.tolist())
    assert np.all(np.isfinite(predictions))
    assert np.all(predictions >= 0)
    # The fit cannot be wildly off on its own training data.
    assert np.mean(np.abs(predictions - y)) <= np.mean(y) * 2 + 5


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=10, deadline=None)
def test_negative_binomial_predictions_nonnegative(seed):
    rng = np.random.default_rng(seed)
    X = np.hstack([rng.uniform(0, 1, size=(200, 2)), np.ones((200, 1))])
    y = rng.poisson(np.exp(X @ np.array([0.5, -0.5, 1.5])))
    model = NegativeBinomialRegression()
    model.fit(X.tolist(), y.tolist())
    assert (model.predict(X.tolist()) >= 0).all()
    assert model.alpha >= 0.0


# ---------------------------------------------------------------------------
# Trained-model prediction invariants
# ---------------------------------------------------------------------------

finite_floats = st.floats(min_value=-5.0, max_value=5.0, allow_nan=False)


@given(
    st.lists(finite_floats, min_size=8, max_size=8),
    st.lists(finite_floats, min_size=8, max_size=8),
    st.floats(min_value=0.0, max_value=1.0),
    st.floats(min_value=0.0, max_value=1.0),
    st.integers(min_value=1, max_value=24),
)
@settings(max_examples=100, deadline=None)
def test_model_predictions_always_form_valid_warp_tuples(alpha, beta, h_o, h_prime, max_warps):
    model = TrainedModel(alpha_weights=alpha, beta_weights=beta, max_warps=24)
    vector = FeatureVector(
        h_o=h_o, h_prime=h_prime, eta_o=h_o / 2, eta_prime=h_prime,
        instructions_per_load=3.0, latency_pressure=-100.0,
    )
    n, p = model.predict(vector, max_warps=max_warps)
    assert 1 <= p <= n <= max_warps


# ---------------------------------------------------------------------------
# Analytical model invariants
# ---------------------------------------------------------------------------

@given(
    st.integers(min_value=2, max_value=24),
    st.integers(min_value=1, max_value=24),
    st.floats(min_value=0.0, max_value=1.0),
    st.floats(min_value=0.0, max_value=1.0),
    st.floats(min_value=0.0, max_value=1.0),
    st.floats(min_value=50.0, max_value=1000.0),
    st.floats(min_value=50.0, max_value=1000.0),
)
@settings(max_examples=120, deadline=None)
def test_stall_cycles_never_negative_and_mu_consistent(
    n_warps, p_warps, miss_rate, hp, hnp, latency_base, latency_tuple
):
    p_warps = min(p_warps, n_warps)
    scenario = WarpTupleScenario(
        n_warps=n_warps,
        p_warps=p_warps,
        miss_rate_baseline=miss_rate,
        latency_baseline=latency_base,
        hit_rate_polluting=hp,
        hit_rate_nonpolluting=hnp,
        latency_tuple=latency_tuple,
        independent_instructions=3.0,
        pipeline_cycles=4.0,
        mshr_entries=32,
    )
    model = AnalyticalModel(scenario)
    assert model.t_stall_baseline() >= 0.0
    assert model.t_stall_tuple() >= 0.0
    assert not math.isnan(model.mu())
    # The speedup criterion is internally consistent: fewer stalls than the
    # baseline whenever Eq. 7 says so.
    if model.predicts_speedup():
        assert model.t_stall_tuple() < model.t_stall_baseline()


# ---------------------------------------------------------------------------
# Metric invariants
# ---------------------------------------------------------------------------

@given(st.lists(st.floats(min_value=0.05, max_value=10.0), min_size=1, max_size=30))
@settings(max_examples=100, deadline=None)
def test_harmonic_mean_bounds(values):
    hmean = harmonic_mean(values)
    assert min(values) - 1e-9 <= hmean <= max(values) + 1e-9
    assert hmean <= arithmetic_mean(values) + 1e-9
