"""Unit tests for the analytical model (Equations 1-11)."""

import math

import pytest

from repro.core.analytical import AnalyticalModel, WarpTupleScenario


def make_scenario(**overrides):
    defaults = dict(
        n_warps=16,
        p_warps=2,
        miss_rate_baseline=0.9,
        latency_baseline=400.0,
        hit_rate_polluting=0.7,
        hit_rate_nonpolluting=0.1,
        latency_tuple=300.0,
        independent_instructions=3.0,
        pipeline_cycles=4.0,
        mshr_entries=32,
    )
    defaults.update(overrides)
    return WarpTupleScenario(**defaults)


class TestScenarioValidation:
    def test_p_must_not_exceed_n(self):
        with pytest.raises(ValueError):
            make_scenario(n_warps=4, p_warps=5)

    def test_rates_must_be_fractions(self):
        with pytest.raises(ValueError):
            make_scenario(miss_rate_baseline=1.5)
        with pytest.raises(ValueError):
            make_scenario(hit_rate_polluting=-0.1)

    def test_mshr_entries_positive(self):
        with pytest.raises(ValueError):
            make_scenario(mshr_entries=0)

    def test_derived_rates(self):
        scenario = make_scenario(miss_rate_baseline=0.8, hit_rate_polluting=0.7)
        assert scenario.hit_rate_baseline == pytest.approx(0.2)
        assert scenario.miss_rate_polluting == pytest.approx(0.3)


class TestBaselineEquations:
    def test_eq1_effective_latency_grows_in_lo_multiples(self):
        scenario = make_scenario(n_warps=24, miss_rate_baseline=1.0, mshr_entries=8)
        model = AnalyticalModel(scenario)
        # ceil(24 / 8) = 3 multiples of Lo.
        assert model.t_mem_baseline() == pytest.approx(3 * scenario.latency_baseline)

    def test_eq2_busy_cycles_scale_with_hits(self):
        low = AnalyticalModel(make_scenario(miss_rate_baseline=0.9))
        high = AnalyticalModel(make_scenario(miss_rate_baseline=0.5))
        assert high.t_busy_baseline() > low.t_busy_baseline()

    def test_eq3_stall_cycles_never_negative(self):
        model = AnalyticalModel(make_scenario(miss_rate_baseline=0.0))
        assert model.t_stall_baseline() == 0.0


class TestTupleEquations:
    def test_eq4_mixes_polluting_and_nonpolluting_misses(self):
        scenario = make_scenario(
            n_warps=8, p_warps=4, hit_rate_polluting=1.0, hit_rate_nonpolluting=0.0,
            latency_tuple=100.0, mshr_entries=4,
        )
        model = AnalyticalModel(scenario)
        # Only the 4 non-polluting warps miss: ceil(4/4) = 1 multiple of L'.
        assert model.t_mem_tuple() == pytest.approx(100.0)

    def test_eq6_stall_cycles_never_negative(self):
        scenario = make_scenario(hit_rate_polluting=1.0, hit_rate_nonpolluting=1.0)
        assert AnalyticalModel(scenario).t_stall_tuple() == 0.0


class TestSpeedupCriterion:
    def test_good_tuple_predicts_speedup_and_mu_above_one(self):
        scenario = make_scenario(
            miss_rate_baseline=0.97,
            latency_baseline=600.0,
            hit_rate_polluting=0.8,
            hit_rate_nonpolluting=0.15,
            latency_tuple=350.0,
        )
        model = AnalyticalModel(scenario)
        assert model.predicts_speedup()
        assert model.mu() > 1.0

    def test_bad_tuple_predicts_no_speedup(self):
        # The tuple makes the hit rates *worse* and the latency higher.
        scenario = make_scenario(
            miss_rate_baseline=0.2,
            latency_baseline=200.0,
            hit_rate_polluting=0.3,
            hit_rate_nonpolluting=0.1,
            latency_tuple=500.0,
        )
        model = AnalyticalModel(scenario)
        assert not model.predicts_speedup()

    def test_mu_consistent_with_stall_reduction(self):
        # Whenever mu > 1 the tuple must produce fewer stalls than baseline
        # (on scenarios where the baseline actually stalls).
        for hp in (0.3, 0.5, 0.7, 0.9):
            for hnp in (0.0, 0.1, 0.3):
                scenario = make_scenario(
                    hit_rate_polluting=hp, hit_rate_nonpolluting=hnp,
                    miss_rate_baseline=0.95, latency_baseline=500.0, latency_tuple=400.0,
                )
                model = AnalyticalModel(scenario)
                if model.mu() > 1.0 and model.t_stall_baseline() > 0:
                    assert model.t_stall_tuple() <= model.t_stall_baseline()

    def test_mu_p_over_np_increases_with_delta_hp(self):
        # Use a scenario whose non-polluting latency penalty (the denominator
        # of Eq. 11) is positive, so the objective is finite.
        common = dict(hit_rate_nonpolluting=0.0, latency_tuple=500.0)
        base = make_scenario(hit_rate_polluting=0.4, **common)
        better = make_scenario(hit_rate_polluting=0.9, **common)
        assert (
            AnalyticalModel(better).mu_p_over_np() > AnalyticalModel(base).mu_p_over_np()
        )

    def test_mu_p_over_np_infinite_when_p_equals_n(self):
        scenario = make_scenario(n_warps=4, p_warps=4)
        assert math.isinf(AnalyticalModel(scenario).mu_p_over_np())

    def test_mu_p_over_np_zero_when_no_hit_rate_gain(self):
        scenario = make_scenario(
            hit_rate_polluting=0.05, miss_rate_baseline=0.9, latency_tuple=500.0,
            latency_baseline=300.0, hit_rate_nonpolluting=0.0,
        )
        assert AnalyticalModel(scenario).mu_p_over_np() < 1.0
