"""Tests for the versioned bench record schema and its tolerant loader.

The committed ``BENCH_throughput.json`` is the living fixture: it contains
all historical shape generations (the seed's flat v0 entry, the
engine-matrix v1 entries), and every one of them must load, classify and
yield samples without an exception — that is the ISSUE's acceptance
criterion for shape drift.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.obs.schema import (
    BENCH_SCHEMA_VERSION,
    GEN_UNKNOWN,
    GEN_V0,
    GEN_V1,
    GEN_V2,
    HOT_LOOP_SCHEME,
    BenchSchemaError,
    classify_entry,
    load_bench_history,
    validate_bench_entry,
)

REPO_ROOT = Path(__file__).resolve().parents[1]
COMMITTED_HISTORY = REPO_ROOT / "BENCH_throughput.json"


def make_row(kernel: str, engine: str, cps: float = 1_000_000.0) -> dict:
    return {
        "kernel": kernel,
        "engine": engine,
        "cycles": 100_000,
        "instructions": 50_000,
        "wall_seconds": 0.1,
        "cycles_per_second": cps,
        "instructions_per_second": cps / 2.0,
        "python_version": "3.11.0",
        "cpu_count": 4,
    }


def make_v2_entry() -> dict:
    """A minimal entry of the shape ``repro bench`` appends today."""
    return {
        "timestamp": "2026-08-08T00:00:00+00:00",
        "version": "0.5.0",
        "bench_schema": BENCH_SCHEMA_VERSION,
        "jobs_env": 1,
        "environment": {"python_version": "3.11.0", "cpu_count": 4},
        "telemetry": {
            "cache": {"hits": 0, "misses": 0, "corrupt": 0, "stores": 0,
                      "store_failures": 0},
            "phases": {"simulate": {"seconds": 0.5, "calls": 9}},
            "stages": {"throughput": 0.6},
        },
        "throughput": {
            "legacy": {
                "bench_memory_divergent": make_row(
                    "bench_memory_divergent", "legacy", 900_000.0),
                "bench_compute_intensive": make_row(
                    "bench_compute_intensive", "legacy", 640_000.0),
            },
            "fast": {
                "bench_memory_divergent": make_row(
                    "bench_memory_divergent", "fast", 3_200_000.0),
            },
            "trace_replay": make_row("bench_trace_replay", "fast", 1_100_000.0),
        },
        "matrix": [
            dict(make_row("bench_memory_divergent", "fast", 3_100_000.0),
                 scheme="gto", kind="synthetic"),
        ],
        "sweep": {},
    }


# ---------------------------------------------------------------------------
# The committed history: every historical shape loads and classifies
# ---------------------------------------------------------------------------


def test_committed_history_loads_every_generation():
    history = load_bench_history(COMMITTED_HISTORY)
    assert len(history.entries) >= 3
    generations = [entry.generation for entry in history.entries]
    # Entry #1 predates the environment block; later entries are engine-aware.
    assert generations[0] == GEN_V0
    assert GEN_V1 in generations[1:]
    assert GEN_UNKNOWN not in generations
    assert not history.warnings
    assert all(entry.samples for entry in history.entries)


def test_v0_entry_is_attributed_to_legacy_not_mixed():
    history = load_bench_history(COMMITTED_HISTORY)
    v0 = history.entries[0]
    hot = [s for s in v0.samples if s.scheme == HOT_LOOP_SCHEME]
    assert hot and all(sample.engine == "legacy" for sample in hot)
    assert all(sample.generation == GEN_V0 for sample in v0.samples)


def test_loader_tolerates_garbage_entries(tmp_path):
    path = tmp_path / "history.json"
    path.write_text(json.dumps([
        {"throughput": {"k": {"cycles_per_second": 10.0}}},
        "not an entry",
        {"no_throughput": True},
        42,
    ]))
    history = load_bench_history(path)
    assert [e.generation for e in history.entries] == [
        GEN_V0, GEN_UNKNOWN, GEN_UNKNOWN, GEN_UNKNOWN]
    assert len(history.warnings) == 3
    assert history.entries[0].samples  # the valid entry still contributes


def test_loader_warns_on_malformed_rows_without_crashing(tmp_path):
    path = tmp_path / "history.json"
    path.write_text(json.dumps([{
        "environment": {"python_version": "3.11.0", "cpu_count": 4},
        "throughput": {
            "fast": {"good": {"cycles_per_second": 5.0}, "bad": {"cycles": 1}},
            "broken": "nope",
        },
        "matrix": [{"kernel": "k"}, "junk"],
    }]))
    history = load_bench_history(path)
    (entry,) = history.entries
    assert entry.generation == GEN_V1
    assert [sample.kernel for sample in entry.samples] == ["good"]
    assert len(entry.warnings) == 4


# ---------------------------------------------------------------------------
# Generation classification
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("entry, expected", [
    ({"throughput": {"k": {"cycles_per_second": 1.0}}}, GEN_V0),
    ({"throughput": {}, "environment": {}}, GEN_V1),
    ({"throughput": {}, "bench_schema": 2}, GEN_V2),
    ({"throughput": {}, "telemetry": {}}, GEN_V2),
    ({}, GEN_UNKNOWN),
    (None, GEN_UNKNOWN),
    ({"throughput": []}, GEN_UNKNOWN),
])
def test_classify_entry(entry, expected):
    assert classify_entry(entry) == expected


# ---------------------------------------------------------------------------
# Append-time validation (the schema gate `repro bench` runs)
# ---------------------------------------------------------------------------


def test_validate_accepts_a_fresh_entry():
    validate_bench_entry(make_v2_entry())  # must not raise


@pytest.mark.parametrize("mutate, fragment", [
    (lambda e: e.pop("environment"), "environment"),
    (lambda e: e.pop("telemetry"), "telemetry"),
    (lambda e: e.pop("bench_schema"), "bench_schema"),
    (lambda e: e.update(bench_schema=1), "bench_schema"),
    (lambda e: e.update(timestamp=""), "timestamp"),
    (lambda e: e["environment"].pop("cpu_count"), "cpu_count"),
    (lambda e: e["telemetry"].pop("stages"), "stages"),
    (lambda e: e["throughput"]["fast"]["bench_memory_divergent"].pop(
        "cycles_per_second"), "cycles_per_second"),
    (lambda e: e["matrix"][0].pop("scheme"), "scheme"),
    (lambda e: e.pop("sweep"), "sweep"),
    # Flat per-kernel rows are the retired v0 shape — a new entry must nest.
    (lambda e: e["throughput"].update(
        bench_memory_divergent={"cycles_per_second": 1.0}), "v0"),
])
def test_validate_rejects_shape_drift(mutate, fragment):
    entry = make_v2_entry()
    mutate(entry)
    with pytest.raises(BenchSchemaError, match=fragment):
        validate_bench_entry(entry)


def test_validated_entry_roundtrips_through_the_loader(tmp_path):
    entry = make_v2_entry()
    validate_bench_entry(entry)
    path = tmp_path / "history.json"
    path.write_text(json.dumps([entry]))
    history = load_bench_history(path)
    (loaded,) = history.entries
    assert loaded.generation == GEN_V2
    assert not loaded.warnings
    brackets = {sample.bracket for sample in loaded.samples}
    assert "bench_memory_divergent:hot_loop:legacy" in brackets
    assert "bench_memory_divergent:gto:fast" in brackets
    assert "bench_trace_replay:trace_replay:fast" in brackets
