"""Unit tests for the hardware inference engine and the Poise controller."""

import math

import pytest

from repro.core.inference import HardwareInferenceEngine, HIEState, PoiseParameters
from repro.core.poise import PoiseController
from repro.core.training import TrainedModel
from repro.gpu.gpu import GPU
from repro.workloads.generator import generate_kernel_programs
from repro.workloads.spec import KernelSpec


def constant_model(n_target: float, p_target: float, max_warps: int = 24) -> TrainedModel:
    """A model whose prediction is a constant (all weight on the intercept)."""
    return TrainedModel(
        alpha_weights=[0.0] * 7 + [math.log(n_target)],
        beta_weights=[0.0] * 7 + [math.log(p_target)],
        max_warps=max_warps,
    )


def small_params(**overrides) -> PoiseParameters:
    defaults = dict(t_period=12_000, t_warmup=200, t_feature=800, t_search=400)
    defaults.update(overrides)
    return PoiseParameters(**defaults)


@pytest.fixture
def memory_sensitive_sm(baseline_gpu_config):
    spec = KernelSpec(
        name="hie_kernel", num_warps=16, instructions_per_warp=8000,
        instructions_per_load=3, dep_distance=6, intra_warp_fraction=0.85,
        inter_warp_fraction=0.1, private_lines=60, shared_lines=128, seed=3,
    )
    return GPU(baseline_gpu_config).build_sm(generate_kernel_programs(spec))


@pytest.fixture
def compute_intensive_sm(baseline_gpu_config):
    spec = KernelSpec(
        name="hie_compute", num_warps=16, instructions_per_warp=8000,
        instructions_per_load=120, dep_distance=8, intra_warp_fraction=0.3,
        inter_warp_fraction=0.3, private_lines=32, shared_lines=64, seed=4,
    )
    return GPU(baseline_gpu_config).build_sm(generate_kernel_programs(spec))


class TestPoiseParameters:
    def test_paper_values_match_table_iv(self):
        params = PoiseParameters.paper()
        assert params.t_period == 200_000
        assert params.t_warmup == 2_000
        assert params.t_feature == 10_000
        assert params.t_search == 4_000
        assert params.i_max == 49.0
        assert (params.stride_n, params.stride_p) == (2, 4)
        assert params.scoring_weights == (1.0, 0.50, 0.25)

    def test_scaled_preserves_strides_and_cutoff(self):
        params = PoiseParameters.scaled(0.25)
        assert params.t_period < PoiseParameters.paper().t_period
        assert params.i_max == 49.0
        assert (params.stride_n, params.stride_p) == (2, 4)

    def test_with_strides(self):
        params = PoiseParameters.paper().with_strides(0, 0)
        assert params.stride_n == 0 and params.stride_p == 0
        assert params.t_period == 200_000


class TestPredictionStage:
    def test_prediction_clamped_to_tuple_bounds(self, memory_sensitive_sm):
        engine = HardwareInferenceEngine(constant_model(100, 50), small_params())
        predicted, compute_intensive, vector = engine.predict(memory_sensitive_sm, max_warps=16)
        assert not compute_intensive
        assert 1 <= predicted[1] <= predicted[0] <= 16
        assert len(vector.as_list()) == 8

    def test_compute_intensive_kernel_detected_and_bypassed(self, compute_intensive_sm):
        engine = HardwareInferenceEngine(constant_model(4, 1), small_params())
        predicted, compute_intensive, _ = engine.predict(compute_intensive_sm, max_warps=16)
        assert compute_intensive
        assert predicted == (16, 16)
        assert engine.state is HIEState.BYPASSED

    def test_memory_sensitive_kernel_not_bypassed(self, memory_sensitive_sm):
        engine = HardwareInferenceEngine(constant_model(8, 2), small_params())
        _, compute_intensive, _ = engine.predict(memory_sensitive_sm, max_warps=16)
        assert not compute_intensive


class TestLocalSearch:
    def test_zero_stride_returns_prediction_unchanged(self, memory_sensitive_sm):
        engine = HardwareInferenceEngine(constant_model(8, 2), small_params(stride_n=0, stride_p=0))
        final, samples, visited = engine.local_search(memory_sensitive_sm, (8, 2), 16)
        assert final == (8, 2)
        assert samples == 0
        assert visited == [(8, 2)]

    def test_search_stays_within_tuple_bounds(self, memory_sensitive_sm):
        engine = HardwareInferenceEngine(constant_model(8, 2), small_params())
        final, _, visited = engine.local_search(memory_sensitive_sm, (15, 1), 16)
        for n, p in visited:
            assert 1 <= p <= n <= 16
        assert 1 <= final[1] <= final[0] <= 16

    def test_search_visits_neighbours_at_initial_stride(self, memory_sensitive_sm):
        engine = HardwareInferenceEngine(constant_model(8, 2), small_params(stride_n=2, stride_p=2))
        _, samples, visited = engine.local_search(memory_sensitive_sm, (8, 4), 16)
        assert samples >= 2
        assert any(abs(v[0] - 8) == 2 for v in visited[1:])


class TestEpochAndController:
    def test_run_epoch_records_telemetry(self, memory_sensitive_sm):
        engine = HardwareInferenceEngine(constant_model(8, 2), small_params())
        record = engine.run_epoch(memory_sensitive_sm, max_warps=16)
        assert record.predicted[0] >= 1
        assert record.visited[0] == record.predicted
        assert len(engine.epochs) == 1
        n_disp, p_disp, euclid = engine.mean_displacement()
        assert euclid <= n_disp + p_disp + 1e-9 or euclid >= 0.0

    def test_epoch_advances_time_by_roughly_t_period(self, memory_sensitive_sm):
        params = small_params()
        engine = HardwareInferenceEngine(constant_model(8, 2), params)
        start = memory_sensitive_sm.cycle
        engine.run_epoch(memory_sensitive_sm, max_warps=16)
        elapsed = memory_sensitive_sm.cycle - start
        assert elapsed >= params.t_period * 0.9

    def test_controller_runs_to_budget_and_reports(self, baseline_gpu_config):
        spec = KernelSpec(
            name="controller_kernel", num_warps=12, instructions_per_warp=6000,
            instructions_per_load=3, dep_distance=5, intra_warp_fraction=0.8,
            inter_warp_fraction=0.1, private_lines=50, shared_lines=100, seed=9,
        )
        controller = PoiseController(constant_model(8, 2), small_params())
        result = GPU(baseline_gpu_config).run_kernel(
            generate_kernel_programs(spec), controller=controller, max_cycles=30_000
        )
        assert result.telemetry["epochs"] >= 1
        assert len(result.telemetry["predicted_tuples"]) == result.telemetry["epochs"]
        # Sampling phases may overrun the budget by at most one epoch's worth
        # of prediction + search cycles.
        assert result.counters.cycles <= 30_000 + 15_000

    def test_controller_on_compute_intensive_kernel_keeps_max_warps(self, baseline_gpu_config):
        spec = KernelSpec(
            name="controller_compute", num_warps=12, instructions_per_warp=6000,
            instructions_per_load=100, dep_distance=8, intra_warp_fraction=0.3,
            inter_warp_fraction=0.3, private_lines=32, shared_lines=64, seed=10,
        )
        controller = PoiseController(constant_model(2, 1), small_params())
        result = GPU(baseline_gpu_config).run_kernel(
            generate_kernel_programs(spec), controller=controller, max_cycles=30_000
        )
        assert result.telemetry["compute_intensive_epochs"] >= 1
        assert result.warp_tuple == (12, 12)
