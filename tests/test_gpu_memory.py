"""Unit tests for the L2/DRAM memory subsystem model."""

from repro.gpu.config import CacheConfig, MemoryConfig
from repro.gpu.memory import MemorySubsystem


def make_memory(**overrides):
    config = MemoryConfig(
        l2=CacheConfig(size_bytes=8 * 128, assoc=2, line_size=128, mshr_entries=8),
        l2_latency=20,
        l2_service_interval=2.0,
        dram_latency=100,
        dram_service_interval=10.0,
        **overrides,
    )
    return MemorySubsystem(config)


class TestRequestPath:
    def test_first_request_goes_to_dram(self):
        memory = make_memory()
        response = memory.request(1, cycle=0, warp_id=0)
        assert response.served_by == "dram"
        assert response.latency >= 120  # l2 + dram base latency
        assert memory.dram_accesses == 1

    def test_second_request_to_same_line_hits_l2(self):
        memory = make_memory()
        memory.request(1, cycle=0, warp_id=0)
        response = memory.request(1, cycle=500, warp_id=0)
        assert response.served_by == "l2"
        assert response.latency < 100
        assert memory.l2_hits == 1

    def test_completion_cycle_is_issue_plus_latency(self):
        memory = make_memory()
        response = memory.request(1, cycle=37, warp_id=0)
        assert response.completion_cycle == 37 + response.latency

    def test_l2_thrashing_sends_rereferences_to_dram(self):
        memory = make_memory()
        # 64 distinct lines >> 16-line L2: re-references still miss.
        for line in range(64):
            memory.request(line, cycle=line * 200, warp_id=0)
        before = memory.dram_accesses
        memory.request(0, cycle=100_000, warp_id=0)
        assert memory.dram_accesses == before + 1


class TestQueueing:
    def test_back_to_back_requests_queue_behind_each_other(self):
        memory = make_memory()
        latencies = [memory.request(line, cycle=0, warp_id=0).latency for line in range(10)]
        # Later requests wait behind earlier ones at the DRAM server.
        assert latencies[-1] > latencies[0]
        assert latencies == sorted(latencies)

    def test_spread_out_requests_do_not_queue(self):
        memory = make_memory()
        first = memory.request(0, cycle=0, warp_id=0).latency
        second = memory.request(1, cycle=10_000, warp_id=0).latency
        assert second == first

    def test_congestion_factor_scales_queueing(self):
        calm = make_memory()
        congested = make_memory(congestion_factor=4.0)
        for line in range(10):
            calm.request(line, cycle=0, warp_id=0)
            congested.request(line, cycle=0, warp_id=0)
        assert congested.average_latency > calm.average_latency

    def test_queue_delay_is_capped(self):
        memory = make_memory(max_queue_delay=50)
        latencies = [memory.request(line, cycle=0, warp_id=0).latency for line in range(200)]
        assert max(latencies) <= 20 + 100 + 50 + 50  # base latencies + both caps


class TestStats:
    def test_average_latency_tracks_requests(self):
        memory = make_memory()
        memory.request(0, cycle=0, warp_id=0)
        memory.request(1, cycle=5_000, warp_id=0)
        assert memory.requests == 2
        assert memory.average_latency > 0

    def test_reset_stats(self):
        memory = make_memory()
        memory.request(0, cycle=0, warp_id=0)
        memory.reset_stats()
        assert memory.requests == 0
        assert memory.average_latency == 0.0

    def test_flush_clears_l2_contents(self):
        memory = make_memory()
        memory.request(0, cycle=0, warp_id=0)
        memory.flush()
        response = memory.request(0, cycle=10_000, warp_id=0)
        assert response.served_by == "dram"
