"""Unit tests for metrics and the {N, p} profiler."""

import math

import pytest

from repro.profiling.metrics import (
    arithmetic_mean,
    euclidean_displacement,
    geometric_mean,
    harmonic_mean,
    normalize,
)
from repro.profiling.profiler import KernelProfiler, StaticProfile, measure_pbest
from repro.workloads.spec import KernelSpec


class TestMetrics:
    def test_harmonic_mean_known_value(self):
        assert harmonic_mean([1.0, 2.0]) == pytest.approx(4.0 / 3.0)

    def test_harmonic_mean_below_arithmetic(self):
        values = [1.0, 1.5, 3.0]
        assert harmonic_mean(values) <= geometric_mean(values) <= arithmetic_mean(values)

    def test_harmonic_mean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            harmonic_mean([1.0, 0.0])

    def test_means_of_empty_sequences(self):
        assert harmonic_mean([]) == 0.0
        assert arithmetic_mean([]) == 0.0
        assert geometric_mean([]) == 0.0

    def test_normalize(self):
        assert normalize([2.0, 4.0], 2.0) == [1.0, 2.0]
        with pytest.raises(ValueError):
            normalize([1.0], 0.0)

    def test_euclidean_displacement(self):
        assert euclidean_displacement((3, 4), (0, 0)) == pytest.approx(5.0)
        assert euclidean_displacement((2, 2), (2, 2)) == 0.0


class TestStaticProfile:
    def make_profile(self, grid, baseline_ipc=1.0, max_warps=8):
        profile = StaticProfile(
            kernel=KernelSpec(name="k"), max_warps=max_warps, baseline_ipc=baseline_ipc
        )
        profile.ipc.update(grid)
        return profile

    def test_speedup_normalised_to_baseline(self):
        profile = self.make_profile({(8, 8): 2.0, (4, 1): 3.0}, baseline_ipc=2.0)
        assert profile.speedup(4, 1) == pytest.approx(1.5)
        assert profile.speedup(8, 8) == pytest.approx(1.0)
        assert profile.speedup(5, 5) == 0.0  # unprofiled point

    def test_best_point_requires_meaningful_gain(self):
        profile = self.make_profile({(8, 8): 1.0, (4, 1): 1.001}, baseline_ipc=1.0)
        assert profile.best_point() == (8, 8)
        profile = self.make_profile({(8, 8): 1.0, (4, 1): 1.2}, baseline_ipc=1.0)
        assert profile.best_point() == (4, 1)

    def test_best_diagonal_point_restricted_to_diagonal(self):
        profile = self.make_profile({(8, 8): 1.0, (4, 4): 1.3, (6, 1): 2.0})
        assert profile.best_diagonal_point() == (4, 4)

    def test_speedup_grid_and_points(self):
        profile = self.make_profile({(8, 8): 1.0, (4, 4): 1.5})
        grid = profile.speedup_grid()
        assert grid[(4, 4)] == pytest.approx(1.5)
        assert profile.points() == [(4, 4), (8, 8)]
        assert profile.contains(4, 4) and not profile.contains(1, 1)


class TestKernelProfiler:
    @pytest.fixture
    def small_spec(self):
        return KernelSpec(
            name="profile_kernel", num_warps=6, instructions_per_warp=3000,
            instructions_per_load=3, dep_distance=4, intra_warp_fraction=0.8,
            inter_warp_fraction=0.1, private_lines=40, shared_lines=80, seed=13,
        )

    def test_grid_respects_steps_and_includes_baseline(self, baseline_gpu_config, small_spec):
        profiler = KernelProfiler(
            baseline_gpu_config, cycles_per_point=800, warmup_cycles=400, n_step=3, p_step=3
        )
        profile = profiler.profile(small_spec)
        assert (small_spec.num_warps, small_spec.num_warps) in profile.ipc
        for n, p in profile.ipc:
            assert 1 <= p <= n <= small_spec.num_warps

    def test_profile_is_deterministic(self, baseline_gpu_config, small_spec):
        def run():
            profiler = KernelProfiler(
                baseline_gpu_config, cycles_per_point=600, warmup_cycles=200, n_step=3, p_step=3
            )
            return profiler.profile(small_spec).ipc

        assert run() == run()

    def test_measure_point_returns_window_counters(self, baseline_gpu_config, small_spec):
        profiler = KernelProfiler(baseline_gpu_config, cycles_per_point=700, warmup_cycles=300)
        result = profiler.measure_point(small_spec, 4, 2)
        assert result.warp_tuple == (4, 2)
        assert result.counters.cycles <= 701

    def test_max_warps_capped_by_kernel(self, baseline_gpu_config):
        spec = KernelSpec(name="tiny", num_warps=4, instructions_per_warp=800)
        profiler = KernelProfiler(
            baseline_gpu_config, cycles_per_point=400, warmup_cycles=100, n_step=2, p_step=2
        )
        profile = profiler.profile(spec)
        assert profile.max_warps == 4

    def test_pbest_larger_cache_helps_memory_sensitive_kernel(self, baseline_gpu_config):
        spec = KernelSpec(
            name="pbest_kernel", num_warps=16, instructions_per_warp=8000,
            instructions_per_load=3, dep_distance=6, intra_warp_fraction=0.90,
            inter_warp_fraction=0.05, private_lines=30, shared_lines=100, seed=17,
        )
        pbest = measure_pbest(
            spec, baseline_gpu_config, cycles=10_000, warmup_cycles=15_000, l1_scale=64
        )
        assert pbest > 1.05
