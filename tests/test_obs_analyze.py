"""Tests for trajectories, regression detection and the analyze CLI.

The regression-detection cases pin the ISSUE's acceptance behaviour:

* an injected 2x slowdown yields a ``regress`` verdict, a nonzero exit
  and the regressed kernel×scheme×engine bracket by name,
* a noisy-but-flat trajectory passes,
* a single-entry history is ``insufficient-data`` — never a false pass,
* the real committed ``BENCH_throughput.json`` passes with exit 0 and a
  schema-valid ``verdict.json``.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli.main import main as repro_main
from repro.obs.regress import (
    STATUS_INSUFFICIENT,
    STATUS_PASS,
    STATUS_REGRESS,
    build_verdict,
    detect_regressions,
    validate_verdict,
)
from repro.obs.schema import BenchSchemaError, load_bench_history
from repro.obs.trajectory import build_trajectories, legacy_anchor, trajectory_report

REPO_ROOT = Path(__file__).resolve().parents[1]
COMMITTED_HISTORY = REPO_ROOT / "BENCH_throughput.json"

#: The bracket the synthetic fixtures slow down / keep flat.
FAST_MEMDIV = "bench_memory_divergent:hot_loop:fast"


def make_row(kernel: str, engine: str, cps: float) -> dict:
    return {
        "kernel": kernel,
        "engine": engine,
        "cycles": 100_000,
        "instructions": 50_000,
        "wall_seconds": 0.1,
        "cycles_per_second": cps,
        "instructions_per_second": cps / 2.0,
        "python_version": "3.11.0",
        "cpu_count": 4,
    }


def make_entry(fast_memdiv: float, host_slowdown: float = 1.0,
               index: int = 0) -> dict:
    """One v1-shaped entry; ``host_slowdown`` scales *everything* (a slower
    host), which normalization must cancel out."""
    scale = 1.0 / host_slowdown
    return {
        "timestamp": f"2026-08-0{index + 1}T00:00:00+00:00",
        "version": "0.5.0",
        "environment": {"python_version": "3.11.0", "cpu_count": 4},
        "throughput": {
            "legacy": {
                "bench_memory_divergent": make_row(
                    "bench_memory_divergent", "legacy", 900_000.0 * scale),
                "bench_compute_intensive": make_row(
                    "bench_compute_intensive", "legacy", 640_000.0 * scale),
            },
            "fast": {
                "bench_memory_divergent": make_row(
                    "bench_memory_divergent", "fast", fast_memdiv * scale),
                "bench_compute_intensive": make_row(
                    "bench_compute_intensive", "fast", 5_100_000.0 * scale),
            },
        },
        "matrix": [],
        "sweep": {},
    }


def write_history(tmp_path: Path, fast_memdiv_series, host_slowdowns=None) -> Path:
    host_slowdowns = host_slowdowns or [1.0] * len(fast_memdiv_series)
    path = tmp_path / "history.json"
    path.write_text(json.dumps([
        make_entry(cps, slowdown, index)
        for index, (cps, slowdown) in enumerate(zip(fast_memdiv_series, host_slowdowns))
    ]))
    return path


def run_cli(capsys, *argv):
    code = repro_main(list(argv))
    captured = capsys.readouterr()
    assert "Traceback" not in captured.err
    return code, captured


# ---------------------------------------------------------------------------
# Trajectories + normalization
# ---------------------------------------------------------------------------


def test_normalization_cancels_host_speed(tmp_path):
    # Same machine-independent performance, measured on hosts 1x/3x/2x slower.
    path = write_history(tmp_path, [3_200_000.0] * 3, [1.0, 3.0, 2.0])
    trajectories = build_trajectories(load_bench_history(path))
    normalized = trajectories[FAST_MEMDIV].normalized_values
    assert len(normalized) == 3
    assert max(normalized) - min(normalized) < 1e-9  # perfectly flat
    raw = [p.cycles_per_second for p in trajectories[FAST_MEMDIV].points]
    assert max(raw) / min(raw) == pytest.approx(3.0)  # raw was all over


def test_entry_without_legacy_anchor_has_no_normalized_points(tmp_path):
    entry = make_entry(3_200_000.0)
    del entry["throughput"]["legacy"]
    path = tmp_path / "history.json"
    path.write_text(json.dumps([entry]))
    history = load_bench_history(path)
    assert legacy_anchor(history.entries[0]) is None
    trajectories = build_trajectories(history)
    assert trajectories[FAST_MEMDIV].normalized_values == []
    assert trajectories[FAST_MEMDIV].points  # raw point kept


def test_trajectory_report_is_machine_readable(tmp_path):
    path = write_history(tmp_path, [3_200_000.0, 3_100_000.0])
    report = trajectory_report(load_bench_history(path))
    assert report["kind"] == "bench-trajectory"
    assert len(report["entries"]) == 2
    assert all(e["legacy_anchor"] is not None for e in report["entries"])
    assert FAST_MEMDIV in report["brackets"]
    json.dumps(report)  # JSON-serializable end to end


# ---------------------------------------------------------------------------
# Regression detection (library level)
# ---------------------------------------------------------------------------


def judge(path):
    verdicts = detect_regressions(build_trajectories(load_bench_history(path)))
    return {verdict.bracket: verdict for verdict in verdicts}


def test_injected_2x_slowdown_regresses(tmp_path):
    path = write_history(
        tmp_path, [3_200_000.0, 3_250_000.0, 3_300_000.0, 1_600_000.0])
    verdict = judge(path)[FAST_MEMDIV]
    assert verdict.status == STATUS_REGRESS
    assert verdict.ratio == pytest.approx(0.492, abs=0.01)


def test_noisy_but_flat_passes(tmp_path):
    path = write_history(
        tmp_path, [3_200_000.0, 2_900_000.0, 3_400_000.0, 3_050_000.0])
    verdicts = judge(path)
    assert verdicts[FAST_MEMDIV].status == STATUS_PASS
    assert all(v.status != STATUS_REGRESS for v in verdicts.values())


def test_single_entry_history_is_insufficient_not_pass(tmp_path):
    path = write_history(tmp_path, [3_200_000.0])
    verdicts = judge(path)
    assert verdicts and all(
        verdict.status == STATUS_INSUFFICIENT for verdict in verdicts.values()
    )
    overall = build_verdict(list(verdicts.values()))
    assert overall["status"] == STATUS_INSUFFICIENT


def test_speedup_never_regresses(tmp_path):
    path = write_history(tmp_path, [3_200_000.0, 3_150_000.0, 9_000_000.0])
    assert judge(path)[FAST_MEMDIV].status == STATUS_PASS


def test_verdict_document_validates_and_counts(tmp_path):
    path = write_history(tmp_path, [3_200_000.0, 3_100_000.0, 1_000_000.0])
    verdicts = detect_regressions(build_trajectories(load_bench_history(path)))
    verdict = build_verdict(verdicts, source=str(path))
    validate_verdict(verdict)
    assert verdict["status"] == STATUS_REGRESS
    assert verdict["counts"]["regress"] >= 1
    with pytest.raises(BenchSchemaError):
        validate_verdict({**verdict, "counts": {"pass": 0, "regress": 0,
                                                "insufficient_data": 0}})


# ---------------------------------------------------------------------------
# The CLI: regress / ci / trajectory / compare
# ---------------------------------------------------------------------------


def test_cli_ci_names_regressed_bracket_and_exits_nonzero(tmp_path, capsys):
    history = write_history(
        tmp_path, [3_200_000.0, 3_250_000.0, 3_300_000.0, 1_600_000.0])
    out_dir = tmp_path / "report"
    code, captured = run_cli(
        capsys, "analyze", "ci", "--history", str(history),
        "--output-dir", str(out_dir))
    assert code == 1
    assert FAST_MEMDIV in captured.out  # names the kernel×scheme×engine bracket
    verdict = json.loads((out_dir / "verdict.json").read_text())
    validate_verdict(verdict)
    assert verdict["status"] == STATUS_REGRESS
    regressed = [b for b in verdict["brackets"] if b["status"] == STATUS_REGRESS]
    assert [b["bracket"] for b in regressed] == [FAST_MEMDIV]
    trajectory = json.loads((out_dir / "trajectory.json").read_text())
    assert trajectory["kind"] == "bench-trajectory"


def test_cli_ci_passes_on_the_committed_history(tmp_path, capsys):
    out_dir = tmp_path / "report"
    code, captured = run_cli(
        capsys, "analyze", "ci", "--history", str(COMMITTED_HISTORY),
        "--output-dir", str(out_dir))
    assert code == 0
    verdict = json.loads((out_dir / "verdict.json").read_text())
    validate_verdict(verdict)
    assert verdict["status"] == STATUS_PASS


def test_cli_regress_writes_verdict_and_flags_slowdown(tmp_path, capsys):
    history = write_history(tmp_path, [3_200_000.0, 3_300_000.0, 1_500_000.0])
    output = tmp_path / "verdict.json"
    code, captured = run_cli(
        capsys, "analyze", "regress", "--history", str(history),
        "--output", str(output))
    assert code == 1
    assert "regress" in captured.out and FAST_MEMDIV in captured.out
    validate_verdict(json.loads(output.read_text()))


def test_cli_regress_passes_flat_history(tmp_path, capsys):
    history = write_history(tmp_path, [3_200_000.0, 3_150_000.0, 3_250_000.0])
    code, captured = run_cli(
        capsys, "analyze", "regress", "--history", str(history))
    assert code == 0
    assert "verdict: pass" in captured.out


def test_cli_trajectory_lists_brackets(tmp_path, capsys):
    history = write_history(tmp_path, [3_200_000.0, 3_100_000.0])
    code, captured = run_cli(
        capsys, "analyze", "trajectory", "--history", str(history))
    assert code == 0
    assert FAST_MEMDIV in captured.out
    code, captured = run_cli(
        capsys, "analyze", "trajectory", "--history", str(history),
        "--bracket", "nonexistent")
    assert code == 2


def test_cli_errors_cleanly_on_missing_history(tmp_path, capsys):
    code, captured = run_cli(
        capsys, "analyze", "regress", "--history", str(tmp_path / "nope.json"))
    assert code == 2
    assert "no bench history" in captured.err


# ---------------------------------------------------------------------------
# compare
# ---------------------------------------------------------------------------


def write_point(cache_dir: Path, grid: str, label: str, point_id: str,
                speedup: float) -> None:
    directory = cache_dir / "artifacts" / "sweeps" / grid / label / "points"
    directory.mkdir(parents=True, exist_ok=True)
    (directory / f"{point_id}.json").write_text(json.dumps({
        "format_version": 1,
        "kind": "sweep-point",
        "grid": grid,
        "label": label,
        "point_id": point_id,
        "point": {},
        "metrics": {"speedup": speedup},
    }))


def test_cli_compare_lists_drifted_points(tmp_path, capsys):
    for point_id, fast, full in [("p1", 1.00, 1.01), ("p2", 2.00, 3.00)]:
        write_point(tmp_path, "g1", "fast", point_id, fast)
        write_point(tmp_path, "g1", "full", point_id, full)
    write_point(tmp_path, "g1", "fast", "only-a", 1.0)
    code, captured = run_cli(
        capsys, "analyze", "compare", "g1", "fast", "full",
        "--cache-dir", str(tmp_path))
    assert code == 0
    assert "drifted: p2" in captured.out and "drifted: p1" not in captured.out
    code, captured = run_cli(
        capsys, "analyze", "compare", "g1", "fast", "full",
        "--cache-dir", str(tmp_path), "--json")
    comparison = json.loads(captured.out)
    assert comparison["drifted"] == ["p2"]
    assert comparison["only_a"] == ["only-a"]


def test_cli_compare_errors_on_missing_tree(tmp_path, capsys):
    code, captured = run_cli(
        capsys, "analyze", "compare", "g1", "fast", "full",
        "--cache-dir", str(tmp_path))
    assert code == 2
    assert "no sweep artifacts" in captured.err
