"""Unit tests for repro.gpu.config."""

import pytest

from repro.gpu.config import CacheConfig, EnergyConfig, GPUConfig, MemoryConfig, SMConfig, baseline_config


class TestCacheConfig:
    def test_baseline_l1_geometry_matches_table_iiib(self):
        config = baseline_config().l1
        assert config.size_bytes == 16 * 1024
        assert config.line_size == 128
        assert config.assoc == 4
        assert config.num_lines == 128
        assert config.num_sets == 32
        assert config.mshr_entries == 32
        assert config.indexing == "hash"

    def test_rejects_size_not_multiple_of_line(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1000, assoc=2, line_size=128, mshr_entries=4)

    def test_rejects_lines_not_multiple_of_assoc(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=3 * 128, assoc=2, line_size=128, mshr_entries=4)

    def test_rejects_unknown_indexing(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1024, assoc=2, line_size=128, mshr_entries=4, indexing="random")

    def test_rejects_nonpositive_assoc_or_mshr(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1024, assoc=0, line_size=128, mshr_entries=4)
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1024, assoc=2, line_size=128, mshr_entries=0)


class TestGPUConfig:
    def test_baseline_scheduler_view(self):
        config = baseline_config()
        assert config.max_warps == 24
        assert config.sm.warp_size == 32
        # One simulated SM by default — the paper's 32 SMs are folded into
        # the per-SM memory shares; num_sms > 1 opts into the chip model.
        assert config.num_sms == 1
        assert config.sm_quantum == 100

    def test_with_l1_scale_multiplies_capacity_only(self):
        config = baseline_config()
        scaled = config.with_l1_scale(4)
        assert scaled.l1.size_bytes == 4 * config.l1.size_bytes
        assert scaled.l1.assoc == config.l1.assoc
        # Original untouched (frozen dataclasses).
        assert config.l1.size_bytes == 16 * 1024

    def test_with_l1_changes_indexing(self):
        config = baseline_config().with_l1(indexing="linear")
        assert config.l1.indexing == "linear"

    def test_with_max_cycles(self):
        config = baseline_config().with_max_cycles(123)
        assert config.max_cycles == 123

    def test_baseline_config_overrides(self):
        config = baseline_config(max_cycles=5, num_sms=16)
        assert config.max_cycles == 5
        assert config.num_sms == 16

    def test_energy_config_defaults_positive(self):
        energy = EnergyConfig()
        assert energy.dram_access_pj > energy.l2_access_pj > energy.l1_access_pj > 0

    def test_memory_config_defaults(self):
        memory = MemoryConfig()
        assert memory.dram_latency > memory.l2_latency
        assert memory.dram_service_interval > memory.l2_service_interval

    def test_sm_config_defaults(self):
        sm = SMConfig()
        assert sm.max_warps == 24
        assert sm.issue_width == 1
