"""Tests for result tables, experiment plumbing and the fast integration path."""

import pytest

from repro.analysis.tables import ExperimentResult, Table
from repro.core.hardware_cost import HardwareCostModel
from repro.experiments import sec7i_hardware_cost, table03b_architecture, table04_parameters
from repro.experiments.common import ExperimentConfig


class TestTable:
    def test_add_row_validates_width(self):
        table = Table(title="t", columns=["a", "b"])
        table.add_row(1, 2)
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_column_and_row_lookup(self):
        table = Table(title="t", columns=["name", "value"])
        table.add_row("x", 1.0)
        table.add_row("y", 2.0)
        assert table.column("value") == [1.0, 2.0]
        assert table.row_by_key("y") == ["y", 2.0]
        assert table.row_by_key("z") is None
        with pytest.raises(KeyError):
            table.column("missing")

    def test_text_and_csv_rendering(self):
        table = Table(title="demo", columns=["name", "speedup"], precision=2)
        table.add_row("ii", 1.4567)
        text = table.to_text()
        assert "demo" in text and "ii" in text and "1.46" in text
        csv = table.to_csv()
        assert csv.splitlines()[0] == "name,speedup"
        assert "1.46" in csv

    def test_as_dict_rows(self):
        table = Table(title="t", columns=["a", "b"])
        table.add_row(1, 2)
        assert table.as_dict_rows() == [{"a": 1, "b": 2}]


class TestExperimentResult:
    def test_table_lookup_by_fragment(self):
        result = ExperimentResult(experiment_id="x", description="d")
        result.add_table(Table(title="Fig. 7 — IPC", columns=["a"]))
        assert result.table("ipc").title.startswith("Fig. 7")
        with pytest.raises(KeyError):
            result.table("nope")

    def test_to_text_includes_notes_and_scalars(self):
        result = ExperimentResult(experiment_id="x", description="d")
        result.scalars["k"] = 1.5
        result.add_note("a note")
        text = result.to_text()
        assert "a note" in text and "k=1.5" in text


class TestExperimentConfig:
    def test_fast_preset_is_smaller_than_full(self):
        fast, full = ExperimentConfig.fast(), ExperimentConfig.full()
        assert fast.profile_cycles <= full.profile_cycles
        assert fast.kernels_per_benchmark <= full.kernels_per_benchmark
        assert fast.cache_key != full.cache_key

    def test_with_gpu_changes_cache_key(self):
        config = ExperimentConfig.full()
        changed = config.with_gpu(config.gpu.with_l1_scale(2))
        assert changed.cache_key != config.cache_key

    def test_limited_kernels_respects_caps(self):
        from repro.workloads.registry import get_benchmark

        config = ExperimentConfig.fast()
        assert len(config.limited_kernels(get_benchmark("ii"))) == 1
        assert len(config.limited_kernels(get_benchmark("pvr"), training=True)) == 5


class TestCheapExperiments:
    """Experiments that need no simulation can run in unit-test time."""

    def test_hardware_cost_experiment_matches_model(self):
        result = sec7i_hardware_cost.run()
        assert result.scalars["bytes_per_sm"] == pytest.approx(HardwareCostModel().bytes_per_sm)

    def test_architecture_table_lists_baseline(self):
        result = table03b_architecture.run(ExperimentConfig.fast())
        assert result.table("architecture").row_by_key("SMs") is not None

    def test_parameters_table_contains_paper_values(self):
        result = table04_parameters.run(ExperimentConfig.fast())
        assert 200000 in result.table("Poise parameters").column("paper")
