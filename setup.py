"""Setuptools shim.

The project metadata lives in pyproject.toml; this file exists so that
``pip install -e .`` works on environments whose setuptools predates native
PEP 660 editable installs (no ``wheel`` package available offline).
"""

from setuptools import setup

setup()
