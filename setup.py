"""Packaging for the Poise (HPCA'19) reproduction.

Kept as a plain ``setup.py`` (no ``pyproject.toml``) so ``pip install -e .``
works on environments whose setuptools predates native PEP 660 editable
installs (no ``wheel`` package available offline).
"""

from pathlib import Path

from setuptools import find_packages, setup

_version: dict = {}
exec((Path(__file__).resolve().parent / "src" / "repro" / "version.py").read_text(), _version)

setup(
    name="poise-repro",
    version=_version["__version__"],
    description=(
        "Reproduction of 'Poise: Balancing Thread-Level Parallelism and Memory "
        "System Performance in GPUs using Machine Learning' (HPCA 2019)"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    package_data={"repro": ["data/*.json"]},
    python_requires=">=3.9",
    install_requires=["numpy"],
    entry_points={"console_scripts": ["repro=repro.cli.main:main"]},
)
