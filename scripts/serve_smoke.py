#!/usr/bin/env python
"""CI smoke for ``repro serve``: chaos, dedup, drain, restart, differential.

The scripted scenario (exit 0 = every guarantee held):

1. a **reference** sweep runs directly (``repro sweep run`` + ``report``)
   into its own cache;
2. the daemon starts against a second cache with a one-shot
   ``serve.worker:crash`` chaos budget;
3. the same sweep is submitted **twice** — the second submission must
   deduplicate onto the first job;
4. the job completes despite the injected worker crash (lost -> requeued
   -> rerun by a restarted worker);
5. ``SIGTERM`` drains the daemon, which must exit 0;
6. a **restarted** daemon recovers the journal and still serves the
   completed job's result;
7. the served artifact tree is compared **byte for byte** against the
   reference run (``diff -r`` on ``points/`` + ``cmp`` on ``sweep.json``).

Usage::

    PYTHONPATH=src python scripts/serve_smoke.py [--workdir DIR]
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.serve.client import ServeClient  # noqa: E402

SWEEP_REQUEST = {
    "kind": "sweep",
    "grid": "smoke",
    "preset": "fast",
    "overrides": ["engine=fast"],
}
GRID_DIR = "smoke@*"  # override grids get a digest-derived name


def log(message: str) -> None:
    print(f"serve-smoke: {message}", flush=True)


def env_for(cache_dir: Path, faults: str | None = None) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env["REPRO_CACHE_DIR"] = str(cache_dir)
    env.pop("REPRO_FAULTS", None)
    if faults:
        env["REPRO_FAULTS"] = faults
    return env


def run_cli(cache_dir: Path, *args: str) -> None:
    command = [sys.executable, "-m", "repro", *args]
    completed = subprocess.run(
        command, env=env_for(cache_dir), capture_output=True, text=True, timeout=900
    )
    if completed.returncode != 0:
        sys.exit(
            f"serve-smoke: {' '.join(command)} failed "
            f"({completed.returncode}):\n{completed.stdout}{completed.stderr}"
        )


def start_daemon(cache_dir: Path, faults: str | None = None):
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve", "start",
            "--workers", "1", "--job-timeout", "120", "--drain-grace", "10",
        ],
        env=env_for(cache_dir, faults=faults),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    endpoint = cache_dir / "serve" / "endpoint.json"
    deadline = time.monotonic() + 90.0
    while time.monotonic() < deadline:
        if endpoint.exists():
            try:
                document = json.loads(endpoint.read_text())
                if document.get("pid") == process.pid:
                    return process, ServeClient(document["url"], timeout=15.0)
            except (ValueError, KeyError):
                pass
        if process.poll() is not None:
            sys.exit(f"serve-smoke: daemon exited early:\n{process.stdout.read()}")
        time.sleep(0.1)
    process.kill()
    sys.exit("serve-smoke: daemon never published endpoint.json")


def drain(process) -> None:
    process.send_signal(signal.SIGTERM)
    code = process.wait(60)
    if code != 0:
        sys.exit(f"serve-smoke: SIGTERM drain exited {code}, expected 0")


def grid_root(cache_dir: Path) -> Path:
    matches = sorted((cache_dir / "artifacts" / "sweeps").glob(GRID_DIR))
    if len(matches) != 1:
        sys.exit(f"serve-smoke: expected one override grid dir, found {matches}")
    return matches[0] / "fast"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workdir", default=None,
                        help="scratch directory (default: a fresh tempdir)")
    args = parser.parse_args()
    workdir = Path(args.workdir) if args.workdir else Path(tempfile.mkdtemp(prefix="serve-smoke-"))
    direct = workdir / "direct"
    served = workdir / "served"
    direct.mkdir(parents=True, exist_ok=True)
    served.mkdir(parents=True, exist_ok=True)

    log("reference: direct sweep run + report")
    run_cli(direct, "sweep", "run", "smoke", "--fast", "--set", "engine=fast")
    run_cli(direct, "sweep", "report", "smoke", "--fast", "--set", "engine=fast")

    log("daemon up (chaos: one injected worker crash)")
    process, client = start_daemon(served, faults="serve.worker:crash:1")
    first = client.submit(SWEEP_REQUEST)
    second = client.submit(SWEEP_REQUEST)
    if not first["created"] or not second["deduplicated"]:
        sys.exit(f"serve-smoke: dedup contract broken: {first} / {second}")
    log(f"submitted {first['job_id']} twice — second deduplicated")

    result = client.wait(first["job_id"], timeout=600.0)
    points = result["result"]["num_points"]
    log(f"job done despite injected crash ({points} points)")
    health = client.health()
    if health["workers"]["restarts"] < 1:
        sys.exit(f"serve-smoke: expected >=1 worker restart, got {health['workers']}")
    log(f"supervisor restarted {health['workers']['restarts']} worker(s)")

    drain(process)
    log("SIGTERM drain exited 0")

    log("daemon restart: journal recovery must still serve the result")
    process, client = start_daemon(served)
    recovered = client.wait(first["job_id"], timeout=60.0)
    if recovered["result"]["num_points"] != points:
        sys.exit("serve-smoke: recovered result differs from original")
    drain(process)

    log("differential: served artifacts vs direct run")
    reference = grid_root(direct)
    candidate = grid_root(served)
    subprocess.run(
        ["diff", "-r", str(reference / "points"), str(candidate / "points")],
        check=True,
    )
    subprocess.run(
        ["cmp", str(reference / "sweep.json"), str(candidate / "sweep.json")],
        check=True,
    )
    log(f"PASS — byte-identical artifacts under {workdir}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
