#!/usr/bin/env python
"""Back-compat shim: the training CLI now lives in ``repro.cli.pretrain``.

Equivalent to ``python -m repro pretrain``.

Usage::

    PYTHONPATH=src python scripts/pretrain.py [--fast] [--output PATH] [--jobs N]
"""

from __future__ import annotations

import sys

from repro.cli.pretrain import main

if __name__ == "__main__":
    sys.exit(main())
