#!/usr/bin/env python
"""Back-compat shim: the benchmark CLI now lives in ``repro.cli.bench``.

Equivalent to ``python -m repro bench``, except that the default output path
stays at the repo root (the historical behaviour of this script) instead of
the current directory.

Usage::

    PYTHONPATH=src python scripts/bench_throughput.py [--output PATH]
        [--jobs N] [--max-cycles N] [--dry-run]
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.cli.bench import main

REPO_ROOT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_throughput.json"


if __name__ == "__main__":
    argv = sys.argv[1:]
    if "--output" not in argv:
        argv = ["--output", str(REPO_ROOT_OUTPUT)] + argv
    sys.exit(main(argv))
