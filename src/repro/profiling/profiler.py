"""Static profiling of kernels over the ``{N, p}`` warp-tuple plane."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple  # noqa: F401  (Sequence used in hints)

from repro.gpu.config import GPUConfig, baseline_config
from repro.gpu.gpu import GPU, RunResult
from repro.runtime.executor import SweepExecutor
from repro.workloads.generator import generate_kernel_programs
from repro.workloads.spec import KernelSpec


@dataclass
class StaticProfile:
    """The result of sweeping one kernel over the warp-tuple plane.

    ``ipc`` maps each profiled ``(N, p)`` point to the throughput measured
    there; ``baseline_ipc`` is the throughput at maximum warps (the GTO
    baseline), so ``speedup(n, p)`` is normalised the same way the paper's
    scatter plots are.
    """

    kernel: KernelSpec
    max_warps: int
    baseline_ipc: float
    ipc: Dict[Tuple[int, int], float] = field(default_factory=dict)
    baseline_counters: Optional[object] = None

    def speedup(self, n: int, p: int) -> float:
        if self.baseline_ipc == 0:
            return 0.0
        return self.ipc.get((n, p), 0.0) / self.baseline_ipc

    def speedup_grid(self) -> Dict[Tuple[int, int], float]:
        if self.baseline_ipc == 0:
            return {point: 0.0 for point in self.ipc}
        return {point: value / self.baseline_ipc for point, value in self.ipc.items()}

    def points(self) -> List[Tuple[int, int]]:
        return sorted(self.ipc)

    def best_point(self, min_gain: float = 0.005) -> Tuple[int, int]:
        """The statically optimal warp-tuple (the Static-Best oracle).

        A non-baseline point is chosen only when it beats the baseline by at
        least ``min_gain`` — an offline profiler would never deploy a tuple
        whose measured benefit is within noise of the default.
        """
        best = max(self.ipc, key=lambda point: (self.ipc[point], -point[0], -point[1]))
        baseline_point = (self.max_warps, self.max_warps)
        if self.baseline_ipc > 0 and self.ipc[best] < self.baseline_ipc * (1.0 + min_gain):
            return baseline_point
        return best

    def best_speedup(self) -> float:
        n, p = self.best_point(min_gain=0.0)
        return self.speedup(n, p)

    def best_diagonal_point(self, min_gain: float = 0.005) -> Tuple[int, int]:
        """The best point restricted to N == p (what SWL/CCWS can reach)."""
        diagonal = [point for point in self.ipc if point[0] == point[1]]
        if not diagonal:
            return (self.max_warps, self.max_warps)
        best = max(diagonal, key=lambda point: (self.ipc[point], -point[0]))
        if self.baseline_ipc > 0 and self.ipc[best] < self.baseline_ipc * (1.0 + min_gain):
            return (self.max_warps, self.max_warps)
        return best

    def contains(self, n: int, p: int) -> bool:
        return (n, p) in self.ipc


class KernelProfiler:
    """Sweeps kernels over the warp-tuple plane.

    Sweeping every one of the 300 valid ``{N, p}`` points with full kernel
    executions is what the paper does offline on a farm of simulations; here
    each point is measured over a bounded cycle window (IPC is the metric) to
    keep profiling tractable on one machine.  ``n_step``/``p_step`` allow the
    grid to be subsampled further for the fast test configurations.
    """

    def __init__(
        self,
        config: Optional[GPUConfig] = None,
        cycles_per_point: int = 12_000,
        warmup_cycles: int = 4_000,
        n_step: int = 1,
        p_step: int = 1,
        executor: Optional[SweepExecutor] = None,
        engine: Optional[str] = None,
    ) -> None:
        self.config = config or baseline_config()
        self.cycles_per_point = cycles_per_point
        self.warmup_cycles = warmup_cycles
        self.n_step = max(1, n_step)
        self.p_step = max(1, p_step)
        self.executor = executor
        # Simulator-core selection; ``None`` defers to REPRO_ENGINE at build
        # time.  Both engines are bit-identical, so a profile never records
        # which one measured it.
        self.engine = engine
        #: Failure accounting of the most recent parallel :meth:`profile`
        #: fan-out (``None`` for serial profiles or before the first one).
        self.last_report = None

    def _grid_points(self, max_warps: int) -> List[Tuple[int, int]]:
        points: List[Tuple[int, int]] = []
        n_values = list(range(1, max_warps + 1, self.n_step))
        if max_warps not in n_values:
            n_values.append(max_warps)
        for n in n_values:
            p_values = [p for p in range(1, n + 1, self.p_step)]
            if n not in p_values:
                p_values.append(n)
            for p in p_values:
                points.append((n, p))
        return points

    def measure_point(
        self,
        spec: KernelSpec,
        n: int,
        p: int,
        programs: Optional[Sequence[Sequence]] = None,
    ) -> RunResult:
        """Run the kernel pinned at ``(n, p)`` and measure a warm window.

        The kernel first runs for ``warmup_cycles`` to populate the caches,
        then the counters are measured over ``cycles_per_point`` cycles —
        the same warm-up/sample structure the hardware inference engine uses
        at runtime (Section VI-A).  ``programs`` may be supplied to avoid
        regenerating the kernel's traces for every grid point.
        """
        gpu = GPU(self.config, engine=self.engine)
        if programs is None:
            programs = generate_kernel_programs(spec)
        sm = gpu.build_sm(programs)
        sm.set_warp_tuple(n, p)
        if self.warmup_cycles:
            sm.run_cycles(self.warmup_cycles)
        before = sm.snapshot()
        sm.run_cycles(self.cycles_per_point)
        counters = sm.counters - before
        return RunResult(
            counters=counters,
            cycles=counters.cycles,
            energy=gpu.energy_model.estimate(counters),
            warp_tuple=(n, p),
            completed=sm.done,
        )

    def profile(self, spec: KernelSpec) -> StaticProfile:
        """Profile one kernel over the (possibly subsampled) warp-tuple grid.

        Every grid point is an independent simulation, so when the resolved
        executor has more than one worker the points are fanned out over a
        process pool; results are keyed by their ``(n, p)`` point, so the
        profile is identical to a serial sweep.
        """
        max_warps = min(self.config.max_warps, spec.num_warps)
        programs = generate_kernel_programs(spec)
        baseline = self.measure_point(spec, max_warps, max_warps, programs=programs)
        profile = StaticProfile(
            kernel=spec,
            max_warps=max_warps,
            baseline_ipc=baseline.ipc,
            baseline_counters=baseline.counters,
        )
        profile.ipc[(max_warps, max_warps)] = baseline.ipc
        points = list(
            dict.fromkeys(
                point for point in self._grid_points(max_warps) if point not in profile.ipc
            )
        )
        executor = self.executor or SweepExecutor()
        # Trace-backed kernels stay on the serial path: each worker would
        # otherwise re-decode the whole trace file per grid point, while the
        # serial loop shares the one decoded ``programs`` across all points.
        trace_backed = hasattr(spec, "materialise_programs")
        if executor.parallel and len(points) > 1 and not trace_backed:
            results = executor.map(
                _measure_point_job,
                [
                    (
                        self.config,
                        spec,
                        n,
                        p,
                        self.cycles_per_point,
                        self.warmup_cycles,
                        self.engine,
                    )
                    for n, p in points
                ],
            )
            for (n, p), result in zip(points, results):
                profile.ipc[(n, p)] = result.ipc
            self.last_report = executor.last_report
        else:
            for n, p in points:
                result = self.measure_point(spec, n, p, programs=programs)
                profile.ipc[(n, p)] = result.ipc
        return profile


def _measure_point_job(
    config: GPUConfig,
    spec: KernelSpec,
    n: int,
    p: int,
    cycles_per_point: int,
    warmup_cycles: int,
    engine: Optional[str] = None,
) -> RunResult:
    """Module-level worker for one grid point (must be picklable).

    The worker regenerates the kernel's programs from the spec — generation
    is seeded, so the traces (and therefore the counters) are identical to
    the ones a serial sweep uses.
    """
    profiler = KernelProfiler(
        config=config,
        cycles_per_point=cycles_per_point,
        warmup_cycles=warmup_cycles,
        engine=engine,
    )
    return profiler.measure_point(spec, n, p)


def profile_kernel(
    spec: KernelSpec,
    config: Optional[GPUConfig] = None,
    cycles_per_point: int = 12_000,
    n_step: int = 1,
    p_step: int = 1,
) -> StaticProfile:
    """Convenience wrapper over :class:`KernelProfiler`."""
    profiler = KernelProfiler(
        config=config, cycles_per_point=cycles_per_point, n_step=n_step, p_step=p_step
    )
    return profiler.profile(spec)


def measure_pbest(
    spec: KernelSpec,
    config: Optional[GPUConfig] = None,
    cycles: int = 12_000,
    warmup_cycles: int = 20_000,
    l1_scale: int = 64,
    engine: Optional[str] = None,
) -> float:
    """Memory sensitivity metric: speedup with an ``l1_scale``× larger L1.

    The paper calls an application memory-sensitive when this exceeds 1.4.
    Both configurations are warmed up before measurement so the much larger
    cache gets a chance to capture the kernel's working set.
    """
    config = config or baseline_config()
    programs = generate_kernel_programs(spec)
    max_warps = min(config.max_warps, spec.num_warps)

    def run(cfg: GPUConfig) -> float:
        sm = GPU(cfg, engine=engine).build_sm(programs)
        sm.set_warp_tuple(max_warps, max_warps)
        if warmup_cycles:
            sm.run_cycles(warmup_cycles)
        before = sm.snapshot()
        sm.run_cycles(cycles)
        window = sm.counters - before
        return window.ipc

    base_ipc = run(config)
    big_ipc = run(config.with_l1_scale(l1_scale))
    if base_ipc == 0:
        return 1.0
    return big_ipc / base_ipc
