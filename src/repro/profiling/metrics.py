"""Aggregate metrics used throughout the evaluation."""

from __future__ import annotations

import math
from typing import Iterable, Sequence, Tuple


def harmonic_mean(values: Iterable[float]) -> float:
    """Harmonic mean (the paper's headline aggregation for speedups)."""
    values = [float(v) for v in values]
    if not values:
        return 0.0
    if any(v <= 0 for v in values):
        raise ValueError("harmonic mean requires strictly positive values")
    return len(values) / sum(1.0 / v for v in values)


def arithmetic_mean(values: Iterable[float]) -> float:
    values = [float(v) for v in values]
    if not values:
        return 0.0
    return sum(values) / len(values)


def geometric_mean(values: Iterable[float]) -> float:
    values = [float(v) for v in values]
    if not values:
        return 0.0
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires strictly positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def harmonic_mean_speedup(speedups: Iterable[float]) -> float:
    """Harmonic-mean speedup expressed as the paper reports it (e.g. 1.466)."""
    return harmonic_mean(speedups)


def normalize(values: Sequence[float], baseline: float) -> list:
    """Normalise a sequence of values to a baseline value."""
    if baseline == 0:
        raise ValueError("cannot normalise to a zero baseline")
    return [v / baseline for v in values]


def euclidean_displacement(a: Tuple[int, int], b: Tuple[int, int]) -> float:
    """Euclidean distance between two warp-tuples (Fig. 10)."""
    return math.hypot(a[0] - b[0], a[1] - b[1])
