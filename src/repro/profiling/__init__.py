"""Offline profiling substrate.

Profiling sweeps a kernel over the ``{N, p}`` warp-tuple plane and records
the throughput at every point — the static profiles of Figures 2, 5 and 17.
The same machinery powers:

* the training-set targets of the machine learning framework,
* the SWL / PCAL-SWL starting points (which the paper derives from offline
  profiling),
* the Static-Best oracle,
* the ``Pbest`` memory-sensitivity metric (speedup with a 64× larger L1).
"""

from repro.profiling.metrics import (
    arithmetic_mean,
    euclidean_displacement,
    geometric_mean,
    harmonic_mean,
    harmonic_mean_speedup,
    normalize,
)
from repro.profiling.profiler import (
    KernelProfiler,
    StaticProfile,
    measure_pbest,
    profile_kernel,
)

__all__ = [
    "KernelProfiler",
    "StaticProfile",
    "arithmetic_mean",
    "euclidean_displacement",
    "geometric_mean",
    "harmonic_mean",
    "harmonic_mean_speedup",
    "measure_pbest",
    "normalize",
    "profile_kernel",
]
