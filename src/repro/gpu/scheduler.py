"""Greedy-then-oldest (GTO) warp scheduler with warp-tuple control.

The baseline GTO scheduler keeps issuing from the most recently issued warp
until it stalls, then falls back to the oldest ready warp.  Poise's modified
scheduler (Section VI-C) adds two bits per warp-queue entry:

* the *vital* bit — set for the ``N`` oldest active warps; only vital warps
  are considered for issue;
* the *pollute* bit — set for the ``p`` oldest active warps; the bit travels
  with every load request and decides whether an L1 miss may reserve a line.

Both bits are recomputed whenever the warp-tuple changes or a warp exits, so
``N`` and ``p`` always refer to the oldest *active* warps, as in the paper.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.gpu.warp import Warp


class GTOScheduler:
    """GTO arbitration over the vital subset of warps."""

    def __init__(self, warps: Sequence[Warp], max_warps: int) -> None:
        self.warps = list(warps)
        self.max_warps = max_warps
        self._n = max_warps
        self._p = max_warps
        self._vital_ids: set = set()
        self._pollute_ids: set = set()
        self._vital_list: List[Warp] = []
        self._last_issued: Optional[Warp] = None
        self._refresh_bits()

    # -- warp-tuple control -------------------------------------------------------

    @property
    def warp_tuple(self) -> Tuple[int, int]:
        return self._n, self._p

    def set_warp_tuple(self, n: int, p: int) -> None:
        """Set the number of vital warps (``n``) and polluting warps (``p``)."""
        n = max(1, min(int(n), self.max_warps))
        p = max(1, min(int(p), n))
        self._n, self._p = n, p
        self._refresh_bits()

    def _active_warps_oldest_first(self) -> List[Warp]:
        return [warp for warp in self.warps if not warp.done]

    def _refresh_bits(self) -> None:
        active = self._active_warps_oldest_first()
        # The vital list is kept as an age-ordered list so ``pick`` only
        # walks the N oldest active warps instead of rescanning every warp
        # (finished ones included) each cycle.
        self._vital_list = active[: self._n]
        self._vital_ids = {warp.wid for warp in self._vital_list}
        self._pollute_ids = {warp.wid for warp in active[: self._p]}

    def on_warp_exit(self) -> None:
        """Called by the SM when a warp retires, so younger warps inherit
        vital/pollute privileges."""
        self._refresh_bits()

    def is_vital(self, warp: Warp) -> bool:
        return warp.wid in self._vital_ids

    def is_polluting(self, warp: Warp) -> bool:
        return warp.wid in self._pollute_ids

    def vital_warps(self) -> List[Warp]:
        return [warp for warp in self._vital_list if not warp.done]

    # -- arbitration --------------------------------------------------------------

    def pick(self) -> Optional[Warp]:
        """Select the warp to issue from this cycle (or ``None`` if all vital
        warps are stalled)."""
        last = self._last_issued
        if (
            last is not None
            and not last.done
            and last.wid in self._vital_ids
            and last.is_schedulable()
        ):
            return last
        for warp in self._vital_list:  # oldest first (warp ids are age-ordered)
            if warp.is_schedulable():
                self._last_issued = warp
                return warp
        return None

    def note_issue(self, warp: Warp) -> None:
        self._last_issued = warp

    def any_warp_active(self) -> bool:
        return any(not warp.done for warp in self.warps)

    def reset(self) -> None:
        self._last_issued = None
        self._refresh_bits()
