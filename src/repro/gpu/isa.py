"""A two-operation ISA sufficient to express the paper's execution model.

Kernels are represented as per-warp instruction streams.  Only two behaviours
matter for the TLP / memory-system trade-off Poise studies:

* ``ALU`` — an instruction that keeps the SM's functional units busy for one
  issue slot and never stalls the warp.
* ``LOAD`` — a global memory load of one (fully coalesced) cache line.  Each
  load carries ``dep_distance``: the number of subsequent instructions in the
  same warp that are independent of the load.  The instruction at
  ``issue_index + dep_distance + 1`` uses the loaded value, so the warp stalls
  there until the load returns (the ``Id`` quantity of the analytical model).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional


class Opcode(Enum):
    ALU = "alu"
    LOAD = "load"


@dataclass(frozen=True, slots=True)
class Instruction:
    """One warp-wide instruction.

    Attributes:
        opcode: the operation class.
        line_addr: cache-line address touched by a LOAD (``None`` for ALU).
        dep_distance: for LOADs, the number of following independent
            instructions before the first use of the loaded value.
        pc: a static program-counter tag used by instruction-based cache
            management policies (e.g. the APCM baseline).
    """

    opcode: Opcode
    line_addr: Optional[int] = None
    dep_distance: int = 0
    pc: int = 0

    def __post_init__(self) -> None:
        if self.opcode is Opcode.LOAD and self.line_addr is None:
            raise ValueError("LOAD instructions require a line address")
        if self.opcode is Opcode.ALU and self.line_addr is not None:
            raise ValueError("ALU instructions must not carry an address")
        if self.dep_distance < 0:
            raise ValueError("dep_distance must be non-negative")

    @property
    def is_load(self) -> bool:
        return self.opcode is Opcode.LOAD


def alu(pc: int = 0) -> Instruction:
    """Convenience constructor for an ALU instruction."""
    return Instruction(Opcode.ALU, pc=pc)


def load(line_addr: int, dep_distance: int = 0, pc: int = 0) -> Instruction:
    """Convenience constructor for a LOAD instruction."""
    return Instruction(Opcode.LOAD, line_addr=line_addr, dep_distance=dep_distance, pc=pc)
