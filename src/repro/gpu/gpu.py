"""Top-level kernel execution helpers.

``GPU.run_kernel`` builds an SM for a kernel's warp programs, optionally pins
a static warp-tuple, or hands control to a *controller* (a scheduling policy
such as Poise, PCAL or CCWS) that adjusts the warp-tuple while the kernel
runs.  The result bundles the performance counters, derived metrics and an
energy estimate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro.gpu.config import GPUConfig, baseline_config
from repro.gpu.counters import PerfCounters
from repro.gpu.energy import EnergyModel, EnergyReport
from repro.gpu.engine import ENGINE_EVENT, ENGINE_LEGACY, resolve_engine
from repro.gpu.eventcore import EventStreamingMultiprocessor
from repro.gpu.fastcore import FastStreamingMultiprocessor
from repro.gpu.isa import Instruction
from repro.gpu.sm import CacheManagementPolicy, StreamingMultiprocessor


@dataclass
class RunResult:
    """Outcome of one kernel execution on one SM."""

    counters: PerfCounters
    cycles: int
    energy: EnergyReport
    warp_tuple: Tuple[int, int]
    completed: bool
    telemetry: dict = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        return self.counters.ipc

    @property
    def l1_hit_rate(self) -> float:
        return self.counters.l1_hit_rate

    @property
    def aml(self) -> float:
        return self.counters.aml

    def speedup_over(self, baseline: "RunResult") -> float:
        """IPC speedup of this run relative to ``baseline``."""
        if baseline.ipc == 0:
            return 0.0
        return self.ipc / baseline.ipc


class GPU:
    """Facade that runs kernels on the simulated SM.

    ``engine`` selects the simulator core (``"fast"``/``"legacy"``/
    ``"event"``); when ``None`` the choice is deferred to build time so the
    ``REPRO_ENGINE`` environment variable is honoured even if it changes
    after construction.  All engines are bit-identical on every counter, so
    the choice never affects results — only wall-clock.
    """

    def __init__(self, config: Optional[GPUConfig] = None, engine: Optional[str] = None) -> None:
        self.config = config or baseline_config()
        self.energy_model = EnergyModel(self.config.energy)
        if engine is not None:
            engine = resolve_engine(engine)  # fail fast on unknown names
        self.engine = engine

    def build_sm(
        self,
        programs: Sequence[Sequence[Instruction]],
        cache_policy: Optional[CacheManagementPolicy] = None,
        trace_capture=None,
        engine: Optional[str] = None,
    ):
        resolved = resolve_engine(engine if engine is not None else self.engine)
        if resolved == ENGINE_LEGACY:
            core = StreamingMultiprocessor
        elif resolved == ENGINE_EVENT:
            core = EventStreamingMultiprocessor
        else:
            core = FastStreamingMultiprocessor
        return core(
            self.config, programs, cache_policy=cache_policy, trace_capture=trace_capture
        )

    def run_kernel(
        self,
        programs: Sequence[Sequence[Instruction]],
        warp_tuple: Optional[Tuple[int, int]] = None,
        controller=None,
        max_cycles: Optional[int] = None,
        cache_policy: Optional[CacheManagementPolicy] = None,
        trace_capture=None,
        engine: Optional[str] = None,
    ) -> RunResult:
        """Execute a kernel.

        Args:
            programs: one instruction sequence per warp.
            warp_tuple: a static ``(N, p)`` to pin for the whole run; defaults
                to maximum warps (the GTO baseline).
            controller: an object with ``execute(sm, max_cycles) -> dict``
                that drives the run dynamically (overrides ``warp_tuple``).
            max_cycles: cycle budget (defaults to the config's budget).
            cache_policy: optional instruction-based cache management hook.
            trace_capture: optional issued-stream recorder
                (:class:`repro.trace.capture.TraceCapture`).
            engine: simulator core override
                (``"fast"``/``"legacy"``/``"event"``).
        """
        sm = self.build_sm(
            programs, cache_policy=cache_policy, trace_capture=trace_capture, engine=engine
        )
        budget = max_cycles if max_cycles is not None else self.config.max_cycles
        telemetry: dict = {}
        if controller is not None:
            telemetry = controller.execute(sm, budget) or {}
        else:
            if warp_tuple is None:
                warp_tuple = (self.config.max_warps, self.config.max_warps)
            sm.set_warp_tuple(*warp_tuple)
            sm.run_to_completion(budget)
        counters = sm.counters
        return RunResult(
            counters=counters,
            cycles=counters.cycles,
            energy=self.energy_model.estimate(counters),
            warp_tuple=sm.warp_tuple,
            completed=sm.done,
            telemetry=telemetry,
        )
