"""Top-level kernel execution helpers.

``GPU.run_kernel`` builds an SM for a kernel's warp programs, optionally pins
a static warp-tuple, or hands control to a *controller* (a scheduling policy
such as Poise, PCAL or CCWS) that adjusts the warp-tuple while the kernel
runs.  The result bundles the performance counters, derived metrics and an
energy estimate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro.gpu.config import GPUConfig, baseline_config
from repro.gpu.counters import PerfCounters
from repro.gpu.energy import EnergyModel, EnergyReport
from repro.gpu.engine import ENGINE_EVENT, ENGINE_LEGACY, resolve_engine
from repro.gpu.eventcore import EventStreamingMultiprocessor
from repro.gpu.fastcore import FastStreamingMultiprocessor
from repro.gpu.isa import Instruction
from repro.gpu.sm import CacheManagementPolicy, StreamingMultiprocessor


@dataclass
class RunResult:
    """Outcome of one kernel execution on one SM."""

    counters: PerfCounters
    cycles: int
    energy: EnergyReport
    warp_tuple: Tuple[int, int]
    completed: bool
    telemetry: dict = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        return self.counters.ipc

    @property
    def l1_hit_rate(self) -> float:
        return self.counters.l1_hit_rate

    @property
    def aml(self) -> float:
        return self.counters.aml

    def speedup_over(self, baseline: "RunResult") -> float:
        """IPC speedup of this run relative to ``baseline``."""
        if baseline.ipc == 0:
            return 0.0
        return self.ipc / baseline.ipc


@dataclass
class GraphRunResult:
    """Outcome of one DAG-structured multi-kernel execution on a chip."""

    node_results: dict  # node name -> RunResult
    schedule: tuple  # ScheduledNode per executed node, in retirement order
    makespan: int
    aggregate: PerfCounters
    completed: bool
    num_sms: int

    @property
    def aggregate_ipc(self) -> float:
        """Chip-level IPC: all instructions over the wall-clock makespan."""
        if not self.makespan:
            return 0.0
        return self.aggregate.instructions / self.makespan


class GPU:
    """Facade that runs kernels on the simulated SM.

    ``engine`` selects the simulator core (``"fast"``/``"legacy"``/
    ``"event"``); when ``None`` the choice is deferred to build time so the
    ``REPRO_ENGINE`` environment variable is honoured even if it changes
    after construction.  All engines are bit-identical on every counter, so
    the choice never affects results — only wall-clock.
    """

    def __init__(self, config: Optional[GPUConfig] = None, engine: Optional[str] = None) -> None:
        self.config = config or baseline_config()
        self.energy_model = EnergyModel(self.config.energy)
        if engine is not None:
            engine = resolve_engine(engine)  # fail fast on unknown names
        self.engine = engine

    def build_sm(
        self,
        programs: Sequence[Sequence[Instruction]],
        cache_policy: Optional[CacheManagementPolicy] = None,
        trace_capture=None,
        engine: Optional[str] = None,
    ):
        resolved = resolve_engine(engine if engine is not None else self.engine)
        if self.config.num_sms > 1:
            # Chip model: num_sms cores of the resolved engine sharing one
            # L2/DRAM busy-server pair.  num_sms == 1 keeps the plain-SM
            # path, so single-SM runs stay bit-for-bit the seed's.
            from repro.gpu.chip import build_chip

            return build_chip(
                self.config,
                programs,
                resolved,
                cache_policy=cache_policy,
                trace_capture=trace_capture,
            )
        if resolved == ENGINE_LEGACY:
            core = StreamingMultiprocessor
        elif resolved == ENGINE_EVENT:
            core = EventStreamingMultiprocessor
        else:
            core = FastStreamingMultiprocessor
        return core(
            self.config, programs, cache_policy=cache_policy, trace_capture=trace_capture
        )

    def run_kernel(
        self,
        programs: Sequence[Sequence[Instruction]],
        warp_tuple: Optional[Tuple[int, int]] = None,
        controller=None,
        max_cycles: Optional[int] = None,
        cache_policy: Optional[CacheManagementPolicy] = None,
        trace_capture=None,
        engine: Optional[str] = None,
    ) -> RunResult:
        """Execute a kernel.

        Args:
            programs: one instruction sequence per warp.
            warp_tuple: a static ``(N, p)`` to pin for the whole run; defaults
                to maximum warps (the GTO baseline).
            controller: an object with ``execute(sm, max_cycles) -> dict``
                that drives the run dynamically (overrides ``warp_tuple``).
            max_cycles: cycle budget (defaults to the config's budget).
            cache_policy: optional instruction-based cache management hook.
            trace_capture: optional issued-stream recorder
                (:class:`repro.trace.capture.TraceCapture`).
            engine: simulator core override
                (``"fast"``/``"legacy"``/``"event"``).
        """
        sm = self.build_sm(
            programs, cache_policy=cache_policy, trace_capture=trace_capture, engine=engine
        )
        budget = max_cycles if max_cycles is not None else self.config.max_cycles
        telemetry: dict = {}
        if controller is not None:
            telemetry = controller.execute(sm, budget) or {}
        else:
            if warp_tuple is None:
                warp_tuple = (self.config.max_warps, self.config.max_warps)
            sm.set_warp_tuple(*warp_tuple)
            sm.run_to_completion(budget)
        counters = sm.counters
        return RunResult(
            counters=counters,
            cycles=counters.cycles,
            energy=self.energy_model.estimate(counters),
            warp_tuple=sm.warp_tuple,
            completed=sm.done,
            telemetry=telemetry,
        )

    def run_graph(
        self,
        graph,
        warp_tuple: Optional[Tuple[int, int]] = None,
        max_cycles: Optional[int] = None,
        engine: Optional[str] = None,
        capture_factory=None,
    ) -> GraphRunResult:
        """Execute a :class:`~repro.workloads.graph.KernelGraph` on the chip.

        A deterministic list scheduler places ready nodes (dependencies
        retired) onto the lowest-numbered free SM, in topological-priority
        order, at quantum boundaries; all SMs share one L2/DRAM busy-server
        pair, so co-resident kernels contend for memory bandwidth.

        Args:
            graph: the kernel DAG; nodes are KernelSpec/TraceKernelSpec.
            warp_tuple: static ``(N, p)`` applied to every node (defaults to
                maximum warps — graph runs use static GTO scheduling).
            max_cycles: *total* chip-cycle budget; defaults to the config's
                per-kernel budget times the node count so serial chains can
                finish.
            engine: simulator core override; all engines are bit-identical.
            capture_factory: optional ``name -> TraceCapture`` hook used by
                graph trace capture.
        """
        from repro.gpu.chip import core_class_for_engine, shared_memory_for_engine
        from repro.workloads.generator import generate_kernel_programs
        from repro.workloads.graph import ScheduledNode

        resolved = resolve_engine(engine if engine is not None else self.engine)
        config = self.config
        quantum = max(1, config.sm_quantum)
        budget = (
            max_cycles
            if max_cycles is not None
            else config.max_cycles * max(1, len(graph.nodes))
        )
        if warp_tuple is None:
            warp_tuple = (config.max_warps, config.max_warps)
        memory = shared_memory_for_engine(config, resolved)
        core = core_class_for_engine(resolved)

        topo = graph.topo_order()
        priority = {name: index for index, name in enumerate(topo)}
        remaining_deps = {name: len(graph.predecessors(name)) for name in topo}
        ready = [name for name in topo if remaining_deps[name] == 0]
        free = list(range(config.num_sms))
        running: dict = {}  # sm slot -> (name, sm, start_cycle)
        schedule = []
        node_results = {}
        clock = 0

        def launch_ready() -> None:
            while ready and free:
                name = ready.pop(0)
                slot = min(free)
                free.remove(slot)
                node = graph.node(name)
                capture = capture_factory(name) if capture_factory is not None else None
                sm = core(
                    config,
                    generate_kernel_programs(node),
                    trace_capture=capture,
                    memory=memory,
                )
                # Align the node's clock with the chip: completion cycles and
                # busy-server timestamps all live in absolute chip cycles.
                sm.cycle = clock
                sm.set_warp_tuple(*warp_tuple)
                running[slot] = (name, sm, clock)

        def retire(slot: int, completed: bool) -> None:
            name, sm, start = running.pop(slot)
            free.append(slot)
            counters = sm.counters
            node_results[name] = RunResult(
                counters=counters,
                cycles=counters.cycles,
                energy=self.energy_model.estimate(counters),
                warp_tuple=sm.warp_tuple,
                completed=completed,
                telemetry={},
            )
            schedule.append(
                ScheduledNode(
                    name=name,
                    sm_slot=slot,
                    start_cycle=start,
                    end_cycle=sm.cycle,
                    completed=completed,
                )
            )
            if completed:
                for successor in graph.successors(name):
                    remaining_deps[successor] -= 1
                    if remaining_deps[successor] == 0:
                        ready.append(successor)
                ready.sort(key=priority.__getitem__)

        launch_ready()
        while running and clock < budget:
            frontier = min(sm.cycle for _, sm, _ in running.values())
            boundary = min(budget, (frontier // quantum + 1) * quantum)
            for slot in sorted(running):
                _, sm, _ = running[slot]
                if not sm.done and sm.cycle < boundary:
                    sm.run_cycles(boundary - sm.cycle)
            clock = boundary
            for slot in sorted(running):
                if running[slot][1].done:
                    retire(slot, completed=True)
            launch_ready()
        # Budget exhausted (or a dependency never completed): retire the
        # stragglers as incomplete.  Nodes never launched stay absent from
        # node_results — `completed` records the shortfall.
        for slot in sorted(running):
            retire(slot, completed=running[slot][1].done)

        aggregate = PerfCounters()
        for result in node_results.values():
            aggregate = aggregate + result.counters
        makespan = max((entry.end_cycle for entry in schedule), default=0)
        completed = len(node_results) == len(topo) and all(
            result.completed for result in node_results.values()
        )
        return GraphRunResult(
            node_results=node_results,
            schedule=tuple(schedule),
            makespan=makespan,
            aggregate=aggregate,
            completed=completed,
            num_sms=config.num_sms,
        )
