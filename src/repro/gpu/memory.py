"""The shared memory system (L2 slice + DRAM) seen by one SM.

Requests that miss (or bypass) the L1 are sent here.  Each level is modelled
as a cache/array fronted by a single busy server; a request's latency is the
base access latency of the level plus the queueing delay accumulated behind
earlier requests.  The per-request service interval is multiplied by a
congestion factor representing the symmetric traffic of the chip's other SMs,
so average memory latency (AML) grows with the SM's own miss rate — the
``L'`` effect of Eq. 4 in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.gpu.cache import SetAssociativeCache
from repro.gpu.config import MemoryConfig


@dataclass(frozen=True, slots=True)
class MemoryResponse:
    """Timing outcome of a request sent past the L1."""

    completion_cycle: int
    served_by: str  # "l2" or "dram"
    latency: int


class MemorySubsystem:
    """L2 slice + DRAM with busy-server queueing."""

    def __init__(self, config: MemoryConfig) -> None:
        self.config = config
        self.l2 = SetAssociativeCache(config.l2, name="l2")
        self._l2_busy_until = 0.0
        self._dram_busy_until = 0.0
        self.l2_accesses = 0
        self.l2_hits = 0
        self.dram_accesses = 0
        self.total_latency = 0
        self.requests = 0

    def reset_stats(self) -> None:
        self.l2_accesses = 0
        self.l2_hits = 0
        self.dram_accesses = 0
        self.total_latency = 0
        self.requests = 0
        self.l2.reset_stats()

    def flush(self) -> None:
        self.l2.flush()
        self._l2_busy_until = 0.0
        self._dram_busy_until = 0.0

    # -- request path -------------------------------------------------------------

    def request(self, line_addr: int, cycle: int, warp_id: int) -> MemoryResponse:
        """Issue a request for ``line_addr`` at ``cycle`` and return its timing."""
        cfg = self.config
        self.requests += 1
        self.l2_accesses += 1

        l2_service = cfg.l2_service_interval * cfg.congestion_factor
        l2_start = max(float(cycle), self._l2_busy_until)
        queue_delay = min(l2_start - cycle, cfg.max_queue_delay)
        self._l2_busy_until = l2_start + l2_service

        l2_result = self.l2.access(line_addr, warp_id, allocate=True)
        if l2_result.hit:
            self.l2_hits += 1
            latency = int(cfg.l2_latency + queue_delay)
            completion = cycle + latency
            self.total_latency += latency
            return MemoryResponse(completion, "l2", latency)

        dram_service = cfg.dram_service_interval * cfg.congestion_factor
        dram_start = max(l2_start + cfg.l2_latency, self._dram_busy_until)
        dram_queue_delay = min(dram_start - (cycle + cfg.l2_latency), cfg.max_queue_delay)
        self._dram_busy_until = dram_start + dram_service

        self.dram_accesses += 1
        latency = int(cfg.l2_latency + queue_delay + cfg.dram_latency + dram_queue_delay)
        completion = cycle + latency
        self.total_latency += latency
        return MemoryResponse(completion, "dram", latency)

    # -- derived statistics -------------------------------------------------------

    @property
    def l2_hit_rate(self) -> float:
        return self.l2_hits / self.l2_accesses if self.l2_accesses else 0.0

    @property
    def average_latency(self) -> float:
        return self.total_latency / self.requests if self.requests else 0.0
