"""The streaming multiprocessor cycle loop.

The SM issues at most one instruction per cycle from the warp picked by the
GTO scheduler.  Loads probe the L1; hits return immediately, misses allocate
an MSHR (merging with an in-flight request for the same line when possible)
and travel to the L2/DRAM model, whose response is delivered through a
completion heap.  When no vital warp can issue, the clock fast-forwards to
the next memory completion and the skipped cycles are accounted as stalls —
the ``Tstall`` of the paper's analytical model.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Sequence, Tuple

from repro.gpu.cache import SetAssociativeCache
from repro.gpu.config import GPUConfig
from repro.gpu.counters import PerfCounters
from repro.gpu.isa import Instruction, Opcode
from repro.gpu.memory import MemorySubsystem
from repro.gpu.mshr import MSHRFile
from repro.gpu.reuse import ReuseDistanceTracker
from repro.gpu.scheduler import GTOScheduler
from repro.gpu.warp import Warp, make_warps


class CacheManagementPolicy:
    """Hook for instruction-based cache-management baselines (e.g. APCM).

    ``allow_allocate`` is consulted on every L1 miss *in addition to* the
    warp's pollute bit; returning ``False`` bypasses the allocation.
    ``observe_access`` sees every L1 access outcome so the policy can learn
    per-PC locality.
    """

    def allow_allocate(self, instruction: Instruction, warp_id: int) -> bool:
        return True

    def observe_access(self, instruction: Instruction, warp_id: int, hit: bool) -> None:
        return None


class StreamingMultiprocessor:
    """A single SM (single-scheduler view) executing a set of warps."""

    def __init__(
        self,
        config: GPUConfig,
        programs: Sequence[Sequence[Instruction]],
        cache_policy: Optional[CacheManagementPolicy] = None,
        trace_capture=None,
        memory: Optional[MemorySubsystem] = None,
    ) -> None:
        if len(programs) > config.sm.max_warps:
            raise ValueError(
                f"kernel launches {len(programs)} warps but the scheduler supports "
                f"{config.sm.max_warps}"
            )
        self.config = config
        self.warps: List[Warp] = make_warps(programs)
        self.scheduler = GTOScheduler(self.warps, config.sm.max_warps)
        self.l1 = SetAssociativeCache(config.l1, name="l1")
        self.mshr = MSHRFile(config.l1.mshr_entries)
        # ``memory`` lets a chip model (repro.gpu.chip) share one L2/DRAM
        # busy-server pair across SMs; standalone SMs own a private one.
        self.memory = memory if memory is not None else MemorySubsystem(config.memory)
        self.counters = PerfCounters()
        self.cache_policy = cache_policy or CacheManagementPolicy()
        self.reuse_tracker = ReuseDistanceTracker() if config.track_reuse_distance else None
        # Optional per-issue observer (repro.trace.capture.TraceCapture): sees
        # every successfully issued instruction, never alters execution.
        self.trace_capture = trace_capture

        self.cycle = 0
        self._next_token = 0
        # (completion_cycle, sequence, line_addr, [(warp_id, token), ...])
        self._responses: List[Tuple[int, int, int, List[Tuple[int, int]]]] = []
        self._response_seq = 0
        # line_addr -> the waiter list of its in-flight response (the same
        # list object that sits in the heap entry), so merged misses attach
        # in O(1) instead of scanning every pending response.
        self._response_waiters: dict = {}
        self._warps_by_id = {warp.wid: warp for warp in self.warps}
        # Warps retire exactly at the two ``warp.done`` checks in the cycle
        # loop, so a simple countdown replaces the per-step all-warps scan.
        self._unfinished_warps = sum(1 for warp in self.warps if not warp.done)

    # -- public control -----------------------------------------------------------

    @property
    def done(self) -> bool:
        return self._unfinished_warps == 0

    def set_warp_tuple(self, n: int, p: int) -> None:
        self.scheduler.set_warp_tuple(n, p)

    @property
    def warp_tuple(self) -> Tuple[int, int]:
        return self.scheduler.warp_tuple

    def snapshot(self) -> PerfCounters:
        """Snapshot the counters for window (epoch) sampling."""
        return self.counters.copy()

    def run_cycles(self, budget: int) -> int:
        """Run for up to ``budget`` cycles (or until the kernel finishes).

        Returns the number of cycles actually consumed.
        """
        start = self.cycle
        limit = self.cycle + budget
        while self.cycle < limit and not self.done:
            self._step(limit)
        return self.cycle - start

    def run_to_completion(self, max_cycles: Optional[int] = None) -> int:
        limit = self.cycle + (max_cycles if max_cycles is not None else self.config.max_cycles)
        while self.cycle < limit and not self.done:
            self._step(limit)
        return self.cycle

    # -- cycle loop ---------------------------------------------------------------

    def _step(self, limit: int) -> None:
        self._deliver_responses()
        warp = self.scheduler.pick()
        if warp is None:
            self._fast_forward(limit)
            return
        self._issue(warp)
        self.cycle += 1
        self.counters.cycles += 1
        self.counters.busy_cycles += 1

    def _deliver_responses(self) -> None:
        while self._responses and self._responses[0][0] <= self.cycle:
            completion, _, line_addr, waiters = heapq.heappop(self._responses)
            del self._response_waiters[line_addr]
            for warp_id, token in waiters:
                warp = self._warps_by_id[warp_id]
                pending = warp.complete_load(token)
                # Each waiter is charged its own latency: merged loads issue
                # later than the primary, so their round trip is shorter.
                latency = completion - pending.issue_cycle
                self.counters.miss_requests += 1
                self.counters.miss_latency_total += latency
                if warp.done:
                    self._unfinished_warps -= 1
                    self.scheduler.on_warp_exit()
            self.mshr.release(line_addr)

    def _fast_forward(self, limit: int) -> None:
        """No vital warp can issue: jump to the next memory completion."""
        if self._responses:
            target = min(self._responses[0][0], limit)
            skipped = max(1, target - self.cycle)
        else:
            # Vital warps are all finished but non-vital warps still have work,
            # or every remaining warp is blocked behind a full MSHR retry.
            skipped = 1
        self.cycle += skipped
        self.counters.cycles += skipped
        self.counters.stall_cycles += skipped

    def _issue(self, warp: Warp) -> None:
        instruction = warp.current_instruction()
        assert instruction is not None
        self.counters.instructions += 1
        if instruction.opcode is Opcode.ALU:
            warp.advance()
        else:
            issued = self._issue_load(warp, instruction)
            if not issued:
                # MSHR full: the slot is wasted and the warp retries later.
                self.counters.instructions -= 1
                return
        if self.trace_capture is not None:
            self.trace_capture.record(warp.wid, instruction)
        if warp.done:
            self._unfinished_warps -= 1
            self.scheduler.on_warp_exit()
        self.scheduler.note_issue(warp)

    def _issue_load(self, warp: Warp, instruction: Instruction) -> bool:
        line_addr = instruction.line_addr
        assert line_addr is not None
        polluting = self.scheduler.is_polluting(warp)
        allocate = polluting and self.cache_policy.allow_allocate(instruction, warp.wid)

        # Structural hazard: a load that will miss needs an MSHR entry (new
        # or merged); without one the access cannot issue this cycle and the
        # warp retries later.  The MSHR availability check is O(1), so it is
        # evaluated up front and the cache access itself resolves hit/miss in
        # a single set walk — a would-be miss without an MSHR aborts the
        # access (returns ``None``) before any state changes.
        mshr_available = self.mshr.lookup(line_addr) is not None or not self.mshr.full
        result = self.l1.access(
            line_addr, warp.wid, allocate=allocate, block_on_miss=not mshr_available
        )
        if result is None:
            self.counters.mshr_stall_cycles += 1
            self.mshr.stalls += 1
            return False

        self.counters.loads += 1
        self.counters.l1_accesses += 1
        if polluting:
            self.counters.polluting_accesses += 1
        else:
            self.counters.nonpolluting_accesses += 1
        if self.reuse_tracker is not None:
            self.reuse_tracker.record(warp.wid, line_addr)

        self.cache_policy.observe_access(instruction, warp.wid, result.hit)

        if result.hit:
            self.counters.l1_hits += 1
            if polluting:
                self.counters.polluting_hits += 1
            else:
                self.counters.nonpolluting_hits += 1
            if result.intra_warp:
                self.counters.intra_warp_hits += 1
            else:
                self.counters.inter_warp_hits += 1
            warp.advance()
            return True

        # Miss: needs an MSHR (merged misses share the primary's entry).
        self.counters.l1_misses += 1
        if not allocate:
            self.counters.l1_bypasses += 1
        token = self._next_token
        status = self.mshr.allocate(line_addr, warp.wid, token)
        assert status != "full"  # guaranteed by the structural check above
        self._next_token += 1
        warp.record_load_issue(token, instruction.dep_distance, self.cycle)
        warp.advance()
        if status == "allocated":
            response = self.memory.request(line_addr, self.cycle, warp.wid)
            self.counters.l2_accesses += 1
            if response.served_by == "l2":
                self.counters.l2_hits += 1
            else:
                self.counters.dram_accesses += 1
            self._response_seq += 1
            waiters = [(warp.wid, token)]
            self._response_waiters[line_addr] = waiters
            heapq.heappush(
                self._responses,
                (response.completion_cycle, self._response_seq, line_addr, waiters),
            )
        else:  # merged: attach to the in-flight response for this line
            self._response_waiters[line_addr].append((warp.wid, token))
        return True
