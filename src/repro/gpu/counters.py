"""Hardware performance counters.

The hardware inference engine of Poise reconstructs its feature vector from
seven 32-bit performance counters per SM (Section VII-I).  This module keeps
a superset of those counters so that every experiment in the paper (hit-rate
breakdowns, AML, energy, IPC) can be regenerated, and supports *window*
sampling: the HIE snapshots the counters, lets the SM run for the sampling
interval and reads back the delta.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass
class PerfCounters:
    """Raw event counters accumulated by the SM."""

    cycles: int = 0
    busy_cycles: int = 0
    stall_cycles: int = 0
    instructions: int = 0
    loads: int = 0

    l1_accesses: int = 0
    l1_hits: int = 0
    l1_misses: int = 0
    l1_bypasses: int = 0

    polluting_accesses: int = 0
    polluting_hits: int = 0
    nonpolluting_accesses: int = 0
    nonpolluting_hits: int = 0

    intra_warp_hits: int = 0
    inter_warp_hits: int = 0

    miss_requests: int = 0
    miss_latency_total: int = 0

    l2_accesses: int = 0
    l2_hits: int = 0
    dram_accesses: int = 0

    mshr_stall_cycles: int = 0

    # -- arithmetic ---------------------------------------------------------------

    def copy(self) -> "PerfCounters":
        return PerfCounters(**{f.name: getattr(self, f.name) for f in fields(self)})

    def __sub__(self, other: "PerfCounters") -> "PerfCounters":
        return PerfCounters(
            **{f.name: getattr(self, f.name) - getattr(other, f.name) for f in fields(self)}
        )

    def __add__(self, other: "PerfCounters") -> "PerfCounters":
        return PerfCounters(
            **{f.name: getattr(self, f.name) + getattr(other, f.name) for f in fields(self)}
        )

    # -- derived metrics ----------------------------------------------------------

    @property
    def ipc(self) -> float:
        """Instructions per cycle."""
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def l1_hit_rate(self) -> float:
        return self.l1_hits / self.l1_accesses if self.l1_accesses else 0.0

    @property
    def l1_miss_rate(self) -> float:
        return 1.0 - self.l1_hit_rate if self.l1_accesses else 0.0

    @property
    def polluting_hit_rate(self) -> float:
        """Hit rate observed by cache-polluting warps (``hp``)."""
        if not self.polluting_accesses:
            return 0.0
        return self.polluting_hits / self.polluting_accesses

    @property
    def nonpolluting_hit_rate(self) -> float:
        """Hit rate observed by non-polluting warps (``hnp``)."""
        if not self.nonpolluting_accesses:
            return 0.0
        return self.nonpolluting_hits / self.nonpolluting_accesses

    @property
    def intra_warp_hit_rate(self) -> float:
        """Intra-warp hits as a fraction of all L1 accesses (``η``)."""
        return self.intra_warp_hits / self.l1_accesses if self.l1_accesses else 0.0

    @property
    def inter_warp_hit_rate(self) -> float:
        """Inter-warp hits as a fraction of all L1 accesses."""
        return self.inter_warp_hits / self.l1_accesses if self.l1_accesses else 0.0

    @property
    def intra_warp_hit_share(self) -> float:
        """Intra-warp hits as a fraction of all L1 hits (Fig. 4 annotation)."""
        return self.intra_warp_hits / self.l1_hits if self.l1_hits else 0.0

    @property
    def inter_warp_hit_share(self) -> float:
        return self.inter_warp_hits / self.l1_hits if self.l1_hits else 0.0

    @property
    def aml(self) -> float:
        """Average memory latency of requests that left the L1."""
        if not self.miss_requests:
            return 0.0
        return self.miss_latency_total / self.miss_requests

    @property
    def instructions_per_load(self) -> float:
        """Average instructions between adjacent global loads (``In``)."""
        if not self.loads:
            return float(self.instructions)
        return self.instructions / self.loads

    @property
    def l2_hit_rate(self) -> float:
        return self.l2_hits / self.l2_accesses if self.l2_accesses else 0.0

    def as_dict(self) -> dict:
        raw = {f.name: getattr(self, f.name) for f in fields(self)}
        raw.update(
            ipc=self.ipc,
            l1_hit_rate=self.l1_hit_rate,
            aml=self.aml,
            instructions_per_load=self.instructions_per_load,
        )
        return raw
