"""Per-warp reuse-distance tracking.

The paper characterises workloads by their reuse distance ``R`` (Fig. 4,
Table I-b): the number of distinct cache lines touched by a warp between two
accesses to the same line.  The tracker keeps a bounded per-warp LRU stack of
line addresses and records the stack distance of every re-reference.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict


class ReuseDistanceTracker:
    """Approximate per-warp LRU stack-distance profiler."""

    def __init__(self, max_stack: int = 8192) -> None:
        self.max_stack = max_stack
        self._stacks: Dict[int, OrderedDict] = {}
        self.total_distance = 0
        self.reuse_count = 0
        self.cold_count = 0

    def record(self, warp_id: int, line_addr: int) -> int:
        """Record an access; returns the reuse distance (-1 for a cold miss)."""
        stack = self._stacks.setdefault(warp_id, OrderedDict())
        if line_addr in stack:
            distance = 0
            for addr in reversed(stack):
                if addr == line_addr:
                    break
                distance += 1
            stack.move_to_end(line_addr)
            self.total_distance += distance
            self.reuse_count += 1
            return distance
        stack[line_addr] = True
        if len(stack) > self.max_stack:
            stack.popitem(last=False)
        self.cold_count += 1
        return -1

    @property
    def average_distance(self) -> float:
        if not self.reuse_count:
            return 0.0
        return self.total_distance / self.reuse_count

    def reset(self) -> None:
        self._stacks.clear()
        self.total_distance = 0
        self.reuse_count = 0
        self.cold_count = 0
