"""Multi-SM chip model: N SMs time-multiplexed over one shared memory.

``Chip`` instantiates ``num_sms`` cores of the selected engine class and
wires them all to a *single* L2/DRAM busy-server pair
(:class:`~repro.gpu.memory.MemorySubsystem` for the legacy engine,
:class:`~repro.gpu.fastcore.FastMemorySubsystem` for the fast/event
engines), so the interleaved request streams contend for the same service
intervals — inter-SM contention becomes a first-class measurable instead of
a constant folded into the per-SM bandwidth share.

Determinism/bit-identity contract
---------------------------------
SMs are advanced on an *absolute* cycle grid: no SM may cross a multiple of
``config.sm_quantum`` before every other live SM has reached it, and within
each quantum slice SMs run in ascending ``sm_id`` order.  Two consequences:

* the chip-global order of memory requests is a pure function of
  ``(quantum index, sm_id, per-SM request index)`` — independent of the
  controller's ``run_cycles`` window pattern, so windowed (profiled,
  controller-driven) runs and straight ``run_to_completion`` runs see the
  same contention;
* since every engine is bit-identical per window given identical memory
  responses, and the two memory-subsystem implementations are op-for-op
  identical arithmetic, all three engines produce bit-identical counters
  for the same chip configuration (pinned by ``tests/engine_conformance``).

The chip exposes the single-SM controller protocol (``cycle``, ``counters``,
``done``, ``warp_tuple``, ``set_warp_tuple``, ``snapshot``, ``run_cycles``,
``run_to_completion``, ...), all delegated to the *home* SM (sm 0): existing
controllers, the profiler and ``GPU.run_kernel`` drive a chip unchanged.
The background SMs execute the same kernel symmetrically (the chip-level
view of one kernel spread across SMs sharing read-only data) and exist to
generate contention; their counters are reported via :meth:`sm_counters`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.gpu.config import GPUConfig
from repro.gpu.counters import PerfCounters
from repro.gpu.isa import Instruction


class Chip:
    """``num_sms`` engine cores sharing one memory subsystem.

    ``core_factory(sm_id) -> sm`` builds each core already wired to the
    shared memory; :func:`build_chip` is the usual entry point.
    """

    def __init__(self, config: GPUConfig, cores: Sequence, memory) -> None:
        if not cores:
            raise ValueError("a chip needs at least one SM")
        self.config = config
        self.sms: List = list(cores)
        self.memory = memory
        self._home = self.sms[0]
        self._quantum = max(1, config.sm_quantum)

    # -- controller protocol (delegated to the home SM) ---------------------------

    @property
    def cycle(self) -> int:
        return self._home.cycle

    @property
    def counters(self) -> PerfCounters:
        return self._home.counters

    @property
    def warps(self):
        return self._home.warps

    @property
    def done(self) -> bool:
        return self._home.done

    @property
    def warp_tuple(self) -> Tuple[int, int]:
        return self._home.warp_tuple

    @property
    def cache_policy(self):
        return self._home.cache_policy

    @property
    def reuse_tracker(self):
        return self._home.reuse_tracker

    @property
    def trace_capture(self):
        return self._home.trace_capture

    def set_warp_tuple(self, n: int, p: int) -> None:
        # Symmetric chip: every SM follows the controller's tuple, so the
        # background traffic reacts to throttling the same way the home SM
        # does (throttle the chip, not one SM of it).
        for sm in self.sms:
            sm.set_warp_tuple(n, p)

    def snapshot(self) -> PerfCounters:
        return self._home.snapshot()

    # -- chip-wide views ----------------------------------------------------------

    def sm_counters(self) -> List[PerfCounters]:
        """Per-SM counters, indexed by sm_id."""
        return [sm.counters for sm in self.sms]

    def aggregate_counters(self) -> PerfCounters:
        """Field-wise sum over all SMs (note: summed ``cycles`` is SM-cycles,
        not wall cycles — divide instruction totals by the makespan for
        chip-level IPC)."""
        total = PerfCounters()
        for sm in self.sms:
            total = total + sm.counters
        return total

    # -- execution ----------------------------------------------------------------

    def _advance_to(self, limit: int) -> None:
        """Advance every live SM to ``limit`` in quantum-grid slices.

        Stops early once the home SM finishes: nothing observable happens
        to the kernel result after that, and background-only simulation
        would be pure wall-clock waste.
        """
        quantum = self._quantum
        sms = self.sms
        while not self._home.done:
            frontier = None
            for sm in sms:
                if not sm.done and sm.cycle < limit:
                    if frontier is None or sm.cycle < frontier:
                        frontier = sm.cycle
            if frontier is None:
                break
            boundary = min(limit, (frontier // quantum + 1) * quantum)
            for sm in sms:
                if not sm.done and sm.cycle < boundary:
                    sm.run_cycles(boundary - sm.cycle)

    def run_cycles(self, budget: int) -> int:
        start = self._home.cycle
        self._advance_to(start + budget)
        return self._home.cycle - start

    def run_to_completion(self, max_cycles: Optional[int] = None) -> int:
        budget = max_cycles if max_cycles is not None else self.config.max_cycles
        self._advance_to(self._home.cycle + budget)
        return self._home.cycle


def shared_memory_for_engine(config: GPUConfig, resolved_engine: str):
    """One shared memory subsystem matching the engine family."""
    from repro.gpu.engine import ENGINE_LEGACY

    if resolved_engine == ENGINE_LEGACY:
        from repro.gpu.memory import MemorySubsystem

        return MemorySubsystem(config.memory)
    from repro.gpu.fastcore import FastMemorySubsystem

    return FastMemorySubsystem(config.memory)


def core_class_for_engine(resolved_engine: str):
    from repro.gpu.engine import ENGINE_EVENT, ENGINE_LEGACY

    if resolved_engine == ENGINE_LEGACY:
        from repro.gpu.sm import StreamingMultiprocessor

        return StreamingMultiprocessor
    if resolved_engine == ENGINE_EVENT:
        from repro.gpu.eventcore import EventStreamingMultiprocessor

        return EventStreamingMultiprocessor
    from repro.gpu.fastcore import FastStreamingMultiprocessor

    return FastStreamingMultiprocessor


def build_chip(
    config: GPUConfig,
    programs: Sequence[Sequence[Instruction]],
    resolved_engine: str,
    cache_policy=None,
    trace_capture=None,
) -> Chip:
    """Build a symmetric chip: every SM runs ``programs``; only the home SM
    carries the cache policy / trace capture (they are per-kernel observers,
    and the kernel's result is the home SM's)."""
    memory = shared_memory_for_engine(config, resolved_engine)
    core = core_class_for_engine(resolved_engine)
    cores = []
    for sm_id in range(config.num_sms):
        cores.append(
            core(
                config,
                programs,
                cache_policy=cache_policy if sm_id == 0 else None,
                trace_capture=trace_capture if sm_id == 0 else None,
                memory=memory,
            )
        )
    return Chip(config, cores, memory)
