"""Event-skipping simulator core (``REPRO_ENGINE=event``).

The struct-of-arrays fast core already collapses two kinds of repetition:
runs of consecutive ALU issues are batched, and spans where *no* vital warp
can issue fast-forward to the next memory completion.  One dead-cycle class
remains ticked one cycle at a time: the **MSHR-full retry**.  When the GTO
pick lands on a warp whose next load would miss while every MSHR entry is
in flight, the slot is wasted and the warp retries — and the fast core pays
a full pick + L1 probe + counter update for every one of those cycles.  On
MLP-heavy kernels (bursts of independent loads per warp) that retry loop is
over 90% of all simulated cycles.

This engine replaces per-cycle retries with a **next-event horizon**.  At
any instant the earliest cycle at which the SM's observable state can next
change is::

    horizon = min(next MSHR fill, run limit)

because between now and the next completion-heap head nothing a retry loop
observes can move:

* no response is delivered, so no MSHR entry is released, no outstanding
  load completes, and no warp's ``min-first-dependent`` horizon changes;
* the scheduler state is frozen — ``pick`` is deterministic over unchanged
  state, so it returns the *same* warp with the *same* blocked load every
  cycle of the span;
* the retry path itself mutates nothing (the legacy oracle rolls back its
  ``instructions`` increment and touches neither the L1 nor the MSHR file
  on the blocked path).

Each cycle of the span is therefore an identical MSHR-stall cycle, and the
engine credits the whole span in one jump — ``cycles``, ``busy_cycles`` and
``mshr_stall_cycles`` advance by the span length exactly as if ticked.  The
same argument (inherited from the fast core) covers the no-ready-warp stall
span, credited to ``stall_cycles``.  Observable events — a delivery, a load
issue, an ALU batch, a controller window boundary (``run_cycles`` /
``snapshot`` / ``set_warp_tuple``) — are never jumped over: every jump
target is clamped to ``limit``, so windowed controllers see bit-identical
per-window counter deltas.

Skip-span accounting: ``jumped_cycles`` (dead cycles advanced in jumps of
``jump_spans`` total spans) plus ``ticked_cycles`` (cycles advanced by
issuing work) always equals ``counters.cycles`` — a property the
conformance suite cross-checks against the legacy oracle's totals.

Bit-identity with the legacy core on every counter is pinned by the N-way
engine-conformance harness (``tests/engine_conformance.py``), the golden
fixtures and the differential Hypothesis suite — the same discipline that
proved the fast core.
"""

from __future__ import annotations

import heapq
import sys
from typing import Dict, Tuple

from repro.gpu.fastcore import FastStreamingMultiprocessor
from repro.gpu.isa import Instruction

#: Sentinel for "no outstanding load blocks anything" (mirrors warp.py).
_NO_BLOCK = sys.maxsize
#: Sentinel for "no memory response in flight".
_NO_RESPONSE = sys.maxsize


class EventStreamingMultiprocessor(FastStreamingMultiprocessor):
    """Fast core + next-event horizon over every dead-cycle class.

    State layout, schedulability bookkeeping and the issue paths are
    inherited unchanged from :class:`FastStreamingMultiprocessor`; the
    cycle loop differs only in how it advances the clock through cycles
    where nothing observable can happen.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: Dead cycles advanced in one-jump spans (stall + MSHR retry).
        self.jumped_cycles = 0
        #: Number of jumps taken (each ≥ 1 cycle).
        self.jump_spans = 0
        #: Cycles advanced by issuing work (ALU batches count their length).
        self.ticked_cycles = 0

    # -- the event-skipping cycle loop -------------------------------------------

    def _run(self, limit: int) -> None:
        cycle = self.cycle
        unfinished = self._unfinished
        if cycle >= limit or not unfinished:
            return

        # ---- counter accumulators (flushed to self.counters on exit) --------
        cycles_c = busy_c = stall_c = instr_c = loads_c = 0
        l1_acc = l1_hit = l1_miss = l1_byp = 0
        pol_acc = pol_hit = npol_acc = npol_hit = 0
        intra_c = inter_c = 0
        missreq_c = misslat_c = 0
        l2_acc = l2_hit = dram_c = 0
        mshr_stall = 0
        jumped = spans = ticked = 0

        # ---- state bound to locals ------------------------------------------
        pcs = self._pcs
        plens = self._plens
        minfd = self._minfd
        outstanding = self._outstanding
        alive = self._alive
        vital = self._vital_flags
        pollute = self._pollute_flags
        vital_list = self._vital_list
        ready = self._ready
        ready_vital = self._ready_vital
        last = self._last
        progs = self.warps
        tags = self._l1_tags
        stamps = self._l1_stamps
        lastw = self._l1_lastw
        acc_counter = self._l1_access_counter
        nsets = self._nsets
        assoc = self._assoc
        hash_indexing = self._hash_indexing
        index_memo = self._index_memo
        mshr_lines = self._mshr_lines
        mshr_cap = self._mshr_capacity
        responses = self._responses
        waiters_map = self._response_waiters
        seq = self._response_seq
        next_token = self._next_token
        memory_request = self.memory.request
        reuse = self.reuse_tracker
        reuse_record = reuse.record if reuse is not None else None
        policy_active = self._policy_active
        allow_allocate = self.cache_policy.allow_allocate if policy_active else None
        observe_access = self.cache_policy.observe_access if policy_active else None
        tc = self.trace_capture
        tc_record = tc.record if tc is not None else None
        heappush = heapq.heappush
        heappop = heapq.heappop
        refresh = self._refresh_bits

        next_completion = responses[0][0] if responses else _NO_RESPONSE

        # Per-warp row cache, exactly as in the fast core: GTO is sticky, so
        # consecutive issues almost always come from the same warp.
        cur = -1
        prog_w: Tuple[Instruction, ...] = ()
        plen_w = 0
        out_w: Dict[int, Tuple[int, int]] = {}

        while cycle < limit and unfinished:
            # ---- deliver memory responses due this cycle --------------------
            while next_completion <= cycle:
                completion, _, line, waiters = heappop(responses)
                del waiters_map[line]
                for wid, token in waiters:
                    out = outstanding[wid]
                    fd, issue_cycle = out.pop(token)
                    missreq_c += 1
                    misslat_c += completion - issue_cycle
                    if fd <= minfd[wid]:
                        new_min = _NO_BLOCK
                        for pending in out.values():
                            first_dep = pending[0]
                            if first_dep < new_min:
                                new_min = first_dep
                        minfd[wid] = new_min
                    pc = pcs[wid]
                    if not out and pc >= plens[wid]:
                        alive[wid] = False
                        unfinished -= 1
                        refresh()
                        vital_list = self._vital_list
                        ready_vital = self._ready_vital
                    elif (
                        not ready[wid] and pc < plens[wid] and pc < minfd[wid]
                    ):
                        ready[wid] = True
                        if vital[wid]:
                            ready_vital += 1
                mshr_lines.discard(line)
                next_completion = responses[0][0] if responses else _NO_RESPONSE

            # ---- stall span: no vital warp can issue ------------------------
            if not ready_vital:
                # Event horizon: the next MSHR fill (or the window limit).
                # Nothing scheduler-visible can change before it.
                if responses:
                    target = next_completion if next_completion < limit else limit
                    skipped = target - cycle
                    if skipped < 1:
                        skipped = 1
                else:
                    skipped = 1
                cycle += skipped
                cycles_c += skipped
                stall_c += skipped
                jumped += skipped
                spans += 1
                continue

            # ---- pick a warp (greedy-then-oldest over the vital list) -------
            if last >= 0 and vital[last] and ready[last]:
                wid = last
            else:
                wid = -1
                for cand in vital_list:
                    if ready[cand]:
                        wid = cand
                        last = cand
                        break
            pc = pcs[wid]

            if wid != cur:
                cur = wid
                prog_w = progs[wid]
                plen_w = plens[wid]
                out_w = outstanding[wid]

            inst = prog_w[pc]
            line = inst.line_addr
            if line is None:
                # ---- ALU burst (inherited bounds: schedulability, next
                # completion, window limit) -----------------------------------
                stop = minfd[wid]
                if plen_w < stop:
                    stop = plen_w
                bound = pc + (limit - cycle)
                if bound < stop:
                    stop = bound
                bound = pc + (next_completion - cycle)
                if bound < stop:
                    stop = bound
                npc = pc + 1
                while npc < stop and prog_w[npc].line_addr is None:
                    npc += 1
                k = npc - pc
                pcs[wid] = npc
                instr_c += k
                cycle += k
                cycles_c += k
                busy_c += k
                ticked += k
                if tc_record is not None:
                    for index in range(pc, npc):
                        tc_record(wid, prog_w[index])
                if npc >= plen_w or npc >= minfd[wid]:
                    ready[wid] = False
                    if vital[wid]:
                        ready_vital -= 1
                if npc >= plen_w and not out_w:
                    alive[wid] = False
                    unfinished -= 1
                    refresh()
                    vital_list = self._vital_list
                    ready_vital = self._ready_vital
                last = wid
                continue

            # ---- load issue (single fused set walk) -------------------------
            polluting = pollute[wid]
            if policy_active:
                allocate = polluting and allow_allocate(inst, wid)
            else:
                allocate = polluting
            if hash_indexing:
                sidx = index_memo.get(line)
                if sidx is None:
                    folded = line
                    sidx = 0
                    while folded:
                        sidx ^= folded % nsets
                        folded //= nsets
                    sidx %= nsets
                    index_memo[line] = sidx
            else:
                sidx = line % nsets
            base = sidx * assoc
            hit_way = -1
            for way in range(base, base + assoc):
                if tags[way] == line:
                    hit_way = way
                    break

            if (
                hit_way < 0
                and line not in mshr_lines
                and len(mshr_lines) >= mshr_cap
            ):
                # ---- MSHR-retry span: jump to the next fill -----------------
                # A would-be miss with no MSHR entry (new or merged) wastes
                # the slot, and until a response releases an entry every
                # retry cycle is identical: same pick (state is frozen), same
                # blocked load, no cache or counter side effects.  The legacy
                # oracle ticks these one at a time; crediting the span in one
                # jump is exact.  ``mshr_lines`` non-empty guarantees a
                # response is in flight, so ``next_completion`` is real.
                target = next_completion if next_completion < limit else limit
                k = target - cycle
                if k < 1:
                    k = 1
                mshr_stall += k
                cycle += k
                cycles_c += k
                busy_c += k
                jumped += k
                spans += 1
                continue

            instr_c += 1
            loads_c += 1
            l1_acc += 1
            if polluting:
                pol_acc += 1
            else:
                npol_acc += 1
            if reuse_record is not None:
                reuse_record(wid, line)
            if policy_active:
                observe_access(inst, wid, hit_way >= 0)
            acc_counter += 1
            npc = pc + 1
            pcs[wid] = npc
            if hit_way >= 0:
                l1_hit += 1
                if polluting:
                    pol_hit += 1
                else:
                    npol_hit += 1
                if lastw[hit_way] == wid:
                    intra_c += 1
                else:
                    inter_c += 1
                lastw[hit_way] = wid
                stamps[hit_way] = acc_counter
            else:
                l1_miss += 1
                if allocate:
                    # LRU victim: invalid ways carry stamp 0 (< any valid
                    # stamp), ties resolve to the lowest way — the same
                    # order as the legacy ``min`` over (valid, stamp).
                    vic = base
                    best = stamps[base]
                    if best:
                        for way in range(base + 1, base + assoc):
                            s = stamps[way]
                            if s < best:
                                vic = way
                                best = s
                                if not s:
                                    break
                    tags[vic] = line
                    lastw[vic] = wid
                    stamps[vic] = acc_counter
                else:
                    l1_byp += 1
                token = next_token
                next_token += 1
                fd = pc + inst.dep_distance + 1
                out_w[token] = (fd, cycle)
                if fd < minfd[wid]:
                    minfd[wid] = fd
                if line in mshr_lines:
                    waiters_map[line].append((wid, token))
                else:
                    mshr_lines.add(line)
                    completion, served_by_l2 = memory_request(line, cycle, wid)
                    l2_acc += 1
                    if served_by_l2:
                        l2_hit += 1
                    else:
                        dram_c += 1
                    seq += 1
                    entry_waiters = [(wid, token)]
                    waiters_map[line] = entry_waiters
                    heappush(responses, (completion, seq, line, entry_waiters))
                    if completion < next_completion:
                        next_completion = completion
            if tc_record is not None:
                tc_record(wid, inst)
            if npc >= plen_w or npc >= minfd[wid]:
                ready[wid] = False
                if vital[wid]:
                    ready_vital -= 1
            if npc >= plen_w and not out_w:
                alive[wid] = False
                unfinished -= 1
                refresh()
                vital_list = self._vital_list
                ready_vital = self._ready_vital
            last = wid

            cycle += 1
            cycles_c += 1
            busy_c += 1
            ticked += 1

        # ---- write state and counters back ----------------------------------
        self.cycle = cycle
        self._unfinished = unfinished
        self._last = last
        self._ready_vital = ready_vital
        self._l1_access_counter = acc_counter
        self._response_seq = seq
        self._next_token = next_token
        self.jumped_cycles += jumped
        self.jump_spans += spans
        self.ticked_cycles += ticked
        c = self.counters
        c.cycles += cycles_c
        c.busy_cycles += busy_c
        c.stall_cycles += stall_c
        c.instructions += instr_c
        c.loads += loads_c
        c.l1_accesses += l1_acc
        c.l1_hits += l1_hit
        c.l1_misses += l1_miss
        c.l1_bypasses += l1_byp
        c.polluting_accesses += pol_acc
        c.polluting_hits += pol_hit
        c.nonpolluting_accesses += npol_acc
        c.nonpolluting_hits += npol_hit
        c.intra_warp_hits += intra_c
        c.inter_warp_hits += inter_c
        c.miss_requests += missreq_c
        c.miss_latency_total += misslat_c
        c.l2_accesses += l2_acc
        c.l2_hits += l2_hit
        c.dram_accesses += dram_c
        c.mshr_stall_cycles += mshr_stall
