"""GPUWattch-style energy model.

Energy is estimated as the sum of per-event dynamic energies (ALU operation,
L1 access, L2 access, DRAM access) plus static leakage proportional to the
execution time.  This reproduces the two effects the paper attributes
Poise's 51.6% energy reduction to (Section VII-I): shorter runtime lowers
leakage, and better L1 behaviour removes off-chip data movement.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.config import EnergyConfig
from repro.gpu.counters import PerfCounters


@dataclass(frozen=True)
class EnergyReport:
    """Energy breakdown for one kernel execution, in picojoules."""

    alu_pj: float
    l1_pj: float
    l2_pj: float
    dram_pj: float
    static_pj: float

    @property
    def dynamic_pj(self) -> float:
        return self.alu_pj + self.l1_pj + self.l2_pj + self.dram_pj

    @property
    def total_pj(self) -> float:
        return self.dynamic_pj + self.static_pj

    @property
    def total_uj(self) -> float:
        return self.total_pj / 1e6


class EnergyModel:
    """Event-count energy model."""

    def __init__(self, config: EnergyConfig) -> None:
        self.config = config

    def estimate(self, counters: PerfCounters) -> EnergyReport:
        cfg = self.config
        alu_ops = counters.instructions - counters.loads
        return EnergyReport(
            alu_pj=alu_ops * cfg.alu_op_pj,
            l1_pj=counters.l1_accesses * cfg.l1_access_pj,
            l2_pj=counters.l2_accesses * cfg.l2_access_pj,
            dram_pj=counters.dram_accesses * cfg.dram_access_pj,
            static_pj=counters.cycles * cfg.static_pj_per_cycle,
        )
