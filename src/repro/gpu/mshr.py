"""Miss Status Holding Registers (MSHRs) with request merging.

The MSHR file bounds the memory-level parallelism an SM can expose — the
``Kmshr`` term of the paper's analytical model (Eq. 1).  Misses to a line
that already has an outstanding request merge into the existing entry;
when no entry is free the missing load cannot issue and the warp retries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(slots=True)
class MSHREntry:
    line_addr: int
    waiters: List[Tuple[int, int]] = field(default_factory=list)  # (warp_id, token)


class MSHRFile:
    """A fixed-capacity MSHR file keyed by cache-line address."""

    def __init__(self, num_entries: int) -> None:
        if num_entries < 1:
            raise ValueError("MSHR file needs at least one entry")
        self.num_entries = num_entries
        self._entries: Dict[int, MSHREntry] = {}
        self.merges = 0
        self.allocations = 0
        self.stalls = 0

    @property
    def occupancy(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.num_entries

    def lookup(self, line_addr: int) -> Optional[MSHREntry]:
        return self._entries.get(line_addr)

    def allocate(self, line_addr: int, warp_id: int, token: int) -> str:
        """Try to register a miss.

        Returns one of:
            ``"merged"`` — an entry for the line already existed,
            ``"allocated"`` — a new entry was created,
            ``"full"`` — no entry was available (the access must be retried).
        """
        entry = self._entries.get(line_addr)
        if entry is not None:
            entry.waiters.append((warp_id, token))
            self.merges += 1
            return "merged"
        if self.full:
            self.stalls += 1
            return "full"
        self._entries[line_addr] = MSHREntry(line_addr, [(warp_id, token)])
        self.allocations += 1
        return "allocated"

    def release(self, line_addr: int) -> List[Tuple[int, int]]:
        """Free the entry for ``line_addr`` and return its waiters."""
        entry = self._entries.pop(line_addr, None)
        if entry is None:
            return []
        return entry.waiters

    def clear(self) -> None:
        self._entries.clear()
