"""Warp execution state.

A warp walks through its instruction stream one instruction per issue slot.
The only hazard modelled is the load/use dependency: every outstanding load
remembers its issue index and dependency distance, and the warp becomes
non-schedulable once its program counter would pass the first dependent
instruction of any outstanding load.  This is exactly the latency-tolerance
structure used by the paper's analytical model (Section V-A).
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.gpu.isa import Instruction

#: Sentinel for "no outstanding load blocks anything".
_NO_BLOCK = sys.maxsize


@dataclass(slots=True)
class OutstandingLoad:
    """Book-keeping for a load whose data has not yet returned.

    Slotted: the legacy core allocates one of these per missing load, and the
    differential fuzz loop runs the legacy oracle alongside the fast core, so
    the record stays lean.
    """

    token: int
    issue_index: int
    dep_distance: int
    issue_cycle: int

    @property
    def first_dependent_index(self) -> int:
        return self.issue_index + self.dep_distance + 1


@dataclass(slots=True)
class Warp:
    """Execution state of a single warp."""

    wid: int
    program: Sequence[Instruction]
    pc: int = 0
    outstanding: Dict[int, OutstandingLoad] = field(default_factory=dict)
    issued_instructions: int = 0
    exited: bool = False
    # Derived state (filled by __post_init__); declared as fields so the
    # dataclass can generate __slots__ for them.
    _program_len: int = field(init=False, repr=False, compare=False, default=0)
    _min_first_dep: int = field(init=False, repr=False, compare=False, default=_NO_BLOCK)

    def __post_init__(self) -> None:
        if not self.program:
            self.exited = True
        self._program_len = len(self.program)
        # The smallest first-dependent index over all outstanding loads,
        # maintained incrementally so the per-cycle schedulability check is
        # O(1) instead of a scan of the outstanding-load table.
        self._min_first_dep = _NO_BLOCK

    @property
    def done(self) -> bool:
        """A warp retires once it has issued every instruction and all its
        loads have returned."""
        return self.exited or (self.pc >= len(self.program) and not self.outstanding)

    @property
    def finished_issuing(self) -> bool:
        return self.pc >= len(self.program)

    def current_instruction(self) -> Optional[Instruction]:
        if self.finished_issuing:
            return None
        return self.program[self.pc]

    def blocking_load(self) -> Optional[OutstandingLoad]:
        """Return the outstanding load (if any) whose dependent instruction
        is the one the warp is about to issue."""
        for pending in self.outstanding.values():
            if self.pc >= pending.first_dependent_index:
                return pending
        return None

    def is_schedulable(self) -> bool:
        """True when the warp can issue its next instruction this cycle."""
        if self.exited or self.pc >= self._program_len:
            return False
        return self.pc < self._min_first_dep

    def record_load_issue(self, token: int, dep_distance: int, cycle: int) -> None:
        self.outstanding[token] = OutstandingLoad(
            token=token,
            issue_index=self.pc,
            dep_distance=dep_distance,
            issue_cycle=cycle,
        )
        first_dep = self.pc + dep_distance + 1
        if first_dep < self._min_first_dep:
            self._min_first_dep = first_dep

    def advance(self) -> None:
        self.pc += 1
        self.issued_instructions += 1

    def complete_load(self, token: int) -> OutstandingLoad:
        try:
            pending = self.outstanding.pop(token)
        except KeyError:
            raise KeyError(f"warp {self.wid} has no outstanding load with token {token}")
        if pending.first_dependent_index <= self._min_first_dep:
            self._min_first_dep = (
                min(load.first_dependent_index for load in self.outstanding.values())
                if self.outstanding
                else _NO_BLOCK
            )
        return pending

    def reset(self) -> None:
        """Rewind the warp to its initial state (used by profiling sweeps)."""
        self.pc = 0
        self.outstanding.clear()
        self.issued_instructions = 0
        self.exited = not self.program
        self._min_first_dep = _NO_BLOCK


def make_warps(programs: Sequence[Sequence[Instruction]]) -> List[Warp]:
    """Build warps with ids matching their age order (0 is the oldest)."""
    return [Warp(wid=index, program=program) for index, program in enumerate(programs)]
