"""Configuration objects for the GPU model.

The defaults follow Table IIIb of the paper, scaled to the single-SM /
single-scheduler view used throughout the reproduction (see DESIGN.md §2).
The paper's GPU has 32 SMs with two schedulers per SM and 24 warps per
scheduler; Poise's warp-tuples live in the per-scheduler space ``[1..24]²``,
which is exactly what this model exposes.  Setting ``num_sms > 1`` simulates
that many SMs against one shared L2/DRAM pair (see ``repro.gpu.chip``);
``num_sms = 1`` keeps the seed's single-SM model bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and behaviour of a set-associative cache."""

    size_bytes: int
    assoc: int
    line_size: int
    mshr_entries: int
    indexing: str = "hash"  # "hash" or "linear"
    hit_latency: int = 1

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_size

    @property
    def num_sets(self) -> int:
        return self.num_lines // self.assoc

    def __post_init__(self) -> None:
        if self.assoc < 1 or self.mshr_entries < 1:
            raise ValueError("associativity and MSHR count must be positive")
        if self.size_bytes % self.line_size:
            raise ValueError("cache size must be a multiple of the line size")
        if self.num_lines % self.assoc:
            raise ValueError("number of lines must be a multiple of associativity")
        if self.indexing not in ("hash", "linear"):
            raise ValueError(f"unknown indexing scheme: {self.indexing!r}")


@dataclass(frozen=True)
class MemoryConfig:
    """The shared memory system as seen by one SM.

    The L2 capacity is this SM's effective share of the chip-wide 2.25 MB L2.
    It is set to twice the arithmetic fair share (144 KB instead of 72 KB)
    because inter-SM sharing of read-only data means an SM's resident
    footprint in a shared L2 exceeds its fair slice.  ``dram_service_interval``
    is the per-line DRAM service time for this SM's share of the off-chip
    bandwidth (GDDR5 bandwidth divided by 32 SMs is roughly one 128-byte line
    every ~28 core cycles), so the DRAM server saturates under heavy miss
    traffic exactly as the paper's bandwidth bottleneck does.  Queueing at the
    L2 and DRAM is modelled with one busy server per level;
    ``congestion_factor`` scales the per-request service interval (used by
    sensitivity studies).
    """

    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=144 * 1024, assoc=8, line_size=128, mshr_entries=64
        )
    )
    l2_latency: int = 100
    l2_service_interval: float = 4.0
    dram_latency: int = 260
    dram_service_interval: float = 28.0
    congestion_factor: float = 1.0
    max_queue_delay: int = 4000


@dataclass(frozen=True)
class SMConfig:
    """Per-SM execution parameters (single-scheduler view)."""

    max_warps: int = 24
    warp_size: int = 32
    issue_width: int = 1
    alu_latency: int = 1
    tpipe: int = 4  # average pipelined execution cycles of a warp instruction


@dataclass(frozen=True)
class EnergyConfig:
    """Per-event energy in picojoules and static power in pJ/cycle.

    The absolute values are representative of a 40 nm-class GPU (the
    GPUWattch generation); only ratios matter for the reproduction of
    Fig. 14.
    """

    alu_op_pj: float = 25.0
    l1_access_pj: float = 50.0
    l2_access_pj: float = 250.0
    dram_access_pj: float = 2000.0
    static_pj_per_cycle: float = 120.0


@dataclass(frozen=True)
class GPUConfig:
    """Top-level configuration bundle."""

    sm: SMConfig = field(default_factory=SMConfig)
    l1: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=16 * 1024, assoc=4, line_size=128, mshr_entries=32
        )
    )
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    energy: EnergyConfig = field(default_factory=EnergyConfig)
    #: Number of SMs actually simulated.  1 (the default) is the paper's
    #: single-SM / single-scheduler view — the other 31 SMs of the chip are
    #: folded into the per-SM memory shares above.  Values > 1 instantiate a
    #: chip model: that many SMs time-multiplexed against one shared L2/DRAM
    #: busy-server pair, so inter-SM contention becomes measurable.
    num_sms: int = 1
    #: Chip interleave quantum in cycles: with ``num_sms > 1`` every SM is
    #: advanced to the next multiple of this absolute-cycle grid before any SM
    #: crosses it, which makes the interleaved memory-request order (and hence
    #: all counters) independent of controller window sizes and engines.
    sm_quantum: int = 100
    max_cycles: int = 200_000
    track_reuse_distance: bool = False

    def __post_init__(self) -> None:
        if self.num_sms < 1:
            raise ValueError("num_sms must be >= 1")
        if self.sm_quantum < 1:
            raise ValueError("sm_quantum must be >= 1")

    @property
    def max_warps(self) -> int:
        return self.sm.max_warps

    def with_l1(self, **changes) -> "GPUConfig":
        """Return a copy with modified L1 parameters (used by Fig. 12)."""
        return replace(self, l1=replace(self.l1, **changes))

    def with_l1_scale(self, scale: int) -> "GPUConfig":
        """Return a copy with the L1 capacity scaled by ``scale``."""
        return self.with_l1(size_bytes=self.l1.size_bytes * scale)

    def with_max_cycles(self, max_cycles: int) -> "GPUConfig":
        return replace(self, max_cycles=max_cycles)


def baseline_config(max_cycles: int = 200_000, **overrides) -> GPUConfig:
    """The baseline architecture of Table IIIb (single-scheduler view)."""
    config = GPUConfig(max_cycles=max_cycles)
    if overrides:
        config = replace(config, **overrides)
    return config
