"""Set-associative cache with LRU replacement, hash/linear indexing and
per-request allocate/bypass control.

The cache tracks, per line, the warp that last touched it so that hits can be
classified as *intra-warp* (same warp as the previous toucher) or
*inter-warp*.  These two categories are the basis of the η features in the
paper's feature vector (Table I-b / Table II).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.gpu.config import CacheConfig


@dataclass(slots=True)
class CacheLine:
    valid: bool = False
    tag: int = -1
    last_warp: int = -1
    lru_stamp: int = 0


@dataclass(frozen=True, slots=True)
class CacheAccessResult:
    """Outcome of a cache access."""

    hit: bool
    intra_warp: bool
    allocated: bool
    evicted_line_addr: Optional[int] = None


class SetAssociativeCache:
    """A straightforward set-associative cache model.

    Fill latency is not modelled inside the cache: a line is reserved at the
    time of the missing access (as the paper's L1 controller does when it
    reserves a line for an allocating miss); timing is charged by the memory
    subsystem.
    """

    def __init__(self, config: CacheConfig, name: str = "cache") -> None:
        self.config = config
        self.name = name
        self.num_sets = config.num_sets
        self.assoc = config.assoc
        self._sets: List[List[CacheLine]] = [
            [CacheLine() for _ in range(self.assoc)] for _ in range(self.num_sets)
        ]
        self._access_counter = 0
        self.hits = 0
        self.misses = 0
        self.bypasses = 0
        self.evictions = 0
        self._hash_indexing = config.indexing == "hash"
        # The XOR-fold is a pure function of (line_addr, num_sets); kernels
        # revisit a small working set of lines millions of times, so the
        # per-access fold loop is replaced by a memo lookup.
        self._index_memo: dict = {}

    # -- indexing -----------------------------------------------------------------

    def set_index(self, line_addr: int) -> int:
        """Map a line address to a set index.

        ``linear`` indexing uses the low-order bits; ``hash`` indexing XOR-folds
        higher address bits into the index, emulating the hashed set-index
        function of the paper's baseline L1.
        """
        if not self._hash_indexing or self.num_sets == 1:
            # A direct-mapped-to-one-set cache has nothing to fold (and the
            # fold loop below would never terminate: ``folded //= 1``).
            return line_addr % self.num_sets
        index = self._index_memo.get(line_addr)
        if index is None:
            folded = line_addr
            index = 0
            while folded:
                index ^= folded % self.num_sets
                folded //= self.num_sets
            index %= self.num_sets
            self._index_memo[line_addr] = index
        return index

    def _tag(self, line_addr: int) -> int:
        return line_addr

    # -- access -------------------------------------------------------------------

    def probe(self, line_addr: int) -> bool:
        """Check for presence without changing any state."""
        target = self._tag(line_addr)
        for line in self._sets[self.set_index(line_addr)]:
            if line.valid and line.tag == target:
                return True
        return False

    def access(
        self,
        line_addr: int,
        warp_id: int,
        allocate: bool = True,
        block_on_miss: bool = False,
    ) -> Optional[CacheAccessResult]:
        """Perform a load access.

        Args:
            line_addr: cache-line address.
            warp_id: the accessing warp (for intra/inter-warp classification).
            allocate: whether a miss may reserve a line (pollute privilege).
            block_on_miss: when the caller cannot absorb a miss this cycle
                (e.g. no MSHR entry is available), a would-be miss aborts the
                access — no state or statistics change — and ``None`` is
                returned.  This lets the SM resolve hit/miss and perform the
                access with a single set walk instead of ``probe()`` +
                ``access()``.
        """
        target = self._tag(line_addr)
        cache_set = self._sets[self.set_index(line_addr)]

        for line in cache_set:
            if line.valid and line.tag == target:
                self._access_counter += 1
                self.hits += 1
                intra = line.last_warp == warp_id
                line.last_warp = warp_id
                line.lru_stamp = self._access_counter
                return CacheAccessResult(hit=True, intra_warp=intra, allocated=False)

        if block_on_miss:
            return None
        self._access_counter += 1
        self.misses += 1
        if not allocate:
            self.bypasses += 1
            return CacheAccessResult(hit=False, intra_warp=False, allocated=False)

        victim = min(cache_set, key=lambda line: (line.valid, line.lru_stamp))
        evicted_addr = victim.tag if victim.valid else None
        if victim.valid:
            self.evictions += 1
        victim.valid = True
        victim.tag = target
        victim.last_warp = warp_id
        victim.lru_stamp = self._access_counter
        return CacheAccessResult(
            hit=False, intra_warp=False, allocated=True, evicted_line_addr=evicted_addr
        )

    # -- management ---------------------------------------------------------------

    def flush(self) -> None:
        for cache_set in self._sets:
            for line in cache_set:
                line.valid = False
                line.tag = -1
                line.last_warp = -1
                line.lru_stamp = 0
        self._access_counter = 0

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self.bypasses = 0
        self.evictions = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def resident_lines(self) -> int:
        return sum(1 for cache_set in self._sets for line in cache_set if line.valid)
