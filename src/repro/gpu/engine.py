"""Simulator-engine selection.

Three engines execute kernels, bit-identically:

* ``legacy`` — :class:`repro.gpu.sm.StreamingMultiprocessor`, the original
  object-per-warp cycle loop.  It is the *oracle*: readable, heavily
  unit-tested, and the reference every other engine is differentially
  verified against.
* ``fast`` — :class:`repro.gpu.fastcore.FastStreamingMultiprocessor`, a
  struct-of-arrays rewrite of the same loop (flat warp/L1/MSHR state, fused
  cycle function, ALU-run batching).  It is the default because every
  counter it produces is pinned to the legacy core by the golden-counter
  tests and the differential Hypothesis suite.
* ``event`` — :class:`repro.gpu.eventcore.EventStreamingMultiprocessor`,
  the fast core with a next-event horizon: spans of dead cycles (no-ready
  stalls *and* MSHR-full retry loops) advance the clock in one jump to the
  next observable event, with every counter credited for the skipped span
  exactly as if ticked.  Verified by the same N-way conformance harness
  (``tests/engine_conformance.py``).

Adding a fourth engine is one registry entry here plus a branch in
:meth:`repro.gpu.gpu.GPU.build_sm`: the conformance harness, golden replay
and scenario engine axes all enumerate :data:`ENGINES`.

Selection is the ``REPRO_ENGINE`` environment variable (``fast`` when
unset), overridable per call wherever a simulation is built
(:meth:`repro.gpu.gpu.GPU.build_sm`, the profiler, training, trace capture,
the throughput benchmarks).  Because the engines are bit-identical, cached
results are engine-agnostic: no cache key anywhere encodes the engine, so a
result computed by one engine is a valid cache hit for the other.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional

#: Environment variable naming the engine to simulate with.
ENGINE_ENV = "REPRO_ENGINE"

ENGINE_FAST = "fast"
ENGINE_LEGACY = "legacy"
ENGINE_EVENT = "event"

#: Every recognised engine name.
ENGINES = (ENGINE_FAST, ENGINE_LEGACY, ENGINE_EVENT)


def resolve_engine(engine: Optional[str] = None) -> str:
    """Resolve an explicit or environment-provided engine name.

    ``engine`` wins when given; otherwise ``REPRO_ENGINE`` is consulted and
    an unset/empty variable means ``fast``.  Unknown names raise
    ``ValueError`` rather than silently simulating with the wrong core.
    """
    value = engine if engine is not None else os.environ.get(ENGINE_ENV, "")
    value = value.strip().lower() or ENGINE_FAST
    if value not in ENGINES:
        raise ValueError(
            f"unknown simulator engine {value!r} (expected one of {', '.join(ENGINES)})"
        )
    return value


@contextmanager
def pinned_engine(engine: Optional[str]) -> Iterator[None]:
    """Temporarily pin ``REPRO_ENGINE`` (``None`` leaves it untouched).

    Used wherever a specific core must execute regardless of the ambient
    environment — engine-pinned scenario points, engine-parity tests.
    """
    if engine is None:
        yield
        return
    resolve_engine(engine)  # fail fast on unknown names
    previous = os.environ.get(ENGINE_ENV)
    os.environ[ENGINE_ENV] = engine
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(ENGINE_ENV, None)
        else:
            os.environ[ENGINE_ENV] = previous
