"""GPU simulator substrate for the Poise reproduction.

This package models a single streaming multiprocessor (SM) of a modern GPU at
cycle granularity, together with the slice of the shared memory system (L2
cache and DRAM) that the SM observes.  The model is intentionally focused on
the mechanisms Poise exercises:

* a greedy-then-oldest (GTO) warp scheduler extended with *vital* and
  *pollute* bits (the warp-tuple ``{N, p}``),
* a set-associative L1 data cache with MSHRs, LRU replacement, hash or linear
  set indexing and allocate/bypass behaviour controlled per request,
* load/use dependency stalls within each warp (the latency-tolerance
  structure of the paper's analytical model),
* a congestion-dependent L2/DRAM latency model so that average memory
  latency (AML) responds to miss traffic, and
* the performance counters Poise's hardware inference engine samples.
"""

from repro.gpu.config import (
    CacheConfig,
    EnergyConfig,
    GPUConfig,
    MemoryConfig,
    SMConfig,
    baseline_config,
)
from repro.gpu.counters import PerfCounters
from repro.gpu.energy import EnergyModel, EnergyReport
from repro.gpu.engine import ENGINE_ENV, ENGINES, resolve_engine
from repro.gpu.eventcore import EventStreamingMultiprocessor
from repro.gpu.fastcore import FastStreamingMultiprocessor
from repro.gpu.gpu import GPU, RunResult
from repro.gpu.isa import Instruction, Opcode
from repro.gpu.sm import StreamingMultiprocessor
from repro.gpu.warp import Warp

__all__ = [
    "CacheConfig",
    "ENGINE_ENV",
    "ENGINES",
    "EnergyConfig",
    "EnergyModel",
    "EnergyReport",
    "EventStreamingMultiprocessor",
    "FastStreamingMultiprocessor",
    "GPU",
    "GPUConfig",
    "Instruction",
    "MemoryConfig",
    "Opcode",
    "PerfCounters",
    "RunResult",
    "SMConfig",
    "StreamingMultiprocessor",
    "Warp",
    "baseline_config",
    "resolve_engine",
]
