"""Struct-of-arrays fast simulator core.

The legacy :class:`~repro.gpu.sm.StreamingMultiprocessor` walks per-warp
Python objects — ``Warp`` dataclasses, ``CacheLine`` instances, MSHR entry
objects — one instruction at a time, paying an attribute lookup (or an
object allocation) for every event.  On a single core that cost is the
binding constraint on how many scenarios the reproduction can afford to
sweep.

This module re-implements the *same* cycle loop over flat, preallocated
state:

* **warps** become parallel arrays indexed by warp id: ``pc``, program
  length, the incrementally maintained minimum first-dependent index, one
  pending-load dict (token → ``(first_dep, issue_cycle)``) per warp, and an
  alive flag;
* **programs** stay as tuples of (slotted, frozen)
  :class:`~repro.gpu.isa.Instruction` objects read directly by the loop —
  ``line_addr is None`` doubles as the ALU test, so no decode pass is ever
  paid for instructions that never issue (profiling windows touch a few
  percent of a kernel's stream);
* **the L1** becomes three flat lists (``tag``, ``lru_stamp``,
  ``last_warp``) of length ``num_sets * assoc``; a line is invalid iff its
  stamp is 0, which preserves the legacy victim order exactly (invalid
  ways first, then strict LRU, first way wins ties);
* **the MSHR file** becomes a set of in-flight line addresses (capacity
  check is a ``len()``) plus the per-line waiter lists already shared with
  the response heap;
* **the GTO/SWL vital state** becomes two flag lists plus an age-ordered
  vital id list, refreshed exactly where the legacy scheduler refreshes.

The whole ``deliver → pick → issue`` step is fused into one function with
every piece of mutable state bound to locals; runs of consecutive ALU
instructions issue as a single batched update (provably equivalent: an ALU
issue changes nothing but ``pc``, the cycle counter and three counters, so
``k`` sticky ALU issues commute with the loop as long as no response is due
and the warp stays schedulable — both of which bound ``k``).

Bit-identity with the legacy core — every counter, every cycle — is pinned
by the golden-counter fixtures and by the differential Hypothesis suite in
``tests/test_fastcore_differential.py``.
"""

from __future__ import annotations

import heapq
import sys
from typing import Dict, List, Optional, Sequence, Tuple

from repro.gpu.config import GPUConfig
from repro.gpu.counters import PerfCounters
from repro.gpu.isa import Instruction
from repro.gpu.reuse import ReuseDistanceTracker
from repro.gpu.sm import CacheManagementPolicy

#: Sentinel for "no outstanding load blocks anything" (mirrors warp.py).
_NO_BLOCK = sys.maxsize
#: Sentinel for "no memory response in flight".
_NO_RESPONSE = sys.maxsize


class FastMemorySubsystem:
    """Struct-of-arrays mirror of :class:`repro.gpu.memory.MemorySubsystem`.

    Replicates the busy-server queueing arithmetic *operation for operation*
    (same float products, same ``max``/``min`` clamps, same ``int()``
    truncation) and the L2's LRU/allocation behaviour over flat tag/stamp
    lists, so completion cycles are bit-identical to the legacy model —
    without a ``MemoryResponse`` allocation or a ``CacheLine`` walk per
    request.  ``request`` returns ``(completion_cycle, served_by_l2)``.
    """

    __slots__ = (
        "config",
        "_nsets",
        "_assoc",
        "_tags",
        "_stamps",
        "_access_counter",
        "_hash_indexing",
        "_index_memo",
        "_l2_busy_until",
        "_dram_busy_until",
        "l2_accesses",
        "l2_hits",
        "dram_accesses",
        "total_latency",
        "requests",
    )

    def __init__(self, config) -> None:
        self.config = config
        l2 = config.l2
        self._nsets = l2.num_sets
        self._assoc = l2.assoc
        size = self._nsets * self._assoc
        self._tags: List[int] = [-1] * size
        self._stamps: List[int] = [0] * size  # 0 == invalid way
        self._access_counter = 0
        self._hash_indexing = l2.indexing == "hash"
        self._index_memo: Dict[int, int] = {}
        self._l2_busy_until = 0.0
        self._dram_busy_until = 0.0
        self.l2_accesses = 0
        self.l2_hits = 0
        self.dram_accesses = 0
        self.total_latency = 0
        self.requests = 0

    def request(self, line_addr: int, cycle: int, warp_id: int) -> Tuple[int, bool]:
        cfg = self.config
        self.requests += 1
        self.l2_accesses += 1

        l2_start = self._l2_busy_until
        if l2_start < cycle:
            l2_start = float(cycle)
        queue_delay = l2_start - cycle
        if queue_delay > cfg.max_queue_delay:
            queue_delay = cfg.max_queue_delay
        self._l2_busy_until = l2_start + cfg.l2_service_interval * cfg.congestion_factor

        # L2 lookup (always allocating), fused probe+fill like the L1 path.
        if self._hash_indexing and self._nsets > 1:
            sidx = self._index_memo.get(line_addr)
            if sidx is None:
                folded = line_addr
                sidx = 0
                nsets = self._nsets
                while folded:
                    sidx ^= folded % nsets
                    folded //= nsets
                sidx %= nsets
                self._index_memo[line_addr] = sidx
        else:
            # Single-set caches skip the fold (it cannot terminate for
            # nsets == 1) — the index is 0 either way.
            sidx = line_addr % self._nsets
        assoc = self._assoc
        base = sidx * assoc
        tags = self._tags
        stamps = self._stamps
        self._access_counter += 1
        hit = False
        for way in range(base, base + assoc):
            if tags[way] == line_addr:
                stamps[way] = self._access_counter
                hit = True
                break
        if hit:
            self.l2_hits += 1
            latency = int(cfg.l2_latency + queue_delay)
            self.total_latency += latency
            return cycle + latency, True

        vic = base
        best = stamps[base]
        if best:
            for way in range(base + 1, base + assoc):
                s = stamps[way]
                if s < best:
                    vic = way
                    best = s
                    if not s:
                        break
        tags[vic] = line_addr
        stamps[vic] = self._access_counter

        dram_start = l2_start + cfg.l2_latency
        if dram_start < self._dram_busy_until:
            dram_start = self._dram_busy_until
        dram_queue_delay = dram_start - (cycle + cfg.l2_latency)
        if dram_queue_delay > cfg.max_queue_delay:
            dram_queue_delay = cfg.max_queue_delay
        self._dram_busy_until = dram_start + cfg.dram_service_interval * cfg.congestion_factor

        self.dram_accesses += 1
        latency = int(cfg.l2_latency + queue_delay + cfg.dram_latency + dram_queue_delay)
        self.total_latency += latency
        return cycle + latency, False

    # -- derived statistics (API parity with MemorySubsystem) -------------------

    @property
    def l2_hit_rate(self) -> float:
        return self.l2_hits / self.l2_accesses if self.l2_accesses else 0.0

    @property
    def average_latency(self) -> float:
        return self.total_latency / self.requests if self.requests else 0.0


class FastStreamingMultiprocessor:
    """Drop-in replacement for the legacy SM with struct-of-arrays state.

    Exposes the same public surface the controllers and the profiler use:
    ``config``, ``warps`` (length = launched warps), ``counters``, ``cycle``,
    ``done``, ``warp_tuple``, ``set_warp_tuple``, ``snapshot``,
    ``run_cycles``, ``run_to_completion``, ``reuse_tracker``,
    ``cache_policy`` and ``trace_capture``.
    """

    def __init__(
        self,
        config: GPUConfig,
        programs: Sequence[Sequence[Instruction]],
        cache_policy: Optional[CacheManagementPolicy] = None,
        trace_capture=None,
        memory: Optional[FastMemorySubsystem] = None,
    ) -> None:
        if len(programs) > config.sm.max_warps:
            raise ValueError(
                f"kernel launches {len(programs)} warps but the scheduler supports "
                f"{config.sm.max_warps}"
            )
        self.config = config
        #: Immutable per-warp instruction streams.  ``len(sm.warps)`` is part
        #: of the controller protocol; the instruction objects themselves are
        #: only consulted by the trace-capture and cache-policy hooks.
        self.warps: Tuple[Tuple[Instruction, ...], ...] = tuple(
            tuple(program) for program in programs
        )
        num_warps = len(self.warps)

        # -- warp state (struct of arrays, indexed by warp id) -----------------
        self._pcs: List[int] = [0] * num_warps
        self._plens: List[int] = [len(program) for program in self.warps]
        self._minfd: List[int] = [_NO_BLOCK] * num_warps
        self._outstanding: List[Dict[int, Tuple[int, int]]] = [
            {} for _ in range(num_warps)
        ]
        self._alive: List[bool] = [length > 0 for length in self._plens]
        self._unfinished = sum(self._alive)
        #: ``ready[wid]`` caches ``is_schedulable`` (pc < plen and pc < minfd);
        #: maintained incrementally at the few points either input changes, so
        #: a stalled cycle costs one counter test instead of a vital-list scan.
        self._ready: List[bool] = [length > 0 for length in self._plens]
        self._ready_vital = 0

        # -- scheduler state (vital/pollute bits over the GTO order) -----------
        self._max_warps = config.sm.max_warps
        self._n = self._max_warps
        self._p = self._max_warps
        self._vital_flags: List[bool] = [False] * num_warps
        self._pollute_flags: List[bool] = [False] * num_warps
        self._vital_list: List[int] = []
        self._last = -1
        self._refresh_bits()

        # -- L1 state (flat tag/LRU/last-warp arrays) --------------------------
        l1 = config.l1
        self._nsets = l1.num_sets
        self._assoc = l1.assoc
        size = self._nsets * self._assoc
        self._l1_tags: List[int] = [-1] * size
        self._l1_stamps: List[int] = [0] * size  # 0 == invalid way
        self._l1_lastw: List[int] = [-1] * size
        self._l1_access_counter = 0
        # A single-set cache skips the XOR-fold entirely (the fold cannot
        # terminate for num_sets == 1, and the index is 0 regardless).
        self._hash_indexing = l1.indexing == "hash" and self._nsets > 1
        self._index_memo: Dict[int, int] = {}

        # -- MSHR / memory ----------------------------------------------------
        self._mshr_capacity = l1.mshr_entries
        self._mshr_lines: set = set()
        # ``memory`` lets a chip model (repro.gpu.chip) share one L2/DRAM
        # busy-server pair across SMs; standalone SMs own a private one.
        self.memory = memory if memory is not None else FastMemorySubsystem(config.memory)

        # -- bookkeeping -------------------------------------------------------
        self.counters = PerfCounters()
        self.cycle = 0
        self._next_token = 0
        # (completion_cycle, sequence, line_addr, [(warp_id, token), ...])
        self._responses: List[Tuple[int, int, int, List[Tuple[int, int]]]] = []
        self._response_seq = 0
        self._response_waiters: Dict[int, List[Tuple[int, int]]] = {}
        self.cache_policy = cache_policy or CacheManagementPolicy()
        # The base-class hooks are no-ops; skipping them entirely keeps the
        # hot loop free of two Python calls per load without changing state.
        self._policy_active = type(self.cache_policy) is not CacheManagementPolicy
        self.reuse_tracker = (
            ReuseDistanceTracker() if config.track_reuse_distance else None
        )
        self.trace_capture = trace_capture

    # -- public control -----------------------------------------------------------

    @property
    def done(self) -> bool:
        return self._unfinished == 0

    @property
    def warp_tuple(self) -> Tuple[int, int]:
        return self._n, self._p

    def set_warp_tuple(self, n: int, p: int) -> None:
        n = max(1, min(int(n), self._max_warps))
        p = max(1, min(int(p), n))
        self._n, self._p = n, p
        self._refresh_bits()

    def snapshot(self) -> PerfCounters:
        """Snapshot the counters for window (epoch) sampling."""
        return self.counters.copy()

    def run_cycles(self, budget: int) -> int:
        """Run for up to ``budget`` cycles (or until the kernel finishes)."""
        start = self.cycle
        self._run(self.cycle + budget)
        return self.cycle - start

    def run_to_completion(self, max_cycles: Optional[int] = None) -> int:
        limit = self.cycle + (
            max_cycles if max_cycles is not None else self.config.max_cycles
        )
        self._run(limit)
        return self.cycle

    # -- scheduler bits -----------------------------------------------------------

    def _refresh_bits(self) -> None:
        """Recompute the vital/pollute bits over the active warps, oldest
        first — called exactly where the legacy scheduler refreshes (init,
        warp-tuple change, warp exit)."""
        alive = self._alive
        vital = self._vital_flags
        pollute = self._pollute_flags
        n, p = self._n, self._p  # p <= n is enforced by set_warp_tuple
        for wid in range(len(alive)):
            vital[wid] = False
            pollute[wid] = False
        vital_list: List[int] = []
        count = 0
        for wid in range(len(alive)):
            if not alive[wid]:
                continue
            vital_list.append(wid)
            vital[wid] = True
            if count < p:
                pollute[wid] = True
            count += 1
            if count >= n:
                break
        self._vital_list = vital_list
        ready = self._ready
        ready_vital = 0
        for wid in vital_list:
            if ready[wid]:
                ready_vital += 1
        self._ready_vital = ready_vital

    # -- the fused cycle loop -----------------------------------------------------

    def _run(self, limit: int) -> None:
        cycle = self.cycle
        unfinished = self._unfinished
        if cycle >= limit or not unfinished:
            return

        # ---- counter accumulators (flushed to self.counters on exit) --------
        cycles_c = busy_c = stall_c = instr_c = loads_c = 0
        l1_acc = l1_hit = l1_miss = l1_byp = 0
        pol_acc = pol_hit = npol_acc = npol_hit = 0
        intra_c = inter_c = 0
        missreq_c = misslat_c = 0
        l2_acc = l2_hit = dram_c = 0
        mshr_stall = 0

        # ---- state bound to locals ------------------------------------------
        pcs = self._pcs
        plens = self._plens
        minfd = self._minfd
        outstanding = self._outstanding
        alive = self._alive
        vital = self._vital_flags
        pollute = self._pollute_flags
        vital_list = self._vital_list
        ready = self._ready
        ready_vital = self._ready_vital
        last = self._last
        progs = self.warps
        tags = self._l1_tags
        stamps = self._l1_stamps
        lastw = self._l1_lastw
        acc_counter = self._l1_access_counter
        nsets = self._nsets
        assoc = self._assoc
        hash_indexing = self._hash_indexing
        index_memo = self._index_memo
        mshr_lines = self._mshr_lines
        mshr_cap = self._mshr_capacity
        responses = self._responses
        waiters_map = self._response_waiters
        seq = self._response_seq
        next_token = self._next_token
        memory_request = self.memory.request
        reuse = self.reuse_tracker
        reuse_record = reuse.record if reuse is not None else None
        policy_active = self._policy_active
        allow_allocate = self.cache_policy.allow_allocate if policy_active else None
        observe_access = self.cache_policy.observe_access if policy_active else None
        tc = self.trace_capture
        tc_record = tc.record if tc is not None else None
        heappush = heapq.heappush
        heappop = heapq.heappop
        refresh = self._refresh_bits

        next_completion = responses[0][0] if responses else _NO_RESPONSE

        # Per-warp row cache: GTO is sticky, so consecutive issues almost
        # always come from the same warp and the row locals stay hot.
        # Instructions are read straight off the (slotted, frozen) objects —
        # ``line_addr is None`` doubles as the ALU test, so no decode pass is
        # ever paid for instructions that never issue.
        cur = -1
        prog_w: Tuple[Instruction, ...] = ()
        plen_w = 0
        out_w: Dict[int, Tuple[int, int]] = {}

        while cycle < limit and unfinished:
            # ---- deliver memory responses due this cycle --------------------
            while next_completion <= cycle:
                completion, _, line, waiters = heappop(responses)
                del waiters_map[line]
                for wid, token in waiters:
                    out = outstanding[wid]
                    fd, issue_cycle = out.pop(token)
                    # Each waiter is charged its own latency: merged loads
                    # issue later than the primary, so their round trip is
                    # shorter.
                    missreq_c += 1
                    misslat_c += completion - issue_cycle
                    if fd <= minfd[wid]:
                        new_min = _NO_BLOCK
                        for pending in out.values():
                            first_dep = pending[0]
                            if first_dep < new_min:
                                new_min = first_dep
                        minfd[wid] = new_min
                    pc = pcs[wid]
                    if not out and pc >= plens[wid]:
                        alive[wid] = False
                        unfinished -= 1
                        refresh()
                        vital_list = self._vital_list
                        ready_vital = self._ready_vital
                    elif (
                        not ready[wid] and pc < plens[wid] and pc < minfd[wid]
                    ):
                        # The raised min-first-dependent unblocked the warp.
                        ready[wid] = True
                        if vital[wid]:
                            ready_vital += 1
                mshr_lines.discard(line)
                next_completion = responses[0][0] if responses else _NO_RESPONSE

            # ---- pick a warp (greedy-then-oldest over the vital list) -------
            if not ready_vital:
                # No vital warp can issue: jump to the next completion.
                if responses:
                    target = next_completion if next_completion < limit else limit
                    skipped = target - cycle
                    if skipped < 1:
                        skipped = 1
                else:
                    skipped = 1
                cycle += skipped
                cycles_c += skipped
                stall_c += skipped
                continue
            if last >= 0 and vital[last] and ready[last]:
                wid = last
            else:
                wid = -1
                for cand in vital_list:
                    if ready[cand]:
                        wid = cand
                        last = cand
                        break
            pc = pcs[wid]

            if wid != cur:
                cur = wid
                prog_w = progs[wid]
                plen_w = plens[wid]
                out_w = outstanding[wid]

            inst = prog_w[pc]
            line = inst.line_addr
            if line is None:
                # ---- ALU burst: issue every consecutive sticky ALU slot -----
                # Bounds: the warp must stay schedulable (pc < minfd, < plen),
                # no response may become due (cycle < next_completion) and the
                # budget holds (cycle < limit).  Within those bounds each step
                # is exactly one legacy ALU issue.
                stop = minfd[wid]
                if plen_w < stop:
                    stop = plen_w
                bound = pc + (limit - cycle)
                if bound < stop:
                    stop = bound
                bound = pc + (next_completion - cycle)
                if bound < stop:
                    stop = bound
                npc = pc + 1
                while npc < stop and prog_w[npc].line_addr is None:
                    npc += 1
                k = npc - pc
                pcs[wid] = npc
                instr_c += k
                cycle += k
                cycles_c += k
                busy_c += k
                if tc_record is not None:
                    for index in range(pc, npc):
                        tc_record(wid, prog_w[index])
                if npc >= plen_w or npc >= minfd[wid]:
                    ready[wid] = False
                    if vital[wid]:
                        ready_vital -= 1
                if npc >= plen_w and not out_w:
                    alive[wid] = False
                    unfinished -= 1
                    refresh()
                    vital_list = self._vital_list
                    ready_vital = self._ready_vital
                last = wid
                continue

            # ---- load issue (single fused set walk) -------------------------
            polluting = pollute[wid]
            if policy_active:
                allocate = polluting and allow_allocate(inst, wid)
            else:
                allocate = polluting
            if hash_indexing:
                sidx = index_memo.get(line)
                if sidx is None:
                    folded = line
                    sidx = 0
                    while folded:
                        sidx ^= folded % nsets
                        folded //= nsets
                    sidx %= nsets
                    index_memo[line] = sidx
            else:
                # ``hash_indexing`` is pre-cleared for nsets == 1 (the fold
                # would not terminate); the modulo is 0 there either way.
                sidx = line % nsets
            base = sidx * assoc
            hit_way = -1
            for way in range(base, base + assoc):
                if tags[way] == line:
                    hit_way = way
                    break

            if (
                hit_way < 0
                and line not in mshr_lines
                and len(mshr_lines) >= mshr_cap
            ):
                # Structural hazard: a would-be miss with no MSHR entry (new
                # or merged) cannot issue; the slot is wasted and the warp
                # retries.  No cache or counter state changes (the legacy
                # core's ``instructions`` increment is rolled back on this
                # path, so the fast core never counts it at all).
                mshr_stall += 1
            else:
                instr_c += 1
                loads_c += 1
                l1_acc += 1
                if polluting:
                    pol_acc += 1
                else:
                    npol_acc += 1
                if reuse_record is not None:
                    reuse_record(wid, line)
                if policy_active:
                    observe_access(inst, wid, hit_way >= 0)
                acc_counter += 1
                npc = pc + 1
                pcs[wid] = npc
                if hit_way >= 0:
                    l1_hit += 1
                    if polluting:
                        pol_hit += 1
                    else:
                        npol_hit += 1
                    if lastw[hit_way] == wid:
                        intra_c += 1
                    else:
                        inter_c += 1
                    lastw[hit_way] = wid
                    stamps[hit_way] = acc_counter
                else:
                    l1_miss += 1
                    if allocate:
                        # LRU victim: invalid ways carry stamp 0 (< any valid
                        # stamp), ties resolve to the lowest way — the same
                        # order as the legacy ``min`` over (valid, stamp).
                        vic = base
                        best = stamps[base]
                        if best:
                            for way in range(base + 1, base + assoc):
                                s = stamps[way]
                                if s < best:
                                    vic = way
                                    best = s
                                    if not s:
                                        break
                        tags[vic] = line
                        lastw[vic] = wid
                        stamps[vic] = acc_counter
                    else:
                        l1_byp += 1
                    token = next_token
                    next_token += 1
                    fd = pc + inst.dep_distance + 1
                    out_w[token] = (fd, cycle)
                    if fd < minfd[wid]:
                        minfd[wid] = fd
                    if line in mshr_lines:
                        # Merged miss: attach to the in-flight response.
                        waiters_map[line].append((wid, token))
                    else:
                        mshr_lines.add(line)
                        completion, served_by_l2 = memory_request(line, cycle, wid)
                        l2_acc += 1
                        if served_by_l2:
                            l2_hit += 1
                        else:
                            dram_c += 1
                        seq += 1
                        entry_waiters = [(wid, token)]
                        waiters_map[line] = entry_waiters
                        heappush(responses, (completion, seq, line, entry_waiters))
                        if completion < next_completion:
                            next_completion = completion
                if tc_record is not None:
                    tc_record(wid, inst)
                if npc >= plen_w or npc >= minfd[wid]:
                    ready[wid] = False
                    if vital[wid]:
                        ready_vital -= 1
                if npc >= plen_w and not out_w:
                    alive[wid] = False
                    unfinished -= 1
                    refresh()
                    vital_list = self._vital_list
                    ready_vital = self._ready_vital
                last = wid

            cycle += 1
            cycles_c += 1
            busy_c += 1

        # ---- write state and counters back ----------------------------------
        self.cycle = cycle
        self._unfinished = unfinished
        self._last = last
        self._ready_vital = ready_vital
        self._l1_access_counter = acc_counter
        self._response_seq = seq
        self._next_token = next_token
        c = self.counters
        c.cycles += cycles_c
        c.busy_cycles += busy_c
        c.stall_cycles += stall_c
        c.instructions += instr_c
        c.loads += loads_c
        c.l1_accesses += l1_acc
        c.l1_hits += l1_hit
        c.l1_misses += l1_miss
        c.l1_bypasses += l1_byp
        c.polluting_accesses += pol_acc
        c.polluting_hits += pol_hit
        c.nonpolluting_accesses += npol_acc
        c.nonpolluting_hits += npol_hit
        c.intra_warp_hits += intra_c
        c.inter_warp_hits += inter_c
        c.miss_requests += missreq_c
        c.miss_latency_total += misslat_c
        c.l2_accesses += l2_acc
        c.l2_hits += l2_hit
        c.dram_accesses += dram_c
        c.mshr_stall_cycles += mshr_stall
