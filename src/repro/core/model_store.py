"""Serialisation of trained models.

In the paper the learned feature weights travel from the vendor's offline
training to the GPU through the compiler, which places them in constant
memory before a kernel launches.  Here the same hand-off is a small JSON
document: the training pipeline saves it, and the hardware inference engine
(or any example script) loads it without retraining.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.core.training import TrainedModel

_FORMAT_VERSION = 1


def save_model(model: TrainedModel, path: Union[str, Path]) -> Path:
    """Serialise a trained model to JSON; returns the path written."""
    path = Path(path)
    payload = {
        "format_version": _FORMAT_VERSION,
        "alpha_weights": list(model.alpha_weights),
        "beta_weights": list(model.beta_weights),
        "max_warps": model.max_warps,
        "feature_mask": model.feature_mask,
        "dispersion_n": model.dispersion_n,
        "dispersion_p": model.dispersion_p,
        "num_training_kernels": model.num_training_kernels,
        "metadata": model.metadata,
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path


def load_model(path: Union[str, Path]) -> TrainedModel:
    """Load a trained model previously written by :func:`save_model`."""
    path = Path(path)
    payload = json.loads(path.read_text())
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported model format version: {version!r}")
    return TrainedModel(
        alpha_weights=[float(w) for w in payload["alpha_weights"]],
        beta_weights=[float(w) for w in payload["beta_weights"]],
        max_warps=int(payload["max_warps"]),
        feature_mask=payload.get("feature_mask"),
        dispersion_n=float(payload.get("dispersion_n", 0.0)),
        dispersion_p=float(payload.get("dispersion_p", 0.0)),
        num_training_kernels=int(payload.get("num_training_kernels", 0)),
        metadata=dict(payload.get("metadata", {})),
    )
