"""The analytical model of Section V-A (Equations 1-11).

The model expresses when memory latencies appear in the critical path of an
SM and how the stall cycles change when the warp-tuple moves from the
baseline (maximum warps, all polluting) to a reduced tuple ``{N, p}``.  Its
purpose in the paper — and here — is twofold:

* it identifies the observable quantities that govern whether a warp-tuple
  produces speedup, which become the regression's feature vector, and
* it provides a closed-form *goodness coefficient* ``mu`` (Eq. 8/9) that can
  be evaluated for any candidate tuple, which the test-suite uses to check
  that the simulator and the theory agree on direction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class WarpTupleScenario:
    """Inputs of the analytical model for one ``{N, p}`` scenario.

    The symbols follow Table Ia of the paper:

    Attributes:
        n_warps: the number of vital warps ``N``.
        p_warps: the number of cache-polluting warps ``p`` (``p <= N``).
        miss_rate_baseline: ``m_o``, L1 miss rate of the baseline system.
        latency_baseline: ``L_o``, average memory latency in the baseline.
        hit_rate_polluting: ``h_p``, L1 hit rate of the ``p`` polluting warps.
        hit_rate_nonpolluting: ``h_np``, L1 hit rate of the ``N - p`` others.
        latency_tuple: ``L'``, average memory latency under the tuple.
        independent_instructions: ``I_d``, instructions available between
            adjacent data hazards.
        pipeline_cycles: ``T_pipe``, pipelined execution cycles per warp
            instruction.
        mshr_entries: ``K_mshr``, MSHR entries in the L1.
    """

    n_warps: int
    p_warps: int
    miss_rate_baseline: float
    latency_baseline: float
    hit_rate_polluting: float
    hit_rate_nonpolluting: float
    latency_tuple: float
    independent_instructions: float
    pipeline_cycles: float
    mshr_entries: int

    def __post_init__(self) -> None:
        if not 1 <= self.p_warps <= self.n_warps:
            raise ValueError("scenario requires 1 <= p <= N")
        for name in ("miss_rate_baseline", "hit_rate_polluting", "hit_rate_nonpolluting"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a rate in [0, 1]")
        if self.mshr_entries < 1:
            raise ValueError("mshr_entries must be positive")

    @property
    def hit_rate_baseline(self) -> float:
        """``h_o = 1 - m_o``."""
        return 1.0 - self.miss_rate_baseline

    @property
    def miss_rate_polluting(self) -> float:
        return 1.0 - self.hit_rate_polluting

    @property
    def miss_rate_nonpolluting(self) -> float:
        return 1.0 - self.hit_rate_nonpolluting


class AnalyticalModel:
    """Closed-form expressions of Equations 1-11."""

    def __init__(self, scenario: WarpTupleScenario) -> None:
        self.scenario = scenario

    # -- baseline system (maximum warps) -------------------------------------------

    def t_mem_baseline(self) -> float:
        """Eq. 1 — effective memory latency with maximum warps."""
        s = self.scenario
        return s.latency_baseline * math.ceil(
            s.n_warps * s.miss_rate_baseline / s.mshr_entries
        )

    def t_busy_baseline(self) -> float:
        """Eq. 2 — cycles of useful work enabled by baseline L1 hits."""
        s = self.scenario
        return (
            s.n_warps
            * s.hit_rate_baseline
            * s.independent_instructions
            * s.pipeline_cycles
        )

    def t_stall_baseline(self) -> float:
        """Eq. 3 — exposed stall cycles in the baseline."""
        return max(self.t_mem_baseline() - self.t_busy_baseline(), 0.0)

    # -- reduced tuple {N, p} -------------------------------------------------------

    def t_mem_tuple(self) -> float:
        """Eq. 4 — effective memory latency under the warp-tuple."""
        s = self.scenario
        concurrent_misses = (
            s.miss_rate_nonpolluting * (s.n_warps - s.p_warps)
            + s.miss_rate_polluting * s.p_warps
        )
        return s.latency_tuple * math.ceil(concurrent_misses / s.mshr_entries)

    def t_busy_tuple(self) -> float:
        """Eq. 5 — useful cycles under the warp-tuple."""
        s = self.scenario
        hits = s.p_warps * s.hit_rate_polluting + (s.n_warps - s.p_warps) * s.hit_rate_nonpolluting
        return hits * s.independent_instructions * s.pipeline_cycles

    def t_stall_tuple(self) -> float:
        """Eq. 6 — exposed stall cycles under the warp-tuple."""
        return max(self.t_mem_tuple() - self.t_busy_tuple(), 0.0)

    # -- speedup criterion ----------------------------------------------------------

    def delta_t_busy(self) -> float:
        return self.t_busy_tuple() - self.t_busy_baseline()

    def delta_t_mem(self) -> float:
        return self.t_mem_tuple() - self.t_mem_baseline()

    def predicts_speedup(self) -> bool:
        """Eq. 7 — the tuple reduces stalls relative to the baseline."""
        return self.t_stall_tuple() < self.t_stall_baseline()

    def mu(self) -> float:
        """Eq. 8/9 — coefficient of goodness ``mu = dT_busy / dT_mem``.

        ``mu > 1`` is the speedup criterion.  The ceil functions are dropped
        (as the paper does for Eq. 9) so the quantity is smooth.
        """
        s = self.scenario
        delta_busy = (
            s.p_warps * (s.hit_rate_polluting - s.hit_rate_baseline)
            + (s.n_warps - s.p_warps) * (s.hit_rate_nonpolluting - s.hit_rate_baseline)
        ) * s.independent_instructions * s.pipeline_cycles
        delta_mem = (
            s.p_warps
            * (s.miss_rate_polluting * s.latency_tuple - s.miss_rate_baseline * s.latency_baseline)
            + (s.n_warps - s.p_warps)
            * (
                s.miss_rate_nonpolluting * s.latency_tuple
                - s.miss_rate_baseline * s.latency_baseline
            )
        ) / s.mshr_entries
        if delta_mem == 0:
            return math.inf if delta_busy > 0 else 0.0
        value = delta_busy / delta_mem
        # A negative dT_mem (the tuple *reduces* memory pressure) with more
        # busy work is unambiguously good; report it as a large mu.
        if delta_mem < 0:
            return math.inf if delta_busy >= 0 else abs(value)
        return value

    def mu_p_over_np(self) -> float:
        """Eq. 11 — the objective function ``mu_{p/np}``.

        The ratio of the busy-cycle gain contributed by the ``p`` polluting
        warps to the memory-latency penalty contributed by the ``N - p``
        non-polluting warps.
        """
        s = self.scenario
        if s.n_warps == s.p_warps:
            return math.inf
        delta_h = s.hit_rate_polluting - s.hit_rate_baseline
        denominator = (
            s.miss_rate_nonpolluting * s.latency_tuple
            - s.miss_rate_baseline * s.latency_baseline
        )
        if denominator <= 0:
            return math.inf if delta_h > 0 else 0.0
        return (
            (s.pipeline_cycles / s.mshr_entries)
            * (s.p_warps / (s.n_warps - s.p_warps))
            * (s.independent_instructions * delta_h / denominator)
        )

    def mu_np_over_p(self) -> float:
        """The symmetric counterpart ``mu_{np/p}`` of Eq. 10."""
        s = self.scenario
        delta_h = s.hit_rate_nonpolluting - s.hit_rate_baseline
        denominator = (
            s.miss_rate_polluting * s.latency_tuple
            - s.miss_rate_baseline * s.latency_baseline
        )
        numerator = (s.n_warps - s.p_warps) * delta_h * (
            s.independent_instructions * s.pipeline_cycles
        )
        if denominator <= 0:
            return math.inf if numerator >= 0 else 0.0
        return numerator / (s.p_warps * denominator / s.mshr_entries) / s.mshr_entries
