"""Generalized Linear Model regression with a log link.

The paper fits a Negative Binomial regression (a GLM for over-dispersed
counts) mapping the feature vector to the target ``N`` and ``p`` through a
log-linear link: ``ln(y) = sum_i w_i x_i``.  The original work used
statsmodels; that package is not available offline, so the estimator is
implemented here from first principles:

* :class:`PoissonRegression` — iteratively re-weighted least squares (IRLS)
  for the Poisson GLM (variance equal to the mean);
* :class:`NegativeBinomialRegression` — IRLS for a fixed dispersion ``alpha``
  (NB2 variance ``mu + alpha * mu^2``), with ``alpha`` re-estimated between
  IRLS passes by a method-of-moments update, which is the classic
  "alternating" fit for NB2 models.

Only numpy is required.  Both models expose ``fit``, ``predict`` and the
fitted ``weights`` (the paper's α / β columns of Table II).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np


class RegressionError(RuntimeError):
    """Raised when a model is used before fitting or cannot be fitted."""


def _as_matrix(features: Sequence[Sequence[float]]) -> np.ndarray:
    matrix = np.asarray(features, dtype=float)
    if matrix.ndim != 2:
        raise ValueError("feature matrix must be two-dimensional")
    return matrix


def _as_targets(targets: Sequence[float]) -> np.ndarray:
    vector = np.asarray(targets, dtype=float)
    if vector.ndim != 1:
        raise ValueError("targets must be one-dimensional")
    if np.any(vector < 0):
        raise ValueError("count targets must be non-negative")
    return vector


@dataclass
class GLMFitResult:
    """Summary of one fitted GLM."""

    weights: np.ndarray
    converged: bool
    iterations: int
    deviance: float
    dispersion: float = 0.0


class _LogLinkGLM:
    """Shared IRLS machinery for log-link count GLMs."""

    def __init__(
        self,
        max_iterations: int = 100,
        tolerance: float = 1e-8,
        ridge: float = 1e-6,
    ) -> None:
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.ridge = ridge
        self.weights: Optional[np.ndarray] = None
        self.fit_result: Optional[GLMFitResult] = None

    # Variance function V(mu); overridden by subclasses.
    def _variance(self, mu: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _irls(self, X: np.ndarray, y: np.ndarray, start: Optional[np.ndarray]) -> GLMFitResult:
        n_samples, n_features = X.shape
        if n_samples < n_features:
            raise RegressionError(
                f"need at least {n_features} samples to fit {n_features} weights, got {n_samples}"
            )
        # Start from a weight vector that reproduces the mean of y through the
        # intercept-free link (standard GLM initialisation).
        beta = np.zeros(n_features) if start is None else start.copy()
        y_adjusted = np.clip(y, 0.5, None)
        eta = np.log(y_adjusted)
        converged = False
        iteration = 0
        for iteration in range(1, self.max_iterations + 1):
            mu = np.exp(np.clip(X @ beta if iteration > 1 else eta, -30, 30))
            variance = np.clip(self._variance(mu), 1e-10, None)
            # Working response and weights for the log link: d(eta)/d(mu) = 1/mu.
            z = (X @ beta if iteration > 1 else eta) + (y - mu) / mu
            w = mu ** 2 / variance
            WX = X * w[:, None]
            gram = X.T @ WX + self.ridge * np.eye(n_features)
            rhs = X.T @ (w * z)
            try:
                new_beta = np.linalg.solve(gram, rhs)
            except np.linalg.LinAlgError as exc:  # pragma: no cover - defensive
                raise RegressionError("singular system in IRLS update") from exc
            if np.max(np.abs(new_beta - beta)) < self.tolerance:
                beta = new_beta
                converged = True
                break
            beta = new_beta
        mu = np.exp(np.clip(X @ beta, -30, 30))
        deviance = self._deviance(y, mu)
        return GLMFitResult(weights=beta, converged=converged, iterations=iteration, deviance=deviance)

    @staticmethod
    def _deviance(y: np.ndarray, mu: np.ndarray) -> float:
        """Poisson deviance (adequate as a goodness-of-fit summary here)."""
        with np.errstate(divide="ignore", invalid="ignore"):
            term = np.where(y > 0, y * np.log(y / mu), 0.0)
        return float(2.0 * np.sum(term - (y - mu)))

    # -- public API -----------------------------------------------------------------

    def fit(self, features: Sequence[Sequence[float]], targets: Sequence[float]) -> GLMFitResult:
        X = _as_matrix(features)
        y = _as_targets(targets)
        if X.shape[0] != y.shape[0]:
            raise ValueError("features and targets disagree on sample count")
        result = self._irls(X, y, start=None)
        self.weights = result.weights
        self.fit_result = result
        return result

    def predict_mean(self, features: Sequence[Sequence[float]]) -> np.ndarray:
        """Predict the (continuous) conditional mean exp(X @ w)."""
        if self.weights is None:
            raise RegressionError("model has not been fitted")
        X = _as_matrix(features)
        if X.shape[1] != self.weights.shape[0]:
            raise ValueError(
                f"feature dimension {X.shape[1]} does not match fitted dimension "
                f"{self.weights.shape[0]}"
            )
        return np.exp(np.clip(X @ self.weights, -30, 30))

    def predict(self, features: Sequence[Sequence[float]]) -> np.ndarray:
        """Predict rounded, non-negative integer counts."""
        return np.maximum(np.rint(self.predict_mean(features)), 0).astype(int)

    def predict_one(self, feature_vector: Sequence[float]) -> float:
        """Predict the conditional mean for a single feature vector."""
        return float(self.predict_mean([list(feature_vector)])[0])


class PoissonRegression(_LogLinkGLM):
    """Poisson GLM with log link (variance equal to the mean)."""

    def _variance(self, mu: np.ndarray) -> np.ndarray:
        return mu


class NegativeBinomialRegression(_LogLinkGLM):
    """Negative Binomial (NB2) GLM with log link.

    The NB2 variance function is ``V(mu) = mu + alpha * mu^2``; ``alpha`` is
    the over-dispersion parameter.  When ``alpha`` is not supplied it is
    estimated by alternating IRLS for the weights with a method-of-moments
    update for ``alpha`` (Cameron & Trivedi's auxiliary regression).
    """

    def __init__(
        self,
        alpha: Optional[float] = None,
        max_iterations: int = 100,
        tolerance: float = 1e-8,
        ridge: float = 1e-6,
        alpha_rounds: int = 8,
    ) -> None:
        super().__init__(max_iterations=max_iterations, tolerance=tolerance, ridge=ridge)
        self.alpha = alpha if alpha is not None else 0.1
        self._estimate_alpha = alpha is None
        self.alpha_rounds = alpha_rounds

    def _variance(self, mu: np.ndarray) -> np.ndarray:
        return mu + self.alpha * mu ** 2

    @staticmethod
    def _moment_alpha(y: np.ndarray, mu: np.ndarray) -> float:
        """Method-of-moments dispersion estimate, clipped to a sane range."""
        numerator = np.sum(((y - mu) ** 2 - mu))
        denominator = np.sum(mu ** 2)
        if denominator <= 0:
            return 1e-6
        return float(np.clip(numerator / denominator, 1e-6, 10.0))

    def fit(self, features: Sequence[Sequence[float]], targets: Sequence[float]) -> GLMFitResult:
        X = _as_matrix(features)
        y = _as_targets(targets)
        if X.shape[0] != y.shape[0]:
            raise ValueError("features and targets disagree on sample count")
        result = self._irls(X, y, start=None)
        if self._estimate_alpha:
            for _ in range(self.alpha_rounds):
                mu = np.exp(np.clip(X @ result.weights, -30, 30))
                new_alpha = self._moment_alpha(y, mu)
                if abs(new_alpha - self.alpha) < 1e-6:
                    self.alpha = new_alpha
                    break
                self.alpha = new_alpha
                result = self._irls(X, y, start=result.weights)
        result.dispersion = self.alpha
        self.weights = result.weights
        self.fit_result = result
        return result
