"""The Hardware Inference Engine (HIE) — Section VI.

At runtime the HIE repeats, once per *inference epoch*:

1. **Prediction stage** — steer the warp scheduler to the two reference
   points of the warp-tuple plane, warm up, sample the performance counters,
   build the feature vector and apply the link function with the offline
   feature weights to predict a warp-tuple.  If the kernel looks
   compute-intensive (instructions between loads above ``i_max``) the engine
   terminates early and runs with maximum warps.
2. **Local search** — a stride-halving gradient ascent around the predicted
   tuple (first along ``N``, then along ``p``), sampling each candidate for a
   short window, to absorb statistical errors in the prediction.
3. **Run** — execute at the converged tuple until the epoch ends, then reset
   and start over (capturing phase changes inside long kernels).

The engine is deliberately written as an explicit state machine so that the
hardware-cost accounting of Section VII-I (two 3-bit state registers, seven
counters, ~41 bytes per SM) has a direct software counterpart.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum
from typing import List, Optional, Tuple

from repro.core.features import CounterSample, FeatureVector
from repro.core.training import TrainedModel


@dataclass(frozen=True)
class PoiseParameters:
    """Poise's timing/threshold parameters (Table IV).

    ``paper()`` returns the values of Table IV verbatim.  ``scaled()``
    shrinks the timing parameters proportionally — the reproduction's
    synthetic kernels are one to two orders of magnitude shorter than the
    4-billion-instruction runs of the paper, so the epoch structure is scaled
    to keep the same ratio of sampling overhead to useful execution.
    """

    scoring_weights: Tuple[float, float, float] = (1.0, 0.50, 0.25)
    t_period: int = 200_000
    t_warmup: int = 2_000
    t_feature: int = 10_000
    t_search: int = 4_000
    i_max: float = 49.0
    stride_n: int = 2
    stride_p: int = 4
    threshold_speedup: float = 1.015
    threshold_cycles: int = 10_000
    threshold_hit_rate: float = 0.0

    @classmethod
    def paper(cls) -> "PoiseParameters":
        """The exact parameter values of Table IV."""
        return cls()

    @classmethod
    def scaled(cls, factor: float = 0.25) -> "PoiseParameters":
        """Timing parameters scaled for the reproduction's shorter kernels."""
        base = cls()
        return replace(
            base,
            t_period=max(20_000, int(base.t_period * factor)),
            t_warmup=max(500, int(base.t_warmup * factor)),
            t_feature=max(2_000, int(base.t_feature * factor)),
            t_search=max(1_000, int(base.t_search * factor)),
            threshold_cycles=max(2_000, int(base.threshold_cycles * factor)),
        )

    def with_strides(self, stride_n: int, stride_p: int) -> "PoiseParameters":
        """Copy with different local-search strides (Fig. 11 sensitivity)."""
        return replace(self, stride_n=stride_n, stride_p=stride_p)


class HIEState(Enum):
    """States of the inference FSM (7 states => two 3-bit registers)."""

    SAMPLE_REFERENCE = "sample_reference"
    SAMPLE_BASELINE = "sample_baseline"
    PREDICT = "predict"
    SEARCH_N = "search_n"
    SEARCH_P = "search_p"
    RUN = "run"
    BYPASSED = "bypassed"


@dataclass
class EpochRecord:
    """Telemetry of one inference epoch (feeds Figs. 10 and 17)."""

    predicted: Tuple[int, int]
    searched: Tuple[int, int]
    compute_intensive: bool
    search_samples: int
    visited: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def displacement_n(self) -> int:
        return abs(self.searched[0] - self.predicted[0])

    @property
    def displacement_p(self) -> int:
        return abs(self.searched[1] - self.predicted[1])

    @property
    def euclidean_displacement(self) -> float:
        return (self.displacement_n ** 2 + self.displacement_p ** 2) ** 0.5


class HardwareInferenceEngine:
    """Runtime prediction and local search over an SM.

    The engine drives an SM through one full inference epoch at a time via
    :meth:`run_epoch`; the :class:`repro.core.poise.PoiseController` loops
    epochs until the kernel finishes.
    """

    def __init__(
        self,
        model: TrainedModel,
        params: Optional[PoiseParameters] = None,
    ) -> None:
        self.model = model
        self.params = params or PoiseParameters.paper()
        self.state = HIEState.SAMPLE_REFERENCE
        self.epochs: List[EpochRecord] = []
        self._last_window_ipc = 0.0
        self._baseline_window_ipc = 0.0

    # -- sampling helpers -----------------------------------------------------------

    def _sample_window(self, sm, n: int, p: int, warmup: int, window: int) -> CounterSample:
        sm.set_warp_tuple(n, p)
        if warmup:
            sm.run_cycles(warmup)
        before = sm.snapshot()
        sm.run_cycles(window)
        delta = sm.counters - before
        self._last_window_ipc = delta.ipc
        return CounterSample.from_counters(delta)

    def _measure_ipc(self, sm, n: int, p: int) -> float:
        """Short sampling window used by the local search (T_search)."""
        sm.set_warp_tuple(n, p)
        sm.run_cycles(self.params.t_warmup)
        before = sm.snapshot()
        sm.run_cycles(self.params.t_search)
        window = sm.counters - before
        return window.ipc

    # -- prediction stage -----------------------------------------------------------

    def predict(self, sm, max_warps: int) -> Tuple[Tuple[int, int], bool, FeatureVector]:
        """Run the prediction stage of one epoch.

        Returns the predicted warp-tuple, a flag marking the kernel as
        compute-intensive, and the sampled feature vector.  The throughput
        observed while sampling the baseline point is remembered so the local
        search can fall back to maximum warps when its converged tuple does
        not actually beat the baseline (a free comparison — the counters were
        already collected for the feature vector).
        """
        params = self.params
        self.state = HIEState.SAMPLE_REFERENCE
        reference = self._sample_window(sm, 1, 1, params.t_warmup, params.t_feature)

        self.state = HIEState.SAMPLE_BASELINE
        baseline = self._sample_window(sm, max_warps, max_warps, params.t_warmup, params.t_feature)
        self._baseline_window_ipc = self._last_window_ipc

        if baseline.instructions_per_load > params.i_max:
            # Compute-intensive kernel: run at maximum warps, skip the search.
            self.state = HIEState.BYPASSED
            vector = FeatureVector.from_samples(baseline, reference)
            return (max_warps, max_warps), True, vector

        self.state = HIEState.PREDICT
        vector = FeatureVector.from_samples(baseline, reference)
        predicted = self.model.predict(vector, max_warps=max_warps)
        return predicted, False, vector

    # -- local search ---------------------------------------------------------------

    def _search_axis(
        self,
        sm,
        current: Tuple[int, int],
        axis: int,
        stride: int,
        max_warps: int,
        best_ipc: float,
        visited: List[Tuple[int, int]],
    ) -> Tuple[Tuple[int, int], float, int]:
        """Stride-halving gradient ascent along one axis of the tuple."""
        samples = 0
        while stride > 0:
            candidates = []
            for direction in (-1, 1):
                candidate = list(current)
                candidate[axis] += direction * stride
                n, p = candidate
                n = max(1, min(n, max_warps))
                p = max(1, min(p, n))
                candidate = (n, p)
                if candidate != current and candidate not in candidates:
                    candidates.append(candidate)
            improved = False
            for candidate in candidates:
                ipc = self._measure_ipc(sm, *candidate)
                samples += 1
                visited.append(candidate)
                if ipc > best_ipc:
                    best_ipc = ipc
                    current = candidate
                    improved = True
            if not improved:
                stride //= 2
        return current, best_ipc, samples

    def local_search(
        self, sm, predicted: Tuple[int, int], max_warps: int
    ) -> Tuple[Tuple[int, int], int, List[Tuple[int, int]]]:
        """Refine the prediction with the two-phase local search."""
        params = self.params
        visited: List[Tuple[int, int]] = [predicted]
        if params.stride_n == 0 and params.stride_p == 0:
            return predicted, 0, visited
        best_ipc = self._measure_ipc(sm, *predicted)
        samples = 1
        current = predicted

        self.state = HIEState.SEARCH_N
        if params.stride_n > 0:
            current, best_ipc, used = self._search_axis(
                sm, current, 0, params.stride_n, max_warps, best_ipc, visited
            )
            samples += used

        self.state = HIEState.SEARCH_P
        if params.stride_p > 0:
            current, best_ipc, used = self._search_axis(
                sm, current, 1, params.stride_p, max_warps, best_ipc, visited
            )
            samples += used

        # Safety fallback: the baseline point was already measured during
        # feature sampling; if the converged tuple does not beat it, keep the
        # baseline (maximum warps) for the rest of the epoch.
        baseline_point = (max_warps, max_warps)
        if self._baseline_window_ipc > best_ipc and current != baseline_point:
            visited.append(baseline_point)
            current = baseline_point
        return current, samples, visited

    # -- epoch ----------------------------------------------------------------------

    def run_epoch(
        self, sm, max_warps: Optional[int] = None, cycle_budget: Optional[int] = None
    ) -> EpochRecord:
        """Run one full inference epoch (prediction + search + run).

        ``cycle_budget`` optionally caps the total cycles the epoch may
        consume (used when the kernel's remaining budget is shorter than a
        full inference period).
        """
        params = self.params
        if max_warps is None:
            max_warps = sm.config.max_warps
        epoch_start = sm.cycle
        epoch_end = epoch_start + (
            params.t_period if cycle_budget is None else min(params.t_period, cycle_budget)
        )

        predicted, compute_intensive, _ = self.predict(sm, max_warps)
        if compute_intensive:
            final, samples, visited = predicted, 0, [predicted]
        else:
            sm.set_warp_tuple(*predicted)
            final, samples, visited = self.local_search(sm, predicted, max_warps)

        self.state = HIEState.RUN
        sm.set_warp_tuple(*final)
        remaining = epoch_end - sm.cycle
        if remaining > 0:
            sm.run_cycles(remaining)

        record = EpochRecord(
            predicted=predicted,
            searched=final,
            compute_intensive=compute_intensive,
            search_samples=samples,
            visited=visited,
        )
        self.epochs.append(record)
        return record

    # -- aggregate telemetry ---------------------------------------------------------

    def mean_displacement(self) -> Tuple[float, float, float]:
        """Average |ΔN|, |Δp| and Euclidean displacement across epochs
        (the quantities of Fig. 10)."""
        records = [record for record in self.epochs if not record.compute_intensive]
        if not records:
            return 0.0, 0.0, 0.0
        count = len(records)
        mean_n = sum(record.displacement_n for record in records) / count
        mean_p = sum(record.displacement_p for record in records) / count
        mean_e = sum(record.euclidean_displacement for record in records) / count
        return mean_n, mean_p, mean_e
