"""Neighbourhood scoring of profiled kernels (Section V-C, Eq. 12).

Training directly for the highest-performing warp-tuple is risky when that
peak sits next to a performance cliff: a small prediction error falls off the
cliff.  The paper therefore scores every point of the profiled grid as a
weighted sum of its own speedup and its neighbours' speedups (normalised by
the number of neighbours actually present), and trains towards the point
with the best score.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence, Tuple

#: Default scoring weights (Table IV): self, edge-adjacent, diagonal.
DEFAULT_WEIGHTS: Tuple[float, float, float] = (1.0, 0.50, 0.25)

GridPoint = Tuple[int, int]


@dataclass(frozen=True)
class ScoredPoint:
    point: GridPoint
    score: float
    speedup: float


def score_point(
    grid: Mapping[GridPoint, float],
    point: GridPoint,
    weights: Sequence[float] = DEFAULT_WEIGHTS,
) -> float:
    """Score one point of the speedup grid (Eq. 12).

    The score is the weighted sum of the speedup at the point and at its
    (up to) eight neighbours, normalised by the weights of the neighbours
    that exist — boundary points and sparsely profiled grids are therefore
    not penalised for having fewer neighbours.
    """
    if point not in grid:
        raise KeyError(f"point {point} is not in the profiled grid")
    a, b = point
    total = 0.0
    weight_sum = 0.0
    for di in (-1, 0, 1):
        for dj in (-1, 0, 1):
            neighbour = (a + di, b + dj)
            if neighbour not in grid:
                continue
            weight = weights[abs(di) + abs(dj)]
            total += weight * grid[neighbour]
            weight_sum += weight
    if weight_sum == 0:
        return 0.0
    return total / weight_sum


def score_grid(
    grid: Mapping[GridPoint, float],
    weights: Sequence[float] = DEFAULT_WEIGHTS,
) -> Dict[GridPoint, float]:
    """Score every point of a profiled speedup grid."""
    return {point: score_point(grid, point, weights) for point in grid}


def select_training_target(
    grid: Mapping[GridPoint, float],
    weights: Sequence[float] = DEFAULT_WEIGHTS,
) -> ScoredPoint:
    """Choose the warp-tuple used as the training target for a kernel.

    The point with the highest score wins; ties break towards the higher
    raw speedup and then towards fewer vital warps (less TLP pressure).
    """
    if not grid:
        raise ValueError("cannot select a target from an empty grid")
    scores = score_grid(grid, weights)
    best = max(
        scores,
        key=lambda point: (scores[point], grid[point], -point[0], -point[1]),
    )
    return ScoredPoint(point=best, score=scores[best], speedup=grid[best])


def best_raw_point(grid: Mapping[GridPoint, float]) -> ScoredPoint:
    """The unscored performance peak (used by Fig. 5 to contrast with the
    scored target)."""
    if not grid:
        raise ValueError("cannot select a peak from an empty grid")
    best = max(grid, key=lambda point: (grid[point], -point[0], -point[1]))
    return ScoredPoint(point=best, score=grid[best], speedup=grid[best])
