"""The offline training pipeline (Section V-C / V-D).

Training is a one-time, offline activity performed by the GPU vendor.  For
every kernel in the training set the pipeline:

1. profiles the kernel over the ``{N, p}`` plane (via the profiling
   substrate) to obtain its speedup grid,
2. samples the feature vector with the same warm-up/sample procedure the
   hardware inference engine uses at runtime,
3. filters out kernels that are statistically insignificant (the threshold
   criteria of Table IV: minimum speedup at the best tuple, minimum
   execution length, non-zero hit rate at the reference point),
4. scores the grid (Eq. 12) and picks the best-scoring warp-tuple as the
   target,
5. scales the target to the scheduler's maximum warp budget so kernels with
   different occupancy limits produce commensurable targets, and
6. fits one Negative Binomial regression for ``N`` and one for ``p``.

The fitted weights — the α and β columns of Table II — are serialised by
:mod:`repro.core.model_store` and handed to the hardware through the
compiler/constant-memory path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.features import NUM_FEATURES, FeatureSampler, FeatureVector
from repro.core.regression import NegativeBinomialRegression
from repro.core.scoring import DEFAULT_WEIGHTS, select_training_target
from repro.gpu.config import GPUConfig, baseline_config
from repro.gpu.gpu import GPU
from repro.profiling.profiler import KernelProfiler, StaticProfile
from repro.runtime.executor import SweepExecutor
from repro.workloads.generator import generate_kernel_programs
from repro.workloads.spec import BenchmarkSpec, KernelSpec


@dataclass(frozen=True)
class TrainingThresholds:
    """Kernel admission criteria for training (Table IV, bottom rows)."""

    min_speedup: float = 1.015
    min_cycles: int = 10_000
    min_reference_hit_rate: float = 0.0

    def admits(self, example: "TrainingExample") -> bool:
        if example.best_speedup < self.min_speedup:
            return False
        if example.baseline_cycles < self.min_cycles:
            return False
        if example.features.h_prime <= self.min_reference_hit_rate:
            return False
        return True


@dataclass
class TrainingExample:
    """One profiled kernel: the sample input-output pair used for training."""

    kernel_name: str
    benchmark_name: str
    features: FeatureVector
    target: Tuple[int, int]  # scored best warp-tuple, before scaling
    max_warps: int
    best_speedup: float
    target_speedup: float
    baseline_cycles: int

    def scaled_target(self, scheduler_max_warps: int) -> Tuple[float, float]:
        """Scale the target to the scheduler warp budget (Section V-C)."""
        scale = scheduler_max_warps / self.max_warps
        return self.target[0] * scale, self.target[1] * scale


@dataclass
class TrainedModel:
    """The learned mapping shipped to the GPU via the compiler."""

    alpha_weights: List[float]  # weights for ln(N)
    beta_weights: List[float]  # weights for ln(p)
    max_warps: int
    feature_mask: Optional[List[int]] = None  # indices removed from X (Fig. 13)
    dispersion_n: float = 0.0
    dispersion_p: float = 0.0
    num_training_kernels: int = 0
    metadata: Dict[str, float] = field(default_factory=dict)

    def active_features(self, vector: FeatureVector) -> List[float]:
        values = vector.as_list()
        if not self.feature_mask:
            return values
        removed = set(self.feature_mask)
        return [value for index, value in enumerate(values) if index not in removed]

    def predict(self, vector: FeatureVector, max_warps: Optional[int] = None) -> Tuple[int, int]:
        """Apply the link function (Eq. 13) and reverse the training scaling."""
        limit = max_warps if max_warps is not None else self.max_warps
        x = self.active_features(vector)
        ln_n = float(np.dot(self.alpha_weights, x))
        ln_p = float(np.dot(self.beta_weights, x))
        n_scaled = float(np.exp(np.clip(ln_n, -10, 10)))
        p_scaled = float(np.exp(np.clip(ln_p, -10, 10)))
        # Reverse the scaling that normalised targets to the scheduler budget.
        scale = limit / self.max_warps
        n = int(round(n_scaled * scale))
        p = int(round(p_scaled * scale))
        n = max(1, min(n, limit))
        p = max(1, min(p, n))
        return n, p


class TrainingPipeline:
    """Profiles training kernels and fits the regression models."""

    def __init__(
        self,
        config: Optional[GPUConfig] = None,
        profiler: Optional[KernelProfiler] = None,
        sampler: Optional[FeatureSampler] = None,
        thresholds: Optional[TrainingThresholds] = None,
        scoring_weights: Sequence[float] = DEFAULT_WEIGHTS,
        feature_mask: Optional[Sequence[int]] = None,
        executor: Optional[SweepExecutor] = None,
        engine: Optional[str] = None,
    ) -> None:
        self.config = config or baseline_config()
        self.profiler = profiler or KernelProfiler(self.config, engine=engine)
        self.sampler = sampler or FeatureSampler()
        self.thresholds = thresholds or TrainingThresholds()
        self.scoring_weights = tuple(scoring_weights)
        self.feature_mask = list(feature_mask) if feature_mask else None
        self.executor = executor
        # Simulator-core selection for feature sampling (``None`` defers to
        # REPRO_ENGINE); training data is engine-agnostic by bit-identity.
        self.engine = engine

    # -- per-kernel work ------------------------------------------------------------

    def sample_features(self, spec: KernelSpec, programs=None) -> FeatureVector:
        """Sample the feature vector exactly as the HIE would at runtime."""
        if programs is None:
            programs = generate_kernel_programs(spec)
        sm = GPU(self.config, engine=self.engine).build_sm(programs)
        max_warps = min(self.config.max_warps, spec.num_warps)
        return self.sampler.collect(sm, max_warps=max_warps)

    def build_example(
        self, benchmark: BenchmarkSpec, spec: KernelSpec, profile: Optional[StaticProfile] = None
    ) -> TrainingExample:
        """Profile one kernel and construct its training example."""
        if profile is None:
            profile = self.profiler.profile(spec)
        grid = profile.speedup_grid()
        target = select_training_target(grid, self.scoring_weights)
        features = self.sample_features(spec)
        baseline_counters = profile.baseline_counters
        baseline_cycles = getattr(baseline_counters, "cycles", 0) if baseline_counters else 0
        return TrainingExample(
            kernel_name=spec.name,
            benchmark_name=benchmark.name,
            features=features,
            target=target.point,
            max_warps=profile.max_warps,
            best_speedup=profile.best_speedup(),
            target_speedup=target.speedup,
            baseline_cycles=baseline_cycles,
        )

    def collect_examples(self, benchmarks: Sequence[BenchmarkSpec]) -> List[TrainingExample]:
        """Build one training example per kernel of every benchmark.

        Each example needs a full warp-tuple-grid profile plus a feature
        sample — independent simulations, so the kernels fan out over the
        sweep executor when ``REPRO_JOBS`` allows.  Results come back in
        submission order, keeping the example list (and therefore the fitted
        model) identical to a serial pass.
        """
        tasks = [
            (benchmark, spec) for benchmark in benchmarks for spec in benchmark.kernels
        ]
        executor = self.executor or SweepExecutor()
        if executor.parallel and len(tasks) > 1:
            return executor.map(
                _build_example_job, [(self, benchmark, spec) for benchmark, spec in tasks]
            )
        return [self.build_example(benchmark, spec) for benchmark, spec in tasks]

    # -- fitting ---------------------------------------------------------------------

    def fit(self, examples: Sequence[TrainingExample]) -> TrainedModel:
        """Filter, scale and fit the two regressions."""
        admitted = [example for example in examples if self.thresholds.admits(example)]
        if len(admitted) < NUM_FEATURES:
            raise ValueError(
                f"training requires at least {NUM_FEATURES} admitted kernels, "
                f"got {len(admitted)} (of {len(examples)} profiled)"
            )
        scheduler_max = self.config.max_warps
        removed = set(self.feature_mask or [])
        matrix: List[List[float]] = []
        targets_n: List[float] = []
        targets_p: List[float] = []
        for example in admitted:
            values = example.features.as_list()
            if removed:
                values = [v for index, v in enumerate(values) if index not in removed]
            matrix.append(values)
            scaled_n, scaled_p = example.scaled_target(scheduler_max)
            targets_n.append(scaled_n)
            targets_p.append(scaled_p)

        model_n = NegativeBinomialRegression()
        model_p = NegativeBinomialRegression()
        fit_n = model_n.fit(matrix, targets_n)
        fit_p = model_p.fit(matrix, targets_p)
        return TrainedModel(
            alpha_weights=[float(w) for w in fit_n.weights],
            beta_weights=[float(w) for w in fit_p.weights],
            max_warps=scheduler_max,
            feature_mask=sorted(removed) if removed else None,
            dispersion_n=fit_n.dispersion,
            dispersion_p=fit_p.dispersion,
            num_training_kernels=len(admitted),
            metadata={
                "deviance_n": fit_n.deviance,
                "deviance_p": fit_p.deviance,
                "profiled_kernels": float(len(examples)),
            },
        )

    def train(self, benchmarks: Sequence[BenchmarkSpec]) -> Tuple[TrainedModel, List[TrainingExample]]:
        """End-to-end training: profile, sample, filter and fit."""
        examples = self.collect_examples(benchmarks)
        model = self.fit(examples)
        return model, examples


def _build_example_job(
    pipeline: "TrainingPipeline", benchmark: BenchmarkSpec, spec: KernelSpec
) -> TrainingExample:
    """Module-level sweep worker for one training example (must pickle)."""
    return pipeline.build_example(benchmark, spec)


def prediction_errors(
    model: TrainedModel, examples: Sequence[TrainingExample]
) -> Tuple[float, float]:
    """Mean relative prediction error for N and p over profiled kernels.

    This is the offline accuracy metric of Section VII-B (the paper reports
    16% for N and 26% for p on unseen kernels).
    """
    if not examples:
        return 0.0, 0.0
    errors_n: List[float] = []
    errors_p: List[float] = []
    for example in examples:
        predicted = model.predict(example.features, max_warps=example.max_warps)
        target_n, target_p = example.target
        errors_n.append(abs(predicted[0] - target_n) / max(1, target_n))
        errors_p.append(abs(predicted[1] - target_p) / max(1, target_p))
    return float(np.mean(errors_n)), float(np.mean(errors_p))
