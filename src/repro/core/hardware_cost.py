"""Hardware cost accounting (Section VII-I).

Poise's storage overhead per SM consists of:

* seven 32-bit performance counters to collect the feature inputs,
* two 3-bit state registers for the seven-state inference FSM,
* one vital bit and one pollute bit per warp-queue entry (48 warps per SM).

The paper totals this to ~40.75 bytes per SM (~1,304 bytes chip-wide, well
under 0.01% of the die).  This module recomputes the figure from the same
inventory so the claim can be regenerated (and checked in tests).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class HardwareCostModel:
    """Per-SM storage inventory of Poise."""

    performance_counters: int = 7
    counter_bits: int = 32
    fsm_state_registers: int = 2
    fsm_state_bits: int = 3
    warps_per_sm: int = 48
    bits_per_warp: int = 2  # vital + pollute
    num_sms: int = 32

    @property
    def counter_bits_total(self) -> int:
        return self.performance_counters * self.counter_bits

    @property
    def fsm_bits_total(self) -> int:
        return self.fsm_state_registers * self.fsm_state_bits

    @property
    def warp_bits_total(self) -> int:
        return self.warps_per_sm * self.bits_per_warp

    @property
    def bits_per_sm(self) -> int:
        return self.counter_bits_total + self.fsm_bits_total + self.warp_bits_total

    @property
    def bytes_per_sm(self) -> float:
        return self.bits_per_sm / 8.0

    @property
    def bytes_total(self) -> float:
        return self.bytes_per_sm * self.num_sms

    def breakdown(self) -> dict:
        return {
            "performance_counter_bits": self.counter_bits_total,
            "fsm_bits": self.fsm_bits_total,
            "warp_queue_bits": self.warp_bits_total,
            "bytes_per_sm": self.bytes_per_sm,
            "bytes_total": self.bytes_total,
        }
