"""The feature vector of Table II and its construction from counters.

The eight features are functions of quantities sampled at two fixed
reference points of the warp-tuple plane:

* the baseline point ``(24, 24)`` — maximum warps, everything polluting —
  which provides ``h_o`` (net L1 hit rate), ``eta_o`` (intra-warp hit rate),
  ``m_o`` and ``L_o`` (miss rate and average memory latency), and ``I_n``
  (instructions between global loads);
* the reference point ``(1, 1)`` — a single vital, polluting warp — which
  provides ``h'``, ``eta'``, ``m'`` and ``L'``: the behaviour of a warp that
  has the whole L1 to itself, i.e. the locality that is recoverable once
  thrashing is removed.

Both the offline trainer and the hardware inference engine build the vector
through the same :class:`FeatureSampler` so the regression sees identically
constructed inputs in both settings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.gpu.counters import PerfCounters

#: Human-readable names of the eight features, in Table II order.
FEATURE_NAMES: List[str] = [
    "x1: h_o",
    "x2: h_prime",
    "x3: eta_o",
    "x4: eta_prime",
    "x5: (eta_prime - eta_o)^2",
    "x6: I_n * (eta_prime - eta_o)^2",
    "x7: (L'm' - L_o m_o)^2 / 1e4",
    "x8: intercept",
]

NUM_FEATURES = len(FEATURE_NAMES)


@dataclass(frozen=True)
class CounterSample:
    """The scalar quantities extracted from one sampling window."""

    hit_rate: float
    intra_warp_hit_rate: float
    miss_rate: float
    avg_memory_latency: float
    instructions_per_load: float

    @classmethod
    def from_counters(cls, counters: PerfCounters) -> "CounterSample":
        return cls(
            hit_rate=counters.l1_hit_rate,
            intra_warp_hit_rate=counters.intra_warp_hit_rate,
            miss_rate=counters.l1_miss_rate,
            avg_memory_latency=counters.aml,
            instructions_per_load=counters.instructions_per_load,
        )


@dataclass(frozen=True)
class FeatureVector:
    """The eight-element feature vector X of Table II."""

    h_o: float
    h_prime: float
    eta_o: float
    eta_prime: float
    instructions_per_load: float
    latency_pressure: float  # L'm' - L_o m_o, before squaring/scaling

    def as_list(self) -> List[float]:
        """Materialise the vector in Table II order (including intercept)."""
        delta_eta = self.eta_prime - self.eta_o
        return [
            self.h_o,
            self.h_prime,
            self.eta_o,
            self.eta_prime,
            delta_eta ** 2,
            self.instructions_per_load * delta_eta ** 2,
            (self.latency_pressure ** 2) / 1e4,
            1.0,
        ]

    @property
    def delta_eta(self) -> float:
        """The remaining opportunity to capture intra-warp locality
        (``eta' - eta_o``, Table I-b)."""
        return self.eta_prime - self.eta_o

    @classmethod
    def from_samples(
        cls, baseline: CounterSample, reference: CounterSample
    ) -> "FeatureVector":
        """Build the feature vector from the two sampling points.

        ``baseline`` is the sample at maximum warps; ``reference`` is the
        sample at ``(1, 1)``.
        """
        pressure = (
            reference.avg_memory_latency * reference.miss_rate
            - baseline.avg_memory_latency * baseline.miss_rate
        )
        return cls(
            h_o=baseline.hit_rate,
            h_prime=reference.hit_rate,
            eta_o=baseline.intra_warp_hit_rate,
            eta_prime=reference.intra_warp_hit_rate,
            instructions_per_load=baseline.instructions_per_load,
            latency_pressure=pressure,
        )

    def masked(self, removed_indices: Sequence[int]) -> List[float]:
        """Return the vector with the given feature indices removed.

        Used by the Fig. 13 ablation, which retrains with one feature
        dropped from X.
        """
        values = self.as_list()
        return [value for index, value in enumerate(values) if index not in set(removed_indices)]


class FeatureSampler:
    """Collects the feature vector from an SM by steering the warp-tuple.

    This mirrors the prediction stage of the hardware inference engine
    (Section VI-A): at each reference point the SM runs for a warm-up period
    (to absorb the crossover effects of changing ``N`` and ``p``) and the
    counters are then sampled over a feature-collection window.
    """

    def __init__(self, warmup_cycles: int = 2_000, sample_cycles: int = 10_000) -> None:
        self.warmup_cycles = warmup_cycles
        self.sample_cycles = sample_cycles

    def sample_at(self, sm, n: int, p: int) -> CounterSample:
        """Steer the SM to ``(n, p)``, warm up, and sample one window."""
        sm.set_warp_tuple(n, p)
        if self.warmup_cycles:
            sm.run_cycles(self.warmup_cycles)
        before = sm.snapshot()
        sm.run_cycles(self.sample_cycles)
        window = sm.counters - before
        return CounterSample.from_counters(window)

    def collect(self, sm, max_warps: Optional[int] = None) -> FeatureVector:
        """Collect the full feature vector from a running SM.

        Sampling order follows the paper: the reference point ``(1, 1)``
        first, then the baseline point (maximum warps), so the engine ends
        the collection phase at full TLP.
        """
        if max_warps is None:
            max_warps = sm.config.max_warps
        reference = self.sample_at(sm, 1, 1)
        baseline = self.sample_at(sm, max_warps, max_warps)
        return FeatureVector.from_samples(baseline, reference)
