"""Poise: the paper's primary contribution.

Two halves, mirroring Fig. 3 of the paper:

* the **machine learning framework** — an analytical model that motivates the
  feature vector (:mod:`repro.core.analytical`, :mod:`repro.core.features`),
  neighbourhood scoring of profiled kernels (:mod:`repro.core.scoring`), and
  a Negative Binomial regression trained offline on profiled kernels
  (:mod:`repro.core.regression`, :mod:`repro.core.training`);
* the **hardware inference engine** — a runtime FSM that samples the feature
  vector with performance counters, applies the link function to predict a
  warp-tuple, and refines it with a stride-halving local search
  (:mod:`repro.core.inference`), driving the modified GTO warp scheduler
  (:mod:`repro.core.poise`).
"""

from repro.core.analytical import AnalyticalModel, WarpTupleScenario
from repro.core.features import FeatureVector, FeatureSampler, FEATURE_NAMES
from repro.core.inference import HardwareInferenceEngine, PoiseParameters
from repro.core.model_store import load_model, save_model
from repro.core.poise import PoiseController
from repro.core.regression import NegativeBinomialRegression, PoissonRegression
from repro.core.scoring import score_grid, select_training_target
from repro.core.training import TrainedModel, TrainingExample, TrainingPipeline

__all__ = [
    "AnalyticalModel",
    "FEATURE_NAMES",
    "FeatureSampler",
    "FeatureVector",
    "HardwareInferenceEngine",
    "NegativeBinomialRegression",
    "PoiseController",
    "PoiseParameters",
    "PoissonRegression",
    "TrainedModel",
    "TrainingExample",
    "TrainingPipeline",
    "WarpTupleScenario",
    "load_model",
    "save_model",
    "score_grid",
    "select_training_target",
]
