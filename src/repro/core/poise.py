"""Poise's runtime controller: the glue between the HIE and the scheduler.

The controller owns a :class:`HardwareInferenceEngine` and repeats inference
epochs until the kernel completes (or the cycle budget runs out), exactly as
the paper's per-SM hardware does.  Predictions are reset at the start of
every epoch, so long kernels with phase behaviour get re-optimised.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.inference import HardwareInferenceEngine, PoiseParameters
from repro.core.training import TrainedModel


class PoiseController:
    """Drives an SM with Poise's predict-search-run loop.

    Instances satisfy the *controller* protocol of
    :meth:`repro.gpu.gpu.GPU.run_kernel` (an ``execute(sm, max_cycles)``
    method returning a telemetry dictionary).
    """

    def __init__(
        self,
        model: TrainedModel,
        params: Optional[PoiseParameters] = None,
    ) -> None:
        self.model = model
        self.params = params or PoiseParameters.paper()

    def execute(self, sm, max_cycles: int) -> Dict:
        engine = HardwareInferenceEngine(self.model, self.params)
        max_warps = min(sm.config.max_warps, len(sm.warps))
        end_cycle = sm.cycle + max_cycles
        # A new inference epoch (prediction + search) is only worth starting
        # when enough of the epoch remains for the converged tuple to run;
        # otherwise the engine keeps the previously converged tuple, exactly
        # as the hardware would between epoch boundaries.
        min_epoch_budget = max(self.params.t_period // 2, 4 * self.params.t_feature)
        while not sm.done and (end_cycle - sm.cycle) >= min_epoch_budget:
            engine.run_epoch(sm, max_warps=max_warps, cycle_budget=end_cycle - sm.cycle)
        if not sm.done and sm.cycle < end_cycle:
            if engine.epochs:
                sm.set_warp_tuple(*engine.epochs[-1].searched)
            sm.run_cycles(end_cycle - sm.cycle)
        mean_n, mean_p, mean_euclid = engine.mean_displacement()
        return {
            "epochs": len(engine.epochs),
            "predicted_tuples": [record.predicted for record in engine.epochs],
            "searched_tuples": [record.searched for record in engine.epochs],
            "visited_tuples": [tuple(record.visited) for record in engine.epochs],
            "compute_intensive_epochs": sum(
                1 for record in engine.epochs if record.compute_intensive
            ),
            "mean_displacement_n": mean_n,
            "mean_displacement_p": mean_p,
            "mean_displacement_euclidean": mean_euclid,
        }
