"""Runtime infrastructure: fault-tolerant fan-out and persistent caching.

This package keeps the *how it runs* concerns — process fan-out with
per-job timeouts/retries/salvage, the content-addressed on-disk result
cache, and the deterministic fault-injection harness that proves the
recovery machinery — out of the simulator and the experiment logic.
:mod:`repro.runtime.serialization` is imported on demand by callers (not
here) because it depends on the profiling layer.
"""

from repro.runtime.cache import (
    CacheStats,
    DiskCache,
    cache_stats,
    content_key,
    reset_cache_stats,
    sweep_stale_tmps,
)
from repro.runtime.executor import (
    JOBS_ENV,
    RETRIES_ENV,
    TIMEOUT_ENV,
    JobReport,
    SweepExecutor,
    resolve_jobs,
    resolve_retries,
    resolve_timeout,
)
from repro.runtime.faults import (
    FAULTS_ENV,
    FaultInjectedError,
    FaultSpec,
    FaultSpecError,
)

__all__ = [
    "CacheStats",
    "DiskCache",
    "cache_stats",
    "content_key",
    "reset_cache_stats",
    "sweep_stale_tmps",
    "JOBS_ENV",
    "TIMEOUT_ENV",
    "RETRIES_ENV",
    "FAULTS_ENV",
    "JobReport",
    "SweepExecutor",
    "resolve_jobs",
    "resolve_retries",
    "resolve_timeout",
    "FaultInjectedError",
    "FaultSpec",
    "FaultSpecError",
]
