"""Runtime infrastructure: parallel sweep execution and persistent caching.

This package keeps the *how it runs* concerns — process fan-out and the
content-addressed on-disk result cache — out of the simulator and the
experiment logic.  :mod:`repro.runtime.serialization` is imported on demand
by callers (not here) because it depends on the profiling layer.
"""

from repro.runtime.cache import DiskCache, content_key
from repro.runtime.executor import JOBS_ENV, SweepExecutor, resolve_jobs

__all__ = [
    "DiskCache",
    "content_key",
    "JOBS_ENV",
    "SweepExecutor",
    "resolve_jobs",
]
