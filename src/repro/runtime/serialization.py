"""JSON (de)serialisation of simulation results and content-key payloads.

Models already survive across processes through
:mod:`repro.core.model_store`; this module does the same for the other two
expensive artefacts — per-kernel :class:`~repro.gpu.gpu.RunResult`\\ s and
warp-tuple-grid :class:`~repro.profiling.profiler.StaticProfile`\\ s — so the
:class:`~repro.runtime.cache.DiskCache` can hand them between the sweep
workers and across runs.

Tuples matter here (warp-tuples, telemetry trails), so the encoding wraps
them in a ``{"__tuple__": [...]}`` marker and the decoder restores them —
a result that round-trips through the disk cache compares equal to the
freshly computed one.
"""

from __future__ import annotations

import dataclasses
import hashlib
from functools import lru_cache
from pathlib import Path
from typing import Any, Dict, Optional

import repro
from repro.gpu.counters import PerfCounters
from repro.gpu.energy import EnergyReport
from repro.gpu.gpu import RunResult
from repro.profiling.profiler import StaticProfile
from repro.version import __version__
from repro.workloads.spec import KernelSpec

_TUPLE_MARK = "__tuple__"


def encode_value(obj: Any) -> Any:
    """Recursively convert a value to JSON-representable form, keeping tuples."""
    if isinstance(obj, tuple):
        return {_TUPLE_MARK: [encode_value(item) for item in obj]}
    if isinstance(obj, list):
        return [encode_value(item) for item in obj]
    if isinstance(obj, dict):
        return {str(key): encode_value(value) for key, value in obj.items()}
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    return str(obj)


def decode_value(obj: Any) -> Any:
    """Reverse :func:`encode_value`."""
    if isinstance(obj, dict):
        if set(obj.keys()) == {_TUPLE_MARK}:
            return tuple(decode_value(item) for item in obj[_TUPLE_MARK])
        return {key: decode_value(value) for key, value in obj.items()}
    if isinstance(obj, list):
        return [decode_value(item) for item in obj]
    return obj


# -- counters / energy / run results --------------------------------------------


def counters_to_dict(counters: PerfCounters) -> Dict[str, int]:
    return {f.name: getattr(counters, f.name) for f in dataclasses.fields(counters)}


def counters_from_dict(data: Dict[str, int]) -> PerfCounters:
    names = {f.name for f in dataclasses.fields(PerfCounters)}
    return PerfCounters(**{key: int(value) for key, value in data.items() if key in names})


def run_result_to_dict(result: RunResult) -> Dict[str, Any]:
    return {
        "counters": counters_to_dict(result.counters),
        "cycles": result.cycles,
        "energy": dataclasses.asdict(result.energy),
        "warp_tuple": list(result.warp_tuple),
        "completed": result.completed,
        "telemetry": encode_value(result.telemetry),
    }


def run_result_from_dict(data: Dict[str, Any]) -> RunResult:
    return RunResult(
        counters=counters_from_dict(data["counters"]),
        cycles=int(data["cycles"]),
        energy=EnergyReport(**{k: float(v) for k, v in data["energy"].items()}),
        warp_tuple=tuple(int(v) for v in data["warp_tuple"]),
        completed=bool(data["completed"]),
        telemetry=decode_value(data.get("telemetry") or {}),
    )


def graph_result_to_dict(result) -> Dict[str, Any]:
    """Serialize a :class:`~repro.gpu.gpu.GraphRunResult` for the disk cache."""
    return {
        "node_results": {
            name: run_result_to_dict(node) for name, node in result.node_results.items()
        },
        "schedule": [entry.as_dict() for entry in result.schedule],
        "makespan": result.makespan,
        "aggregate": counters_to_dict(result.aggregate),
        "completed": result.completed,
        "num_sms": result.num_sms,
    }


def graph_result_from_dict(data: Dict[str, Any]):
    from repro.gpu.gpu import GraphRunResult
    from repro.workloads.graph import ScheduledNode

    return GraphRunResult(
        node_results={
            name: run_result_from_dict(node)
            for name, node in data["node_results"].items()
        },
        schedule=tuple(
            ScheduledNode(
                name=entry["name"],
                sm_slot=int(entry["sm_slot"]),
                start_cycle=int(entry["start_cycle"]),
                end_cycle=int(entry["end_cycle"]),
                completed=bool(entry["completed"]),
            )
            for entry in data["schedule"]
        ),
        makespan=int(data["makespan"]),
        aggregate=counters_from_dict(data["aggregate"]),
        completed=bool(data["completed"]),
        num_sms=int(data["num_sms"]),
    )


# -- static profiles -------------------------------------------------------------


def profile_to_dict(profile: StaticProfile) -> Dict[str, Any]:
    return {
        "kernel": dataclasses.asdict(profile.kernel),
        "max_warps": profile.max_warps,
        "baseline_ipc": profile.baseline_ipc,
        "ipc": [[n, p, value] for (n, p), value in sorted(profile.ipc.items())],
        "baseline_counters": (
            counters_to_dict(profile.baseline_counters)
            if isinstance(profile.baseline_counters, PerfCounters)
            else None
        ),
    }


def kernel_spec_from_dict(data: Dict[str, Any]) -> KernelSpec:
    """Rebuild a kernel spec, restoring the trace subclass when present.

    Trace-backed kernels serialise with their extra fields (``source``,
    ``family``, ``trace_hash``, ``params``); JSON turns the ``params`` tuple
    pairs into lists, so they are re-tupled here — the round-tripped spec
    compares (and hashes) equal to the original.
    """
    if "source" in data:
        from repro.trace.adapter import TraceKernelSpec

        data = dict(data)
        data["params"] = tuple(
            (str(key), value) for key, value in (data.get("params") or ())
        )
        return TraceKernelSpec(**data)
    return KernelSpec(**data)


def profile_from_dict(data: Dict[str, Any]) -> StaticProfile:
    counters = data.get("baseline_counters")
    return StaticProfile(
        kernel=kernel_spec_from_dict(data["kernel"]),
        max_warps=int(data["max_warps"]),
        baseline_ipc=float(data["baseline_ipc"]),
        ipc={(int(n), int(p)): float(value) for n, p, value in data["ipc"]},
        baseline_counters=counters_from_dict(counters) if counters else None,
    )


# -- content-key payloads ---------------------------------------------------------


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Digest of the package's source files.

    Folded into every content key so cached results can never outlive the
    simulator code that produced them: editing any ``repro`` module
    invalidates the whole disk cache, the same way a version bump would.
    """
    try:
        root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode("utf-8"))
            digest.update(path.read_bytes())
        return digest.hexdigest()[:16]
    except OSError:
        return f"version-{__version__}"


def spec_payload(spec: KernelSpec) -> Dict[str, Any]:
    """Content-key payload for a kernel spec.

    For trace-backed kernels whose content hash is pinned, the *location* of
    the trace file is excluded: ``trace_hash`` already pins what the kernel
    computes, so the same trace copied elsewhere hits the same cache entries
    while two different traces can never collide.  An unverified spec
    (``trace_hash == ""``, from ``trace_kernel_from_file(verify=False)``)
    keeps its path — a weaker key, but never one two different traces share.
    """
    payload = dataclasses.asdict(spec)
    if payload.get("trace_hash"):
        payload.pop("trace_path", None)
    return payload


def gpu_payload(gpu_config) -> Dict[str, Any]:
    return encode_value(dataclasses.asdict(gpu_config))


def profile_key_payload(
    spec: KernelSpec,
    gpu_config,
    cycles_per_point: int,
    warmup_cycles: int,
    n_step: int,
    p_step: int,
) -> Dict[str, Any]:
    """Everything that determines a :class:`StaticProfile`."""
    return {
        "kind": "profile",
        "version": __version__,
        "code": code_fingerprint(),
        "spec": spec_payload(spec),
        "gpu": gpu_payload(gpu_config),
        "cycles_per_point": cycles_per_point,
        "warmup_cycles": warmup_cycles,
        "n_step": n_step,
        "p_step": p_step,
    }


def model_digest(model) -> Optional[Dict[str, Any]]:
    """A compact content summary of a trained model (for run keys)."""
    if model is None:
        return None
    return {
        "alpha": [round(float(w), 12) for w in model.alpha_weights],
        "beta": [round(float(w), 12) for w in model.beta_weights],
        "max_warps": model.max_warps,
        "feature_mask": list(model.feature_mask or []),
    }
