"""Simulator-throughput microbenchmarks (shared by pytest and the CLI).

Two workloads bracket the simulator's behaviour:

* a *memory-divergent* kernel (frequent loads, large working set) that
  exercises the MSHR/response machinery and the stall fast-forward path, and
* a *compute-intensive* kernel (rare loads) that exercises the issue loop
  and the scheduler's greedy path.

``measure_throughput`` reports simulated cycles per wall-clock second —
the BENCH trajectory metric for the hot loop.  ``measure_sweep`` times the
fast-profile warp-tuple sweep cold (every point simulated, the seed's
serial path) and warm (served from the persistent result cache), plus a
parallel re-sweep used to check counter equivalence.
"""

from __future__ import annotations

import contextlib
import os
import time
from dataclasses import replace
from pathlib import Path
from typing import Dict, Iterator, Optional

from repro.gpu.config import baseline_config
from repro.gpu.gpu import GPU
from repro.profiling.profiler import KernelProfiler
from repro.runtime.executor import SweepExecutor
from repro.workloads.generator import generate_kernel_programs
from repro.workloads.spec import KernelSpec


@contextlib.contextmanager
def _pinned_env(**values: str) -> Iterator[None]:
    saved = {key: os.environ.get(key) for key in values}
    os.environ.update(values)
    try:
        yield
    finally:
        for key, previous in saved.items():
            if previous is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = previous


def memory_divergent_kernel() -> KernelSpec:
    """Every third instruction is a load and the footprint thrashes the L1."""
    return KernelSpec(
        name="bench_memory_divergent",
        num_warps=24,
        instructions_per_warp=6_000,
        instructions_per_load=3,
        dep_distance=2,
        intra_warp_fraction=0.5,
        inter_warp_fraction=0.3,
        private_lines=300,
        shared_lines=1_024,
        seed=7,
    )


def compute_intensive_kernel() -> KernelSpec:
    """Loads are rare; the issue loop and scheduler dominate."""
    return KernelSpec(
        name="bench_compute_intensive",
        num_warps=24,
        instructions_per_warp=6_000,
        instructions_per_load=50,
        dep_distance=8,
        intra_warp_fraction=0.6,
        inter_warp_fraction=0.2,
        private_lines=64,
        shared_lines=256,
        seed=3,
    )


def measure_throughput(spec: KernelSpec, max_cycles: int = 80_000) -> Dict[str, float]:
    """Run one kernel and report simulated cycles per wall-clock second."""
    config = baseline_config(max_cycles=max_cycles)
    gpu = GPU(config)
    programs = generate_kernel_programs(spec)
    start = time.perf_counter()
    result = gpu.run_kernel(programs, max_cycles=max_cycles)
    elapsed = max(time.perf_counter() - start, 1e-9)
    return {
        "kernel": spec.name,
        "cycles": result.counters.cycles,
        "instructions": result.counters.instructions,
        "wall_seconds": elapsed,
        "cycles_per_second": result.counters.cycles / elapsed,
        "instructions_per_second": result.counters.instructions / elapsed,
    }


def trace_replay_kernel(trace_dir: Path) -> "KernelSpec":
    """Export the stencil trace family to ``trace_dir`` and return a
    file-backed spec for it — the trace-replay half of the BENCH trajectory
    exercises the full decode-then-simulate path."""
    from repro.trace.adapter import TraceKernelSpec
    from repro.trace.codec import write_trace
    from repro.trace.families import family_kernel
    from repro.workloads.generator import generate_kernel_programs

    spec = family_kernel("stencil", "bench_trace_replay", seed=13,
                         params=(("width", 96), ("rows_per_warp", 4)))
    programs = generate_kernel_programs(spec)
    path = Path(trace_dir) / "bench_trace_replay.trc"
    content_hash = write_trace(path, programs, meta={"kernel": spec.name, "source": "family"})
    # Build the file-backed spec from the writer's own hash so the benchmark
    # does not pay a verify decode before the decode it is trying to time.
    return TraceKernelSpec(
        name=spec.name,
        num_warps=len(programs),
        instructions_per_warp=max(len(program) for program in programs),
        intra_warp_fraction=0.0,
        inter_warp_fraction=0.0,
        source="file",
        trace_path=str(path),
        trace_hash=content_hash,
    )


def measure_trace_replay(trace_dir: Path, max_cycles: int = 80_000) -> Dict[str, float]:
    """Trace-replay throughput: decode wall-clock plus replay cycles/second."""
    from repro.workloads.generator import generate_kernel_programs

    spec = trace_replay_kernel(Path(trace_dir))
    start = time.perf_counter()
    programs = generate_kernel_programs(spec)  # decode only (replay bypasses the cache)
    decode_seconds = max(time.perf_counter() - start, 1e-9)
    decoded_instructions = sum(len(program) for program in programs)
    result = measure_throughput(spec, max_cycles=max_cycles)
    result["decode_seconds"] = decode_seconds
    result["instructions_decoded_per_second"] = decoded_instructions / decode_seconds
    return result


def measure_sweep(
    cache_dir: Path,
    spec: Optional[KernelSpec] = None,
    parallel_jobs: int = 4,
) -> Dict[str, object]:
    """Time the fast-profile warp-tuple sweep cold, warm and in parallel.

    ``cache_dir`` must be fresh for the cold number to be honest.  Returns
    wall-clock timings plus whether the parallel re-sweep reproduced the
    serial grid bit-for-bit.
    """
    # Imported here: experiments.common pulls in the whole scheme zoo, which
    # the throughput-only path doesn't need.
    from repro.experiments.common import ExperimentConfig, clear_caches, get_profile

    spec = spec or memory_divergent_kernel()
    config = replace(ExperimentConfig.fast(), cache_dir=Path(cache_dir))

    # Pin the knobs this measurement is *about*: the cold pass must be the
    # serial path and the warm pass must be allowed to hit the disk cache,
    # regardless of what the ambient environment exports.
    with _pinned_env(REPRO_JOBS="1", REPRO_DISK_CACHE="1"):
        clear_caches()
        start = time.perf_counter()
        cold_profile = get_profile(spec, config)
        cold_seconds = time.perf_counter() - start

        clear_caches()  # memory layer only; the disk layer persists
        start = time.perf_counter()
        warm_profile = get_profile(spec, config)
        warm_seconds = max(time.perf_counter() - start, 1e-9)

    start = time.perf_counter()
    parallel_profile = config.profiler().profile(spec) if parallel_jobs <= 1 else (
        KernelProfiler(
            config=config.gpu,
            cycles_per_point=config.profile_cycles,
            warmup_cycles=config.profile_warmup,
            n_step=config.profile_n_step,
            p_step=config.profile_p_step,
            executor=SweepExecutor(jobs=parallel_jobs),
        ).profile(spec)
    )
    parallel_seconds = time.perf_counter() - start

    clear_caches()
    return {
        "kernel": spec.name,
        "points": len(cold_profile.ipc),
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "warm_speedup": cold_seconds / warm_seconds,
        "parallel_jobs": parallel_jobs,
        "parallel_seconds": parallel_seconds,
        "parallel_matches_serial": (
            parallel_profile.ipc == cold_profile.ipc == warm_profile.ipc
        ),
    }
