"""Simulator-throughput microbenchmarks (shared by pytest and the CLI).

Three workloads bracket the simulator's behaviour:

* a *memory-divergent* kernel (frequent loads, large working set) that
  exercises the MSHR/response machinery and the stall fast-forward path,
* a *compute-intensive* kernel (rare loads) that exercises the issue loop
  and the scheduler's greedy path, and
* a *memory-stall* kernel (streaming load bursts under a bandwidth-starved
  memory) that saturates the MSHR file so almost every cycle is an
  MSHR-full retry — the dead-cycle class only the ``event`` engine skips,
  and therefore the bracket its ≥5x perf gate is measured on.

``measure_throughput`` reports simulated cycles per wall-clock second —
the BENCH trajectory metric for the hot loop — for either engine.
``measure_matrix`` expands that to the full scheme matrix: every evaluation
scheme (gto/swl/pcal/poise/static_best) × representative synthetic and
trace-family kernels × both engines, one row per combination, so the
committed trajectory accumulates comparable data points instead of a single
snapshot.  ``measure_sweep`` times the fast-profile warp-tuple sweep cold
(every point simulated, the seed's serial path) and warm (served from the
persistent result cache), plus a parallel re-sweep used to check counter
equivalence.

All wall-clock measurement uses ``time.perf_counter`` and every record
carries the ``engine`` that produced it plus the host ``python_version``
and ``cpu_count`` for cross-run comparability.
"""

from __future__ import annotations

import contextlib
import gc
import json
import os
import platform
import sys
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.gpu.config import GPUConfig, MemoryConfig, baseline_config
from repro.gpu.engine import resolve_engine
from repro.gpu.gpu import GPU
from repro.obs.telemetry import phase
from repro.profiling.profiler import KernelProfiler
from repro.runtime.executor import SweepExecutor
from repro.workloads.generator import generate_kernel_programs
from repro.workloads.spec import KernelSpec

#: The scheme matrix benchmarked by ``measure_matrix`` / ``repro bench``.
MATRIX_SCHEMES = ("gto", "swl", "pcal", "poise", "static_best")

#: The two bracket kernels perf gates compare across engines/baselines.
GATE_KERNELS = ("bench_memory_divergent", "bench_compute_intensive")

#: The MSHR-saturating bracket the event engine's perf gate runs on, and the
#: minimum cycles/second ratio it must hold over a live ``fast`` run.
EVENT_GATE_KERNEL = "bench_memory_stall"
EVENT_GATE_RATIO = 5.0


def host_environment() -> Dict[str, object]:
    """Host metadata for cross-run comparability (no engine: a trajectory
    entry can mix rows from several engines; the per-row field is
    authoritative)."""
    return {
        "python_version": platform.python_version(),
        "cpu_count": os.cpu_count() or 1,
    }


def bench_environment(engine: Optional[str] = None) -> Dict[str, object]:
    """Host/engine metadata folded into every bench record."""
    record = {"engine": resolve_engine(engine)}
    record.update(host_environment())
    return record


def load_trajectory(path: Path) -> List[dict]:
    """Read a ``BENCH_throughput.json`` trajectory (empty on a fresh file; a
    single bare entry is wrapped in a list).  An unreadable or corrupt file
    is loudly reported — appending after this returns ``[]`` starts a fresh
    trajectory, which must never happen silently."""
    path = Path(path)
    if not path.exists():
        return []
    try:
        trajectory = json.loads(path.read_text())
    except (OSError, ValueError) as error:
        print(
            f"warning: {path} was unreadable ({error}); starting a new trajectory",
            file=sys.stderr,
        )
        return []
    if not isinstance(trajectory, list):
        trajectory = [trajectory]
    return trajectory


def committed_legacy_baseline(
    trajectory: Sequence[dict], kernels: Sequence[str] = GATE_KERNELS
) -> Dict[str, float]:
    """Per-kernel cycles/second of the committed legacy baseline.

    The earliest trajectory entry whose throughput rows are legacy for all
    ``kernels``.  Entries from before the engine seam keep their rows flat
    (``throughput[kernel]``) and carry no ``engine`` field — they were
    measured on the legacy core by definition; newer entries nest rows per
    engine (``throughput["legacy"][kernel]``).
    """
    for entry in trajectory:
        throughput = entry.get("throughput") or {}
        baseline: Dict[str, float] = {}
        for kernel in kernels:
            record = throughput.get(kernel)
            if record is None and isinstance(throughput.get("legacy"), dict):
                record = throughput["legacy"].get(kernel)
            if not isinstance(record, dict) or record.get("engine", "legacy") != "legacy":
                break
            baseline[kernel] = float(record["cycles_per_second"])
        else:
            if baseline:
                return baseline
    return {}


@contextlib.contextmanager
def _pinned_env(**values: str) -> Iterator[None]:
    saved = {key: os.environ.get(key) for key in values}
    os.environ.update(values)
    try:
        yield
    finally:
        for key, previous in saved.items():
            if previous is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = previous


def memory_divergent_kernel() -> KernelSpec:
    """Every third instruction is a load and the footprint thrashes the L1."""
    return KernelSpec(
        name="bench_memory_divergent",
        num_warps=24,
        instructions_per_warp=6_000,
        instructions_per_load=3,
        dep_distance=2,
        intra_warp_fraction=0.5,
        inter_warp_fraction=0.3,
        private_lines=300,
        shared_lines=1_024,
        seed=7,
    )


def compute_intensive_kernel() -> KernelSpec:
    """Loads are rare; the issue loop and scheduler dominate."""
    return KernelSpec(
        name="bench_compute_intensive",
        num_warps=24,
        instructions_per_warp=6_000,
        instructions_per_load=50,
        dep_distance=8,
        intra_warp_fraction=0.6,
        inter_warp_fraction=0.2,
        private_lines=64,
        shared_lines=256,
        seed=3,
    )


@dataclass(frozen=True)
class MemoryStallKernelSpec(KernelSpec):
    """Streaming load bursts that keep the MSHR file pinned at capacity.

    Every instruction is a load of a fresh line (no reuse, so every access
    misses and every miss needs a new MSHR entry) and the dependency
    distances are shaped so no warp ever blocks on a pending load: the
    first-dependent index of the ``i``-th load is ``2n - i + 1`` — always
    beyond the program counter, and *decreasing* in issue order so the
    pending-load minimum is maintained by the cheap issue-side update
    rather than a completion-side rescan.  The scheduler therefore always
    has a warp that *wants* to issue, the memory system drains one line per
    DRAM service interval, and essentially every simulated cycle in between
    is an MSHR-full retry — the dead-cycle class the ``event`` engine jumps
    and the per-cycle engines tick.
    """

    def materialise_programs(self) -> Tuple[Tuple, ...]:
        from repro.gpu.isa import load

        programs = []
        line = 1 << 44  # streaming region: never aliases the synthetic kernels
        n = self.instructions_per_warp
        for _ in range(self.num_warps):
            program = tuple(
                load(line + index, dep_distance=2 * (n - index), pc=1200)
                for index in range(n)
            )
            line += n
            programs.append(program)
        return tuple(programs)


def memory_stall_kernel() -> KernelSpec:
    """Every instruction is a streaming load; the MSHR file is the limiter."""
    return MemoryStallKernelSpec(
        name="bench_memory_stall",
        num_warps=24,
        instructions_per_warp=4_000,
        instructions_per_load=1,
        dep_distance=8,
        intra_warp_fraction=0.0,
        inter_warp_fraction=0.0,
        seed=11,
    )


def memory_stall_config(max_cycles: int = 80_000) -> GPUConfig:
    """The bandwidth-starved memory the memory-stall bracket runs under.

    ``congestion_factor`` (the sensitivity-study knob) scales the L2/DRAM
    service intervals 4x, widening the gap between consecutive MSHR fills
    to ~112 cycles — long retry spans for the event engine to jump while
    the per-cycle engines pay for every one of them.
    """
    return baseline_config(
        max_cycles=max_cycles, memory=MemoryConfig(congestion_factor=4.0)
    )


def measure_throughput(
    spec: KernelSpec,
    max_cycles: int = 80_000,
    engine: Optional[str] = None,
    rounds: int = 1,
    config: Optional[GPUConfig] = None,
) -> Dict[str, float]:
    """Run one kernel and report simulated cycles per wall-clock second.

    ``rounds`` > 1 repeats the run and keeps the fastest round — simulated
    counters are deterministic, so extra rounds only reduce timer noise.
    ``config`` overrides the baseline architecture (the memory-stall bracket
    passes its bandwidth-starved memory); ``max_cycles`` still bounds the
    run either way.
    """
    config = config if config is not None else baseline_config(max_cycles=max_cycles)
    gpu = GPU(config, engine=engine)
    programs = generate_kernel_programs(spec)
    elapsed = None
    result = None
    # A cyclic-GC pass triggered by unrelated live heaps (e.g. earlier tests
    # in the same process) can land inside the timed region and dominate a
    # ~20 ms run; collect up front and pause the collector while timing.
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        # The phase timer brackets the whole rounds loop — never the timed
        # region itself, whose cycles/s feed absolute-threshold gates.
        with phase("simulate"):
            for _ in range(max(1, rounds)):
                start = time.perf_counter()
                result = gpu.run_kernel(programs, max_cycles=max_cycles)
                round_elapsed = max(time.perf_counter() - start, 1e-9)
                if elapsed is None or round_elapsed < elapsed:
                    elapsed = round_elapsed
    finally:
        if gc_was_enabled:
            gc.enable()
    record = {
        "kernel": spec.name,
        "cycles": result.counters.cycles,
        "instructions": result.counters.instructions,
        "wall_seconds": elapsed,
        "cycles_per_second": result.counters.cycles / elapsed,
        "instructions_per_second": result.counters.instructions / elapsed,
    }
    record.update(bench_environment(engine))
    return record


def trace_replay_kernel(trace_dir: Path) -> "KernelSpec":
    """Export the stencil trace family to ``trace_dir`` and return a
    file-backed spec for it — the trace-replay half of the BENCH trajectory
    exercises the full decode-then-simulate path."""
    from repro.trace.adapter import TraceKernelSpec
    from repro.trace.codec import write_trace
    from repro.trace.families import family_kernel
    from repro.workloads.generator import generate_kernel_programs

    spec = family_kernel("stencil", "bench_trace_replay", seed=13,
                         params=(("width", 96), ("rows_per_warp", 4)))
    programs = generate_kernel_programs(spec)
    path = Path(trace_dir) / "bench_trace_replay.trc"
    content_hash = write_trace(path, programs, meta={"kernel": spec.name, "source": "family"})
    # Build the file-backed spec from the writer's own hash so the benchmark
    # does not pay a verify decode before the decode it is trying to time.
    return TraceKernelSpec(
        name=spec.name,
        num_warps=len(programs),
        instructions_per_warp=max(len(program) for program in programs),
        intra_warp_fraction=0.0,
        inter_warp_fraction=0.0,
        source="file",
        trace_path=str(path),
        trace_hash=content_hash,
    )


def measure_trace_replay(
    trace_dir: Path, max_cycles: int = 80_000, engine: Optional[str] = None
) -> Dict[str, float]:
    """Trace-replay throughput: decode wall-clock plus replay cycles/second."""
    from repro.workloads.generator import generate_kernel_programs

    spec = trace_replay_kernel(Path(trace_dir))
    start = time.perf_counter()
    programs = generate_kernel_programs(spec)  # decode only (replay bypasses the cache)
    decode_seconds = max(time.perf_counter() - start, 1e-9)
    decoded_instructions = sum(len(program) for program in programs)
    result = measure_throughput(spec, max_cycles=max_cycles, engine=engine)
    result["decode_seconds"] = decode_seconds
    result["instructions_decoded_per_second"] = decoded_instructions / decode_seconds
    return result


# ---------------------------------------------------------------------------
# The scheme × kernel × engine matrix
# ---------------------------------------------------------------------------


def matrix_kernels() -> List[Dict[str, object]]:
    """Representative kernels for the bench matrix: the two synthetic
    bracket kernels, two structured trace families (regular stencil reuse
    and dependent-gather pointer chasing), and a 2-SM chip bracket — the
    memory-divergent kernel on two SMs sharing one L2/DRAM, so the chip
    interleave loop's throughput is tracked per engine like any other
    bracket.  An entry's optional ``num_sms`` widens the architecture for
    that bracket only."""
    from repro.trace.families import family_kernel

    return [
        {"kind": "synthetic", "spec": memory_divergent_kernel()},
        {"kind": "synthetic", "spec": compute_intensive_kernel()},
        {
            "kind": "trace",
            "spec": family_kernel(
                "stencil", "bench_stencil", seed=13,
                params=(("width", 96), ("rows_per_warp", 4)),
            ),
        },
        {
            "kind": "trace",
            "spec": family_kernel("gather", "bench_gather", seed=17),
        },
        {
            "kind": "multi_sm",
            "spec": replace(memory_divergent_kernel(), name="bench_multi_sm_divergent"),
            "num_sms": 2,
        },
    ]


def _matrix_model():
    """Fixed-weight Poise model so the matrix needs no training pipeline
    (the same weights the golden-counter fixture pins)."""
    from repro.core.training import TrainedModel

    return TrainedModel(
        alpha_weights=[0.02, -0.03, 0.05, 0.01, -0.02, 0.04, 0.60, 0.30],
        beta_weights=[0.01, -0.02, 0.03, 0.02, -0.01, 0.02, 0.30, 0.15],
        max_warps=24,
        dispersion_n=0.1,
        dispersion_p=0.1,
        num_training_kernels=0,
    )


def _matrix_controller(scheme: str, profile, model):
    from repro.core.inference import PoiseParameters
    from repro.core.poise import PoiseController
    from repro.schedulers import (
        GTOController,
        PCALController,
        StaticBestController,
        SWLController,
    )

    if scheme == "gto":
        return GTOController()
    if scheme == "swl":
        return SWLController(profile=profile)
    if scheme == "pcal":
        return PCALController(profile=profile)
    if scheme == "static_best":
        return StaticBestController(profile=profile)
    if scheme == "poise":
        return PoiseController(
            model,
            PoiseParameters(
                t_period=30_000, t_warmup=1_000, t_feature=4_000, t_search=1_200,
                threshold_cycles=2_000,
            ),
        )
    raise ValueError(f"unknown matrix scheme {scheme!r}")


def measure_matrix(
    engines: Sequence[str] = ("fast", "legacy"),
    schemes: Sequence[str] = MATRIX_SCHEMES,
    max_cycles: int = 40_000,
    kernels: Optional[Sequence[Dict[str, object]]] = None,
) -> List[Dict[str, object]]:
    """Benchmark every scheme × kernel × engine combination.

    Returns one record per combination with simulated cycles per wall-clock
    second and host metadata.  Profile-based schemes (swl/pcal/static_best)
    share one subsampled static profile per kernel, computed outside the
    timed region with the fast engine (profiles are engine-agnostic by
    bit-identity); Poise uses the fixed-weight model, so the matrix needs no
    training pipeline and is deterministic end to end.
    """
    kernels = list(kernels if kernels is not None else matrix_kernels())
    engines = [resolve_engine(engine) for engine in engines]
    model = _matrix_model()
    rows: List[Dict[str, object]] = []
    profile_schemes = {"swl", "pcal", "static_best"}
    for entry in kernels:
        spec = entry["spec"]
        num_sms = int(entry.get("num_sms", 1))
        config = baseline_config(max_cycles=max_cycles, num_sms=num_sms)
        programs = generate_kernel_programs(spec)
        profile = None
        if profile_schemes.intersection(schemes):
            profiler = KernelProfiler(
                config=config,
                cycles_per_point=2_000,
                warmup_cycles=2_000,
                n_step=6,
                p_step=6,
                engine="fast",
            )
            with phase("profile"):
                profile = profiler.profile(spec)
        for scheme in schemes:
            for engine in engines:
                gpu = GPU(config, engine=engine)
                controller = _matrix_controller(scheme, profile, model)
                with phase("simulate"):
                    start = time.perf_counter()
                    result = gpu.run_kernel(
                        programs, controller=controller, max_cycles=max_cycles
                    )
                    elapsed = max(time.perf_counter() - start, 1e-9)
                row = {
                    "kernel": spec.name,
                    "kind": entry["kind"],
                    "num_sms": num_sms,
                    "scheme": scheme,
                    "cycles": result.counters.cycles,
                    "instructions": result.counters.instructions,
                    "wall_seconds": elapsed,
                    "cycles_per_second": result.counters.cycles / elapsed,
                    "instructions_per_second": result.counters.instructions / elapsed,
                    "warp_tuple": list(result.warp_tuple),
                    "completed": result.completed,
                }
                row.update(bench_environment(engine))
                rows.append(row)
    return rows


def measure_sweep(
    cache_dir: Path,
    spec: Optional[KernelSpec] = None,
    parallel_jobs: int = 4,
) -> Dict[str, object]:
    """Time the fast-profile warp-tuple sweep cold, warm and in parallel.

    ``cache_dir`` must be fresh for the cold number to be honest.  Returns
    wall-clock timings plus whether the parallel re-sweep reproduced the
    serial grid bit-for-bit.
    """
    # Imported here: experiments.common pulls in the whole scheme zoo, which
    # the throughput-only path doesn't need.
    from repro.experiments.common import ExperimentConfig, clear_caches, get_profile

    spec = spec or memory_divergent_kernel()
    config = replace(ExperimentConfig.fast(), cache_dir=Path(cache_dir))

    # Pin the knobs this measurement is *about*: the cold pass must be the
    # serial path and the warm pass must be allowed to hit the disk cache,
    # regardless of what the ambient environment exports.
    with _pinned_env(REPRO_JOBS="1", REPRO_DISK_CACHE="1"):
        clear_caches()
        start = time.perf_counter()
        cold_profile = get_profile(spec, config)
        cold_seconds = time.perf_counter() - start

        clear_caches()  # memory layer only; the disk layer persists
        start = time.perf_counter()
        warm_profile = get_profile(spec, config)
        warm_seconds = max(time.perf_counter() - start, 1e-9)

    start = time.perf_counter()
    parallel_profile = config.profiler().profile(spec) if parallel_jobs <= 1 else (
        KernelProfiler(
            config=config.gpu,
            cycles_per_point=config.profile_cycles,
            warmup_cycles=config.profile_warmup,
            n_step=config.profile_n_step,
            p_step=config.profile_p_step,
            executor=SweepExecutor(jobs=parallel_jobs),
        ).profile(spec)
    )
    parallel_seconds = time.perf_counter() - start

    clear_caches()
    return {
        "kernel": spec.name,
        "points": len(cold_profile.ipc),
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "warm_speedup": cold_seconds / warm_seconds,
        "parallel_jobs": parallel_jobs,
        "parallel_seconds": parallel_seconds,
        "parallel_matches_serial": (
            parallel_profile.ipc == cold_profile.ipc == warm_profile.ipc
        ),
    }
