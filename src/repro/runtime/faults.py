"""Deterministic fault injection for the fault-tolerant runtime.

The recovery machinery — per-job timeouts, retries, partial-result salvage,
corrupt-artifact quarantine — is proven the same way the fast engine was:
differentially.  A sweep executed under injected faults must produce
artifacts byte-identical to a fault-free run.  This module supplies the
faults: seeded worker crashes, stalls past the per-job timeout, torn
artifact writes and transient ``OSError``s, injected at named sites in the
executor, the disk cache and the sweep runner.

Injection is driven entirely by the ``REPRO_FAULTS`` environment variable
and is **fully disabled when it is unset** — every hook first performs a
cheap ``FAULTS_ENV in os.environ`` check, so production runs pay nothing.

Spec grammar (comma-separated tokens)::

    REPRO_FAULTS="seed=7,executor:crash:1,executor:stall:1,runner.write:truncate:1,cache.store:oserror:2"

* ``seed=N`` — seeds target selection (default 0).  Same seed, same spec and
  same population ⇒ the same jobs/points are faulted.
* ``stall=SECONDS`` — how long an injected stall sleeps (default 30).
* ``crash_delay=SECONDS`` — how long an injected crash idles before killing
  its worker (default 0.75), so sibling jobs get a chance to complete and
  exercise the salvage path.
* ``SITE:MODE[:COUNT][:all]`` — inject ``COUNT`` faults (default 1) of
  ``MODE`` at ``SITE``.  The trailing ``:all`` makes the fault fire on
  *every* pool attempt of its target jobs (forcing serial escalation)
  instead of only the first.

Sites and modes:

``executor``
    ``crash`` (the worker process dies mid-job), ``stall`` (the worker
    sleeps ``stall`` seconds before running the job) and ``oserror`` (the
    job raises a transient :class:`FaultInjectedError`).  Targets are a
    seeded sample of the job indices of one ``map`` call; faults are
    injected only on the parallel pool path — the serial path is the
    controlled last resort and stays pure.
``runner.write``
    ``truncate`` (the point artifact is torn mid-write) and ``corrupt``
    (it is replaced by well-formed JSON of the wrong format).  Targets are
    a seeded sample of the to-compute point indices of one sweep run.
``cache.store`` / ``cache.load``
    ``oserror`` — the first ``COUNT`` cache operations *per process* raise
    a transient :class:`FaultInjectedError`.  The cache is best-effort by
    contract, so these prove that a flaky disk degrades to recomputation,
    never to a wrong or missing result.
``serve.worker``
    ``crash`` / ``stall`` / ``oserror`` — the ``repro serve`` dispatcher
    consumes ``COUNT`` units of budget (via :func:`take_action`) and ships
    the action to the shard worker it dispatches to, which applies it
    before running the job.  Budget is consumed in the *daemon* process, so
    a restarted worker does not re-fire an already-spent fault.
``serve.journal``
    ``torn`` — the next ``COUNT`` job-journal appends write only half their
    bytes (no newline) and then fail, simulating a daemon killed mid-append;
    recovery must seal the torn tail and lose no acknowledged job.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Mapping, Optional, Tuple

#: Environment variable holding the fault spec.
FAULTS_ENV = "REPRO_FAULTS"

#: Known sites and, per site, the injectable modes in priority order (when a
#: seeded sample assigns two modes to the same target, the first one wins).
SITES: Mapping[str, Tuple[str, ...]] = {
    "executor": ("crash", "stall", "oserror"),
    "runner.write": ("truncate", "corrupt"),
    "cache.store": ("oserror",),
    "cache.load": ("oserror",),
    "serve.worker": ("crash", "stall", "oserror"),
    "serve.journal": ("torn",),
}

DEFAULT_STALL_SECONDS = 30.0
DEFAULT_CRASH_DELAY_SECONDS = 0.75

#: Exit status of a crash-injected worker (distinctive, for post-mortems).
CRASH_EXIT_STATUS = 86


class FaultSpecError(ValueError):
    """The ``REPRO_FAULTS`` spec is malformed."""


class FaultInjectedError(OSError):
    """A deliberately injected transient failure.

    Subclasses :class:`OSError` so every generic transient-error handler
    (cache best-effort wrappers, executor retry policy) treats it exactly
    like the real environment failure it simulates.
    """


@dataclass(frozen=True)
class FaultSpec:
    """A parsed, validated ``REPRO_FAULTS`` specification."""

    seed: int = 0
    stall_seconds: float = DEFAULT_STALL_SECONDS
    crash_delay_seconds: float = DEFAULT_CRASH_DELAY_SECONDS
    #: (site, mode) -> (count, fire on every pool attempt)
    counts: Mapping[Tuple[str, str], Tuple[int, bool]] = field(default_factory=dict)

    # -- parsing ----------------------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        seed = 0
        stall = DEFAULT_STALL_SECONDS
        crash_delay = DEFAULT_CRASH_DELAY_SECONDS
        counts: Dict[Tuple[str, str], Tuple[int, bool]] = {}
        for token in (piece.strip() for piece in text.split(",")):
            if not token:
                continue
            if "=" in token:
                key, _, raw = token.partition("=")
                key = key.strip().lower()
                try:
                    if key == "seed":
                        seed = int(raw)
                    elif key == "stall":
                        stall = float(raw)
                    elif key == "crash_delay":
                        crash_delay = float(raw)
                    else:
                        raise FaultSpecError(
                            f"unknown {FAULTS_ENV} parameter {key!r} "
                            f"(known: seed, stall, crash_delay)"
                        )
                except ValueError as error:
                    if isinstance(error, FaultSpecError):
                        raise
                    raise FaultSpecError(
                        f"{FAULTS_ENV} parameter {token!r} is not numeric"
                    ) from None
                continue
            parts = token.split(":")
            if len(parts) < 2:
                raise FaultSpecError(
                    f"malformed {FAULTS_ENV} token {token!r} — expected "
                    f"SITE:MODE[:COUNT][:all]"
                )
            site, mode = parts[0].strip(), parts[1].strip()
            if site not in SITES:
                raise FaultSpecError(
                    f"unknown fault site {site!r} (known sites: {', '.join(SITES)})"
                )
            if mode not in SITES[site]:
                raise FaultSpecError(
                    f"site {site!r} has no mode {mode!r} "
                    f"(known modes: {', '.join(SITES[site])})"
                )
            count, every_attempt = 1, False
            for extra in parts[2:]:
                extra = extra.strip().lower()
                if extra == "all":
                    every_attempt = True
                    continue
                try:
                    count = int(extra)
                except ValueError:
                    raise FaultSpecError(
                        f"malformed {FAULTS_ENV} token {token!r} — "
                        f"{extra!r} is neither a count nor 'all'"
                    ) from None
                if count < 1:
                    raise FaultSpecError(
                        f"malformed {FAULTS_ENV} token {token!r} — count must be >= 1"
                    )
            previous = counts.get((site, mode), (0, False))
            counts[(site, mode)] = (previous[0] + count, previous[1] or every_attempt)
        if not counts:
            raise FaultSpecError(
                f"{FAULTS_ENV} names no faults — expected at least one "
                f"SITE:MODE[:COUNT] token"
            )
        return cls(
            seed=seed,
            stall_seconds=stall,
            crash_delay_seconds=crash_delay,
            counts=counts,
        )

    # -- deterministic target selection ------------------------------------------

    def count(self, site: str, mode: str) -> int:
        return self.counts.get((site, mode), (0, False))[0]

    def every_attempt(self, site: str, mode: str) -> bool:
        return self.counts.get((site, mode), (0, False))[1]

    def targets(self, site: str, mode: str, population: int) -> FrozenSet[int]:
        """The seeded sample of indices faulted at ``(site, mode)``.

        A pure function of ``(seed, site, mode, population)``: the same spec
        over the same population always faults the same indices, in every
        process — that is what makes chaos runs reproducible.
        """
        count = self.count(site, mode)
        if count <= 0 or population <= 0:
            return frozenset()
        rng = random.Random(f"{self.seed}:{site}:{mode}")
        return frozenset(rng.sample(range(population), min(count, population)))

    def site_plan(self, site: str, population: int) -> Dict[int, str]:
        """``{index: mode}`` over a population, modes resolved by priority."""
        plan: Dict[int, str] = {}
        for mode in SITES[site]:
            for index in sorted(self.targets(site, mode, population)):
                plan.setdefault(index, mode)
        return plan

    def executor_action(
        self, index: int, attempt: int, population: int
    ) -> Optional[str]:
        """The fault action for job ``index`` on ``attempt`` (0-based), if any."""
        for mode in SITES["executor"]:
            if index not in self.targets("executor", mode, population):
                continue
            if attempt == 0 or self.every_attempt("executor", mode):
                return mode
        return None

    def describe(self) -> str:
        """Compact one-line rendering for failure-accounting summaries."""
        parts = [f"seed={self.seed}"]
        for (site, mode), (count, every_attempt) in sorted(self.counts.items()):
            suffix = ":all" if every_attempt else ""
            parts.append(f"{site}:{mode}×{count}{suffix}")
        return " ".join(parts)


# ---------------------------------------------------------------------------
# process-global activation
# ---------------------------------------------------------------------------

#: (raw env text, parsed spec) — re-parsed only when the env text changes.
_parsed: Tuple[Optional[str], Optional[FaultSpec]] = (None, None)

#: Fired-fault budgets for counter-based sites: (raw, site, mode) -> fired.
_fired: Dict[Tuple[str, str, str], int] = {}


def active_spec() -> Optional[FaultSpec]:
    """The spec parsed from ``REPRO_FAULTS``, or ``None`` when unset/blank.

    A malformed spec raises :class:`FaultSpecError` — fault injection is an
    operator-driven chaos tool, and silently ignoring a typo'd spec would
    report a clean run that never was chaotic.
    """
    global _parsed
    raw = os.environ.get(FAULTS_ENV)
    if raw is None or not raw.strip():
        return None
    if raw != _parsed[0]:
        _parsed = (raw, FaultSpec.parse(raw))
    return _parsed[1]


def reset_fault_state() -> None:
    """Forget fired-fault budgets and the parse cache (test isolation)."""
    global _parsed
    _parsed = (None, None)
    _fired.clear()


def maybe_raise(site: str) -> None:
    """Counter-based injection hook for the cache sites.

    The first ``COUNT`` invocations at ``site`` in this process raise a
    :class:`FaultInjectedError`; later ones pass.  No-op (one dict lookup)
    when ``REPRO_FAULTS`` is unset.
    """
    if FAULTS_ENV not in os.environ:
        return
    spec = active_spec()
    if spec is None:
        return
    raw = os.environ[FAULTS_ENV]
    for mode in SITES.get(site, ()):
        budget = spec.count(site, mode)
        if budget <= 0:
            continue
        key = (raw, site, mode)
        fired = _fired.get(key, 0)
        if fired < budget:
            _fired[key] = fired + 1
            raise FaultInjectedError(
                f"injected {mode} at {site} ({fired + 1}/{budget})"
            )


def take_action(site: str) -> Optional[str]:
    """Consume one unit of counter-based budget at ``site``; return the mode.

    The serve dispatcher's injection hook: budgets live in the consuming
    process (the daemon), so the first ``COUNT`` consultations return the
    injected mode (in the site's priority order) and every later one
    returns ``None``.  No-op when ``REPRO_FAULTS`` is unset.
    """
    if FAULTS_ENV not in os.environ:
        return None
    spec = active_spec()
    if spec is None:
        return None
    raw = os.environ[FAULTS_ENV]
    for mode in SITES.get(site, ()):
        budget = spec.count(site, mode)
        if budget <= 0:
            continue
        key = (raw, site, mode)
        fired = _fired.get(key, 0)
        if fired < budget:
            _fired[key] = fired + 1
            return mode
    return None


def corrupt_artifact(path, mode: str) -> None:
    """Apply a ``runner.write`` fault to an already-written artifact file.

    ``truncate`` simulates a torn write that bypassed rename atomicity (half
    the bytes survive); ``corrupt`` simulates a stale writer clobbering the
    file with well-formed JSON of the wrong format.
    """
    if mode == "truncate":
        data = path.read_bytes()
        path.write_bytes(data[: max(1, len(data) // 2)])
    elif mode == "corrupt":
        path.write_text('{"format_version": -1, "kind": "injected-corruption"}')
    else:  # pragma: no cover - guarded by spec validation
        raise FaultSpecError(f"unknown runner.write mode {mode!r}")


def invoke_with_fault(
    action: Optional[str],
    stall_seconds: float,
    crash_delay_seconds: float,
    fn: Callable,
    *args,
):
    """Pool-worker entry point that applies one injected fault, then runs.

    Module-level (picklable) so the executor can submit it in place of the
    real job.  ``crash`` idles briefly, then kills the worker process the
    way an OOM-killer would; ``stall`` simulates a hung worker that
    eventually recovers (the parent's per-job timeout fires first when one
    is configured); ``oserror`` raises a transient error before the job
    starts.
    """
    if action == "crash":
        time.sleep(crash_delay_seconds)
        os._exit(CRASH_EXIT_STATUS)
    if action == "stall":
        time.sleep(stall_seconds)
    elif action == "oserror":
        raise FaultInjectedError("injected transient oserror at executor")
    return fn(*args)
