"""Content-addressed on-disk result cache.

Simulation results (static profiles, per-kernel ``RunResult``s) are keyed by
the SHA-256 of a canonical-JSON description of *everything that determines
the result*: the kernel spec, the full GPU configuration, the scheme and its
run knobs, and the package version.  Two configs that differ in any
run-affecting knob therefore hash to different entries — there is no
"same label, different knobs" collision by construction.

Layout::

    <cache_dir>/runs/<sha256>.json

Entries are written atomically (temp file + ``os.replace``) so a concurrent
or interrupted writer can never leave a half-written entry behind, and a
corrupted or truncated entry is treated as a miss (and deleted) rather than
an error — the caller simply recomputes.

A writer that dies *between* creating its temp file and renaming it leaves
a ``.<name>.<pid>.<seq>.tmp`` orphan behind; those are swept by
:func:`sweep_stale_tmps` (stale = older than an hour, so live concurrent
writers are never raced) on the first :class:`DiskCache` construction per
directory and at the start of every sweep run.  Both cache operations are
fault-injection sites (``cache.store`` / ``cache.load`` in
:mod:`repro.runtime.faults`): an injected transient ``OSError`` must
degrade to recomputation, never to a wrong result.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Set, Union

from repro.runtime.faults import maybe_raise

_FORMAT_VERSION = 1


@dataclass
class CacheStats:
    """Per-process counters of every :class:`DiskCache` lookup and store.

    ``corrupt`` counts lookups that found an entry but could not trust it
    (truncated JSON, wrong format version, an injected ``cache.load``
    fault) — each such lookup also counts as a miss, because the caller
    recomputes.  ``store_failures`` counts best-effort stores that were
    swallowed.  The counters are process-global (one simulator run touches
    many cache directories) and per process: parallel workers accumulate
    their own, which never reach the parent.
    """

    hits: int = 0
    misses: int = 0
    corrupt: int = 0
    stores: int = 0
    store_failures: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def to_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "corrupt": self.corrupt,
            "stores": self.stores,
            "store_failures": self.store_failures,
        }

    def snapshot(self) -> "CacheStats":
        return CacheStats(**self.to_dict())

    def delta(self, before: "CacheStats") -> "CacheStats":
        return CacheStats(
            hits=self.hits - before.hits,
            misses=self.misses - before.misses,
            corrupt=self.corrupt - before.corrupt,
            stores=self.stores - before.stores,
            store_failures=self.store_failures - before.store_failures,
        )


#: The process-wide counters; read through :func:`cache_stats`.
_CACHE_STATS = CacheStats()


def cache_stats() -> CacheStats:
    """The live process-wide cache counters (mutating object, not a copy)."""
    return _CACHE_STATS


def reset_cache_stats() -> None:
    """Zero the process-wide cache counters (tests and fresh measurements)."""
    _CACHE_STATS.hits = 0
    _CACHE_STATS.misses = 0
    _CACHE_STATS.corrupt = 0
    _CACHE_STATS.stores = 0
    _CACHE_STATS.store_failures = 0

#: Temp files untouched for this long are considered orphaned by a dead
#: writer (a live atomic write lasts milliseconds).
STALE_TMP_SECONDS = 3600.0

#: Per-process sequence number making temp names unique even when several
#: threads of one process race a store on the same key.
_TMP_SEQUENCE = itertools.count()

#: Directories already swept for stale temp files in this process.
_SWEPT_ROOTS: Set[Path] = set()


def sweep_stale_tmps(
    directory: Union[str, Path], max_age_seconds: float = STALE_TMP_SECONDS
) -> int:
    """Remove orphaned atomic-write temp files; returns the number removed.

    Only files matching the ``.<name>.<pid>[.<seq>].tmp`` pattern *and*
    older than ``max_age_seconds`` are touched, so a concurrent writer's
    in-flight temp file is never deleted from under it.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return 0
    removed = 0
    now = time.time()
    for tmp in directory.glob(".*.tmp"):
        try:
            if now - tmp.stat().st_mtime >= max_age_seconds:
                tmp.unlink()
                removed += 1
        except OSError:
            continue  # already gone, or unreadable — not ours to force
    return removed


def content_key(payload: dict) -> str:
    """SHA-256 of the canonical JSON encoding of ``payload``."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def atomic_write_json(
    path: Path,
    payload: dict,
    indent: Optional[int] = None,
    trailing_newline: bool = False,
) -> Path:
    """Write sorted-keys JSON via a temp file + ``os.replace``.

    The single atomic-write implementation behind the result cache,
    experiment artifacts and sweep-point artifacts: a concurrent or
    interrupted writer can never leave a half-written document behind.
    Errors propagate — callers that treat persistence as best-effort wrap
    the call themselves.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    text = json.dumps(payload, indent=indent, sort_keys=True)
    tmp = path.with_name(f".{path.name}.{os.getpid()}.{next(_TMP_SEQUENCE)}.tmp")
    try:
        tmp.write_text(text + "\n" if trailing_newline else text)
        os.replace(tmp, path)
    except BaseException:
        # Never leave a temp file behind on a failed write (a writer killed
        # mid-write still can; sweep_stale_tmps reclaims those later).
        try:
            tmp.unlink()
        except OSError:
            pass
        raise
    return path


class DiskCache:
    """A directory of content-addressed JSON documents."""

    def __init__(self, cache_dir: Union[str, Path], subdir: str = "runs") -> None:
        self.root = Path(cache_dir) / subdir
        # Reclaim temp files orphaned by writers that died mid-write; once
        # per directory per process so hot cache paths stay glob-free.
        if self.root not in _SWEPT_ROOTS:
            _SWEPT_ROOTS.add(self.root)
            sweep_stale_tmps(self.root)

    def path_for(self, payload: dict) -> Path:
        return self.root / f"{content_key(payload)}.json"

    def load(self, payload: dict) -> Optional[dict]:
        """Return the cached document for ``payload``, or ``None`` on a miss.

        A corrupted, truncated or wrong-format entry counts as a miss; the
        offending file is removed so the recomputed result can replace it.
        """
        path = self.path_for(payload)
        try:
            maybe_raise("cache.load")
            document = json.loads(path.read_text())
            if document.get("format_version") != _FORMAT_VERSION:
                raise ValueError("unsupported cache format")
            result = document["result"]
        except FileNotFoundError:
            _CACHE_STATS.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError):
            _CACHE_STATS.corrupt += 1
            _CACHE_STATS.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        _CACHE_STATS.hits += 1
        return result

    def store(self, payload: dict, result: dict) -> Optional[Path]:
        """Atomically write ``result`` for ``payload``; best-effort on errors."""
        document = {"format_version": _FORMAT_VERSION, "result": result}
        try:
            maybe_raise("cache.store")
            path = atomic_write_json(self.path_for(payload), document)
        except (OSError, TypeError, ValueError):
            _CACHE_STATS.store_failures += 1
            return None  # caching is best-effort, never fatal
        _CACHE_STATS.stores += 1
        return path

    def clear(self) -> int:
        """Delete every cached entry; returns the number removed."""
        removed = 0
        if not self.root.is_dir():
            return removed
        for entry in self.root.glob("*.json"):
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
        return removed
