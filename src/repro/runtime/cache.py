"""Content-addressed on-disk result cache.

Simulation results (static profiles, per-kernel ``RunResult``s) are keyed by
the SHA-256 of a canonical-JSON description of *everything that determines
the result*: the kernel spec, the full GPU configuration, the scheme and its
run knobs, and the package version.  Two configs that differ in any
run-affecting knob therefore hash to different entries — there is no
"same label, different knobs" collision by construction.

Layout::

    <cache_dir>/runs/<sha256>.json

Entries are written atomically (temp file + ``os.replace``) so a concurrent
or interrupted writer can never leave a half-written entry behind, and a
corrupted or truncated entry is treated as a miss (and deleted) rather than
an error — the caller simply recomputes.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Optional, Union

_FORMAT_VERSION = 1


def content_key(payload: dict) -> str:
    """SHA-256 of the canonical JSON encoding of ``payload``."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def atomic_write_json(
    path: Path,
    payload: dict,
    indent: Optional[int] = None,
    trailing_newline: bool = False,
) -> Path:
    """Write sorted-keys JSON via a temp file + ``os.replace``.

    The single atomic-write implementation behind the result cache,
    experiment artifacts and sweep-point artifacts: a concurrent or
    interrupted writer can never leave a half-written document behind.
    Errors propagate — callers that treat persistence as best-effort wrap
    the call themselves.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    text = json.dumps(payload, indent=indent, sort_keys=True)
    tmp.write_text(text + "\n" if trailing_newline else text)
    os.replace(tmp, path)
    return path


class DiskCache:
    """A directory of content-addressed JSON documents."""

    def __init__(self, cache_dir: Union[str, Path], subdir: str = "runs") -> None:
        self.root = Path(cache_dir) / subdir

    def path_for(self, payload: dict) -> Path:
        return self.root / f"{content_key(payload)}.json"

    def load(self, payload: dict) -> Optional[dict]:
        """Return the cached document for ``payload``, or ``None`` on a miss.

        A corrupted, truncated or wrong-format entry counts as a miss; the
        offending file is removed so the recomputed result can replace it.
        """
        path = self.path_for(payload)
        try:
            document = json.loads(path.read_text())
            if document.get("format_version") != _FORMAT_VERSION:
                raise ValueError("unsupported cache format")
            return document["result"]
        except FileNotFoundError:
            return None
        except (OSError, ValueError, KeyError, TypeError):
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def store(self, payload: dict, result: dict) -> Optional[Path]:
        """Atomically write ``result`` for ``payload``; best-effort on errors."""
        document = {"format_version": _FORMAT_VERSION, "result": result}
        try:
            return atomic_write_json(self.path_for(payload), document)
        except (OSError, TypeError, ValueError):
            return None  # caching is best-effort, never fatal

    def clear(self) -> int:
        """Delete every cached entry; returns the number removed."""
        removed = 0
        if not self.root.is_dir():
            return removed
        for entry in self.root.glob("*.json"):
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
        return removed
