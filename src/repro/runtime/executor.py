"""Process-pool fan-out for embarrassingly parallel simulation sweeps.

Every figure of the paper is a sweep: the profiler runs one full cycle-level
simulation per point of the ``(N, p)`` warp-tuple grid, and the evaluation
runs one per (scheme, kernel) pair.  The points are independent, so the
:class:`SweepExecutor` fans them out over a ``ProcessPoolExecutor`` and
returns results in submission order — aggregation stays deterministic and
the counters are bit-identical to a serial run.

The worker count comes from the ``REPRO_JOBS`` environment variable:

* unset or ``1`` — serial execution in-process (the default; this is also
  what tests use for determinism-by-construction),
* ``0`` or ``auto`` — one worker per CPU core,
* any other integer — that many workers.

Worker processes force ``REPRO_JOBS=1`` for themselves so nested sweeps
(e.g. a profile sweep inside a parallel training run) never spawn pools of
pools.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, List, Optional, Sequence, Tuple

#: Environment variable controlling the worker count.
JOBS_ENV = "REPRO_JOBS"


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve an explicit or environment-provided worker count to an int."""
    if jobs is not None:
        return max(1, int(jobs))
    raw = os.environ.get(JOBS_ENV, "").strip().lower()
    if raw in ("", "1"):
        return 1
    if raw in ("0", "auto"):
        return os.cpu_count() or 1
    try:
        return max(1, int(raw))
    except ValueError:
        return 1


def _worker_init() -> None:
    """Run in every pool worker: force serial execution for nested sweeps."""
    os.environ[JOBS_ENV] = "1"


class SweepExecutor:
    """Order-preserving map over independent simulation jobs.

    ``map(fn, args_list)`` behaves like ``[fn(*args) for args in args_list]``
    but fans the calls out over ``jobs`` worker processes when ``jobs > 1``.
    ``fn`` must be a module-level function and every argument picklable
    (an unpicklable argument raises, loudly — it is a programming error,
    not an environment problem).  Pool-*infrastructure* failures — a
    sandbox that forbids subprocesses, a fork failure, workers dying —
    degrade to the serial path, which always works; exceptions raised by
    ``fn`` itself propagate unchanged.
    """

    def __init__(self, jobs: Optional[int] = None) -> None:
        self.jobs = resolve_jobs(jobs)

    @property
    def parallel(self) -> bool:
        return self.jobs > 1

    def map(self, fn: Callable, args_list: Sequence[Tuple]) -> List[Any]:
        args_list = list(args_list)
        if self.jobs <= 1 or len(args_list) <= 1:
            return [fn(*args) for args in args_list]
        workers = min(self.jobs, len(args_list))
        try:
            pool = ProcessPoolExecutor(max_workers=workers, initializer=_worker_init)
        except (OSError, PermissionError, ValueError):
            # The environment cannot spawn worker processes at all.
            return [fn(*args) for args in args_list]
        try:
            with pool:
                futures = [pool.submit(fn, *args) for args in args_list]
                return [future.result() for future in futures]
        except BrokenProcessPool:
            # Workers died underneath us (OOM-kill, sandbox reaping) — the
            # jobs are pure simulations, so recomputing serially is safe.
            return [fn(*args) for args in args_list]
