"""Fault-tolerant process-pool fan-out for embarrassingly parallel sweeps.

Every figure of the paper is a sweep: the profiler runs one full cycle-level
simulation per point of the ``(N, p)`` warp-tuple grid, and the evaluation
runs one per (scheme, kernel) pair.  The points are independent, so the
:class:`SweepExecutor` fans them out over a ``ProcessPoolExecutor`` and
returns results in submission order — aggregation stays deterministic and
the counters are bit-identical to a serial run.

On top of the fan-out sits the fault-tolerance layer every later
service/dispatcher piece builds on:

* **per-job wall-clock timeouts** (``timeout=``/``REPRO_TIMEOUT``) — a hung
  or stalled worker is abandoned, the pool restarted, and the job retried;
* **bounded retry with deterministic jittered backoff**
  (``retries=``/``REPRO_RETRIES``) — transient failures (``OSError``,
  timeouts, worker death) are retried; exceptions raised by the job
  function itself (anything else) propagate unchanged;
* **partial-result salvage** — when the pool breaks (OOM-killed worker,
  sandbox reaping) every future that already completed keeps its result and
  only the missing jobs are recomputed;
* **serial escalation** — a job that exhausts its pool attempts runs one
  final time in the parent process, which always works;
* a structured :class:`JobReport` (attempts, retries, timeouts, salvaged,
  escalated, pool restarts) surfaced to callers via
  :meth:`SweepExecutor.map_with_report` / ``last_report``.

The worker count comes from the ``REPRO_JOBS`` environment variable:

* unset or ``1`` — serial execution in-process (the default; this is also
  what tests use for determinism-by-construction),
* ``0`` or ``auto`` — one worker per CPU core,
* any other integer — that many workers,
* anything else — a one-time warning naming the bad value, then serial.

Worker processes force ``REPRO_JOBS=1`` for themselves so nested sweeps
(e.g. a profile sweep inside a parallel training run) never spawn pools of
pools.  Timeouts cannot preempt the serial path (there is no worker to
abandon); serial execution still retries transient ``OSError``s.
"""

from __future__ import annotations

import os
import random
import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.runtime import faults

#: Environment variables controlling the fan-out and its failure policy.
JOBS_ENV = "REPRO_JOBS"
TIMEOUT_ENV = "REPRO_TIMEOUT"
RETRIES_ENV = "REPRO_RETRIES"
BACKOFF_ENV = "REPRO_RETRY_BACKOFF"

#: Default retry budget per job (attempts = retries + 1, then escalation).
DEFAULT_RETRIES = 2
#: Default backoff base in seconds (exponential, jittered, capped).
DEFAULT_BACKOFF = 0.05
_BACKOFF_CAP = 2.0

#: Exceptions treated as transient (retryable).  ``FaultInjectedError`` is an
#: ``OSError`` subclass, so injected faults ride the same policy as real ones.
RETRYABLE = (OSError,)

_warned_env: Set[Tuple[str, str]] = set()


def _warn_once(env_var: str, raw: str, fallback: str) -> None:
    """One warning per (variable, bad value) per process — loud, not fatal."""
    key = (env_var, raw)
    if key in _warned_env:
        return
    _warned_env.add(key)
    warnings.warn(
        f"{env_var}={raw!r} is not a valid value — falling back to {fallback}",
        RuntimeWarning,
        stacklevel=3,
    )


def env_number(
    env_var: str,
    cast: Callable[[str], Any],
    fallback: Any,
    fallback_desc: str,
) -> Any:
    """Parse a numeric environment variable with warn-once fallback.

    The single policy for every ``REPRO_*`` runtime knob (and the serve
    daemon's knobs): an unset/blank variable silently takes the fallback,
    while a value ``cast`` rejects warns once — naming the bad value and
    what is used instead — and then takes the fallback.  Never raises,
    never silently swallows a typo.
    """
    raw = os.environ.get(env_var, "").strip()
    if not raw:
        return fallback
    try:
        return cast(raw)
    except (TypeError, ValueError):
        _warn_once(env_var, raw, fallback_desc)
        return fallback


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve an explicit or environment-provided worker count to an int."""
    if jobs is not None:
        return max(1, int(jobs))

    def cast(raw: str) -> int:
        raw = raw.lower()
        if raw in ("0", "auto"):
            return os.cpu_count() or 1
        return max(1, int(raw))

    return env_number(JOBS_ENV, cast, 1, "serial execution (1 job)")


def resolve_timeout(timeout: Optional[float] = None) -> Optional[float]:
    """Per-job wall-clock timeout in seconds; ``None``/``0`` disables."""
    if timeout is not None:
        timeout = float(timeout)
        return timeout if timeout > 0 else None

    def cast(raw: str) -> Optional[float]:
        value = float(raw)
        return value if value > 0 else None

    return env_number(TIMEOUT_ENV, cast, None, "no per-job timeout")


def resolve_retries(retries: Optional[int] = None) -> int:
    """Retry budget per job (on top of the first attempt)."""
    if retries is not None:
        return max(0, int(retries))
    return env_number(
        RETRIES_ENV,
        lambda raw: max(0, int(raw)),
        DEFAULT_RETRIES,
        f"{DEFAULT_RETRIES} retries",
    )


def resolve_backoff(backoff: Optional[float] = None) -> float:
    """Backoff base in seconds (0 disables sleeping between retries)."""
    if backoff is not None:
        return max(0.0, float(backoff))
    return env_number(
        BACKOFF_ENV,
        lambda raw: max(0.0, float(raw)),
        DEFAULT_BACKOFF,
        f"{DEFAULT_BACKOFF}s backoff base",
    )


def _worker_init() -> None:
    """Run in every pool worker: force serial execution for nested sweeps."""
    os.environ[JOBS_ENV] = "1"


@dataclass
class _WorkerEnvelope:
    """A pool-worker result plus the cache counters it accumulated.

    ``CacheStats`` counters are per process, so a parallel sweep's worker-side
    hits and misses would otherwise never reach the parent (the documented
    blind spot of the telemetry layer).  Every pool job is wrapped in
    :func:`_job_with_cache_delta`, which brackets the job with a counter
    snapshot and ships the delta home inside this envelope; the parent
    unwraps it and folds the deltas into :attr:`JobReport.worker_cache`.
    """

    result: Any
    cache: Dict[str, int]


def _job_with_cache_delta(fn: Callable, *args) -> "_WorkerEnvelope":
    """Module-level (picklable) pool-job wrapper measuring cache counters."""
    from repro.runtime.cache import cache_stats

    before = cache_stats().snapshot()
    result = fn(*args)
    return _WorkerEnvelope(result, cache_stats().delta(before).to_dict())


@dataclass
class JobRecord:
    """Per-job bookkeeping accumulated while a map call executes."""

    index: int
    attempts: int = 0
    timeouts: int = 0
    transient_errors: int = 0
    salvaged: bool = False
    escalated: bool = False
    injected: Optional[str] = None  # first injected fault action, if any


@dataclass(frozen=True)
class JobReport:
    """Structured failure accounting of one :meth:`SweepExecutor.map` call."""

    jobs: int
    attempts: int
    retries: int
    timeouts: int
    transient_errors: int
    salvaged: int
    escalated: int
    pool_restarts: int
    injected: int
    #: Cache counters accumulated *inside* pool workers (summed over jobs),
    #: or ``None`` for a serial run (the parent's own counters already
    #: account for everything).  Closes the per-process counter blind spot.
    worker_cache: Optional[Dict[str, int]] = None

    @classmethod
    def from_records(
        cls,
        records: Sequence[JobRecord],
        pool_restarts: int = 0,
        worker_cache: Optional[Dict[str, int]] = None,
    ) -> "JobReport":
        return cls(
            jobs=len(records),
            attempts=sum(record.attempts for record in records),
            retries=sum(max(0, record.attempts - 1) for record in records),
            timeouts=sum(record.timeouts for record in records),
            transient_errors=sum(record.transient_errors for record in records),
            salvaged=sum(record.salvaged for record in records),
            escalated=sum(record.escalated for record in records),
            pool_restarts=pool_restarts,
            injected=sum(record.injected is not None for record in records),
            worker_cache=dict(worker_cache) if worker_cache else None,
        )

    def to_dict(self) -> Dict[str, Any]:
        """The plain-dict form telemetry sidecars and bench entries embed."""
        return asdict(self)

    @property
    def clean(self) -> bool:
        """True when every job succeeded on its first attempt."""
        return not (
            self.retries
            or self.timeouts
            or self.transient_errors
            or self.salvaged
            or self.escalated
            or self.pool_restarts
        )

    def summary(self) -> str:
        retries = f"{self.retries} {'retry' if self.retries == 1 else 'retries'}"
        parts = [
            f"{self.jobs} jobs",
            f"{self.attempts} attempts ({retries})",
        ]
        if self.timeouts:
            parts.append(f"{self.timeouts} timed out")
        if self.transient_errors:
            parts.append(f"{self.transient_errors} transient errors")
        if self.salvaged:
            parts.append(f"{self.salvaged} salvaged")
        if self.escalated:
            parts.append(f"{self.escalated} escalated to serial")
        if self.pool_restarts:
            restarts = "restart" if self.pool_restarts == 1 else "restarts"
            parts.append(f"{self.pool_restarts} pool {restarts}")
        if self.injected:
            parts.append(f"{self.injected} fault-injected")
        return ", ".join(parts)


class SweepExecutor:
    """Order-preserving, fault-tolerant map over independent simulation jobs.

    ``map(fn, args_list)`` behaves like ``[fn(*args) for args in args_list]``
    but fans the calls out over ``jobs`` worker processes when ``jobs > 1``.
    ``fn`` must be a module-level function and every argument picklable
    (an unpicklable argument raises, loudly — it is a programming error,
    not an environment problem).  Pool-*infrastructure* failures — a
    sandbox that forbids subprocesses, a fork failure, workers dying,
    stalls past the per-job timeout — are retried, salvaged around and
    ultimately escalated to the serial path, which always works;
    exceptions raised by ``fn`` itself propagate unchanged.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        timeout: Optional[float] = None,
        retries: Optional[int] = None,
        backoff_base: Optional[float] = None,
    ) -> None:
        self.jobs = resolve_jobs(jobs)
        self.timeout = resolve_timeout(timeout)
        self.retries = resolve_retries(retries)
        self.backoff_base = resolve_backoff(backoff_base)
        #: The :class:`JobReport` of the most recent map call (or ``run_one``
        #: sequence); ``None`` until something has executed.
        self.last_report: Optional[JobReport] = None
        self._records: List[JobRecord] = []
        self._pool_restarts = 0
        self._worker_cache: Dict[str, int] = {}

    @property
    def parallel(self) -> bool:
        return self.jobs > 1

    # -- public API ---------------------------------------------------------------

    def map(self, fn: Callable, args_list: Sequence[Tuple]) -> List[Any]:
        results, self.last_report = self.map_with_report(fn, args_list)
        return results

    def map_with_report(
        self, fn: Callable, args_list: Sequence[Tuple]
    ) -> Tuple[List[Any], JobReport]:
        """Like :meth:`map`, returning the failure accounting alongside."""
        args_list = list(args_list)
        self._records = [JobRecord(index) for index in range(len(args_list))]
        self._pool_restarts = 0
        self._worker_cache = {}
        if self.jobs <= 1 or len(args_list) <= 1:
            results = [
                self._run_serial(fn, args, record)
                for args, record in zip(args_list, self._records)
            ]
        else:
            results = self._map_parallel(fn, args_list)
        report = JobReport.from_records(
            self._records, self._pool_restarts, self._worker_cache
        )
        self.last_report = report
        return results, report

    def run_one(self, fn: Callable, args: Tuple) -> Any:
        """Execute a single job serially under the retry policy.

        Used by callers that stream results one at a time (so artifacts can
        checkpoint as they land) while still accumulating a report: each
        call appends to the running accounting in ``last_report``.
        """
        if self.last_report is None:
            self._records = []
            self._pool_restarts = 0
            self._worker_cache = {}
        record = JobRecord(len(self._records))
        self._records.append(record)
        try:
            return self._run_serial(fn, args, record)
        finally:
            self.last_report = JobReport.from_records(
                self._records, self._pool_restarts, self._worker_cache
            )

    # -- serial path --------------------------------------------------------------

    def _run_serial(self, fn: Callable, args: Tuple, record: JobRecord) -> Any:
        """In-process execution with bounded retry on transient errors."""
        attempt = 0
        while True:
            record.attempts += 1
            try:
                return fn(*args)
            except RETRYABLE:
                record.transient_errors += 1
                if attempt >= self.retries:
                    raise
                self._sleep_backoff(attempt + 1, record.index)
                attempt += 1

    def _sleep_backoff(self, round_index: int, salt: int = 0) -> None:
        """Deterministic jittered exponential backoff before a retry round."""
        if self.backoff_base <= 0:
            return
        spec = faults.active_spec()
        seed = spec.seed if spec is not None else 0
        jitter = random.Random(f"{seed}:{round_index}:{salt}").random()
        delay = self.backoff_base * (2 ** (round_index - 1)) * (0.5 + jitter)
        time.sleep(min(delay, _BACKOFF_CAP))

    # -- parallel path ------------------------------------------------------------

    def _map_parallel(self, fn: Callable, args_list: List[Tuple]) -> List[Any]:
        population = len(args_list)
        spec = faults.active_spec()
        records = self._records
        results: Dict[int, Any] = {}
        pending = list(range(population))
        pool: Optional[ProcessPoolExecutor] = None
        max_attempts = self.retries + 1
        round_index = 0
        try:
            while pending:
                # Jobs that exhausted their pool attempts run one final time
                # in this process — the path that cannot be OOM-killed.
                exhausted = [
                    index for index in pending if records[index].attempts >= max_attempts
                ]
                for index in exhausted:
                    records[index].escalated = True
                    records[index].attempts += 1
                    results[index] = fn(*args_list[index])
                if exhausted:
                    pending = [index for index in pending if index not in set(exhausted)]
                    if not pending:
                        break
                if round_index:
                    self._sleep_backoff(round_index)
                if pool is None:
                    try:
                        pool = ProcessPoolExecutor(
                            max_workers=min(self.jobs, len(pending)),
                            initializer=_worker_init,
                        )
                    except (OSError, PermissionError, ValueError):
                        # The environment cannot spawn worker processes at
                        # all — finish everything on the serial path.
                        for index in pending:
                            results[index] = self._run_serial(
                                fn, args_list[index], records[index]
                            )
                        pending = []
                        break
                pending = self._run_round(
                    pool, fn, args_list, pending, records, results, spec
                )
                if self._pool_abandoned:
                    pool = None
                round_index += 1
        finally:
            if pool is not None:
                pool.shutdown(wait=True)
        return [results[index] for index in range(population)]

    _pool_abandoned = False

    def _run_round(
        self,
        pool: ProcessPoolExecutor,
        fn: Callable,
        args_list: List[Tuple],
        pending: List[int],
        records: List[JobRecord],
        results: Dict[int, Any],
        spec: Optional[faults.FaultSpec],
    ) -> List[int]:
        """Submit one attempt for every pending job; return the jobs to retry."""
        self._pool_abandoned = False
        population = len(args_list)
        futures = []
        for index in pending:
            action = None
            if spec is not None:
                action = spec.executor_action(index, records[index].attempts, population)
                if action is not None and records[index].injected is None:
                    records[index].injected = action
            if action is None:
                futures.append(
                    pool.submit(_job_with_cache_delta, fn, *args_list[index])
                )
            else:
                futures.append(
                    pool.submit(
                        faults.invoke_with_fault,
                        action,
                        spec.stall_seconds,
                        spec.crash_delay_seconds,
                        _job_with_cache_delta,
                        fn,
                        *args_list[index],
                    )
                )
        submitted = time.monotonic()
        abandon = False
        fatal: Optional[BaseException] = None
        retry: List[int] = []
        for index, future in zip(pending, futures):
            record = records[index]
            if abandon or fatal is not None:
                # The pool is compromised (stall or break) or a job failed
                # fatally: stop waiting, but salvage every result that
                # already exists — those jobs are done, not recomputed.
                if future.done() and not future.cancelled():
                    error = future.exception()
                    if error is None:
                        record.attempts += 1
                        record.salvaged = True
                        results[index] = self._absorb(future.result())
                    elif isinstance(error, BrokenProcessPool):
                        record.attempts += 1
                        retry.append(index)
                    elif isinstance(error, RETRYABLE):
                        record.attempts += 1
                        record.transient_errors += 1
                        retry.append(index)
                    elif fatal is None:
                        record.attempts += 1
                        fatal = error
                else:
                    future.cancel()
                    retry.append(index)  # never ran: no attempt consumed
                continue
            try:
                if self.timeout is not None:
                    remaining = max(0.0, submitted + self.timeout - time.monotonic())
                    results[index] = self._absorb(future.result(timeout=remaining))
                else:
                    results[index] = self._absorb(future.result())
                record.attempts += 1
            except FutureTimeoutError:
                record.attempts += 1
                record.timeouts += 1
                retry.append(index)
                future.cancel()
                # A stalled worker still occupies its slot; the only way to
                # reclaim it is to abandon this pool and start fresh.
                abandon = True
            except BrokenProcessPool:
                record.attempts += 1
                retry.append(index)
                abandon = True
            except RETRYABLE:
                record.attempts += 1
                record.transient_errors += 1
                retry.append(index)
            except BaseException as error:
                # fn's own failure: propagate unchanged (after salvaging the
                # jobs that already completed, so their attempts are logged).
                record.attempts += 1
                fatal = error
        if abandon or fatal is not None:
            self._teardown(pool)
            self._pool_abandoned = True
            if abandon:
                self._pool_restarts += 1
        if fatal is not None:
            raise fatal
        return retry

    def _absorb(self, value: Any) -> Any:
        """Unwrap a pool-worker envelope, folding its cache delta home."""
        if isinstance(value, _WorkerEnvelope):
            for key, count in value.cache.items():
                if count:
                    self._worker_cache[key] = self._worker_cache.get(key, 0) + count
            return value.result
        return value

    @staticmethod
    def _teardown(pool: ProcessPoolExecutor) -> None:
        """Abandon a pool without waiting on hung workers.

        ``shutdown(wait=False)`` alone would leave a stalled worker running
        (and the interpreter joining it at exit), so any processes still
        alive are killed outright — exactly what the fault model assumes an
        operator or the kernel OOM-killer does to a wedged job.
        """
        # Snapshot the workers first: shutdown(wait=False) drops the pool's
        # ``_processes`` reference, and a stalled worker that outlives it
        # would be joined at interpreter exit — hanging the whole run.
        processes = list((getattr(pool, "_processes", None) or {}).values())
        pool.shutdown(wait=False, cancel_futures=True)
        for process in processes:
            try:
                process.kill()
            except Exception:  # pragma: no cover - best-effort teardown
                pass
