"""Entry point for ``python -m repro`` (see :mod:`repro.cli.main`)."""

import sys

from repro.cli.main import main

if __name__ == "__main__":
    sys.exit(main())
