"""Specifications for synthetic kernels and benchmarks."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional


@dataclass(frozen=True)
class KernelSpec:
    """Parameters of one synthetic kernel.

    Attributes:
        name: kernel identifier (unique within its benchmark).
        num_warps: warps launched on the scheduler (≤ 24 in the baseline).
        instructions_per_warp: total instructions each warp executes.  The
            default is large enough that kernels behave as a steady stream of
            work over any measurement window (real kernels launch far more
            thread blocks than an SM can hold, so warp supply never drains).
        instructions_per_load: average instructions between adjacent global
            loads — the paper's ``In``.  A value of 3 means every third
            instruction is a load.
        dep_distance: independent instructions between a load and its first
            use — the paper's ``Id``.
        intra_warp_fraction: probability a load touches the warp's private
            working set.
        inter_warp_fraction: probability a load touches the region shared by
            all warps.  The remaining probability is a streaming access.
        private_lines: size (in cache lines) of each warp's private working
            set; governs the reuse distance ``R``.
        shared_lines: size (in cache lines) of the shared region.
        seed: RNG seed for address generation (kernels are deterministic).
    """

    name: str
    num_warps: int = 24
    instructions_per_warp: int = 6000
    instructions_per_load: int = 3
    dep_distance: int = 5
    intra_warp_fraction: float = 0.6
    inter_warp_fraction: float = 0.2
    private_lines: int = 200
    shared_lines: int = 512
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.intra_warp_fraction <= 1:
            raise ValueError("intra_warp_fraction must be in [0, 1]")
        if not 0 <= self.inter_warp_fraction <= 1:
            raise ValueError("inter_warp_fraction must be in [0, 1]")
        if self.intra_warp_fraction + self.inter_warp_fraction > 1 + 1e-9:
            raise ValueError("locality fractions must sum to at most 1")
        if self.num_warps < 1:
            raise ValueError("a kernel needs at least one warp")
        if self.instructions_per_load < 1:
            raise ValueError("instructions_per_load must be at least 1")
        if self.private_lines < 1 or self.shared_lines < 1:
            raise ValueError("working-set sizes must be positive")

    @property
    def streaming_fraction(self) -> float:
        return max(0.0, 1.0 - self.intra_warp_fraction - self.inter_warp_fraction)

    def variant(self, suffix: str, **changes) -> "KernelSpec":
        """Derive a jittered variant of this kernel (used to populate the
        multi-kernel training benchmarks)."""
        return replace(self, name=f"{self.name}_{suffix}", **changes)


@dataclass(frozen=True)
class BenchmarkSpec:
    """A named benchmark: a suite label plus one or more kernels."""

    name: str
    suite: str
    kernels: List[KernelSpec] = field(default_factory=list)
    role: str = "evaluation"  # "training", "evaluation", "compute" or "trace"
    description: str = ""

    def __post_init__(self) -> None:
        if self.role not in ("training", "evaluation", "compute", "trace"):
            raise ValueError(f"unknown benchmark role {self.role!r}")
        if not self.kernels:
            raise ValueError("a benchmark needs at least one kernel")

    @property
    def num_kernels(self) -> int:
        return len(self.kernels)

    def kernel(self, name: str) -> Optional[KernelSpec]:
        for spec in self.kernels:
            if spec.name == name:
                return spec
        return None
