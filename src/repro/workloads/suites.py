"""Benchmark definitions.

The training / evaluation split mirrors Table IIIa of the paper:

* **Training** (never evaluated): Graph Coloring (``gco``), Page View Rank
  (``pvr``), Component Label (``ccl``).  Each training benchmark contributes
  many kernel variants, produced by deterministic parameter jitter, so the
  regression sees a spectrum of memory behaviours (the paper trains on 277
  kernels; this reproduction uses a smaller but similarly diverse set).
* **Evaluation** (unseen during training): syr2k, syrk, mm, ii, gsmv, mvt,
  bicg, ss, atax, bfs, kmeans.
* **Compute-intensive** (Fig. 16): wc, covar, gramschm, sradv2, hybridsort,
  hotspot, pathfinder — memory-insensitive kernels with few loads.

Each benchmark's locality parameters are chosen to match the qualitative
characterisation in the paper (Fig. 4): ``ii`` is intra-warp dominated with a
modest footprint, ``bfs`` has a large footprint that keeps thrashing even
with one polluting warp, ``syr2k`` mixes intra- and inter-warp reuse, ``ss``
and ``cfd``-like kernels are inter-warp dominated, and so on.
"""

from __future__ import annotations

from typing import Dict, List

from repro.workloads.spec import BenchmarkSpec, KernelSpec


def _jitter_variants(base: KernelSpec, count: int, *, seed: int) -> List[KernelSpec]:
    """Derive ``count`` deterministic variants of ``base``.

    The jitter perturbs locality fractions, footprints and load density so a
    multi-kernel training benchmark covers a range of memory sensitivities,
    the way the paper's 277 training kernels do.
    """
    import random

    rng = random.Random(seed)
    variants: List[KernelSpec] = []
    for index in range(count):
        intra = min(0.95, max(0.10, base.intra_warp_fraction + rng.uniform(-0.20, 0.10)))
        inter_cap = max(0.0, 0.97 - intra)
        inter = min(inter_cap, max(0.02, base.inter_warp_fraction + rng.uniform(-0.10, 0.15)))
        private = max(32, int(base.private_lines * rng.uniform(0.6, 2.0)))
        shared = max(96, int(base.shared_lines * rng.uniform(0.6, 1.6)))
        per_load = max(2, base.instructions_per_load + rng.randint(-1, 2))
        warps = rng.choice([16, 20, 24, 24])
        dep = rng.choice([5, 6, 7, 8])
        variants.append(
            base.variant(
                f"k{index:03d}",
                intra_warp_fraction=round(intra, 3),
                inter_warp_fraction=round(inter, 3),
                private_lines=private,
                shared_lines=shared,
                instructions_per_load=per_load,
                num_warps=warps,
                dep_distance=dep,
                seed=base.seed + index + 1,
            )
        )
    return variants


# ---------------------------------------------------------------------------
# Training benchmarks (Graph suite + MapReduce pvr)
# ---------------------------------------------------------------------------

def _training_benchmarks() -> List[BenchmarkSpec]:
    gco_base = KernelSpec(
        name="gco",
        intra_warp_fraction=0.85,
        inter_warp_fraction=0.08,
        private_lines=90,
        shared_lines=320,
        instructions_per_load=3,
        dep_distance=7,
        seed=11,
    )
    pvr_base = KernelSpec(
        name="pvr",
        intra_warp_fraction=0.72,
        inter_warp_fraction=0.20,
        private_lines=110,
        shared_lines=420,
        instructions_per_load=3,
        dep_distance=6,
        seed=23,
    )
    ccl_base = KernelSpec(
        name="ccl",
        intra_warp_fraction=0.55,
        inter_warp_fraction=0.35,
        private_lines=150,
        shared_lines=520,
        instructions_per_load=4,
        dep_distance=6,
        seed=37,
    )
    return [
        BenchmarkSpec(
            name="gco",
            suite="Graph",
            role="training",
            description="Graph Coloring",
            kernels=_jitter_variants(gco_base, 12, seed=101),
        ),
        BenchmarkSpec(
            name="pvr",
            suite="MapReduce",
            role="training",
            description="Page View Rank",
            kernels=_jitter_variants(pvr_base, 20, seed=202),
        ),
        BenchmarkSpec(
            name="ccl",
            suite="Graph",
            role="training",
            description="Component Label",
            kernels=_jitter_variants(ccl_base, 14, seed=303),
        ),
    ]


# ---------------------------------------------------------------------------
# Evaluation benchmarks (Table IIIa, unseen during training)
# ---------------------------------------------------------------------------

def _evaluation_benchmarks() -> List[BenchmarkSpec]:
    return [
        BenchmarkSpec(
            name="syr2k",
            suite="Polybench",
            description="Symmetric rank-2k operations",
            kernels=[
                KernelSpec(
                    name="syr2k_k0",
                    intra_warp_fraction=0.55,
                    inter_warp_fraction=0.40,
                    private_lines=70,
                    shared_lines=200,
                    instructions_per_load=2,
                    dep_distance=8,
                    seed=1001,
                ),
            ],
        ),
        BenchmarkSpec(
            name="syrk",
            suite="Polybench",
            description="Symmetric rank-k operations",
            kernels=[
                KernelSpec(
                    name="syrk_k0",
                    intra_warp_fraction=0.62,
                    inter_warp_fraction=0.33,
                    private_lines=75,
                    shared_lines=220,
                    instructions_per_load=2,
                    dep_distance=8,
                    seed=1010,
                ),
            ],
        ),
        BenchmarkSpec(
            name="mm",
            suite="MapReduce",
            description="Matrix Multiply",
            kernels=[
                KernelSpec(
                    name="mm_k0",
                    intra_warp_fraction=0.93,
                    inter_warp_fraction=0.04,
                    private_lines=55,
                    shared_lines=220,
                    instructions_per_load=2,
                    dep_distance=8,
                    seed=1020,
                ),
                KernelSpec(
                    name="mm_k1",
                    intra_warp_fraction=0.90,
                    inter_warp_fraction=0.06,
                    private_lines=70,
                    shared_lines=240,
                    instructions_per_load=2,
                    dep_distance=8,
                    seed=1021,
                ),
            ],
        ),
        BenchmarkSpec(
            name="ii",
            suite="MapReduce",
            description="Inverted Index",
            kernels=[
                KernelSpec(
                    name="ii_k0",
                    intra_warp_fraction=0.90,
                    inter_warp_fraction=0.04,
                    private_lines=85,
                    shared_lines=200,
                    instructions_per_load=3,
                    dep_distance=7,
                    seed=1030,
                ),
                KernelSpec(
                    name="ii_k1",
                    intra_warp_fraction=0.88,
                    inter_warp_fraction=0.05,
                    private_lines=100,
                    shared_lines=200,
                    instructions_per_load=3,
                    dep_distance=7,
                    seed=1031,
                ),
                KernelSpec(
                    name="ii_k2",
                    intra_warp_fraction=0.92,
                    inter_warp_fraction=0.03,
                    private_lines=65,
                    shared_lines=200,
                    instructions_per_load=2,
                    dep_distance=7,
                    seed=1032,
                ),
            ],
        ),
        BenchmarkSpec(
            name="gsmv",
            suite="Polybench",
            description="Scalar and Vector Multiplication",
            kernels=[
                KernelSpec(
                    name="gsmv_k0",
                    intra_warp_fraction=0.78,
                    inter_warp_fraction=0.16,
                    private_lines=90,
                    shared_lines=320,
                    instructions_per_load=3,
                    dep_distance=6,
                    seed=1040,
                ),
                KernelSpec(
                    name="gsmv_k1",
                    intra_warp_fraction=0.74,
                    inter_warp_fraction=0.18,
                    private_lines=105,
                    shared_lines=340,
                    instructions_per_load=3,
                    dep_distance=6,
                    seed=1041,
                ),
            ],
        ),
        BenchmarkSpec(
            name="mvt",
            suite="Polybench",
            description="Matrix Vector Product",
            kernels=[
                KernelSpec(
                    name="mvt_k0",
                    intra_warp_fraction=0.80,
                    inter_warp_fraction=0.14,
                    private_lines=100,
                    shared_lines=300,
                    instructions_per_load=3,
                    dep_distance=6,
                    seed=1050,
                ),
            ],
        ),
        BenchmarkSpec(
            name="bicg",
            suite="Polybench",
            description="BiCGStab Linear Solver",
            kernels=[
                KernelSpec(
                    name="bicg_k0",
                    intra_warp_fraction=0.66,
                    inter_warp_fraction=0.28,
                    private_lines=90,
                    shared_lines=260,
                    instructions_per_load=3,
                    dep_distance=6,
                    seed=1060,
                ),
                KernelSpec(
                    name="bicg_k1",
                    intra_warp_fraction=0.62,
                    inter_warp_fraction=0.30,
                    private_lines=105,
                    shared_lines=280,
                    instructions_per_load=3,
                    dep_distance=6,
                    seed=1061,
                ),
            ],
        ),
        BenchmarkSpec(
            name="ss",
            suite="MapReduce",
            description="Similarity Score",
            kernels=[
                KernelSpec(
                    name="ss_k0",
                    intra_warp_fraction=0.42,
                    inter_warp_fraction=0.52,
                    private_lines=110,
                    shared_lines=380,
                    instructions_per_load=3,
                    dep_distance=6,
                    seed=1070,
                ),
                KernelSpec(
                    name="ss_k1",
                    intra_warp_fraction=0.40,
                    inter_warp_fraction=0.54,
                    private_lines=125,
                    shared_lines=400,
                    instructions_per_load=3,
                    dep_distance=6,
                    seed=1071,
                ),
            ],
        ),
        BenchmarkSpec(
            name="atax",
            suite="Polybench",
            description="Matrix Transpose and Vector Mult.",
            kernels=[
                KernelSpec(
                    name="atax_k0",
                    intra_warp_fraction=0.70,
                    inter_warp_fraction=0.24,
                    private_lines=95,
                    shared_lines=300,
                    instructions_per_load=3,
                    dep_distance=6,
                    seed=1080,
                ),
                KernelSpec(
                    name="atax_k1",
                    intra_warp_fraction=0.68,
                    inter_warp_fraction=0.26,
                    private_lines=110,
                    shared_lines=320,
                    instructions_per_load=3,
                    dep_distance=6,
                    seed=1081,
                ),
            ],
        ),
        BenchmarkSpec(
            name="bfs",
            suite="Rodinia",
            description="Breadth-First Search",
            kernels=[
                KernelSpec(
                    name="bfs_k0",
                    intra_warp_fraction=0.68,
                    inter_warp_fraction=0.20,
                    private_lines=230,
                    shared_lines=700,
                    instructions_per_load=4,
                    dep_distance=6,
                    seed=1090,
                ),
                KernelSpec(
                    name="bfs_k1",
                    intra_warp_fraction=0.64,
                    inter_warp_fraction=0.22,
                    private_lines=280,
                    shared_lines=760,
                    instructions_per_load=4,
                    dep_distance=6,
                    seed=1091,
                ),
            ],
        ),
        BenchmarkSpec(
            name="kmeans",
            suite="Rodinia",
            description="K-Means Clustering",
            kernels=[
                KernelSpec(
                    name="kmeans_k0",
                    intra_warp_fraction=0.58,
                    inter_warp_fraction=0.30,
                    private_lines=140,
                    shared_lines=480,
                    instructions_per_load=5,
                    dep_distance=5,
                    seed=1100,
                ),
                KernelSpec(
                    name="kmeans_k1",
                    intra_warp_fraction=0.54,
                    inter_warp_fraction=0.32,
                    private_lines=160,
                    shared_lines=500,
                    instructions_per_load=5,
                    dep_distance=5,
                    seed=1101,
                ),
            ],
        ),
    ]


# ---------------------------------------------------------------------------
# Compute-intensive benchmarks (Fig. 16) — memory-insensitive, few loads
# ---------------------------------------------------------------------------

def _compute_benchmarks() -> List[BenchmarkSpec]:
    def compute_kernel(name: str, per_load: int, seed: int) -> KernelSpec:
        return KernelSpec(
            name=name,
            intra_warp_fraction=0.30,
            inter_warp_fraction=0.30,
            private_lines=64,
            shared_lines=128,
            instructions_per_load=per_load,
            dep_distance=min(8, per_load - 1),
            seed=seed,
        )

    names = [
        ("wc", 80, 2001),
        ("covar", 70, 2002),
        ("gramschm", 90, 2003),
        ("sradv2", 60, 2004),
        ("hybridsort", 75, 2005),
        ("hotspot", 100, 2006),
        ("pathfinder", 85, 2007),
    ]
    return [
        BenchmarkSpec(
            name=name,
            suite="Compute",
            role="compute",
            description=f"Compute-intensive kernel ({name})",
            kernels=[compute_kernel(f"{name}_k0", per_load, seed)],
        )
        for name, per_load, seed in names
    ]


def build_all_benchmarks() -> Dict[str, BenchmarkSpec]:
    """Build the complete benchmark dictionary keyed by benchmark name."""
    benchmarks: Dict[str, BenchmarkSpec] = {}
    for spec in _training_benchmarks() + _evaluation_benchmarks() + _compute_benchmarks():
        if spec.name in benchmarks:
            raise ValueError(f"duplicate benchmark name {spec.name!r}")
        benchmarks[spec.name] = spec
    return benchmarks
