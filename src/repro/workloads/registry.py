"""Lookup helpers over the benchmark definitions."""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List

from repro.workloads.spec import BenchmarkSpec
from repro.workloads.suites import build_all_benchmarks

# Evaluation order used in the paper's figures (sorted by Pbest).
EVALUATION_ORDER = [
    "syr2k",
    "syrk",
    "mm",
    "ii",
    "gsmv",
    "mvt",
    "bicg",
    "ss",
    "atax",
    "bfs",
    "kmeans",
]

TRAINING_ORDER = ["gco", "pvr", "ccl"]

COMPUTE_ORDER = ["wc", "covar", "gramschm", "sradv2", "hybridsort", "hotspot", "pathfinder"]

# The trace-native workload suite (structured address streams the synthetic
# generator cannot express; see repro.trace.families).
TRACE_ORDER = ["stencil", "transpose", "gather", "treereduce", "phasemix"]


@lru_cache(maxsize=1)
def _registry() -> Dict[str, BenchmarkSpec]:
    from repro.trace.families import build_trace_benchmarks

    benchmarks = build_all_benchmarks()
    for spec in build_trace_benchmarks():
        if spec.name in benchmarks:
            raise ValueError(f"duplicate benchmark name {spec.name!r}")
        benchmarks[spec.name] = spec
    return benchmarks


def all_benchmarks() -> Dict[str, BenchmarkSpec]:
    """All benchmarks keyed by name."""
    return dict(_registry())


def get_benchmark(name: str) -> BenchmarkSpec:
    try:
        return _registry()[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; known benchmarks: {sorted(_registry())}"
        ) from None


def training_benchmarks() -> List[BenchmarkSpec]:
    """The training split (Graph suite + MapReduce pvr), in paper order."""
    return [get_benchmark(name) for name in TRAINING_ORDER]


def evaluation_benchmarks() -> List[BenchmarkSpec]:
    """The evaluation split (unseen during training), in paper order."""
    return [get_benchmark(name) for name in EVALUATION_ORDER]


def compute_intensive_benchmarks() -> List[BenchmarkSpec]:
    """The memory-insensitive applications of Fig. 16."""
    return [get_benchmark(name) for name in COMPUTE_ORDER]


def trace_benchmarks() -> List[BenchmarkSpec]:
    """The trace-native workload suite (never part of the paper's splits)."""
    return [get_benchmark(name) for name in TRACE_ORDER]
