"""Synthetic workloads standing in for the paper's CUDA benchmark suites.

The paper evaluates Poise on memory-sensitive kernels from Rodinia,
Polybench, Mars/MapReduce and a graph-processing suite.  Those CUDA binaries
and their GPGPU-Sim traces are not available here, so each benchmark is
modelled as a *synthetic kernel generator* parameterised by the same
characteristics the paper measures and learns from:

* intra-warp locality (fraction of loads that re-touch the warp's own
  working set) and the size of that working set (reuse distance ``R``),
* inter-warp locality (fraction of loads to a region shared across warps),
* streaming accesses (no reuse),
* average instructions between global loads (``In``) and the dependency
  distance between a load and its first use (``Id``),
* warp count and kernel length.

The parameters of each benchmark are tuned so the observable counters match
the qualitative characterisation in Fig. 4 and Table IIIa (e.g. ``ii`` is
dominated by intra-warp hits with a small footprint, ``cfd`` by inter-warp
hits with a very large footprint).
"""

from repro.workloads.spec import BenchmarkSpec, KernelSpec
from repro.workloads.generator import generate_kernel_programs
from repro.workloads.registry import (
    all_benchmarks,
    compute_intensive_benchmarks,
    evaluation_benchmarks,
    get_benchmark,
    trace_benchmarks,
    training_benchmarks,
)

__all__ = [
    "BenchmarkSpec",
    "KernelSpec",
    "all_benchmarks",
    "compute_intensive_benchmarks",
    "evaluation_benchmarks",
    "generate_kernel_programs",
    "get_benchmark",
    "trace_benchmarks",
    "training_benchmarks",
]
