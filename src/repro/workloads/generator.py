"""Synthesis of per-warp instruction/address traces from a KernelSpec.

Each warp's program is a repeating pattern of ``In - 1`` ALU instructions
followed by one global LOAD.  Load addresses are drawn from three regions:

* the warp's *private* region (``private_lines`` cache lines) — producing
  intra-warp reuse with an average reuse distance proportional to the
  region size,
* the *shared* region (``shared_lines`` lines), touched by every warp —
  producing inter-warp reuse,
* a *streaming* region of fresh, never-reused lines.

Region bases are spaced far apart so they never alias in the tag space; the
set-index hash of the L1 spreads them over the cache exactly as real
benchmarks' address streams would.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from typing import List, Optional, Tuple

from repro.gpu.isa import Instruction, alu, load
from repro.workloads.spec import KernelSpec

# Region spacing, in cache lines.  Large enough that private/shared/streaming
# regions of all warps never overlap.
_PRIVATE_REGION_STRIDE = 1 << 22
_SHARED_REGION_BASE = 1 << 40
_STREAM_REGION_BASE = 1 << 44

# Static PC tags: every load site in the pattern gets its own PC so that
# instruction-based policies (APCM) can distinguish load instructions.
_PC_LOAD_BASE = 1000


def generate_warp_program(spec: KernelSpec, warp_id: int) -> List[Instruction]:
    """Generate the instruction stream of one warp."""
    rng = random.Random((spec.seed << 20) ^ (warp_id * 0x9E3779B1))
    program: List[Instruction] = []
    private_base = (warp_id + 1) * _PRIVATE_REGION_STRIDE + spec.seed * 131
    stream_base = _STREAM_REGION_BASE + warp_id * _PRIVATE_REGION_STRIDE + spec.seed * 977
    stream_cursor = 0

    group = max(1, spec.instructions_per_load)
    dep = min(spec.dep_distance, group - 1) if group > 1 else 0
    pc_cursor = 0
    load_sites = max(1, min(8, spec.private_lines // 64 + 1))

    while len(program) < spec.instructions_per_warp:
        for _ in range(group - 1):
            if len(program) >= spec.instructions_per_warp:
                return program
            program.append(alu(pc=pc_cursor))
            pc_cursor += 1
        if len(program) >= spec.instructions_per_warp:
            return program
        draw = rng.random()
        if draw < spec.intra_warp_fraction:
            line = private_base + rng.randrange(spec.private_lines)
            pc_tag = _PC_LOAD_BASE + (pc_cursor % load_sites)
        elif draw < spec.intra_warp_fraction + spec.inter_warp_fraction:
            line = _SHARED_REGION_BASE + spec.seed * 7919 + rng.randrange(spec.shared_lines)
            pc_tag = _PC_LOAD_BASE + 100 + (pc_cursor % load_sites)
        else:
            line = stream_base + stream_cursor
            stream_cursor += 1
            pc_tag = _PC_LOAD_BASE + 200  # a single streaming load site
        program.append(load(line, dep_distance=dep, pc=pc_tag))
        pc_cursor += 1
    return program


class BoundedProgramCache:
    """An explicit, bounded LRU of generated warp programs.

    The previous ``@lru_cache`` kept whole kernels' programs (hundreds of
    thousands of :class:`Instruction` objects) alive via an opaque module
    attribute; this cache makes the bound, the eviction order and the clear
    operation explicit, and — crucially — is *never consulted* for
    trace-backed kernels, whose decoded multi-million-instruction programs
    must not be pinned in memory between runs.
    """

    def __init__(self, capacity: int = 6) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        self._entries: "OrderedDict[KernelSpec, Tuple[tuple, ...]]" = OrderedDict()

    def get(self, spec: KernelSpec) -> Optional[Tuple[tuple, ...]]:
        programs = self._entries.get(spec)
        if programs is not None:
            self._entries.move_to_end(spec)
        return programs

    def put(self, spec: KernelSpec, programs: Tuple[tuple, ...]) -> None:
        self._entries[spec] = programs
        self._entries.move_to_end(spec)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


#: Module-level cache: the profiler and the scheme runners repeatedly execute
#: the same few kernels, and regenerating their instruction streams would
#: dominate their runtime.
_PROGRAM_CACHE = BoundedProgramCache(capacity=6)


def generate_kernel_programs(spec: KernelSpec) -> List[List[Instruction]]:
    """Produce the per-warp programs of a kernel.

    Trace-backed specs (anything exposing ``materialise_programs``, i.e.
    :class:`repro.trace.adapter.TraceKernelSpec`) are decoded or synthesised
    on demand and bypass the program cache entirely.  Synthetic specs are
    generated once and memoised in the bounded LRU above.
    """
    materialise = getattr(spec, "materialise_programs", None)
    if materialise is not None:
        return materialise()
    cached = _PROGRAM_CACHE.get(spec)
    if cached is None:
        cached = tuple(
            tuple(generate_warp_program(spec, warp_id)) for warp_id in range(spec.num_warps)
        )
        _PROGRAM_CACHE.put(spec, cached)
    return [list(program) for program in cached]
