"""DAG-structured multi-kernel workloads.

A :class:`KernelGraph` is a set of named kernel nodes (synthetic
:class:`~repro.workloads.spec.KernelSpec` or file-backed
``TraceKernelSpec``) plus dependency edges.  ``GPU.run_graph`` executes a
graph on an ``num_sms``-wide chip with a deterministic list scheduler:
ready nodes launch in topological order onto the lowest-numbered free SM
at quantum boundaries, so the schedule — and therefore every counter — is
a pure function of (graph, config, engine-family-identical arithmetic).

``mix_graph`` builds the standard graph *shapes* the ``kernel_mix``
scenario axis sweeps (chain / fanout / diamond / parallel) over a
benchmark's kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.workloads.spec import KernelSpec


class GraphError(ValueError):
    """Raised for malformed kernel graphs (duplicate names, unknown edge
    endpoints, cycles)."""


#: The graph shapes the ``kernel_mix`` scenario axis accepts.
MIX_SHAPES = ("chain", "fanout", "diamond", "parallel")


@dataclass(frozen=True)
class KernelGraph:
    """An immutable, validated DAG of kernel specs.

    ``nodes`` keeps launch priority: the list scheduler breaks readiness
    ties by node position, so node order is part of the graph's identity
    (and of its content payload).
    """

    nodes: Tuple[KernelSpec, ...]
    edges: Tuple[Tuple[str, str], ...] = ()
    name: str = "graph"

    def __post_init__(self) -> None:
        names = [node.name for node in self.nodes]
        if len(set(names)) != len(names):
            raise GraphError(f"duplicate node names in graph {self.name!r}: {names}")
        known = set(names)
        for src, dst in self.edges:
            if src not in known or dst not in known:
                raise GraphError(
                    f"edge ({src!r}, {dst!r}) references unknown node "
                    f"(graph {self.name!r} has {sorted(known)})"
                )
            if src == dst:
                raise GraphError(f"self-edge on {src!r} in graph {self.name!r}")
        self.topo_order()  # raises on cycles

    @property
    def node_names(self) -> Tuple[str, ...]:
        return tuple(node.name for node in self.nodes)

    def node(self, name: str) -> KernelSpec:
        for candidate in self.nodes:
            if candidate.name == name:
                return candidate
        raise GraphError(f"no node {name!r} in graph {self.name!r}")

    def predecessors(self, name: str) -> Tuple[str, ...]:
        return tuple(src for src, dst in self.edges if dst == name)

    def successors(self, name: str) -> Tuple[str, ...]:
        return tuple(dst for src, dst in self.edges if src == name)

    def topo_order(self) -> Tuple[str, ...]:
        """Deterministic Kahn order: among ready nodes, node position wins."""
        names = self.node_names
        indegree: Dict[str, int] = {name: 0 for name in names}
        for _, dst in self.edges:
            indegree[dst] += 1
        order: List[str] = []
        ready = [name for name in names if indegree[name] == 0]
        while ready:
            current = ready.pop(0)
            order.append(current)
            for successor in self.successors(current):
                indegree[successor] -= 1
                if indegree[successor] == 0:
                    # Keep launch priority: insert in node-position order.
                    ready.append(successor)
                    ready.sort(key=names.index)
        if len(order) != len(names):
            stuck = sorted(name for name in names if name not in order)
            raise GraphError(f"graph {self.name!r} has a cycle through {stuck}")
        return tuple(order)

    def payload(self) -> dict:
        """Content identity for cache keys and trace manifests."""
        from repro.runtime.serialization import spec_payload

        return {
            "name": self.name,
            "nodes": [spec_payload(node) for node in self.nodes],
            "edges": [list(edge) for edge in self.edges],
        }


def _shape_edges(names: Sequence[str], shape: str) -> Tuple[Tuple[str, str], ...]:
    if shape == "parallel" or len(names) < 2:
        return ()
    if shape == "chain":
        return tuple((names[i], names[i + 1]) for i in range(len(names) - 1))
    if shape == "fanout":
        return tuple((names[0], name) for name in names[1:])
    if shape == "diamond":
        if len(names) == 2:
            return ((names[0], names[1]),)
        middle = names[1:-1]
        return tuple((names[0], name) for name in middle) + tuple(
            (name, names[-1]) for name in middle
        )
    raise GraphError(f"unknown graph shape {shape!r} (known: {', '.join(MIX_SHAPES)})")


def shaped_graph(
    kernels: Sequence[KernelSpec], shape: str, name: str = "graph"
) -> KernelGraph:
    """Arrange ``kernels`` (in order) into one of the standard shapes."""
    nodes = tuple(kernels)
    return KernelGraph(nodes=nodes, edges=_shape_edges([k.name for k in nodes], shape), name=name)


def mix_graph(
    kernels: Sequence[KernelSpec], shape: str, name: str = "mix", min_nodes: int = 2
) -> KernelGraph:
    """The ``kernel_mix`` axis form: ``kernels`` padded to ``min_nodes``
    with deterministic seed variants, then shaped.

    Padding keeps tiny presets (``kernels_per_benchmark=1``) meaningful: a
    one-node graph exercises neither dependencies nor co-residency.
    """
    if shape not in MIX_SHAPES:
        raise GraphError(f"unknown kernel mix {shape!r} (known: {', '.join(MIX_SHAPES)})")
    if not kernels:
        raise GraphError("kernel mix needs at least one kernel")
    padded: List[KernelSpec] = list(kernels)
    index = 0
    while len(padded) < min_nodes:
        base = kernels[index % len(kernels)]
        padded.append(base.variant(f"mix{index}", seed=base.seed + 101 + index))
        index += 1
    return shaped_graph(padded, shape, name=name)


@dataclass(frozen=True)
class ScheduledNode:
    """One node's placement in a graph run."""

    name: str
    sm_slot: int
    start_cycle: int
    end_cycle: int
    completed: bool

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "sm_slot": self.sm_slot,
            "start_cycle": self.start_cycle,
            "end_cycle": self.end_cycle,
            "completed": self.completed,
        }
