"""repro — a full reproduction of Poise (HPCA 2019) in Python.

Poise balances thread-level parallelism and memory-system performance in
GPUs by learning, offline, a mapping from architectural/application features
to good *warp-tuples* ``{N, p}`` (vital warps, cache-polluting warps), and by
applying that mapping at runtime in a tiny hardware inference engine with a
local search.

Package layout:

* :mod:`repro.gpu` — the GPU simulator substrate (SM, GTO scheduler with
  vital/pollute bits, L1/MSHR, L2/DRAM, counters, energy).
* :mod:`repro.workloads` — synthetic benchmark suites standing in for the
  paper's CUDA workloads.
* :mod:`repro.profiling` — ``{N, p}`` grid profiling and aggregate metrics.
* :mod:`repro.core` — Poise itself: analytical model, feature vector,
  scoring, Negative Binomial regression, training pipeline, hardware
  inference engine and the runtime controller.
* :mod:`repro.schedulers` — GTO, SWL, CCWS, PCAL-SWL, Static-Best,
  random-restart and APCM baselines.
* :mod:`repro.trace` — trace capture/replay: a binary per-warp trace codec,
  an issued-stream recorder, and trace-native workload families.
* :mod:`repro.experiments` — one module per table/figure of the paper.

Quickstart::

    from repro import quick_poise_demo
    result = quick_poise_demo()
    print(result["speedup"])
"""

from repro.version import __version__

__all__ = ["__version__", "quick_poise_demo"]


def quick_poise_demo(benchmark: str = "ii", fast: bool = True) -> dict:
    """Train a small model and run Poise on one evaluation benchmark.

    This is a convenience wrapper used by the README quickstart; the example
    scripts under ``examples/`` show the underlying API in full.
    """
    from repro.experiments.common import (
        ExperimentConfig,
        run_scheme_on_benchmark,
        train_or_load_model,
    )

    config = ExperimentConfig.fast() if fast else ExperimentConfig.full()
    model = train_or_load_model(config)
    outcome = run_scheme_on_benchmark("poise", benchmark, model=model, config=config)
    return {
        "benchmark": outcome.benchmark,
        "speedup": outcome.speedup,
        "l1_hit_rate": outcome.l1_hit_rate,
        "aml": outcome.aml,
        "energy_uj": outcome.energy_uj,
    }
