"""Whole-graph capture/replay through the POISETRC trace codec.

A captured :class:`~repro.workloads.graph.KernelGraph` becomes a directory:
one ``.trc`` file per node (the node's exact issued stream, POISETRC
format) plus a ``graph.json`` manifest recording the node order, the
dependency edges and each trace's content hash.  ``load_graph_trace``
rebuilds the graph as file-backed ``TraceKernelSpec`` nodes — replaying it
through ``GPU.run_graph`` on the same configuration reproduces the original
schedule and counters bit-identically (warps issue their programs in
order, so per-node captured streams are exactly the node programs).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from repro.trace.adapter import trace_kernel_from_file
from repro.trace.capture import TraceCapture
from repro.trace.codec import TRACE_SUFFIX, TraceFormatError
from repro.workloads.graph import GraphError, KernelGraph

#: Manifest filename and format tag inside a graph-trace directory.
GRAPH_MANIFEST = "graph.json"
GRAPH_FORMAT = "poisetrc-graph/1"


def capture_graph_to_dir(
    graph: KernelGraph,
    out_dir: Union[str, Path],
    config=None,
    max_cycles: Optional[int] = None,
    engine: Optional[str] = None,
) -> Tuple[Path, "object"]:
    """Run ``graph`` on a chip and write it as a graph-trace directory.

    Returns ``(manifest_path, graph_run_result)``.  Every node must run to
    completion — a truncated node capture would silently replay as a
    shorter kernel — so this raises if the budget is exhausted first.
    """
    from repro.gpu.config import baseline_config
    from repro.gpu.gpu import GPU

    config = config or baseline_config()
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)

    captures: Dict[str, TraceCapture] = {}

    def capture_factory(name: str) -> TraceCapture:
        capture = captures[name] = TraceCapture()
        return capture

    result = GPU(config, engine=engine).run_graph(
        graph, max_cycles=max_cycles, capture_factory=capture_factory
    )
    if not result.completed:
        incomplete = [
            name
            for name in graph.node_names
            if name not in result.node_results or not result.node_results[name].completed
        ]
        raise RuntimeError(
            f"graph {graph.name!r} did not complete (stuck nodes: {incomplete}); "
            f"a partial capture cannot replay bit-identically — raise max_cycles"
        )

    nodes = []
    for node in graph.nodes:
        filename = f"{node.name}{TRACE_SUFFIX}"
        content_hash = captures[node.name].write(
            out_dir / filename,
            kernel_name=node.name,
            num_warps=node.num_warps,
            extra_meta={"graph": graph.name},
        )
        nodes.append(
            {
                "name": node.name,
                "trace": filename,
                "trace_hash": content_hash,
                "num_warps": node.num_warps,
            }
        )
    manifest = {
        "format": GRAPH_FORMAT,
        "name": graph.name,
        "nodes": nodes,
        "edges": [list(edge) for edge in graph.edges],
    }
    manifest_path = out_dir / GRAPH_MANIFEST
    manifest_path.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    return manifest_path, result


def load_graph_trace(trace_dir: Union[str, Path], verify: bool = True) -> KernelGraph:
    """Rebuild a :class:`KernelGraph` of file-backed trace kernels from a
    graph-trace directory written by :func:`capture_graph_to_dir`.

    With ``verify=True`` each node trace is decoded once to validate it and
    its content hash is checked against the manifest, so a swapped or
    damaged file can never silently replay as the wrong graph.
    """
    trace_dir = Path(trace_dir)
    manifest_path = trace_dir / GRAPH_MANIFEST
    if not manifest_path.exists():
        raise TraceFormatError(f"{trace_dir} has no {GRAPH_MANIFEST} manifest")
    try:
        manifest = json.loads(manifest_path.read_text())
    except ValueError as error:
        raise TraceFormatError(f"unreadable graph manifest {manifest_path}: {error}") from None
    if manifest.get("format") != GRAPH_FORMAT:
        raise TraceFormatError(
            f"{manifest_path} has format {manifest.get('format')!r}; expected {GRAPH_FORMAT!r}"
        )
    nodes = []
    for entry in manifest.get("nodes", []):
        spec = trace_kernel_from_file(
            trace_dir / entry["trace"], name=entry["name"], verify=verify
        )
        expected = entry.get("trace_hash", "")
        if expected and spec.trace_hash and spec.trace_hash != expected:
            raise TraceFormatError(
                f"graph node {entry['name']!r}: trace hash {spec.trace_hash[:16]}… does "
                f"not match the manifest's {expected[:16]}… — the file was replaced"
            )
        if expected and not spec.trace_hash:
            # verify=False leaves the spec hash empty; pin the manifest's so
            # replay still fails loudly on a swapped file.
            from dataclasses import replace

            spec = replace(spec, trace_hash=expected)
        nodes.append(spec)
    edges = tuple((src, dst) for src, dst in manifest.get("edges", []))
    try:
        return KernelGraph(
            nodes=tuple(nodes), edges=edges, name=manifest.get("name", "graph")
        )
    except GraphError as error:
        raise TraceFormatError(f"invalid graph manifest {manifest_path}: {error}") from None
