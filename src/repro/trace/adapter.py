"""Trace-backed kernels that slot into the ``KernelSpec`` interface.

A :class:`TraceKernelSpec` *is a* :class:`~repro.workloads.spec.KernelSpec`
(a frozen dataclass subclass), so every consumer of kernels — the profiler
grid sweep, the scheme runners, the training pipeline, the experiments and
the disk cache — handles it unmodified.  The only difference is where its
warp programs come from: :meth:`materialise_programs` decodes a trace file
or synthesises a trace-native workload family, instead of drawing from the
three-region synthetic generator.  ``generate_kernel_programs`` dispatches
on the presence of that method, so trace kernels also bypass the generator's
bounded program cache entirely (large decoded traces are never pinned in
memory between runs).

Content addressing: for file-backed kernels, ``trace_hash`` (the SHA-256 of
the trace's uncompressed payload) is part of the dataclass and therefore of
every cache-key payload — two different traces can never collide on a cache
entry, and the same trace copied to a different path hits the same entry
(the path itself is excluded from key payloads by
``repro.runtime.serialization.spec_payload``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Tuple, Union

from repro.trace.codec import (
    TRACE_SUFFIX,
    TraceFormatError,
    TraceReader,
    read_trace_meta,
    read_trace_programs_with_hash,
)
from repro.workloads.spec import BenchmarkSpec, KernelSpec

#: ``source`` values a TraceKernelSpec may carry.
SOURCE_FILE = "file"
SOURCE_FAMILY = "family"


@dataclass(frozen=True)
class TraceKernelSpec(KernelSpec):
    """A kernel whose instruction stream is a trace, not a synthetic draw.

    Attributes (beyond :class:`KernelSpec`):
        source: ``"file"`` (a captured/stored ``.trc`` file) or ``"family"``
            (a trace-native workload family synthesised on demand).
        family: the family name for ``source == "family"``
            (see :mod:`repro.trace.families`).
        trace_path: location of the trace file for ``source == "file"``.
        trace_hash: content hash of the trace payload for file-backed
            kernels; verified on every load so a swapped or damaged file can
            never silently replay as the wrong workload.
        params: extra family parameters as a sorted tuple of ``(key, value)``
            pairs — hashable, picklable, and fully captured by cache keys.

    The inherited locality/density fields keep their synthetic meaning only
    for families that consult them (documented per family); for file-backed
    kernels they are neutral placeholders.
    """

    source: str = SOURCE_FILE
    family: str = ""
    trace_path: str = ""
    trace_hash: str = ""
    params: Tuple[Tuple[str, int], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.source not in (SOURCE_FILE, SOURCE_FAMILY):
            raise ValueError(f"unknown trace source {self.source!r}")
        if self.source == SOURCE_FILE and not self.trace_path:
            raise ValueError("file-backed trace kernels need a trace_path")
        if self.source == SOURCE_FAMILY and not self.family:
            raise ValueError("family-backed trace kernels need a family name")

    # -- parameters ---------------------------------------------------------------

    def param(self, key: str, default: int) -> int:
        for name, value in self.params:
            if name == key:
                return value
        return default

    # -- program materialisation --------------------------------------------------

    def materialise_programs(self) -> List[List["object"]]:
        """Produce the per-warp instruction streams for this kernel.

        This is the dispatch point ``generate_kernel_programs`` looks for;
        its presence marks the spec as trace-backed.
        """
        if self.source == SOURCE_FAMILY:
            from repro.trace.families import generate_family_programs

            return generate_family_programs(self)
        programs, actual = read_trace_programs_with_hash(self.trace_path)
        if self.trace_hash and actual != self.trace_hash:
            raise TraceFormatError(
                f"trace {self.trace_path} content hash {actual[:16]}… does not match "
                f"the expected {self.trace_hash[:16]}… — the file was replaced or damaged"
            )
        return programs


def trace_kernel_from_file(
    path: Union[str, Path], name: str = "", verify: bool = True
) -> TraceKernelSpec:
    """Build a file-backed :class:`TraceKernelSpec` from a ``.trc`` file.

    With ``verify=True`` (the default) the trace is decoded once, lazily and
    in bounded memory, to validate it end to end and pin its content hash;
    otherwise only the header is read.
    """
    path = Path(path)
    if verify:
        # One streaming pass: per-warp sizes and the payload hash together.
        with TraceReader(path) as reader:
            meta, num_warps = dict(reader.meta), reader.num_warps
            instructions_per_warp = 1
            for _warp_id, program in reader.iter_warps():
                instructions_per_warp = max(instructions_per_warp, len(program))
            content_hash = reader.content_hash()
    else:
        meta, num_warps = read_trace_meta(path)
        counts = meta.get("instruction_counts") or []
        instructions_per_warp = max((int(count) for count in counts), default=1)
        content_hash = ""
    kernel_name = name or str(meta.get("kernel") or path.stem)
    return TraceKernelSpec(
        name=kernel_name,
        num_warps=max(1, num_warps),
        instructions_per_warp=max(1, instructions_per_warp),
        # Neutral placeholders: a trace carries its own addresses, so the
        # synthetic locality knobs do not apply.
        intra_warp_fraction=0.0,
        inter_warp_fraction=0.0,
        source=SOURCE_FILE,
        trace_path=str(path),
        trace_hash=content_hash,
    )


def trace_benchmark_from_files(
    name: str,
    paths: "List[Union[str, Path]]",
    suite: str = "Trace",
    description: str = "",
    verify: bool = True,
) -> BenchmarkSpec:
    """Bundle trace files into a :class:`BenchmarkSpec` (role ``trace``).

    The result satisfies the full benchmark interface, so it can be handed
    to ``run_scheme_on_benchmark``-style aggregation unmodified.
    """
    kernels = [trace_kernel_from_file(path, verify=verify) for path in paths]
    return BenchmarkSpec(
        name=name,
        suite=suite,
        role="trace",
        description=description or f"trace replay of {len(kernels)} captured kernel(s)",
        kernels=kernels,
    )


def default_trace_filename(kernel_name: str) -> str:
    return f"{kernel_name}{TRACE_SUFFIX}"
