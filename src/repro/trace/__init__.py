"""Trace subsystem: capture, storage and replay of per-warp address traces.

The paper evaluates Poise on real benchmark address streams; this package
brings that style of trace-driven evaluation to the reproduction:

* :mod:`repro.trace.codec` — a compact, versioned, streaming binary format
  (struct-packed records inside gzip, stdlib-only) with lazy per-warp
  decoding,
* :mod:`repro.trace.capture` — records the exact issued stream of any
  simulated kernel through a hook in the SM cycle loop,
* :mod:`repro.trace.adapter` — :class:`TraceKernelSpec`, a drop-in
  ``KernelSpec`` whose programs come from a trace file or a trace-native
  family; flows through the profiler, every scheduler, training and the
  content-addressed result cache unmodified,
* :mod:`repro.trace.families` — structured workload families (stencil,
  transpose, gather, tree reduction, phase-mixed) that the stochastic
  synthetic generator cannot express, registered as the ``trace`` suite.

CLI: ``python -m repro trace capture|replay|gen|info``.
"""

from repro.trace.adapter import (
    TraceKernelSpec,
    trace_benchmark_from_files,
    trace_kernel_from_file,
)
from repro.trace.capture import TraceCapture, capture_kernel, capture_kernel_to_file
from repro.trace.codec import (
    FORMAT_VERSION,
    TraceFormatError,
    TraceReader,
    TraceWriter,
    read_trace_meta,
    read_trace_programs,
    trace_content_hash,
    trace_stats,
    write_trace,
)
from repro.trace.families import (
    FAMILY_GENERATORS,
    build_trace_benchmarks,
    family_kernel,
    family_names,
    generate_family_programs,
)

__all__ = [
    "FAMILY_GENERATORS",
    "FORMAT_VERSION",
    "TraceCapture",
    "TraceFormatError",
    "TraceKernelSpec",
    "TraceReader",
    "TraceWriter",
    "build_trace_benchmarks",
    "capture_kernel",
    "capture_kernel_to_file",
    "family_kernel",
    "family_names",
    "generate_family_programs",
    "read_trace_meta",
    "read_trace_programs",
    "trace_benchmark_from_files",
    "trace_content_hash",
    "trace_kernel_from_file",
    "trace_stats",
    "write_trace",
]
