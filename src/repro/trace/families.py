"""Trace-native workload families the synthetic generator cannot express.

The three-region generator draws every load independently from stationary
distributions; the families here produce *structured* address streams:

* ``stencil`` — strided 5-point stencil sweeps: regular column strides with
  halo rows shared between neighbouring warps (structured spatial reuse).
* ``transpose`` — tiled matrix transpose: row-major reads interleaved with
  column-major accesses whose large power-of-two strides hammer individual
  cache sets (conflict-miss pathology).
* ``gather`` — pointer-chasing gather: each load's address is a permutation
  step of the previous one and the chase is fully dependent
  (``dep_distance = 0``), serialising misses the way linked-list traversals
  do (irregular).
* ``treereduce`` — tree reduction: log₂ phases of pairwise loads at doubling
  strides, with warps retiring as the tree narrows (warp imbalance — every
  synthetic warp has identical length by construction).
* ``phasemix`` — phase-mixed kernel: alternating memory-bound and
  compute-bound phases inside one kernel (time-varying behaviour; the
  generator is stationary).

All families are deterministic functions of their
:class:`~repro.trace.adapter.TraceKernelSpec` (``seed`` included), so a
family-backed kernel is fully content-addressed by its spec fields — no
trace file is needed until one is exported with ``repro trace gen``.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Tuple

from repro.gpu.isa import Instruction, alu, load
from repro.trace.adapter import SOURCE_FAMILY, TraceKernelSpec
from repro.workloads.spec import BenchmarkSpec

#: Address-space bases, in cache lines, spaced so families and warps never
#: alias each other in the tag space (mirrors the synthetic generator).
_FAMILY_REGION_BASE = 1 << 46
_WARP_REGION_STRIDE = 1 << 24
_PC_LOAD_BASE = 3000


def _budget(spec: TraceKernelSpec) -> int:
    return spec.instructions_per_warp


# ---------------------------------------------------------------------------
# Families
# ---------------------------------------------------------------------------


def _stencil_programs(spec: TraceKernelSpec) -> List[List[Instruction]]:
    """Strided 5-point stencil sweep over a 2-D grid of cache lines.

    Warp ``w`` owns a band of rows; every point loads the north, centre and
    south lines (east/west fall in the same line), so adjacent warps re-touch
    each other's boundary rows — structured inter-warp halo reuse at a fixed
    row stride.
    """
    width = spec.param("width", 96)  # lines per grid row
    compute = max(1, spec.instructions_per_load - 1)
    base = _FAMILY_REGION_BASE
    programs: List[List[Instruction]] = []
    for warp_id in range(spec.num_warps):
        program: List[Instruction] = []
        pc = 0
        row = warp_id * spec.param("rows_per_warp", 4)
        col = 0
        while len(program) < _budget(spec):
            for offset, site in ((-1, 0), (0, 1), (1, 2)):
                if len(program) >= _budget(spec):
                    break
                line = base + max(0, row + offset) * width + col
                program.append(
                    load(line, dep_distance=spec.dep_distance, pc=_PC_LOAD_BASE + site)
                )
            for _ in range(compute):
                if len(program) >= _budget(spec):
                    break
                program.append(alu(pc=pc))
                pc += 1
            col += spec.param("col_stride", 1)
            if col >= width:
                col = 0
                row += 1
        programs.append(program)
    return programs


def _transpose_programs(spec: TraceKernelSpec) -> List[List[Instruction]]:
    """Tiled transpose: row-major reads of A paired with column-major
    accesses of B at stride ``n`` lines — consecutive accesses map to the
    same cache set when ``n`` is a multiple of the set count, the classic
    transpose conflict pathology the tile size is meant to soften."""
    n = spec.param("matrix_lines", 64)  # the matrix is n x n cache lines
    tile = max(1, spec.param("tile", 8))
    compute = max(1, spec.instructions_per_load - 1)
    base_a = _FAMILY_REGION_BASE + (1 << 40)
    base_b = base_a + n * n + (1 << 30)
    tiles_per_row = (n + tile - 1) // tile
    total_tiles = tiles_per_row * tiles_per_row
    programs: List[List[Instruction]] = []
    for warp_id in range(spec.num_warps):
        program: List[Instruction] = []
        pc = 0
        tile_index = warp_id  # round-robin tile ownership
        while len(program) < _budget(spec):
            tile_row = (tile_index // tiles_per_row) * tile
            tile_col = (tile_index % tiles_per_row) * tile
            for r in range(tile):
                for c in range(tile):
                    if len(program) >= _budget(spec):
                        break
                    row, col = tile_row + r, tile_col + c
                    if row >= n or col >= n:
                        continue
                    program.append(
                        load(
                            base_a + row * n + col,
                            dep_distance=spec.dep_distance,
                            pc=_PC_LOAD_BASE,
                        )
                    )
                    if len(program) >= _budget(spec):
                        break
                    # The transposed partner: stride-n column walk into B.
                    program.append(
                        load(
                            base_b + col * n + row,
                            dep_distance=spec.dep_distance,
                            pc=_PC_LOAD_BASE + 1,
                        )
                    )
                    for _ in range(compute):
                        if len(program) >= _budget(spec):
                            break
                        program.append(alu(pc=pc))
                        pc += 1
            tile_index = (tile_index + spec.num_warps) % total_tiles
        programs.append(program)
    return programs


def _gather_programs(spec: TraceKernelSpec) -> List[List[Instruction]]:
    """Pointer-chasing gather: the next address is a permutation step of the
    current one and the chase is fully dependent (``dep_distance=0``), so a
    miss must return before the next load can issue — the latency-bound
    irregular pattern linked structures produce."""
    table = max(2, spec.param("table_lines", 4096))
    compute = max(1, spec.instructions_per_load - 1)
    base = _FAMILY_REGION_BASE + (2 << 40)
    # A full-cycle LCG over [0, table): stride odd => bijective modulo 2^k.
    stride = spec.param("chase_stride", 0) or (2 * (spec.seed % 977) + 4097)
    programs: List[List[Instruction]] = []
    for warp_id in range(spec.num_warps):
        program: List[Instruction] = []
        pc = 0
        cursor = (warp_id * 7919 + spec.seed * 104729) % table
        while len(program) < _budget(spec):
            program.append(load(base + cursor, dep_distance=0, pc=_PC_LOAD_BASE))
            cursor = (cursor * 5 + stride) % table
            for _ in range(compute):
                if len(program) >= _budget(spec):
                    break
                program.append(alu(pc=pc))
                pc += 1
        programs.append(program)
    return programs


def _treereduce_programs(spec: TraceKernelSpec) -> List[List[Instruction]]:
    """Tree reduction over ``leaves`` lines: phase ``k`` combines pairs at
    stride ``2^k``.  Active elements halve every phase and warps whose slice
    is exhausted stop early, so warp programs have *different lengths* —
    warp imbalance no stationary synthetic kernel can produce."""
    leaves = max(2, spec.param("leaves", 8192))
    compute = max(1, spec.instructions_per_load - 1)
    base = _FAMILY_REGION_BASE + (3 << 40)
    programs: List[List[Instruction]] = [[] for _ in range(spec.num_warps)]
    pcs = [0] * spec.num_warps
    stride = 1
    while stride < leaves:
        active = leaves // (2 * stride)  # pair-combines in this phase
        for index in range(active):
            warp_id = index % spec.num_warps
            program = programs[warp_id]
            if len(program) >= _budget(spec):
                continue
            position = index * 2 * stride
            program.append(
                load(base + position, dep_distance=spec.dep_distance, pc=_PC_LOAD_BASE)
            )
            if len(program) < _budget(spec):
                program.append(
                    load(
                        base + position + stride,
                        dep_distance=spec.dep_distance,
                        pc=_PC_LOAD_BASE + 1,
                    )
                )
            for _ in range(compute):
                if len(program) >= _budget(spec):
                    break
                program.append(alu(pc=pcs[warp_id]))
                pcs[warp_id] += 1
        stride *= 2
    return programs


def _phasemix_programs(spec: TraceKernelSpec) -> List[List[Instruction]]:
    """Alternating memory-bound and compute-bound phases within one kernel.

    The memory phase loads every other instruction from a small hot set (the
    inherited ``private_lines`` per warp); the compute phase is a long ALU
    run.  Schedulers that adapt at runtime see their operating point move
    mid-kernel — stationary synthetics cannot exercise that."""
    phase_len = max(8, spec.param("phase_len", 600))
    hot_lines = max(1, spec.private_lines)
    base = _FAMILY_REGION_BASE + (4 << 40)
    programs: List[List[Instruction]] = []
    for warp_id in range(spec.num_warps):
        rng = random.Random((spec.seed << 16) ^ (warp_id * 0x85EBCA6B))
        warp_base = base + warp_id * _WARP_REGION_STRIDE
        program: List[Instruction] = []
        pc = 0
        memory_phase = True
        while len(program) < _budget(spec):
            steps = min(phase_len, _budget(spec) - len(program))
            if memory_phase:
                for step in range(steps):
                    if step % 2 == 0:
                        line = warp_base + rng.randrange(hot_lines)
                        program.append(
                            load(line, dep_distance=spec.dep_distance, pc=_PC_LOAD_BASE)
                        )
                    else:
                        program.append(alu(pc=pc))
                        pc += 1
            else:
                for _ in range(steps):
                    program.append(alu(pc=pc))
                    pc += 1
            memory_phase = not memory_phase
        programs.append(program)
    return programs


FAMILY_GENERATORS: Dict[str, Callable[[TraceKernelSpec], List[List[Instruction]]]] = {
    "stencil": _stencil_programs,
    "transpose": _transpose_programs,
    "gather": _gather_programs,
    "treereduce": _treereduce_programs,
    "phasemix": _phasemix_programs,
}


def family_names() -> List[str]:
    return list(FAMILY_GENERATORS)


def generate_family_programs(spec: TraceKernelSpec) -> List[List[Instruction]]:
    """Synthesise the per-warp programs of a family-backed trace kernel."""
    try:
        generator = FAMILY_GENERATORS[spec.family]
    except KeyError:
        raise ValueError(
            f"unknown trace family {spec.family!r}; known families: {family_names()}"
        ) from None
    return generator(spec)


# ---------------------------------------------------------------------------
# The registered ``trace`` suite
# ---------------------------------------------------------------------------


def family_kernel(
    family: str,
    name: str = "",
    num_warps: int = 24,
    instructions_per_warp: int = 6000,
    seed: int = 0,
    dep_distance: int = 5,
    instructions_per_load: int = 3,
    private_lines: int = 200,
    params: Tuple[Tuple[str, int], ...] = (),
) -> TraceKernelSpec:
    """Convenience constructor for a family-backed trace kernel."""
    return TraceKernelSpec(
        name=name or f"{family}_k0",
        num_warps=num_warps,
        instructions_per_warp=instructions_per_warp,
        instructions_per_load=instructions_per_load,
        dep_distance=dep_distance,
        private_lines=private_lines,
        seed=seed,
        source=SOURCE_FAMILY,
        family=family,
        params=tuple(sorted(params)),
    )


def build_trace_benchmarks() -> List[BenchmarkSpec]:
    """The ``trace`` suite: one benchmark per trace-native family."""
    definitions = [
        (
            "stencil",
            "Strided 5-point stencil sweep (structured halo reuse)",
            [
                family_kernel(
                    "stencil", "stencil_k0", seed=41, instructions_per_load=3,
                    params=(("width", 96), ("rows_per_warp", 4)),
                ),
            ],
        ),
        (
            "transpose",
            "Tiled matrix transpose (stride-n set-conflict pathology)",
            [
                family_kernel(
                    "transpose", "transpose_k0", seed=43, instructions_per_load=2,
                    params=(("matrix_lines", 64), ("tile", 8)),
                ),
            ],
        ),
        (
            "gather",
            "Pointer-chasing gather (dependent irregular chase)",
            [
                family_kernel(
                    "gather", "gather_k0", seed=47, instructions_per_load=4,
                    params=(("table_lines", 4096),),
                ),
            ],
        ),
        (
            "treereduce",
            "Tree reduction (doubling strides, warp imbalance)",
            [
                family_kernel(
                    "treereduce", "treereduce_k0", seed=53, instructions_per_load=3,
                    params=(("leaves", 16384),),
                ),
            ],
        ),
        (
            "phasemix",
            "Phase-mixed kernel (alternating memory/compute phases)",
            [
                family_kernel(
                    "phasemix", "phasemix_k0", seed=59, private_lines=160,
                    params=(("phase_len", 600),),
                ),
            ],
        ),
    ]
    return [
        BenchmarkSpec(
            name=name,
            suite="Trace",
            role="trace",
            description=description,
            kernels=kernels,
        )
        for name, description, kernels in definitions
    ]
