"""Versioned streaming binary codec for per-warp instruction/address traces.

A trace file is a gzip stream (written with ``mtime=0`` so identical content
produces identical bytes) wrapping a struct-packed payload::

    magic      8s   b"POISETRC"
    version    <H   format version (currently 1)
    flags      <H   reserved, must be 0
    meta_len   <I   length of the metadata blob
    meta       ...  UTF-8 JSON object (kernel name, source, counts, ...)
    num_warps  <I
    num_warps warp sections, each:
        0xA0   <I warp_id
        records:
            0x01  ALU      <I pc
            0x02  LOAD     <I pc  <H dep_distance  <Q line_addr
            0x03  ALU_RUN  <I count  <I pc_start   (pcs pc_start .. +count-1)
        0xAF   end of warp
    0xEE  end of trace

Consecutive ALU instructions with sequential PCs — the overwhelmingly common
pattern — collapse into one ``ALU_RUN`` record, so a multi-million-instruction
trace stays compact even before gzip.

Reading is *streaming and lazy per warp*: :class:`TraceReader` decodes one
warp section at a time, so iterating a huge trace never materialises more
than a single warp's program (and :func:`trace_stats` never materialises any
program at all).  Truncated, corrupted or wrong-version files raise
:class:`TraceFormatError` — never garbage programs.

Everything here is stdlib-only (``struct`` + ``gzip`` + ``json``).
"""

from __future__ import annotations

import gzip
import hashlib
import json
import struct
import zlib
from pathlib import Path
from typing import Any, BinaryIO, Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.gpu.isa import Instruction, alu, load

MAGIC = b"POISETRC"
FORMAT_VERSION = 1
TRACE_SUFFIX = ".trc"

_REC_ALU = 0x01
_REC_LOAD = 0x02
_REC_ALU_RUN = 0x03
_WARP_START = 0xA0
_WARP_END = 0xAF
_TRACE_END = 0xEE

_HEADER = struct.Struct("<8sHHI")
_U32 = struct.Struct("<I")
_LOAD_BODY = struct.Struct("<IHQ")
_RUN_BODY = struct.Struct("<II")

_MAX_PC = (1 << 32) - 1
_MAX_DEP = (1 << 16) - 1
_MAX_ADDR = (1 << 64) - 1


class TraceFormatError(ValueError):
    """A trace file is malformed: wrong magic/version, truncated or corrupt."""


# ---------------------------------------------------------------------------
# Writing
# ---------------------------------------------------------------------------


class _HashingSink:
    """Forwards writes to the gzip stream while hashing the uncompressed bytes.

    The trace's content hash is defined over the *uncompressed* payload, so it
    is independent of gzip implementation details and compression level.
    """

    def __init__(self, stream: BinaryIO) -> None:
        self.stream = stream
        self.digest = hashlib.sha256()

    def write(self, data: bytes) -> None:
        self.digest.update(data)
        self.stream.write(data)


class TraceWriter:
    """Streams per-warp instruction sequences into a trace file.

    Usage::

        with TraceWriter(path, meta={"kernel": "mvt_k0"}, num_warps=24) as w:
            for warp_id, program in enumerate(programs):
                w.write_warp(warp_id, program)
        print(w.content_hash)

    ``write_warp`` accepts any iterable of :class:`Instruction`, so a capture
    or a generator can stream instructions without holding the whole kernel
    in memory.  The writer refuses out-of-range fields (pc, dep_distance,
    address) instead of silently wrapping them.
    """

    def __init__(self, path: Union[str, Path], meta: Dict[str, Any], num_warps: int) -> None:
        if num_warps < 0:
            raise ValueError("num_warps must be non-negative")
        self.path = Path(path)
        self.num_warps = num_warps
        self._warps_written = 0
        self._closed = False
        self.content_hash: Optional[str] = None
        self._gzip = gzip.GzipFile(filename="", mode="wb", fileobj=open(self.path, "wb"), mtime=0)
        self._sink = _HashingSink(self._gzip)
        meta_blob = json.dumps(meta or {}, sort_keys=True, separators=(",", ":")).encode("utf-8")
        self._sink.write(_HEADER.pack(MAGIC, FORMAT_VERSION, 0, len(meta_blob)))
        self._sink.write(meta_blob)
        self._sink.write(_U32.pack(num_warps))

    # -- context manager ---------------------------------------------------------

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self.abort()

    # -- writing -----------------------------------------------------------------

    def _flush_run(self, run_start: int, run_length: int) -> None:
        if run_length == 1:
            self._sink.write(bytes((_REC_ALU,)) + _U32.pack(run_start))
        elif run_length > 1:
            self._sink.write(bytes((_REC_ALU_RUN,)) + _RUN_BODY.pack(run_length, run_start))

    def write_warp(self, warp_id: int, instructions: Iterable[Instruction]) -> int:
        """Append one warp section; returns the number of instructions written."""
        if self._closed:
            raise ValueError("trace writer is closed")
        if self._warps_written >= self.num_warps:
            raise ValueError(f"trace already holds {self.num_warps} warp sections")
        self._sink.write(bytes((_WARP_START,)) + _U32.pack(warp_id))
        count = 0
        run_start = 0
        run_length = 0
        for instruction in instructions:
            pc = instruction.pc
            if not 0 <= pc <= _MAX_PC:
                raise ValueError(f"pc {pc} out of the codec's 32-bit range")
            if instruction.is_load:
                self._flush_run(run_start, run_length)
                run_length = 0
                if not 0 <= instruction.dep_distance <= _MAX_DEP:
                    raise ValueError(
                        f"dep_distance {instruction.dep_distance} out of the codec's 16-bit range"
                    )
                if not 0 <= (instruction.line_addr or 0) <= _MAX_ADDR:
                    raise ValueError(
                        f"line address {instruction.line_addr} out of the codec's 64-bit range"
                    )
                self._sink.write(
                    bytes((_REC_LOAD,))
                    + _LOAD_BODY.pack(pc, instruction.dep_distance, instruction.line_addr)
                )
            elif run_length and pc == run_start + run_length:
                run_length += 1  # extend the current sequential-PC ALU run
            else:
                self._flush_run(run_start, run_length)
                run_start, run_length = pc, 1
            count += 1
        self._flush_run(run_start, run_length)
        self._sink.write(bytes((_WARP_END,)))
        self._warps_written += 1
        return count

    def close(self) -> str:
        """Finalise the trace; returns the content hash of the payload."""
        if self._closed:
            assert self.content_hash is not None
            return self.content_hash
        if self._warps_written != self.num_warps:
            self.abort()
            raise ValueError(
                f"trace declared {self.num_warps} warps but {self._warps_written} were written"
            )
        self._sink.write(bytes((_TRACE_END,)))
        self.content_hash = self._sink.digest.hexdigest()
        raw = self._gzip.fileobj
        self._gzip.close()
        raw.close()
        self._closed = True
        return self.content_hash

    def abort(self) -> None:
        """Close the underlying file without finalising (leaves a torn file)."""
        if not self._closed:
            raw = self._gzip.fileobj
            self._gzip.close()
            raw.close()
            self._closed = True


def write_trace(
    path: Union[str, Path],
    programs: Iterable[Iterable[Instruction]],
    meta: Optional[Dict[str, Any]] = None,
) -> str:
    """Write complete per-warp programs to ``path``; returns the content hash."""
    programs = [list(program) for program in programs]
    meta = dict(meta or {})
    meta.setdefault("instruction_counts", [len(program) for program in programs])
    with TraceWriter(path, meta=meta, num_warps=len(programs)) as writer:
        for warp_id, program in enumerate(programs):
            writer.write_warp(warp_id, program)
    assert writer.content_hash is not None
    return writer.content_hash


# ---------------------------------------------------------------------------
# Reading
# ---------------------------------------------------------------------------


class TraceReader:
    """Streaming reader: header eagerly, warp sections lazily one at a time."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._digest = hashlib.sha256()
        try:
            self._stream: BinaryIO = gzip.open(self.path, "rb")
        except OSError as error:
            raise TraceFormatError(f"cannot open trace {self.path}: {error}") from error
        try:
            header = self._read(_HEADER.size)
            magic, version, flags, meta_len = _HEADER.unpack(header)
            if magic != MAGIC:
                raise TraceFormatError(f"{self.path} is not a Poise trace (bad magic)")
            if version != FORMAT_VERSION:
                raise TraceFormatError(
                    f"{self.path} has unsupported trace format version {version} "
                    f"(this codec reads version {FORMAT_VERSION})"
                )
            if flags != 0:
                raise TraceFormatError(f"{self.path} uses unknown trace flags 0x{flags:04x}")
            try:
                self.meta: Dict[str, Any] = json.loads(self._read(meta_len).decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                raise TraceFormatError(f"{self.path} has a corrupt metadata block") from error
            (self.num_warps,) = _U32.unpack(self._read(4))
        except TraceFormatError:
            self.close()
            raise

    def close(self) -> None:
        try:
            self._stream.close()
        except OSError:
            pass

    def __enter__(self) -> "TraceReader":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- low-level ----------------------------------------------------------------

    def _read(self, size: int) -> bytes:
        """Read exactly ``size`` bytes, translating every failure mode —
        short reads, gzip CRC errors, torn members — into TraceFormatError."""
        try:
            data = self._stream.read(size)
        except (EOFError, zlib.error, gzip.BadGzipFile, OSError) as error:
            raise TraceFormatError(f"{self.path} is truncated or corrupt: {error}") from error
        if len(data) != size:
            raise TraceFormatError(f"{self.path} is truncated (unexpected end of stream)")
        self._digest.update(data)
        return data

    # -- iteration ----------------------------------------------------------------

    def iter_warps(self) -> Iterator[Tuple[int, List[Instruction]]]:
        """Yield ``(warp_id, program)`` one warp at a time.

        Only the warp currently being yielded is materialised; callers that
        stream (e.g. ``trace info``) can process arbitrarily large traces in
        bounded memory.
        """
        for _ in range(self.num_warps):
            marker = self._read(1)[0]
            if marker != _WARP_START:
                raise TraceFormatError(
                    f"{self.path}: expected warp section, found record 0x{marker:02x}"
                )
            (warp_id,) = _U32.unpack(self._read(4))
            program: List[Instruction] = []
            while True:
                kind = self._read(1)[0]
                if kind == _WARP_END:
                    break
                if kind == _REC_ALU:
                    (pc,) = _U32.unpack(self._read(4))
                    program.append(alu(pc=pc))
                elif kind == _REC_LOAD:
                    pc, dep, line_addr = _LOAD_BODY.unpack(self._read(_LOAD_BODY.size))
                    program.append(load(line_addr, dep_distance=dep, pc=pc))
                elif kind == _REC_ALU_RUN:
                    count, pc_start = _RUN_BODY.unpack(self._read(_RUN_BODY.size))
                    program.extend(alu(pc=pc_start + offset) for offset in range(count))
                else:
                    raise TraceFormatError(
                        f"{self.path}: unknown record kind 0x{kind:02x} in warp {warp_id}"
                    )
            yield warp_id, program
        if self._read(1)[0] != _TRACE_END:
            raise TraceFormatError(f"{self.path}: missing end-of-trace marker")

    def content_hash(self) -> str:
        """Hash of the full uncompressed payload (must be called after a
        complete iteration; drains any unread remainder first)."""
        while True:
            try:
                chunk = self._stream.read(1 << 16)
            except (EOFError, zlib.error, gzip.BadGzipFile, OSError) as error:
                raise TraceFormatError(f"{self.path} is truncated or corrupt: {error}") from error
            if not chunk:
                return self._digest.hexdigest()
            self._digest.update(chunk)


def read_trace_meta(path: Union[str, Path]) -> Tuple[Dict[str, Any], int]:
    """Read only the header: ``(meta, num_warps)`` without decoding any warp."""
    with TraceReader(path) as reader:
        return dict(reader.meta), reader.num_warps


def read_trace_programs_with_hash(
    path: Union[str, Path],
) -> Tuple[List[List[Instruction]], str]:
    """Decode the full trace and its content hash in one streaming pass.

    This is the replay entry point: the simulator needs whole programs, so
    laziness does not apply here — but decode and integrity check still cost
    only a single pass.  Returns ``(programs ordered by warp id, hash)``.
    """
    with TraceReader(path) as reader:
        programs: Dict[int, List[Instruction]] = {}
        for warp_id, program in reader.iter_warps():
            if warp_id in programs:
                raise TraceFormatError(f"{path}: duplicate warp id {warp_id}")
            programs[warp_id] = program
        ordered = [programs[warp_id] for warp_id in sorted(programs)]
        return ordered, reader.content_hash()


def read_trace_programs(path: Union[str, Path]) -> List[List[Instruction]]:
    """Decode the full trace into per-warp programs ordered by warp id."""
    return read_trace_programs_with_hash(path)[0]


def trace_content_hash(path: Union[str, Path]) -> str:
    """Content hash of a trace: SHA-256 over the uncompressed payload.

    Validates the whole file as a side effect (raises
    :class:`TraceFormatError` on any damage), so a hash in hand means the
    trace decodes cleanly.
    """
    with TraceReader(path) as reader:
        for _warp_id, _program in reader.iter_warps():
            pass
        return reader.content_hash()


def trace_stats(path: Union[str, Path]) -> Dict[str, Any]:
    """Summary statistics computed in one lazy pass (used by ``trace info``)."""
    with TraceReader(path) as reader:
        per_warp: List[Dict[str, int]] = []
        unique_lines: set = set()
        total_instructions = 0
        total_loads = 0
        for warp_id, program in reader.iter_warps():
            loads = sum(1 for instruction in program if instruction.is_load)
            per_warp.append(
                {"warp_id": warp_id, "instructions": len(program), "loads": loads}
            )
            unique_lines.update(
                instruction.line_addr for instruction in program if instruction.is_load
            )
            total_instructions += len(program)
            total_loads += loads
        return {
            "path": str(path),
            "meta": dict(reader.meta),
            "num_warps": reader.num_warps,
            "instructions": total_instructions,
            "loads": total_loads,
            "unique_lines": len(unique_lines),
            "per_warp": per_warp,
            "content_hash": reader.content_hash(),
        }
