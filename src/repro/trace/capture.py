"""Capturing the issued instruction stream of a simulated kernel.

:class:`TraceCapture` is the hook the SM cycle loop calls on every
*successfully issued* instruction (an MSHR-full retry is not an issue, so a
retried load is recorded exactly once).  Because warps issue their programs
in order, the per-warp captured streams are precisely the warp programs —
replaying them through the simulator reproduces the run's counters
bit-identically.

A capture is complete only when the captured kernel ran to completion; the
helpers below enforce that, because a truncated capture would silently
replay as a shorter kernel.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.gpu.isa import Instruction
from repro.trace.codec import write_trace


class TraceCapture:
    """Records the exact per-warp issued stream of one simulation."""

    def __init__(self) -> None:
        self._streams: Dict[int, List[Instruction]] = {}

    def record(self, warp_id: int, instruction: Instruction) -> None:
        """Called by the SM once per successfully issued instruction."""
        stream = self._streams.get(warp_id)
        if stream is None:
            stream = self._streams[warp_id] = []
        stream.append(instruction)

    @property
    def num_warps(self) -> int:
        return len(self._streams)

    @property
    def instructions(self) -> int:
        return sum(len(stream) for stream in self._streams.values())

    def programs(self, num_warps: Optional[int] = None) -> List[List[Instruction]]:
        """The captured streams ordered by warp id.

        ``num_warps`` pads warps that never issued (empty programs) so the
        replayed kernel launches the same warp count as the original.
        """
        count = num_warps if num_warps is not None else (
            max(self._streams) + 1 if self._streams else 0
        )
        return [list(self._streams.get(warp_id, [])) for warp_id in range(count)]

    def write(
        self,
        path: Union[str, Path],
        kernel_name: str,
        num_warps: Optional[int] = None,
        extra_meta: Optional[Dict[str, Any]] = None,
    ) -> str:
        """Write the capture as a trace file; returns the content hash."""
        programs = self.programs(num_warps=num_warps)
        meta: Dict[str, Any] = {
            "kernel": kernel_name,
            "source": "capture",
            "num_warps": len(programs),
        }
        meta.update(extra_meta or {})
        return write_trace(path, programs, meta=meta)


def capture_kernel(
    spec,
    config=None,
    max_cycles: Optional[int] = None,
    engine: Optional[str] = None,
) -> Tuple[TraceCapture, "object"]:
    """Run ``spec`` to completion under plain GTO and capture its stream.

    Returns ``(capture, run_result)``.  The cycle budget defaults to a
    generous multiple of the kernel's instruction count; if the kernel still
    does not finish, the capture would be a silent prefix, so this raises
    instead.  ``engine`` picks the simulator core (``None`` defers to
    ``REPRO_ENGINE``); captures are engine-agnostic because both cores issue
    the exact same stream.
    """
    from repro.gpu.config import baseline_config
    from repro.gpu.gpu import GPU
    from repro.workloads.generator import generate_kernel_programs

    config = config or baseline_config()
    programs = generate_kernel_programs(spec)
    if max_cycles is None:
        # Every instruction takes >= 1 issue slot; stalls inflate that, so
        # budget a wide margin above the instruction count.
        max_cycles = 50_000 + 16 * sum(len(program) for program in programs)
    capture = TraceCapture()
    gpu = GPU(config.with_max_cycles(max_cycles), engine=engine)
    result = gpu.run_kernel(programs, max_cycles=max_cycles, trace_capture=capture)
    if not result.completed:
        raise RuntimeError(
            f"kernel {spec.name!r} did not complete within {max_cycles} cycles; "
            f"a partial capture cannot replay bit-identically — raise max_cycles"
        )
    return capture, result


def capture_kernel_to_file(
    spec,
    path: Union[str, Path],
    config=None,
    max_cycles: Optional[int] = None,
    engine: Optional[str] = None,
) -> Tuple[str, "object"]:
    """Capture ``spec`` and write the trace to ``path``.

    Returns ``(content_hash, run_result)``.  The source spec's parameters are
    embedded in the trace metadata so ``trace info`` can say where a file
    came from.
    """
    import dataclasses

    capture, result = capture_kernel(
        spec, config=config, max_cycles=max_cycles, engine=engine
    )
    content_hash = capture.write(
        path,
        kernel_name=spec.name,
        num_warps=spec.num_warps,
        extra_meta={"captured_from": dataclasses.asdict(spec)},
    )
    return content_hash, result
