"""A dynamic cache-conscious warp throttling controller (CCWS-style).

Cache-Conscious Wavefront Scheduling throttles the number of schedulable
warps when it detects *lost intra-warp locality* — hits that would have
occurred had the warp's victims stayed resident.  The full design keeps a
victim tag array per warp; this controller implements the same feedback loop
at epoch granularity using the counters the simulator already maintains:

* when the intra-warp hit rate is poor and the L1 is thrashing (low overall
  hit rate with high miss traffic), reduce the warp limit;
* when the cache behaves well and warps are starved (stall cycles dominated
  by too little TLP rather than memory latency), raise the limit.

Like CCWS, it keeps ``N = p`` — scheduling and allocation are coupled — so
it can only walk the diagonal of the warp-tuple plane.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class CCWSParameters:
    epoch_cycles: int = 8_000
    thrash_hit_rate: float = 0.25
    recover_hit_rate: float = 0.55
    min_warps: int = 1
    decrease_step: int = 4
    increase_step: int = 2


class CCWSController:
    """Dynamic warp throttling with coupled allocation (diagonal only)."""

    def __init__(self, params: CCWSParameters = CCWSParameters()) -> None:
        self.params = params

    def execute(self, sm, max_cycles: int) -> Dict:
        params = self.params
        max_warps = min(sm.config.max_warps, len(sm.warps))
        limit = max_warps
        end_cycle = sm.cycle + max_cycles
        history: List[Tuple[int, float]] = []

        while not sm.done and sm.cycle < end_cycle:
            sm.set_warp_tuple(limit, limit)
            before = sm.snapshot()
            sm.run_cycles(min(params.epoch_cycles, end_cycle - sm.cycle))
            window = sm.counters - before
            hit_rate = window.l1_hit_rate
            history.append((limit, hit_rate))
            if window.l1_accesses == 0:
                continue
            if hit_rate < params.thrash_hit_rate and limit > params.min_warps:
                limit = max(params.min_warps, limit - params.decrease_step)
            elif hit_rate > params.recover_hit_rate and limit < max_warps:
                limit = min(max_warps, limit + params.increase_step)
        return {"warp_tuple": (limit, limit), "history": history}
