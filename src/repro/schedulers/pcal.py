"""PCAL-SWL: priority-based cache allocation seeded by static warp limiting.

The paper's strongest prior-art comparison point (Section VII-C): the
dynamic PCAL search, but given the SWL profile point as its starting
position so it pays no runtime cost for the initial throttling decision.
The search then proceeds exactly as PCAL does:

1. **Parallel search in p** — PCAL evaluates candidate ``p`` values
   concurrently on different SMs; with a single simulated SM the candidates
   are evaluated in consecutive short sampling windows, which charges PCAL
   an equivalent (small) sampling cost.
2. **Hill climbing in N** — iterative ±1 steps from the SWL point, accepting
   a move only when the sampled throughput improves.  This is the step that
   is prone to the local optima discussed in Section III-C.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.profiling.profiler import StaticProfile
from repro.schedulers.base import WarpTupleController
from repro.schedulers.swl import derive_swl_limit


@dataclass(frozen=True)
class PCALParameters:
    warmup_cycles: int = 1_000
    sample_cycles: int = 3_000
    candidate_p: Tuple[int, ...] = (1, 2, 4, 8)
    max_hill_steps: int = 8


class PCALController(WarpTupleController):
    """PCAL-SWL dynamic search over the warp-tuple plane."""

    def __init__(
        self,
        swl_limit: Optional[int] = None,
        profile: Optional[StaticProfile] = None,
        params: PCALParameters = PCALParameters(),
    ) -> None:
        if swl_limit is None and profile is None:
            raise ValueError("PCAL-SWL needs an SWL limit or a static profile")
        if swl_limit is None:
            swl_limit = derive_swl_limit(profile)
        self.swl_limit = int(swl_limit)
        self.params = params

    # -- sampling -------------------------------------------------------------------

    def _sample(self, sm, n: int, p: int) -> float:
        sm.set_warp_tuple(n, p)
        sm.run_cycles(self.params.warmup_cycles)
        before = sm.snapshot()
        sm.run_cycles(self.params.sample_cycles)
        window = sm.counters - before
        return window.ipc

    # -- search ---------------------------------------------------------------------

    def _search(self, sm, max_warps: int) -> Tuple[Tuple[int, int], List[Tuple[int, int]]]:
        visited: List[Tuple[int, int]] = []
        start_n = min(self.swl_limit, max_warps)

        # Phase 1: parallel search in p at the SWL warp count.
        best_p = start_n
        best_ipc = self._sample(sm, start_n, min(start_n, start_n))
        visited.append((start_n, start_n))
        for p in self.params.candidate_p:
            if p > start_n or p == start_n:
                continue
            ipc = self._sample(sm, start_n, p)
            visited.append((start_n, p))
            if ipc > best_ipc:
                best_ipc = ipc
                best_p = p

        # Phase 2: hill climbing in N with the chosen p.
        current_n = start_n
        for _ in range(self.params.max_hill_steps):
            moved = False
            for direction in (1, -1):
                candidate_n = current_n + direction
                if not 1 <= candidate_n <= max_warps or candidate_n < best_p:
                    continue
                ipc = self._sample(sm, candidate_n, best_p)
                visited.append((candidate_n, best_p))
                if ipc > best_ipc:
                    best_ipc = ipc
                    current_n = candidate_n
                    moved = True
                    break
            if not moved:
                break
        return (current_n, best_p), visited

    def execute(self, sm, max_cycles: int) -> Dict:
        max_warps = min(sm.config.max_warps, len(sm.warps))
        end_cycle = sm.cycle + max_cycles
        final, visited = self._search(sm, max_warps)
        sm.set_warp_tuple(*final)
        if sm.cycle < end_cycle and not sm.done:
            sm.run_to_completion(end_cycle - sm.cycle)
        return {"warp_tuple": final, "visited": visited, "swl_limit": self.swl_limit}
