"""The baseline greedy-then-oldest (GTO) scheduler at maximum warps."""

from __future__ import annotations

from typing import Dict

from repro.schedulers.base import WarpTupleController


class GTOController(WarpTupleController):
    """Run with every available warp vital and polluting (the paper's GTO
    baseline, against which all speedups are normalised)."""

    def execute(self, sm, max_cycles: int) -> Dict:
        max_warps = min(sm.config.max_warps, len(sm.warps))
        sm.set_warp_tuple(max_warps, max_warps)
        sm.run_to_completion(max_cycles)
        return {"warp_tuple": (max_warps, max_warps)}
