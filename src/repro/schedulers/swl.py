"""Static Warp Limiting (SWL) — the static flavour of CCWS.

SWL throttles the number of schedulable warps to a per-kernel constant
determined by offline profiling.  Because CCWS couples cache allocation to
scheduling, the limit applies to both knobs: ``N = p = limit`` — SWL can only
reach the diagonal of the warp-tuple plane (Fig. 2a).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.profiling.profiler import StaticProfile
from repro.schedulers.base import WarpTupleController


def derive_swl_limit(profile: StaticProfile) -> int:
    """The profile-derived SWL warp limit: the best point on the diagonal."""
    n, _ = profile.best_diagonal_point()
    return n


class SWLController(WarpTupleController):
    """Run the whole kernel at the profile-derived ``N = p`` limit."""

    def __init__(self, limit: Optional[int] = None, profile: Optional[StaticProfile] = None) -> None:
        if limit is None and profile is None:
            raise ValueError("SWL needs either an explicit limit or a static profile")
        if limit is None:
            limit = derive_swl_limit(profile)
        self.limit = int(limit)

    def warp_tuple(self, max_warps: int) -> Tuple[int, int]:
        return self.clamp_tuple(self.limit, self.limit, max_warps)

    def execute(self, sm, max_cycles: int) -> Dict:
        max_warps = min(sm.config.max_warps, len(sm.warps))
        n, p = self.warp_tuple(max_warps)
        sm.set_warp_tuple(n, p)
        sm.run_to_completion(max_cycles)
        return {"warp_tuple": (n, p), "swl_limit": self.limit}
