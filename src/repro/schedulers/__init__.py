"""Warp-scheduling baselines evaluated against Poise.

Every policy implements the controller protocol of
:meth:`repro.gpu.gpu.GPU.run_kernel` — an ``execute(sm, max_cycles)`` method
that owns the kernel run and adjusts the warp-tuple over time:

* :class:`GTOController` — the baseline greedy-then-oldest scheduler with
  maximum warps (and everything allowed to pollute).
* :class:`SWLController` — Static Warp Limiting: a fixed ``N = p`` derived
  from offline profiling on the diagonal of the warp-tuple plane.
* :class:`CCWSController` — a dynamic cache-conscious throttling scheme that
  tracks lost intra-warp locality and adapts ``N = p`` at runtime.
* :class:`PCALController` — PCAL-SWL: starts from the SWL point, searches
  ``p`` in parallel, then hill-climbs ``N``.
* :class:`StaticBestController` — the per-kernel statically optimal tuple
  (the oracle of Fig. 7).
* :class:`RandomRestartController` — random-restart stochastic search with
  the same local search as Poise (Section VII-J).
* :class:`APCMPolicy` — an instruction-locality-based bypass/protect cache
  management baseline (Section VII-J), used as a cache policy rather than a
  warp-tuple controller.
"""

from repro.schedulers.apcm import APCMPolicy
from repro.schedulers.base import FixedTupleController, WarpTupleController
from repro.schedulers.ccws import CCWSController
from repro.schedulers.gto import GTOController
from repro.schedulers.pcal import PCALController
from repro.schedulers.random_restart import RandomRestartController
from repro.schedulers.static_best import StaticBestController
from repro.schedulers.swl import SWLController, derive_swl_limit

__all__ = [
    "APCMPolicy",
    "CCWSController",
    "FixedTupleController",
    "GTOController",
    "PCALController",
    "RandomRestartController",
    "StaticBestController",
    "SWLController",
    "WarpTupleController",
    "derive_swl_limit",
]
