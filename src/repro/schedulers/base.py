"""Controller protocol shared by all warp-scheduling policies."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Tuple


class WarpTupleController(ABC):
    """A policy that owns a kernel run and steers the warp-tuple.

    ``execute`` receives a freshly built SM and a cycle budget; it must run
    the SM (typically via ``sm.run_cycles`` / ``sm.run_to_completion``) and
    may return a telemetry dictionary that ends up in
    :attr:`repro.gpu.gpu.RunResult.telemetry`.
    """

    @abstractmethod
    def execute(self, sm, max_cycles: int) -> Dict:
        """Run the kernel under this policy."""

    @staticmethod
    def clamp_tuple(n: int, p: int, max_warps: int) -> Tuple[int, int]:
        n = max(1, min(int(n), max_warps))
        p = max(1, min(int(p), n))
        return n, p


class FixedTupleController(WarpTupleController):
    """Pin a single warp-tuple for the whole run."""

    def __init__(self, n: int, p: int) -> None:
        self.n = n
        self.p = p

    def execute(self, sm, max_cycles: int) -> Dict:
        max_warps = min(sm.config.max_warps, len(sm.warps))
        n, p = self.clamp_tuple(self.n, self.p, max_warps)
        sm.set_warp_tuple(n, p)
        sm.run_to_completion(max_cycles)
        return {"warp_tuple": (n, p)}
