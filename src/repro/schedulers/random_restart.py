"""Random-restart stochastic search (Section VII-J).

The alternative to Poise's learned starting point: pick a random warp-tuple,
run the same stride-halving local search Poise uses, and repeat with new
random starting points throughout execution.  Stochastic restarts avoid
local optima eventually, but pay for it with many sampling iterations and no
guarantee of starting anywhere near the optimum — which is exactly the
behaviour the paper measures (Poise outperforms it by ~22% on average).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.schedulers.base import WarpTupleController


@dataclass(frozen=True)
class RandomRestartParameters:
    epoch_cycles: int = 50_000
    warmup_cycles: int = 1_000
    sample_cycles: int = 3_000
    stride_n: int = 2
    stride_p: int = 4
    seed: int = 0


class RandomRestartController(WarpTupleController):
    """Random starting point + gradient-ascent local search, per epoch."""

    def __init__(self, params: RandomRestartParameters = RandomRestartParameters()) -> None:
        self.params = params

    def _sample(self, sm, n: int, p: int) -> float:
        sm.set_warp_tuple(n, p)
        sm.run_cycles(self.params.warmup_cycles)
        before = sm.snapshot()
        sm.run_cycles(self.params.sample_cycles)
        return (sm.counters - before).ipc

    def _local_search(
        self, sm, start: Tuple[int, int], max_warps: int
    ) -> Tuple[Tuple[int, int], List[Tuple[int, int]]]:
        visited = [start]
        best_ipc = self._sample(sm, *start)
        current = start
        for axis, stride in ((0, self.params.stride_n), (1, self.params.stride_p)):
            step = stride
            while step > 0:
                improved = False
                for direction in (-1, 1):
                    candidate = list(current)
                    candidate[axis] += direction * step
                    n, p = candidate
                    n = max(1, min(n, max_warps))
                    p = max(1, min(p, n))
                    candidate = (n, p)
                    if candidate == current:
                        continue
                    ipc = self._sample(sm, *candidate)
                    visited.append(candidate)
                    if ipc > best_ipc:
                        best_ipc = ipc
                        current = candidate
                        improved = True
                if not improved:
                    step //= 2
        return current, visited

    def execute(self, sm, max_cycles: int) -> Dict:
        params = self.params
        rng = random.Random(params.seed)
        max_warps = min(sm.config.max_warps, len(sm.warps))
        end_cycle = sm.cycle + max_cycles
        chosen: List[Tuple[int, int]] = []
        visited_all: List[Tuple[int, int]] = []

        while not sm.done and sm.cycle < end_cycle:
            epoch_start = sm.cycle
            n = rng.randint(1, max_warps)
            p = rng.randint(1, n)
            final, visited = self._local_search(sm, (n, p), max_warps)
            chosen.append(final)
            visited_all.extend(visited)
            sm.set_warp_tuple(*final)
            remaining = params.epoch_cycles - (sm.cycle - epoch_start)
            if remaining > 0:
                sm.run_cycles(min(remaining, max(0, end_cycle - sm.cycle)))
        return {"chosen_tuples": chosen, "visited": visited_all}
