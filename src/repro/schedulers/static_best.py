"""The Static-Best oracle: run each kernel at its statically optimal tuple.

This is the paper's upper-bound comparison (Fig. 7): the warp-tuple with the
highest throughput in the kernel's offline profile, with no runtime search
or sampling overhead of any kind.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.profiling.profiler import StaticProfile
from repro.schedulers.base import WarpTupleController


class StaticBestController(WarpTupleController):
    """Pin the profile's best warp-tuple for the whole kernel."""

    def __init__(
        self,
        best_tuple: Optional[Tuple[int, int]] = None,
        profile: Optional[StaticProfile] = None,
    ) -> None:
        if best_tuple is None and profile is None:
            raise ValueError("Static-Best needs a tuple or a static profile")
        if best_tuple is None:
            best_tuple = profile.best_point()
        self.best_tuple = (int(best_tuple[0]), int(best_tuple[1]))

    def execute(self, sm, max_cycles: int) -> Dict:
        max_warps = min(sm.config.max_warps, len(sm.warps))
        n, p = self.clamp_tuple(*self.best_tuple, max_warps=max_warps)
        sm.set_warp_tuple(n, p)
        sm.run_to_completion(max_cycles)
        return {"warp_tuple": (n, p)}
