"""An APCM-style instruction-based cache management baseline (Section VII-J).

Access-Pattern-aware Cache Management classifies *load instructions* (static
PCs) by the locality of the accesses they generate and bypasses the L1 for
streaming PCs while protecting high-locality ones.  It manages the cache
only — it never changes the number of schedulable warps — which is exactly
the limitation the paper highlights when comparing against Poise.

The policy plugs into the simulator as a
:class:`repro.gpu.sm.CacheManagementPolicy`: it observes every L1 access,
maintains a per-PC hit/access table, and denies allocation to PCs whose
observed reuse stays below a threshold after a learning period.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.gpu.isa import Instruction
from repro.gpu.sm import CacheManagementPolicy


@dataclass
class _PCStats:
    accesses: int = 0
    hits: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


@dataclass
class APCMParameters:
    learning_accesses: int = 64
    bypass_hit_rate: float = 0.08


class APCMPolicy(CacheManagementPolicy):
    """Per-PC bypass decisions driven by observed instruction locality."""

    def __init__(self, params: APCMParameters = APCMParameters()) -> None:
        self.params = params
        self._table: Dict[int, _PCStats] = {}

    def _stats(self, pc: int) -> _PCStats:
        return self._table.setdefault(pc, _PCStats())

    def allow_allocate(self, instruction: Instruction, warp_id: int) -> bool:
        stats = self._stats(instruction.pc)
        if stats.accesses < self.params.learning_accesses:
            return True  # still learning: default to allocate
        return stats.hit_rate >= self.params.bypass_hit_rate

    def observe_access(self, instruction: Instruction, warp_id: int, hit: bool) -> None:
        stats = self._stats(instruction.pc)
        stats.accesses += 1
        if hit:
            stats.hits += 1

    def bypassed_pcs(self) -> Dict[int, float]:
        """PCs currently classified as streaming (for inspection/tests)."""
        return {
            pc: stats.hit_rate
            for pc, stats in self._table.items()
            if stats.accesses >= self.params.learning_accesses
            and stats.hit_rate < self.params.bypass_hit_rate
        }
