"""Scenario grids: declarative axis cross-products over the simulation space.

A grid is a dict of axes.  Each axis name is fixed (see :data:`AXIS_ORDER`)
and maps onto one knob of the evaluation machinery:

``scheme``
    A scheduling scheme name (anything
    :func:`repro.experiments.common._build_controller` accepts).
``benchmark``
    A registered benchmark name — synthetic suites and the trace-native
    families alike.
``engine``
    Simulator core (``fast``/``legacy``), or ``None`` to inherit
    ``REPRO_ENGINE``.  Points that pin an engine are executed with the
    result and static-profile caches disabled so the named engine genuinely
    runs every simulation (the caches are engine-agnostic by design — see
    :mod:`repro.gpu.engine`); only the trained model is shared, as a fixed
    input resolved on the base platform.
``l1_scale`` / ``l1_indexing`` / ``max_warps``
    Architecture parameters applied to :class:`repro.gpu.config.GPUConfig`.
``poise_strides``
    The Poise local-search stride pair ``(εN, εp)`` (Fig. 11's axis).
``feature_mask``
    Feature indices removed before (re)training the regression model
    (Fig. 13's axis); ``None`` means the full feature vector.
``num_sms``
    Number of simulated SMs sharing the L2/DRAM busy servers
    (:class:`repro.gpu.chip.Chip`); ``None`` keeps the base config's count
    (1, the seed's single-SM view).
``kernel_mix``
    A DAG shape name (``chain``/``fanout``/``diamond``/``parallel``): the
    point runs the benchmark's kernels as a dependency graph through
    ``GPU.run_graph`` instead of one kernel at a time.  Restricted to the
    ``gto`` scheme — graph nodes run under the static list scheduler.

Expansion is deterministic: axes iterate in :data:`AXIS_ORDER`, values in
declaration order, so the same grid always yields the same tuple of frozen
:class:`ScenarioPoint` objects — and ``shard(k, n)`` partitions that order
round-robin into ``n`` disjoint, collectively exhaustive slices.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.gpu.engine import ENGINES


class ScenarioError(ValueError):
    """A scenario grid, axis value or shard specification is invalid."""


#: Canonical axis iteration order (outermost first).
AXIS_ORDER: Tuple[str, ...] = (
    "engine",
    "scheme",
    "benchmark",
    "l1_scale",
    "l1_indexing",
    "max_warps",
    "poise_strides",
    "feature_mask",
    "num_sms",
    "kernel_mix",
)

#: Value a point takes for an axis the grid does not declare.
AXIS_DEFAULTS: Dict[str, Any] = {
    "engine": None,
    "scheme": "gto",
    "benchmark": None,  # required — a grid must declare benchmarks
    "l1_scale": 1,
    "l1_indexing": None,
    "max_warps": None,
    "poise_strides": None,
    "feature_mask": None,
    "num_sms": None,
    "kernel_mix": None,
}

#: Number of features in the regression vector (Table II's x1..x8).
NUM_FEATURES = 8


def _known_schemes() -> Tuple[str, ...]:
    from repro.experiments.common import KNOWN_SCHEMES

    return KNOWN_SCHEMES


def _known_benchmarks() -> Dict[str, Any]:
    from repro.workloads.registry import all_benchmarks

    return all_benchmarks()


def _axis_error(axis: str, value: Any, expected: str) -> ScenarioError:
    return ScenarioError(f"axis {axis!r}: invalid value {value!r} — expected {expected}")


def _check_int(axis: str, value: Any, minimum: int, expected: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int) or value < minimum:
        raise _axis_error(axis, value, expected)
    return value


def canonical_axis_value(axis: str, value: Any) -> Any:
    """Validate one axis value and return its canonical (hashable) form."""
    if axis == "scheme":
        known = _known_schemes()
        if not isinstance(value, str) or value not in known:
            raise _axis_error(axis, value, f"one of {', '.join(sorted(known))}")
        return value
    if axis == "benchmark":
        known = _known_benchmarks()
        if not isinstance(value, str) or value not in known:
            raise _axis_error(axis, value, f"a registered benchmark ({', '.join(sorted(known))})")
        return value
    if axis == "engine":
        if value is None:
            return None
        if not isinstance(value, str) or value not in ENGINES:
            raise _axis_error(axis, value, f"one of {', '.join(ENGINES)} (or None to inherit)")
        return value
    if axis == "l1_scale":
        return _check_int(axis, value, 1, "a positive integer capacity multiplier")
    if axis == "l1_indexing":
        if value is None:
            return None
        if value not in ("hash", "linear"):
            raise _axis_error(axis, value, "'hash', 'linear' or None to keep the baseline")
        return value
    if axis == "max_warps":
        if value is None:
            return None
        return _check_int(axis, value, 1, "a positive warp count (or None to keep the baseline)")
    if axis == "poise_strides":
        if value is None:
            return None
        try:
            n, p = value
        except (TypeError, ValueError):
            raise _axis_error(axis, value, "an (εN, εp) pair of non-negative integers") from None
        return (
            _check_int(axis, n, 0, "an (εN, εp) pair of non-negative integers"),
            _check_int(axis, p, 0, "an (εN, εp) pair of non-negative integers"),
        )
    if axis == "feature_mask":
        if value is None:
            return None
        expected = f"feature indices in 0..{NUM_FEATURES - 1} (or None for the full vector)"
        if isinstance(value, (str, bytes)) or not isinstance(value, Iterable):
            raise _axis_error(axis, value, expected)
        indices = tuple(value)
        for index in indices:
            if isinstance(index, bool) or not isinstance(index, int) or not 0 <= index < NUM_FEATURES:
                raise _axis_error(axis, value, expected)
        if not indices or len(set(indices)) != len(indices):
            raise _axis_error(axis, value, expected + ", non-empty and duplicate-free")
        return tuple(sorted(indices))
    if axis == "num_sms":
        if value is None:
            return None
        return _check_int(axis, value, 1, "a positive SM count (or None to keep the baseline)")
    if axis == "kernel_mix":
        if value is None:
            return None
        from repro.workloads.graph import MIX_SHAPES

        if not isinstance(value, str) or value not in MIX_SHAPES:
            raise _axis_error(
                axis, value, f"one of {', '.join(MIX_SHAPES)} (or None for single-kernel runs)"
            )
        return value
    raise ScenarioError(f"unknown axis {axis!r} (known axes: {', '.join(AXIS_ORDER)})")


@dataclass(frozen=True)
class ScenarioPoint:
    """One frozen cell of an expanded grid (every axis bound to a value)."""

    scheme: str
    benchmark: str
    engine: Optional[str] = None
    l1_scale: int = 1
    l1_indexing: Optional[str] = None
    max_warps: Optional[int] = None
    poise_strides: Optional[Tuple[int, int]] = None
    feature_mask: Optional[Tuple[int, ...]] = None
    num_sms: Optional[int] = None
    kernel_mix: Optional[str] = None

    def payload(self) -> Dict[str, Any]:
        """JSON-representable axis assignment (tuples become lists)."""
        return {
            "engine": self.engine,
            "scheme": self.scheme,
            "benchmark": self.benchmark,
            "l1_scale": self.l1_scale,
            "l1_indexing": self.l1_indexing,
            "max_warps": self.max_warps,
            "poise_strides": (
                list(self.poise_strides) if self.poise_strides is not None else None
            ),
            "feature_mask": (
                list(self.feature_mask) if self.feature_mask is not None else None
            ),
            "num_sms": self.num_sms,
            "kernel_mix": self.kernel_mix,
        }

    @property
    def point_id(self) -> str:
        """Stable, filename-safe identifier: readable prefix + content hash."""
        canonical = json.dumps(self.payload(), sort_keys=True, separators=(",", ":"))
        digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:10]
        return f"{self.benchmark}-{self.scheme}-{digest}"

    def describe(self) -> str:
        """Compact human-readable axis summary (non-default axes only)."""
        parts = [self.scheme, self.benchmark]
        for axis in ("engine", "l1_scale", "l1_indexing", "max_warps",
                     "poise_strides", "feature_mask", "num_sms", "kernel_mix"):
            value = getattr(self, axis)
            if value != AXIS_DEFAULTS[axis]:
                parts.append(f"{axis}={value}")
        return " ".join(parts)

    def experiment_config(self, base: "ExperimentConfig") -> "ExperimentConfig":
        """Derive the point's :class:`ExperimentConfig` from a base preset.

        The derivation mirrors what the sensitivity figures do by hand, so a
        grid-driven run shares result-cache entries (and values) with the
        bespoke loops it replaced: the L1 is rescaled/re-indexed in one
        ``with_l1`` call, the scheduler capacity via the SM config, and the
        Poise strides via ``with_poise_params``.
        """
        from dataclasses import replace

        config = base
        gpu = config.gpu
        if self.max_warps is not None:
            gpu = replace(gpu, sm=replace(gpu.sm, max_warps=self.max_warps))
        if self.num_sms is not None and self.num_sms != gpu.num_sms:
            gpu = replace(gpu, num_sms=self.num_sms)
        if self.l1_scale != 1 or self.l1_indexing is not None:
            gpu = gpu.with_l1(
                size_bytes=gpu.l1.size_bytes * self.l1_scale,
                indexing=self.l1_indexing or gpu.l1.indexing,
            )
        if gpu is not config.gpu:
            config = config.with_gpu(gpu)
        if self.poise_strides is not None:
            config = config.with_poise_params(
                config.poise_params.with_strides(*self.poise_strides)
            )
        return config


class ScenarioGrid:
    """A named, validated dict-of-axes cross-product."""

    def __init__(
        self,
        name: str,
        axes: Mapping[str, Iterable[Any]],
        description: str = "",
    ) -> None:
        if not name or not isinstance(name, str):
            raise ScenarioError("a grid needs a non-empty name")
        unknown = sorted(set(axes) - set(AXIS_ORDER))
        if unknown:
            raise ScenarioError(
                f"grid {name!r}: unknown ax{'es' if len(unknown) > 1 else 'is'} "
                f"{', '.join(repr(axis) for axis in unknown)} "
                f"(known axes: {', '.join(AXIS_ORDER)})"
            )
        normalized: Dict[str, Tuple[Any, ...]] = {}
        for axis in AXIS_ORDER:
            if axis not in axes:
                continue
            values = tuple(canonical_axis_value(axis, value) for value in axes[axis])
            if not values:
                raise ScenarioError(f"grid {name!r}: axis {axis!r} has no values")
            if len(set(values)) != len(values):
                raise ScenarioError(f"grid {name!r}: axis {axis!r} has duplicate values")
            normalized[axis] = values
        if "benchmark" not in normalized:
            raise ScenarioError(f"grid {name!r}: the 'benchmark' axis is required")
        self.name = name
        self.description = description
        self.axes: Dict[str, Tuple[Any, ...]] = normalized
        self._check_warp_capacity()
        self._check_poise_axes()
        self._check_kernel_mix_axes()

    def _check_warp_capacity(self) -> None:
        """Fail fast when a ``max_warps`` value cannot hold a benchmark's
        kernels (the SM rejects kernels wider than the scheduler)."""
        if "max_warps" not in self.axes:
            return
        bounded = [warps for warps in self.axes["max_warps"] if warps is not None]
        if not bounded:
            return
        floor = min(bounded)
        registry = _known_benchmarks()
        for benchmark in self.axes["benchmark"]:
            widest = max(spec.num_warps for spec in registry[benchmark].kernels)
            if widest > floor:
                raise ScenarioError(
                    f"grid {self.name!r}: benchmark {benchmark!r} launches kernels of "
                    f"{widest} warps but the max_warps axis goes down to {floor}"
                )

    def _check_poise_axes(self) -> None:
        """Reject Poise-only axes no scheme on the grid can consume.

        ``poise_strides`` and ``feature_mask`` only change what a
        Poise-based controller does; sweeping them under purely non-Poise
        schemes would re-simulate identical points per axis value and emit a
        sensitivity table that *looks* measured but never was.
        """
        schemes = self.axes.get("scheme", (AXIS_DEFAULTS["scheme"],))
        if any(scheme.startswith("poise") for scheme in schemes):
            return
        for axis in ("poise_strides", "feature_mask"):
            if any(value is not None for value in self.axes.get(axis, ())):
                raise ScenarioError(
                    f"grid {self.name!r}: axis {axis!r} varies but no scheme on "
                    f"the scheme axis is Poise-based — every non-Poise point "
                    f"would be an identical re-simulation per axis value"
                )

    def _check_kernel_mix_axes(self) -> None:
        """Reject ``kernel_mix`` under schemes that cannot drive a graph.

        Graph nodes run under the deterministic list scheduler with static
        GTO warp-tuples — a controller-driven scheme on a ``kernel_mix``
        point would silently fall back to the same static run, emitting a
        scheme comparison that *looks* measured but never was.
        """
        if not any(value is not None for value in self.axes.get("kernel_mix", ())):
            return
        schemes = self.axes.get("scheme", (AXIS_DEFAULTS["scheme"],))
        offending = sorted(set(schemes) - {"gto"})
        if offending:
            raise ScenarioError(
                f"grid {self.name!r}: axis 'kernel_mix' varies but scheme(s) "
                f"{', '.join(repr(s) for s in offending)} cannot drive a kernel "
                f"graph — DAG points run the static GTO list scheduler only"
            )

    @property
    def size(self) -> int:
        product = 1
        for values in self.axes.values():
            product *= len(values)
        return product

    def points(self) -> Tuple[ScenarioPoint, ...]:
        """Deterministic, duplicate-free expansion of the cross-product."""
        names = [axis for axis in AXIS_ORDER if axis in self.axes]
        points: List[ScenarioPoint] = []
        for combo in itertools.product(*(self.axes[axis] for axis in names)):
            bound = dict(AXIS_DEFAULTS)
            bound.update(zip(names, combo))
            points.append(ScenarioPoint(**bound))
        return tuple(points)

    def shard(self, shard_index: int, num_shards: int) -> Tuple[ScenarioPoint, ...]:
        """The ``shard_index``-th of ``num_shards`` disjoint slices (1-based).

        The partition is round-robin over the expansion order, so it is
        order-stable (each shard is a subsequence of :meth:`points`), the
        slices are pairwise disjoint, and their union is the full grid —
        which is what makes K containers' artifact unions byte-identical to
        one full run.
        """
        validate_shard(shard_index, num_shards)
        return self.points()[shard_index - 1 :: num_shards]

    def with_axes(self, **overrides: Iterable[Any]) -> "ScenarioGrid":
        """A copy with some axes replaced (revalidated from scratch)."""
        axes: Dict[str, Iterable[Any]] = dict(self.axes)
        axes.update(overrides)
        return ScenarioGrid(self.name, axes, description=self.description)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        axes = ", ".join(f"{axis}×{len(values)}" for axis, values in self.axes.items())
        return f"ScenarioGrid({self.name!r}, {axes}, size={self.size})"


def validate_shard(shard_index: int, num_shards: int) -> None:
    """Raise :class:`ScenarioError` unless ``1 <= shard_index <= num_shards``."""
    for value in (shard_index, num_shards):
        if isinstance(value, bool) or not isinstance(value, int):
            raise ScenarioError(f"shard spec must be two integers, got {value!r}")
    if num_shards < 1:
        raise ScenarioError(f"shard count must be at least 1, got {num_shards}")
    if not 1 <= shard_index <= num_shards:
        raise ScenarioError(
            f"shard index {shard_index} out of range 1..{num_shards} "
            f"(shards are addressed K/N with 1 <= K <= N)"
        )


def parse_shard(spec: str) -> Tuple[int, int]:
    """Parse a ``K/N`` shard spec into a validated ``(K, N)`` pair."""
    parts = str(spec).split("/")
    if len(parts) != 2:
        raise ScenarioError(f"malformed shard spec {spec!r} — expected K/N, e.g. 2/4")
    try:
        shard_index, num_shards = int(parts[0]), int(parts[1])
    except ValueError:
        raise ScenarioError(
            f"malformed shard spec {spec!r} — K and N must be integers"
        ) from None
    validate_shard(shard_index, num_shards)
    return shard_index, num_shards
