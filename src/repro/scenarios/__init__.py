"""Declarative scenario sweeps.

One :class:`~repro.scenarios.grid.ScenarioGrid` declares a cross-product of
axes — schemes, benchmarks, architecture knobs from
:mod:`repro.gpu.config`, the simulator engine — and expands
deterministically into frozen :class:`~repro.scenarios.grid.ScenarioPoint`
objects.  The :class:`~repro.scenarios.runner.SweepRunner` executes points
with one content-stable JSON artifact each, so N containers can split a
grid with ``--shard K/N`` and the union of their artifacts is byte-identical
to a single full run; ``--resume`` skips points whose artifact already
validates.  :mod:`repro.scenarios.report` folds the per-point artifacts into
one schema-validated sweep artifact (per-axis sensitivity, best scheme per
point).  :mod:`repro.scenarios.library` registers the named grids the
``repro sweep`` CLI exposes, including the grids behind Figures 11–13.
"""

from repro.scenarios.grid import (
    AXIS_ORDER,
    ScenarioError,
    ScenarioGrid,
    ScenarioPoint,
    parse_shard,
)
from repro.scenarios.runner import (
    CorruptPointArtifact,
    SweepRunner,
    evaluate_grid,
    evaluate_point,
)
from repro.scenarios.report import SweepSchema, aggregate, sweep_artifact_path
from repro.scenarios.library import get_grid, named_grids

__all__ = [
    "AXIS_ORDER",
    "CorruptPointArtifact",
    "ScenarioError",
    "ScenarioGrid",
    "ScenarioPoint",
    "SweepRunner",
    "SweepSchema",
    "aggregate",
    "evaluate_grid",
    "evaluate_point",
    "get_grid",
    "named_grids",
    "parse_shard",
    "sweep_artifact_path",
]
