"""Named scenario grids.

These are the sweeps ``repro sweep`` exposes by name.  The three ``fig*``
grids are the declarative form of the paper's sensitivity studies — the
experiment modules for Figures 11–13 build their artifacts by evaluating
exactly these grids, so `repro sweep run fig11-strides` and `repro run
fig11` agree point for point.  The remaining grids generalize them: L1
capacity × profile-guided schemes over the trace-native families,
scheduler capacity × throttling schemes, an engine-parity cross-check, and
a tiny ``smoke`` grid sized for CI sharding checks.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.scenarios.grid import ScenarioError, ScenarioGrid

#: Fig. 11's local-search stride pairs (εN, εp).
FIG11_STRIDES: Tuple[Tuple[int, int], ...] = ((0, 0), (1, 1), (2, 2), (2, 4), (4, 4))

#: Fig. 12's L1 capacity multipliers (16/32/64 KB).
FIG12_SCALES: Tuple[int, ...] = (1, 2, 4)

#: Fig. 13's ablated feature indices (0-based into Table II's x1..x8).
FIG13_ABLATIONS: Tuple[int, ...] = (6, 5, 4, 3, 2)


def _evaluation_benchmarks() -> Tuple[str, ...]:
    from repro.workloads.registry import EVALUATION_ORDER

    return tuple(EVALUATION_ORDER)


def fig11_grid(
    strides: Optional[Sequence[Tuple[int, int]]] = None,
    benchmarks: Optional[Iterable[str]] = None,
) -> ScenarioGrid:
    """Fig. 11 — Poise over the evaluation suite × local-search strides."""
    return ScenarioGrid(
        "fig11-strides",
        {
            "scheme": ("poise",),
            "benchmark": tuple(benchmarks or _evaluation_benchmarks()),
            "poise_strides": tuple(tuple(stride) for stride in (strides or FIG11_STRIDES)),
        },
        description="Sensitivity to the Poise local-search stride (εN, εp)",
    )


def fig12_grid(
    scales: Optional[Sequence[int]] = None,
    benchmarks: Optional[Iterable[str]] = None,
) -> ScenarioGrid:
    """Fig. 12 — Poise on linearly-indexed L1s of 1×/2×/4× capacity."""
    return ScenarioGrid(
        "fig12-l1-size",
        {
            "scheme": ("poise",),
            "benchmark": tuple(benchmarks or _evaluation_benchmarks()),
            "l1_scale": tuple(scales or FIG12_SCALES),
            "l1_indexing": ("linear",),
        },
        description="Sensitivity to L1 capacity (linear indexing, baseline-trained model)",
    )


def fig13_grid(
    ablations: Optional[Sequence[int]] = None,
    benchmarks: Optional[Iterable[str]] = None,
) -> ScenarioGrid:
    """Fig. 13 — no-search Poise with one feature removed at a time.

    The ``None`` mask (full feature vector) is the reference column.
    """
    masks: Tuple[Optional[Tuple[int, ...]], ...] = (None,) + tuple(
        (index,) for index in (ablations if ablations is not None else FIG13_ABLATIONS)
    )
    return ScenarioGrid(
        "fig13-ablation",
        {
            "scheme": ("poise_nosearch",),
            "benchmark": tuple(benchmarks or _evaluation_benchmarks()),
            "feature_mask": masks,
        },
        description="Sensitivity to removing one feature (retrained, no local search)",
    )


def _builtin_grids() -> List[ScenarioGrid]:
    return [
        fig11_grid(),
        fig12_grid(),
        fig13_grid(),
        ScenarioGrid(
            "l1-trace",
            {
                "scheme": ("gto", "swl", "static_best"),
                "benchmark": ("stencil", "transpose", "gather"),
                "l1_scale": (1, 2, 4),
            },
            description="L1 capacity × profile-guided schemes over the trace-native families",
        ),
        ScenarioGrid(
            "warps-per-sm",
            {
                "scheme": ("gto", "ccws", "apcm"),
                "benchmark": ("mvt", "bfs", "syr2k"),
                "max_warps": (24, 32, 48),
            },
            description="Scheduler warp capacity × throttling schemes",
        ),
        ScenarioGrid(
            "engine-parity",
            {
                "engine": ("fast", "legacy", "event"),
                "scheme": ("gto", "ccws"),
                "benchmark": ("mvt", "stencil"),
            },
            description="All simulator engines over the same points (caches bypassed) "
            "— their metrics must be identical",
        ),
        ScenarioGrid(
            "smoke",
            {
                "scheme": ("gto", "ccws"),
                "benchmark": ("gather", "mvt"),
                "engine": ("fast", "event"),
                "num_sms": (None, 2),
            },
            description="Tiny 2×2×2×2 grid for CI shard/union checks "
            "(engine-pinned, so shards also exercise both hot-loop cores; "
            "the num_sms axis covers the single-SM and 2-SM chip paths)",
        ),
    ]


def named_grids() -> Dict[str, ScenarioGrid]:
    """Every registered grid, keyed by name."""
    grids: Dict[str, ScenarioGrid] = {}
    for grid in _builtin_grids():
        if grid.name in grids:
            raise ScenarioError(f"duplicate grid name {grid.name!r}")
        grids[grid.name] = grid
    return grids


def get_grid(name: str) -> ScenarioGrid:
    """Look up a named grid; raises :class:`ScenarioError` with suggestions."""
    grids = named_grids()
    if name not in grids:
        raise ScenarioError(
            f"unknown sweep grid {name!r} (known grids: {', '.join(sorted(grids))})"
        )
    return grids[name]


# ---------------------------------------------------------------------------
# axis overrides (shared by ``repro sweep --set`` and the serve job API)
# ---------------------------------------------------------------------------

def parse_override_value(axis: str, token: str):
    """Parse one ``--set AXIS=...`` value token into its axis-typed form."""
    token = token.strip()
    if token.lower() == "none":
        return None
    if axis in ("l1_scale", "max_warps", "num_sms"):
        try:
            return int(token)
        except ValueError:
            raise ScenarioError(f"axis {axis!r}: {token!r} is not an integer") from None
    if axis == "poise_strides":
        parts = token.split(":")
        if len(parts) != 2:
            raise ScenarioError(
                f"axis {axis!r}: {token!r} is not an N:P stride pair (e.g. 2:4)"
            )
        try:
            return (int(parts[0]), int(parts[1]))
        except ValueError:
            raise ScenarioError(f"axis {axis!r}: {token!r} is not an N:P stride pair") from None
    if axis == "feature_mask":
        try:
            return tuple(int(part) for part in token.split(":"))
        except ValueError:
            raise ScenarioError(
                f"axis {axis!r}: {token!r} is not a colon-separated index list (e.g. 5:6)"
            ) from None
    return token


def apply_overrides(grid: ScenarioGrid, overrides: Sequence[str]) -> ScenarioGrid:
    """Apply ``AXIS=V1,V2`` overrides, deriving a distinct grid name.

    An overridden grid is a *different* grid, so it gets its own artifact
    tree (``<name>@<axes-digest>``): override runs can never mix points into
    — or clobber the ``sweep.json`` of — the canonical named grid, and the
    digest is deterministic, so sharded/resumed/served runs of the same
    overrides still converge on one directory.
    """
    import hashlib
    import json

    parsed: Dict[str, List] = {}
    for override in overrides:
        axis, separator, raw = override.partition("=")
        axis = axis.strip()
        if not separator or not raw.strip():
            raise ScenarioError(
                f"malformed --set override {override!r} — expected AXIS=V1,V2 "
                f"(e.g. scheme=gto,poise)"
            )
        parsed[axis] = [
            parse_override_value(axis, token) for token in raw.split(",") if token.strip()
        ]
    if not parsed:
        return grid
    derived = grid.with_axes(**parsed)
    canonical = json.dumps(
        {
            axis: [list(value) if isinstance(value, tuple) else value for value in values]
            for axis, values in derived.axes.items()
        },
        sort_keys=True,
    )
    digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:8]
    return ScenarioGrid(
        f"{grid.name}@{digest}", derived.axes, description=derived.description
    )
