"""Aggregation of per-point artifacts into one schema-validated sweep artifact.

The sweep artifact lives next to the point files::

    <cache_dir>/artifacts/sweeps/<grid>/<label>/sweep.json

and is as content-stable as they are (no timestamps): aggregating the union
of K shards' artifacts yields the same bytes as aggregating a single full
run.  It carries three views:

* ``points`` — every point's axis assignment and metrics, in expansion order;
* ``sensitivity`` — per-axis tables: for each swept axis (more than one
  value), the mean/harmonic-mean speedup of the points sharing each value;
* ``best_scheme`` — for every non-scheme axis combination, which scheme won.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.analysis.tables import Table
from repro.profiling.metrics import harmonic_mean
from repro.scenarios.grid import AXIS_ORDER, ScenarioError, ScenarioGrid
from repro.scenarios.runner import POINT_METRICS, SweepRunner, sweep_root

SWEEP_FORMAT_VERSION = 1


def sweep_artifact_path(cache_dir: Union[str, Path], grid_name: str, label: str) -> Path:
    return sweep_root(cache_dir, grid_name, label) / "sweep.json"


def _encode_axis_value(value: Any) -> Any:
    return list(value) if isinstance(value, tuple) else value


def aggregate(
    grid: ScenarioGrid,
    base_config,
    cache_dir: Optional[Union[str, Path]] = None,
) -> Dict[str, Any]:
    """Fold every point artifact of a grid into one sweep payload.

    Raises :class:`ScenarioError` when any point artifact is missing (listing
    the absent point ids, so a partially-run sharded sweep tells the operator
    which shards still owe results) and :class:`CorruptPointArtifact` when
    one exists but does not validate.
    """
    runner = SweepRunner(grid, base_config, cache_dir=cache_dir)
    documents: List[Dict[str, Any]] = []
    missing: List[str] = []
    for point in grid.points():
        document = runner.load_point(point)
        if document is None:
            missing.append(point.point_id)
        else:
            documents.append(document)
    if missing:
        preview = ", ".join(missing[:5]) + ("…" if len(missing) > 5 else "")
        base_name, _, overridden = grid.name.partition("@")
        hint = f"repro sweep run {base_name} --{runner.label}" + (
            " (with the same --set overrides)" if overridden else ""
        )
        raise ScenarioError(
            f"sweep {grid.name!r} ({runner.label}) is missing {len(missing)} of "
            f"{grid.size} point artifacts ({preview}) — run the remaining shards "
            f"with `{hint}` first"
        )
    payload: Dict[str, Any] = {
        "format_version": SWEEP_FORMAT_VERSION,
        "kind": "sweep",
        "grid": grid.name,
        "label": runner.label,
        "axes": {
            axis: [_encode_axis_value(value) for value in values]
            for axis, values in grid.axes.items()
        },
        "num_points": len(documents),
        "points": [
            {
                "point_id": document["point_id"],
                "point": document["point"],
                "metrics": document["metrics"],
            }
            for document in documents
        ],
        "sensitivity": _sensitivity(grid, documents),
        "best_scheme": _best_scheme(grid, documents),
    }
    return payload


def _sensitivity(
    grid: ScenarioGrid, documents: List[Dict[str, Any]]
) -> Dict[str, List[Dict[str, Any]]]:
    """Per-axis speedup aggregation over every swept (multi-valued) axis."""
    sensitivity: Dict[str, List[Dict[str, Any]]] = {}
    for axis, values in grid.axes.items():
        if len(values) < 2:
            continue
        rows = []
        for value in values:
            encoded = _encode_axis_value(value)
            speedups = [
                document["metrics"]["speedup"]
                for document in documents
                if document["point"][axis] == encoded
            ]
            rows.append(
                {
                    "value": encoded,
                    "points": len(speedups),
                    "mean_speedup": sum(speedups) / len(speedups),
                    "hmean_speedup": harmonic_mean([max(s, 1e-9) for s in speedups]),
                }
            )
        sensitivity[axis] = rows
    return sensitivity


def _best_scheme(
    grid: ScenarioGrid, documents: List[Dict[str, Any]]
) -> List[Dict[str, Any]]:
    """The winning scheme for every non-scheme axis combination.

    Ties break toward the scheme listed first on the scheme axis (documents
    arrive in expansion order, and a strictly-greater comparison keeps the
    first winner).
    """
    best: Dict[str, Dict[str, Any]] = {}
    order: List[str] = []
    for document in documents:
        rest = {
            axis: value
            for axis, value in document["point"].items()
            if axis != "scheme"
        }
        key = json.dumps(rest, sort_keys=True)
        speedup = document["metrics"]["speedup"]
        if key not in best:
            best[key] = {"point": rest, "scheme": document["point"]["scheme"], "speedup": speedup}
            order.append(key)
        elif speedup > best[key]["speedup"]:
            best[key].update(scheme=document["point"]["scheme"], speedup=speedup)
    return [best[key] for key in order]


def write_sweep_artifact(
    payload: Dict[str, Any],
    cache_dir: Union[str, Path],
) -> Path:
    """Atomically persist a sweep payload at its canonical location."""
    from repro.scenarios.runner import _write_json

    return _write_json(
        sweep_artifact_path(cache_dir, payload["grid"], payload["label"]), payload
    )


class SweepSchema:
    """Structural contract of a sweep artifact.

    Deliberately structural, like :class:`~repro.experiments.common.ArtifactSchema`:
    it checks the payload's shape (every point carries the promised metrics,
    every swept axis has a sensitivity table, the winners name real schemes),
    not the numeric values.
    """

    def validate(self, payload: Dict[str, Any]) -> None:
        from repro.experiments.common import KNOWN_SCHEMES

        if not isinstance(payload, dict):
            raise ValueError("sweep artifact must be a JSON object")
        for key in ("format_version", "kind", "grid", "label", "axes",
                    "num_points", "points", "sensitivity", "best_scheme"):
            if key not in payload:
                raise ValueError(f"sweep artifact is missing the {key!r} field")
        if payload["kind"] != "sweep":
            raise ValueError(f"unexpected artifact kind {payload['kind']!r}")
        axes = payload["axes"]
        if not isinstance(axes, dict) or not axes:
            raise ValueError("sweep artifact has no axes object")
        unknown = sorted(set(axes) - set(AXIS_ORDER))
        if unknown:
            raise ValueError(f"sweep artifact names unknown axes: {', '.join(unknown)}")
        points = payload["points"]
        if not isinstance(points, list) or not points:
            raise ValueError("sweep artifact has no points")
        if payload["num_points"] != len(points):
            raise ValueError(
                f"num_points says {payload['num_points']} but {len(points)} points present"
            )
        seen_ids = set()
        for entry in points:
            for key in ("point_id", "point", "metrics"):
                if key not in entry:
                    raise ValueError(f"a point entry is missing the {key!r} field")
            if entry["point_id"] in seen_ids:
                raise ValueError(f"duplicate point id {entry['point_id']!r}")
            seen_ids.add(entry["point_id"])
            missing = [name for name in POINT_METRICS if name not in entry["metrics"]]
            if missing:
                raise ValueError(
                    f"point {entry['point_id']!r} is missing metrics: {', '.join(missing)}"
                )
        sensitivity = payload["sensitivity"]
        if not isinstance(sensitivity, dict):
            raise ValueError("sweep artifact has no sensitivity object")
        for axis, values in axes.items():
            if len(values) >= 2 and axis not in sensitivity:
                raise ValueError(f"swept axis {axis!r} has no sensitivity table")
        for axis, rows in sensitivity.items():
            if len(rows) != len(axes.get(axis, ())):
                raise ValueError(f"sensitivity table for {axis!r} does not cover the axis")
            for row in rows:
                for key in ("value", "points", "mean_speedup", "hmean_speedup"):
                    if key not in row:
                        raise ValueError(
                            f"sensitivity row for axis {axis!r} is missing {key!r}"
                        )
        for entry in payload["best_scheme"]:
            if entry.get("scheme") not in KNOWN_SCHEMES:
                raise ValueError(
                    f"best_scheme entry names unknown scheme {entry.get('scheme')!r}"
                )


def sweep_tables(payload: Dict[str, Any]) -> List[Table]:
    """Human-readable tables of a sweep artifact (for ``repro sweep report``)."""
    tables: List[Table] = []
    for axis, rows in payload["sensitivity"].items():
        table = Table(
            title=f"Sweep {payload['grid']} — sensitivity to {axis}",
            columns=[axis, "points", "mean speedup", "hmean speedup"],
        )
        for row in rows:
            table.add_row(
                str(row["value"]), row["points"], row["mean_speedup"], row["hmean_speedup"]
            )
        tables.append(table)
    best = payload["best_scheme"]
    if best:
        table = Table(
            title=f"Sweep {payload['grid']} — best scheme per point",
            columns=["benchmark", "architecture", "best scheme", "speedup"],
        )
        for entry in best:
            point = entry["point"]
            arch = ", ".join(
                f"{axis}={point[axis]}"
                for axis in ("engine", "l1_scale", "l1_indexing", "max_warps",
                             "poise_strides", "feature_mask")
                if point.get(axis) not in (None, 1)
            )
            table.add_row(point["benchmark"], arch or "baseline", entry["scheme"], entry["speedup"])
        tables.append(table)
    return tables
