"""Execution of scenario grids with per-point artifacts, sharding and resume.

Every :class:`~repro.scenarios.grid.ScenarioPoint` produces exactly one JSON
artifact under::

    <cache_dir>/artifacts/sweeps/<grid>/<label>/points/<point_id>.json

The payload is *content-stable*: no timestamps, no wall-clock, no
host-dependent field — only the point's axis assignment and the
deterministic simulation metrics.  That is the property the whole sharding
story rests on: K containers running ``--shard k/K`` each write a disjoint
subset of the point files, and the union of their artifact directories is
byte-identical to what one unsharded run writes.

``resume=True`` skips points whose artifact already exists and validates
(same format version, same axis assignment, metrics present).  A *corrupt*
artifact — unreadable JSON, a different point under the same name, a
missing metrics object — is **quarantined and recomputed**: the offending
file is moved (never deleted — the operator can still inspect a torn copy
or a mixed-up artifact directory) to a ``quarantine/`` sibling of the
``points/`` directory and the point rejoins the to-compute list, so one
bad file can no longer abort a resumed sweep.  Every quarantine is
reported in the run's failure accounting.  Aggregation
(:func:`repro.scenarios.report.aggregate`) still *raises* on a corrupt
artifact: a report must never silently paper over bad inputs.

Each run also checkpoints defensively: stale atomic-write temp files left
by writers that died mid-write are swept on entry, every artifact is
validated immediately after it is written (a torn write is quarantined and
rewritten from the in-memory metrics), and the executor's per-job
timeout/retry/salvage accounting is surfaced through
:class:`SweepRunReport`.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.gpu.engine import pinned_engine
from repro.obs.telemetry import (
    TELEMETRY_FORMAT_VERSION,
    describe_cache,
    describe_phases,
    telemetry_delta,
    telemetry_snapshot,
)
from repro.runtime import faults
from repro.runtime.cache import atomic_write_json, sweep_stale_tmps
from repro.runtime.executor import JobReport, SweepExecutor
from repro.scenarios.grid import ScenarioError, ScenarioGrid, ScenarioPoint

POINT_FORMAT_VERSION = 1

#: Metric names every point artifact carries (the deterministic aggregate of
#: one scheme over one benchmark, mirroring ``BenchmarkOutcome``).
POINT_METRICS = (
    "speedup",
    "ipc",
    "l1_hit_rate",
    "aml",
    "aml_ratio",
    "energy_ratio",
)


class CorruptPointArtifact(ScenarioError):
    """A per-point artifact exists but cannot be trusted."""


def sweep_root(cache_dir: Union[str, Path], grid_name: str, label: str) -> Path:
    return Path(cache_dir) / "artifacts" / "sweeps" / grid_name / label


def points_dir(cache_dir: Union[str, Path], grid_name: str, label: str) -> Path:
    return sweep_root(cache_dir, grid_name, label) / "points"


def _write_json(path: Path, payload: Dict[str, Any]) -> Path:
    """Atomic, canonical (sorted-keys, trailing-newline) JSON write."""
    return atomic_write_json(path, payload, indent=2, trailing_newline=True)


def _short_reason(error: CorruptPointArtifact) -> str:
    """The quarantine-record reason: the diagnosis without the delete hint."""
    return str(error).split(" — ")[0]


def evaluate_point(point: ScenarioPoint, base_config) -> Dict[str, Any]:
    """Run one scenario point and return its deterministic metrics.

    The model (for Poise schemes) is always resolved on the *base*
    configuration — architecture and stride axes are deployment-time
    changes, the regression is trained on the baseline platform, exactly as
    in the paper's sensitivity studies (Figs. 11–13).

    Points that pin an ``engine`` run with the result *and* static-profile
    caches disabled — reads and writes: the caches are engine-agnostic by
    design, so honouring a hit (or seeding an entry for the sibling point)
    would silently skip the very engine the point exists to exercise.  The
    trained model is the one deliberate exception: it is resolved once on
    the base platform and shared, so engine-pinned points differ in nothing
    but the core that executes them.
    """
    from repro.experiments.common import (
        run_mix_on_benchmark,
        run_scheme_on_benchmark,
        train_or_load_model,
    )

    config = point.experiment_config(base_config)
    model = None
    if point.scheme.startswith("poise"):
        mask = list(point.feature_mask) if point.feature_mask is not None else None
        model = train_or_load_model(base_config, feature_mask=mask)
    use_cache = point.engine is None
    with pinned_engine(point.engine):
        if point.kernel_mix is not None:
            # DAG point: the benchmark's kernels run as a dependency graph
            # on the point's chip (grid validation pins the scheme to gto).
            outcome = run_mix_on_benchmark(
                point.benchmark, config, point.kernel_mix, use_cache=use_cache
            )
        else:
            outcome = run_scheme_on_benchmark(
                point.scheme, point.benchmark, config, model=model, use_cache=use_cache
            )
    return outcome_metrics(outcome)


def outcome_metrics(outcome) -> Dict[str, Any]:
    """The content-stable metrics payload of one ``BenchmarkOutcome``."""
    metrics: Dict[str, Any] = {name: getattr(outcome, name) for name in POINT_METRICS}
    metrics["kernels"] = {
        name: {
            "cycles": result.cycles,
            "instructions": result.counters.instructions,
            "l1_hit_rate": result.l1_hit_rate,
            "warp_tuple": list(result.warp_tuple),
            "completed": result.completed,
        }
        for name, result in sorted(outcome.kernel_results.items())
    }
    graph = (
        outcome.telemetry.get("graph") if isinstance(outcome.telemetry, dict) else None
    )
    if graph is not None:
        # DAG points carry their deterministic schedule (content-stable:
        # names, slots and cycle numbers only).
        metrics["graph"] = graph
    return metrics


def evaluate_grid(
    grid: ScenarioGrid, base_config
) -> Dict[ScenarioPoint, Dict[str, Any]]:
    """Evaluate every point of a grid in expansion order.

    This is the in-process path the refactored sensitivity figures use: no
    artifacts, just ``{point: metrics}`` backed by the ordinary run caches.
    """
    return {point: evaluate_point(point, base_config) for point in grid.points()}


def _point_job(point: ScenarioPoint, base_config) -> Dict[str, Any]:
    """Module-level sweep worker: one scenario point per process."""
    return evaluate_point(point, base_config)


@dataclass(frozen=True)
class PointStatus:
    """What happened to one point during a :meth:`SweepRunner.run`."""

    point: ScenarioPoint
    path: Path
    status: str  # "computed" or "skipped"


@dataclass(frozen=True)
class QuarantineRecord:
    """One corrupt artifact moved aside instead of aborting the sweep."""

    point: ScenarioPoint
    source: Path
    destination: Path
    reason: str


@dataclass
class SweepRunReport:
    """Failure accounting of one :meth:`SweepRunner.run_report` call."""

    statuses: List[PointStatus] = field(default_factory=list)
    quarantined: List[QuarantineRecord] = field(default_factory=list)
    repaired_writes: int = 0
    stale_tmps_removed: int = 0
    job_report: Optional[JobReport] = None
    #: Cache counters + phase wall-clock accumulated by this run.  The
    #: ``cache`` section is the parent's share; for a parallel run the
    #: worker-side deltas shipped home through the job envelopes appear as
    #: ``cache_workers`` and the sum of both as ``cache_combined``.
    telemetry: Optional[Dict[str, Any]] = None
    #: True when a graceful-stop request (SIGINT/SIGTERM) ended the run
    #: before every point was computed; rerun with ``resume`` to finish.
    interrupted: bool = False

    @property
    def computed(self) -> int:
        return sum(status.status == "computed" for status in self.statuses)

    @property
    def skipped(self) -> int:
        return len(self.statuses) - self.computed

    def summary_lines(self) -> List[str]:
        """The failure-accounting lines ``repro sweep run`` prints."""
        lines = []
        if self.job_report is not None:
            lines.append(f"jobs: {self.job_report.summary()}")
        if self.stale_tmps_removed:
            plural = "" if self.stale_tmps_removed == 1 else "s"
            lines.append(f"swept {self.stale_tmps_removed} stale temp file{plural}")
        for record in self.quarantined:
            lines.append(
                f"quarantined {record.source.name} -> {record.destination} "
                f"({record.reason})"
            )
        if self.repaired_writes:
            plural = "" if self.repaired_writes == 1 else "s"
            lines.append(
                f"repaired {self.repaired_writes} torn artifact write{plural} "
                f"(validated after rewrite)"
            )
        spec = faults.active_spec()
        if spec is not None:
            lines.append(f"faults injected: {spec.describe()}")
        if self.telemetry is not None:
            combined = self.telemetry.get("cache_combined")
            if combined is not None:
                workers = self.telemetry.get("cache_workers", {})
                lines.append(
                    f"cache: {describe_cache(combined)} "
                    f"(workers: {describe_cache(workers)})"
                )
            else:
                lines.append(f"cache: {describe_cache(self.telemetry.get('cache', {}))}")
            phases = self.telemetry.get("phases") or {}
            if phases:
                lines.append(f"phases: {describe_phases(phases)}")
        if self.interrupted:
            lines.append(
                "interrupted before every point completed — rerun with "
                "--resume to finish"
            )
        return lines


class SweepRunner:
    """Executes a grid (or one shard of it) into per-point artifacts."""

    def __init__(
        self,
        grid: ScenarioGrid,
        base_config,
        cache_dir: Optional[Union[str, Path]] = None,
        evaluate: Optional[Callable[[ScenarioPoint], Dict[str, Any]]] = None,
    ) -> None:
        self.grid = grid
        self.config = base_config
        self.cache_dir = Path(cache_dir) if cache_dir is not None else Path(base_config.cache_dir)
        self._evaluate = evaluate

    # -- layout -----------------------------------------------------------------

    @property
    def label(self) -> str:
        return self.config.label

    @property
    def root(self) -> Path:
        return sweep_root(self.cache_dir, self.grid.name, self.label)

    def point_path(self, point: ScenarioPoint) -> Path:
        return points_dir(self.cache_dir, self.grid.name, self.label) / f"{point.point_id}.json"

    def point_payload(self, point: ScenarioPoint, metrics: Dict[str, Any]) -> Dict[str, Any]:
        return {
            "format_version": POINT_FORMAT_VERSION,
            "kind": "sweep-point",
            "grid": self.grid.name,
            "label": self.label,
            "point_id": point.point_id,
            "point": point.payload(),
            "metrics": metrics,
        }

    # -- resume validation --------------------------------------------------------

    def load_point(self, point: ScenarioPoint) -> Optional[Dict[str, Any]]:
        """The validated artifact for ``point``, or ``None`` when absent.

        Raises :class:`CorruptPointArtifact` when a file exists but is not a
        well-formed artifact of exactly this point.
        """
        path = self.point_path(point)
        try:
            text = path.read_text()
        except FileNotFoundError:
            return None
        except OSError as error:
            raise CorruptPointArtifact(
                f"point artifact {path} is unreadable ({error}) — "
                f"a resumed run quarantines and recomputes it"
            ) from None
        try:
            document = json.loads(text)
        except ValueError:
            raise CorruptPointArtifact(
                f"point artifact {path} is not valid JSON (truncated or corrupt) — "
                f"a resumed run quarantines and recomputes it"
            ) from None
        if not isinstance(document, dict) or document.get("format_version") != POINT_FORMAT_VERSION:
            raise CorruptPointArtifact(
                f"point artifact {path} has an unsupported format "
                f"(expected format_version {POINT_FORMAT_VERSION}) — "
                f"a resumed run quarantines and recomputes it"
            )
        if document.get("point") != point.payload() or document.get("grid") != self.grid.name:
            raise CorruptPointArtifact(
                f"point artifact {path} describes a different scenario than "
                f"{point.point_id!r} — the artifact directory is inconsistent; "
                f"a resumed run quarantines and recomputes it"
            )
        metrics = document.get("metrics")
        if not isinstance(metrics, dict):
            raise CorruptPointArtifact(
                f"point artifact {path} has no metrics object — "
                f"a resumed run quarantines and recomputes it"
            )
        incomplete = [name for name in POINT_METRICS if name not in metrics]
        if incomplete:
            raise CorruptPointArtifact(
                f"point artifact {path} is missing metrics "
                f"({', '.join(incomplete)}) — a resumed run quarantines and recomputes it"
            )
        return document

    # -- quarantine ---------------------------------------------------------------

    @property
    def quarantine_root(self) -> Path:
        return self.root / "quarantine"

    def _quarantine(
        self, point: ScenarioPoint, path: Path, reason: str
    ) -> QuarantineRecord:
        """Move a corrupt artifact aside (never delete — operators inspect it)."""
        self.quarantine_root.mkdir(parents=True, exist_ok=True)
        destination = self.quarantine_root / path.name
        suffix = 1
        while destination.exists():
            destination = self.quarantine_root / f"{path.name}.{suffix}"
            suffix += 1
        os.replace(path, destination)
        return QuarantineRecord(point, path, destination, reason)

    # -- execution ----------------------------------------------------------------

    def run(
        self,
        shard: Optional[Tuple[int, int]] = None,
        resume: bool = False,
        jobs: Optional[int] = None,
        progress: Optional[Callable[[PointStatus], None]] = None,
        timeout: Optional[float] = None,
        retries: Optional[int] = None,
        stop: Optional[Callable[[], bool]] = None,
    ) -> List[PointStatus]:
        """Execute the grid (or one shard), writing one artifact per point."""
        return self.run_report(
            shard=shard,
            resume=resume,
            jobs=jobs,
            progress=progress,
            timeout=timeout,
            retries=retries,
            stop=stop,
        ).statuses

    def run_report(
        self,
        shard: Optional[Tuple[int, int]] = None,
        resume: bool = False,
        jobs: Optional[int] = None,
        progress: Optional[Callable[[PointStatus], None]] = None,
        timeout: Optional[float] = None,
        retries: Optional[int] = None,
        stop: Optional[Callable[[], bool]] = None,
    ) -> SweepRunReport:
        """Like :meth:`run`, returning the full failure accounting.

        ``stop`` is a graceful-interrupt predicate checked between points on
        the serial streaming path (and before the parallel fan-out starts):
        once it returns True no further point is *started*, the in-flight
        artifact write completes, the telemetry sidecar is still written and
        the report comes back with ``interrupted=True`` — nothing is ever
        torn, so a later ``resume`` run completes byte-identically.
        """
        points = self.grid.shard(*shard) if shard is not None else self.grid.points()
        telemetry_before = telemetry_snapshot()
        report = SweepRunReport()
        report.stale_tmps_removed = sweep_stale_tmps(
            points_dir(self.cache_dir, self.grid.name, self.label)
        )
        statuses: Dict[ScenarioPoint, PointStatus] = {}
        todo: List[ScenarioPoint] = []
        for point in points:
            if resume:
                try:
                    document = self.load_point(point)
                except CorruptPointArtifact as error:
                    record = self._quarantine(
                        point, self.point_path(point), _short_reason(error)
                    )
                    report.quarantined.append(record)
                    todo.append(point)
                    continue
                if document is not None:
                    statuses[point] = PointStatus(point, self.point_path(point), "skipped")
                    if progress is not None:
                        progress(statuses[point])
                    continue
            todo.append(point)
        spec = faults.active_spec()
        write_plan = spec.site_plan("runner.write", len(todo)) if spec else {}
        executor: Optional[SweepExecutor] = None
        for index, (point, metrics) in enumerate(
            zip(todo, self._compute(todo, jobs, timeout, retries, stop))
        ):
            path = self._write_point(point, metrics, report, write_plan.pop(index, None))
            statuses[point] = PointStatus(point, path, "computed")
            if progress is not None:
                progress(statuses[point])
            executor = self._last_executor
        if executor is not None:
            report.job_report = executor.last_report
        report.statuses = [statuses[point] for point in points if point in statuses]
        report.interrupted = len(report.statuses) < len(points)
        report.telemetry = telemetry_delta(telemetry_before)
        worker_cache = (
            report.job_report.worker_cache if report.job_report is not None else None
        )
        if worker_cache:
            parent = report.telemetry.get("cache", {})
            report.telemetry["cache_workers"] = dict(worker_cache)
            report.telemetry["cache_combined"] = {
                key: int(parent.get(key, 0)) + int(worker_cache.get(key, 0))
                for key in sorted(set(parent) | set(worker_cache))
            }
        self._write_telemetry(report)
        return report

    def _write_telemetry(self, report: SweepRunReport) -> Optional[Path]:
        """Best-effort run-telemetry sidecar at the sweep root.

        Deliberately *outside* ``points/`` and ``sweep.json``: those are
        content-stable and byte-compared across shards and chaos runs,
        while telemetry is per-run wall-clock by nature.  A failed write
        never fails the sweep.
        """
        payload = {
            "format_version": TELEMETRY_FORMAT_VERSION,
            "kind": "sweep-run-telemetry",
            "grid": self.grid.name,
            "label": self.label,
            "computed": report.computed,
            "skipped": report.skipped,
            "interrupted": report.interrupted,
            "quarantined": len(report.quarantined),
            "repaired_writes": report.repaired_writes,
            "stale_tmps_removed": report.stale_tmps_removed,
            "job_report": (
                report.job_report.to_dict() if report.job_report is not None else None
            ),
            "telemetry": report.telemetry,
        }
        try:
            return _write_json(self.root / "run_telemetry.json", payload)
        except OSError:
            return None

    def _write_point(
        self,
        point: ScenarioPoint,
        metrics: Dict[str, Any],
        report: SweepRunReport,
        injected_mode: Optional[str] = None,
    ) -> Path:
        """Write one artifact and validate it back before trusting it.

        A write that does not validate (torn by a crash — or by the
        ``runner.write`` fault site simulating one) is quarantined and
        rewritten from the in-memory metrics; the metrics are deterministic,
        so the repaired artifact is byte-identical to an untorn one.
        """
        path = self.point_path(point)
        payload = self.point_payload(point, metrics)
        for attempt in range(3):
            _write_json(path, payload)
            if injected_mode is not None:
                faults.corrupt_artifact(path, injected_mode)
                injected_mode = None  # a torn write happens once, not per retry
            try:
                self.load_point(point)
                return path
            except CorruptPointArtifact as error:
                if attempt == 2:
                    raise
                report.quarantined.append(
                    self._quarantine(point, path, _short_reason(error))
                )
                report.repaired_writes += 1
        raise AssertionError("unreachable")  # pragma: no cover

    def _compute(
        self,
        todo: Sequence[ScenarioPoint],
        jobs: Optional[int],
        timeout: Optional[float] = None,
        retries: Optional[int] = None,
        stop: Optional[Callable[[], bool]] = None,
    ):
        def stopped() -> bool:
            return stop is not None and stop()

        self._last_executor: Optional[SweepExecutor] = None
        if self._evaluate is not None:
            for point in todo:
                if stopped():
                    return
                yield self._evaluate(point)
            return
        executor = SweepExecutor(jobs=jobs, timeout=timeout, retries=retries)
        self._last_executor = executor
        if executor.parallel and len(todo) > 1:
            # The parallel fan-out is all-or-nothing: a stop request that
            # arrives before it starts skips it entirely; one that arrives
            # mid-map takes effect when the map returns.
            if stopped():
                return
            self._prefetch_models(todo)
            yield from executor.map(_point_job, [(point, self.config) for point in todo])
            return
        # Serial path streams through the executor one job at a time so the
        # artifacts checkpoint as they land (an interrupt loses at most the
        # in-flight point) while retaining the retry policy and accounting.
        for point in todo:
            if stopped():
                return
            yield executor.run_one(evaluate_point, (point, self.config))

    def _prefetch_models(self, todo: Sequence[ScenarioPoint]) -> None:
        """Resolve every model the shard needs once, in this process, so the
        disk cache hands it to the workers instead of each retraining."""
        from repro.experiments.common import train_or_load_model

        masks = {
            point.feature_mask for point in todo if point.scheme.startswith("poise")
        }
        for mask in sorted(masks, key=lambda value: (value is not None, value)):
            train_or_load_model(
                self.config, feature_mask=list(mask) if mask is not None else None
            )
