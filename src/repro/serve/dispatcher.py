"""The serve daemon: event loop wiring queue, supervisor and HTTP API.

One :class:`Dispatcher` owns

* the durable :class:`~repro.serve.journal.JobQueue` (WAL + snapshot under
  ``<cache_dir>/serve/``),
* the :class:`~repro.serve.supervisor.Supervisor` worker pool,
* the :mod:`~repro.serve.api` HTTP server (handler threads call into the
  dispatcher; the queue's lock makes that safe).

The loop each tick: top the pool back up, hand queued jobs to idle workers
(consuming the ``serve.worker`` fault budget parent-side so the chosen
chaos action ships *in the task message* — a restarted worker never
re-fires it), pump supervisor events (results, hung-worker reaps, losses)
into queue transitions, and — when the circuit breaker has given up on
the pool — execute jobs serially in-parent so the service degrades
instead of dying.

**Drain** (SIGTERM/SIGINT or ``POST /drain``): stop admitting, stop
dispatching, give in-flight jobs ``drain_grace`` seconds to finish, requeue
whatever remains (journaled, so the next daemon picks them up), compact a
final snapshot, remove ``endpoint.json`` and return 0.

A ``kill -9`` skips all of that by definition — and loses nothing anyway:
every accepted job is in the journal, recovery requeues the in-flight
ones, and sweep execution is resume-idempotent, so the restarted daemon
converges on byte-identical artifacts.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.obs.telemetry import record_serve, record_serve_gauge, serve_totals
from repro.runtime import faults
from repro.runtime.cache import atomic_write_json
from repro.serve import jobs as jobs_module
from repro.serve.journal import (
    DEFAULT_MAX_DEPTH,
    DEFAULT_SNAPSHOT_EVERY,
    DONE,
    FAILED,
    JobQueue,
    QueueFullError,
)
from repro.serve.supervisor import Supervisor

ENDPOINT_NAME = "endpoint.json"


class ServeError(RuntimeError):
    """A request the daemon refuses; carries an HTTP status + payload."""

    def __init__(self, status: int, payload: Dict[str, Any]) -> None:
        super().__init__(payload.get("message") or payload.get("error") or "error")
        self.status = status
        self.payload = payload


@dataclass
class ServeConfig:
    """Daemon knobs, resolved by the CLI from flags and environment."""

    host: str = "127.0.0.1"
    port: int = 0  # 0: let the OS pick; endpoint.json records the choice
    pool_size: int = 2
    max_depth: int = DEFAULT_MAX_DEPTH
    snapshot_every: int = DEFAULT_SNAPSHOT_EVERY
    job_timeout: Optional[float] = 120.0
    retries: int = 2
    heartbeat_interval: float = 0.2
    heartbeat_timeout: float = 5.0
    max_restarts: int = 4
    restart_window: float = 60.0
    drain_grace: float = 10.0


def serve_root(cache_dir: Union[str, Path]) -> Path:
    return Path(cache_dir) / "serve"


class Dispatcher:
    """The daemon.  ``run()`` blocks until drained."""

    def __init__(self, cache_dir: Union[str, Path], config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig()
        self.cache_dir = Path(cache_dir)
        self.root = serve_root(self.cache_dir)
        self.queue = JobQueue(
            self.root,
            max_depth=self.config.max_depth,
            snapshot_every=self.config.snapshot_every,
        )
        self.supervisor = Supervisor(
            pool_size=self.config.pool_size,
            job_timeout=self.config.job_timeout,
            heartbeat_interval=self.config.heartbeat_interval,
            heartbeat_timeout=self.config.heartbeat_timeout,
            max_restarts=self.config.max_restarts,
            restart_window=self.config.restart_window,
        )
        self.draining = threading.Event()
        self._server = None
        self._server_thread: Optional[threading.Thread] = None

    # -- request surface (called from HTTP handler threads) -------------------------

    def submit(self, request: Any) -> Dict[str, Any]:
        if self.draining.is_set():
            raise ServeError(
                503,
                {
                    "error": "draining",
                    "message": "daemon is draining and admits no new work — "
                    "resubmit after it restarts",
                    "retry_after_seconds": self.config.drain_grace,
                },
            )
        try:
            canonical, priority, cost = jobs_module.canonicalize(request)
        except jobs_module.JobError as error:
            raise ServeError(400, {"error": "bad-request", "message": str(error)}) from None
        try:
            job, created = self.queue.submit(canonical, priority=priority, cost=cost)
        except QueueFullError as error:
            record_serve("jobs_rejected")
            raise ServeError(429, error.to_payload()) from None
        if created:
            record_serve("jobs_accepted")
        else:
            record_serve("dedup_hits")
        record_serve_gauge("queue_depth_peak", float(self.queue.depth()))
        return {
            "job_id": job.id,
            "state": job.state,
            "created": created,
            "deduplicated": not created,
            "priority": job.priority,
            "cost": job.cost,
        }

    def status(self, job_id: str) -> Dict[str, Any]:
        job = self.queue.get(job_id)
        if job is None:
            raise ServeError(404, {"error": "unknown-job", "message": f"no job {job_id!r}"})
        payload = job.to_dict()
        payload.pop("result", None)  # results flow through /result only
        return payload

    def result(self, job_id: str) -> Dict[str, Any]:
        job = self.queue.get(job_id)
        if job is None:
            raise ServeError(404, {"error": "unknown-job", "message": f"no job {job_id!r}"})
        if job.state == FAILED:
            raise ServeError(
                410, {"error": "job-failed", "message": job.error or "job failed",
                      "state": job.state}
            )
        if job.state != DONE:
            raise ServeError(
                409,
                {
                    "error": "not-done",
                    "message": f"job {job_id} is {job.state}",
                    "state": job.state,
                },
            )
        return {"job_id": job.id, "state": job.state, "result": job.result}

    def cancel(self, job_id: str) -> Dict[str, Any]:
        if self.queue.get(job_id) is None:
            raise ServeError(404, {"error": "unknown-job", "message": f"no job {job_id!r}"})
        job = self.queue.cancel(job_id)
        if job is None:
            state = self.queue.get(job_id).state
            raise ServeError(
                409,
                {
                    "error": "not-cancellable",
                    "message": f"job {job_id} is {state} — only queued jobs cancel",
                    "state": state,
                },
            )
        record_serve("jobs_cancelled")
        return {"job_id": job.id, "state": job.state}

    def jobs(self) -> Dict[str, Any]:
        listed = []
        for job in self.queue.list_jobs():
            payload = job.to_dict()
            payload.pop("result", None)
            payload.pop("request", None)
            listed.append(payload)
        return {"jobs": listed}

    def health(self) -> Dict[str, Any]:
        return {
            "ok": True,
            "pid": os.getpid(),
            "draining": self.draining.is_set(),
            "queue": self.queue.stats(),
            "workers": {
                "pool_size": self.supervisor.pool_size,
                "alive": self.supervisor.alive_workers(),
                "idle": len(self.supervisor.idle_workers()),
                "restarts": self.supervisor.restarts,
                "reaped": self.supervisor.reaped,
                "breaker_open": self.supervisor.breaker_open,
            },
            "serve_telemetry": serve_totals(),
            "recovery": self.queue.recovery.summary(),
        }

    def drain(self) -> Dict[str, Any]:
        self.draining.set()
        return {"draining": True, "in_flight": len(self.queue.running())}

    # -- daemon loop ----------------------------------------------------------------

    @property
    def endpoint_path(self) -> Path:
        return self.root / ENDPOINT_NAME

    def _write_endpoint(self, host: str, port: int) -> None:
        atomic_write_json(
            self.endpoint_path,
            {"host": host, "port": port, "pid": os.getpid(), "url": f"http://{host}:{port}"},
            indent=2,
        )

    def _start_api(self) -> None:
        from repro.serve.api import make_server

        self._server = make_server(self, self.config.host, self.config.port)
        host, port = self._server.server_address[:2]
        self._write_endpoint(self.config.host, port)
        self._server_thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.1},
            daemon=True,
            name="repro-serve-api",
        )
        self._server_thread.start()

    def _install_signals(self) -> Dict[int, Any]:
        previous = {}
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                previous[signum] = signal.signal(
                    signum, lambda _signum, _frame: self.draining.set()
                )
            except ValueError:
                # Not the main thread (a test driving the daemon from a
                # thread): signals stay with the host; /drain still works.
                break
        return previous

    def run(self) -> int:
        """Serve until drained; returns 0 (the graceful-drain exit code)."""
        previous = self._install_signals()
        self.supervisor.start()
        self._start_api()
        print(
            f"repro serve: listening on http://{self.config.host}:"
            f"{self._server.server_address[1]} — queue at {self.root} "
            f"({self.queue.recovery.summary()})",
            flush=True,
        )
        try:
            while True:
                self.supervisor.heal()
                self._dispatch_ready()
                for event in self.supervisor.pump(timeout=0.05):
                    self._on_event(event)
                self._escalate_if_broken()
                if self.draining.is_set():
                    break
            self._drain()
        finally:
            self._shutdown_api()
            self.supervisor.stop()
            self.queue.snapshot()
            self.queue.close()
            for signum, handler in previous.items():
                signal.signal(signum, handler)
        print("repro serve: drained cleanly", flush=True)
        return 0

    def _dispatch_ready(self) -> None:
        if self.draining.is_set():
            return
        while True:
            if not self.supervisor.idle_workers():
                return
            job = self.queue.next_job()
            if job is None:
                return
            # Consume the chaos budget here, in the parent: the action rides
            # in the task message, so worker restarts never replay it.
            action = faults.take_action("serve.worker")
            if action is not None:
                record_serve("faults_dispatched")
            self.queue.mark_running(job, worker="?")
            worker = self.supervisor.dispatch(job.id, job.request, action=action)
            job.worker = worker  # advisory; the journaled transition matters

    def _on_event(self, event) -> None:
        job = self.queue.get(event.job_id)
        if job is None or job.state != "running":
            return  # cancelled/compacted meanwhile
        if event.kind == "done":
            self.queue.mark_done(job, event.result)
            record_serve("jobs_done")
        elif event.kind == "failed":
            if event.retryable and job.attempts <= self.config.retries:
                self.queue.requeue(job)
                record_serve("jobs_requeued")
            else:
                self.queue.mark_failed(job, event.error or "job failed")
                record_serve("jobs_failed")
        elif event.kind == "lost":
            # A lost worker is the service's fault, not the job's, so the
            # budget is one attempt more generous than a reported failure —
            # but still bounded, or a poison job would crash-loop the pool.
            if job.attempts <= self.config.retries + 1:
                self.queue.requeue(job)
                record_serve("jobs_requeued")
            else:
                self.queue.mark_failed(
                    job, event.error or "worker lost repeatedly"
                )
                record_serve("jobs_failed")

    def _escalate_if_broken(self) -> None:
        """Circuit breaker open and pool gone: run jobs serially in-parent.

        One job per tick keeps the HTTP surface responsive.  The escalation
        path applies no fault actions — injected chaos targets workers, and
        a daemon that crashed itself while degrading would turn a contained
        failure into an outage.
        """
        if not self.supervisor.breaker_open or self.supervisor.alive_workers():
            return
        if self.draining.is_set():
            return
        job = self.queue.next_job()
        if job is None:
            return
        record_serve("serial_escalations")
        self.queue.mark_running(job, worker="parent")
        try:
            result = jobs_module.execute(job.request)
        except Exception as error:  # noqa: BLE001 — degrade, don't die
            if isinstance(error, OSError) and job.attempts <= self.config.retries:
                self.queue.requeue(job)
                record_serve("jobs_requeued")
            else:
                self.queue.mark_failed(job, f"{type(error).__name__}: {error}")
                record_serve("jobs_failed")
        else:
            self.queue.mark_done(job, result)
            record_serve("jobs_done")

    def _drain(self) -> None:
        """Finish in-flight work within the grace period; requeue the rest."""
        deadline = time.monotonic() + self.config.drain_grace
        while self.supervisor.busy_jobs() and time.monotonic() < deadline:
            for event in self.supervisor.pump(timeout=0.1):
                self._on_event(event)
        for job_id in self.supervisor.busy_jobs():
            job = self.queue.get(job_id)
            if job is not None and job.state == "running":
                self.queue.requeue(job)
                record_serve("jobs_requeued")
        # Jobs journaled as running with no worker attached (e.g. breaker
        # path interrupted) also re-enter the queue for the next daemon.
        for job in self.queue.running():
            self.queue.requeue(job)

    def _shutdown_api(self) -> None:
        if self._server is not None:
            try:
                self._server.shutdown()
                self._server.server_close()
            except OSError:
                pass
        if self._server_thread is not None:
            self._server_thread.join(2.0)
        try:
            self.endpoint_path.unlink()
        except OSError:
            pass
