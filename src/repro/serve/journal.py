"""Durable write-ahead job queue for the ``repro serve`` daemon.

Every mutation of the job table is journaled *before* it is acknowledged:

* ``submit`` appends the full job record,
* state transitions (``queued -> running -> done/failed``, requeues,
  cancels) append compact ``state``/``done`` events,
* every ``snapshot_every`` appends — and always on drain — the whole table
  is compacted into an atomically-written ``snapshot.json`` and the
  journal truncated.

Layout under ``<cache_dir>/serve/``::

    journal.jsonl     append-only JSONL write-ahead log (fsync'd appends)
    snapshot.json     periodically compacted job table (atomic write)
    endpoint.json     daemon address + pid (written by the dispatcher)

Recovery replays ``snapshot.json`` then ``journal.jsonl``.  A torn trailing
journal record — the signature of a daemon killed mid-append — is skipped
(and counted), and the torn tail is sealed with a newline before the next
append, so one ``kill -9`` can never corrupt later records.  Jobs that were
``running`` when the daemon died re-enter ``queued`` and are re-dispatched;
``done`` jobs keep their results.

Robustness policy:

* **Admission control** — at most ``max_depth`` queued jobs; beyond that
  :meth:`JobQueue.submit` raises :class:`QueueFullError` carrying a
  ``retry_after_seconds`` hint instead of queueing unboundedly.
* **Deduplication** — a job's identity is the content key of its canonical
  request.  Re-submitting an identical request coalesces onto the queued /
  in-flight job, or returns the completed job's result outright: a million
  identical submissions cost one simulation.
* **Journal append failure** (including the injected ``serve.journal:torn``
  fault) — the snapshot is the recovery path: the full table is compacted
  on the spot, which also truncates (seals) the damaged journal.  Only if
  *that* write fails too does a submission bounce back to the client.

The queue is thread-safe: HTTP handler threads submit/cancel/inspect while
the dispatcher thread transitions states.
"""

from __future__ import annotations

import json
import os
import threading
import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.runtime import faults
from repro.runtime.cache import atomic_write_json, content_key

SERVE_FORMAT_VERSION = 1

JOURNAL_NAME = "journal.jsonl"
SNAPSHOT_NAME = "snapshot.json"

#: Default admission-control bound on the number of *queued* jobs.
DEFAULT_MAX_DEPTH = 64
#: Default number of journal appends between snapshot compactions.
DEFAULT_SNAPSHOT_EVERY = 64

#: Job states.  ``queued`` and ``running`` are live; the rest are terminal
#: (a terminal job can be revived by re-submitting its request).
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"
JOB_STATES = (QUEUED, RUNNING, DONE, FAILED, CANCELLED)


class QueueFullError(RuntimeError):
    """Admission control rejected a submission; retry after a backoff."""

    def __init__(self, depth: int, max_depth: int, retry_after_seconds: float) -> None:
        super().__init__(
            f"job queue is full ({depth} queued >= limit {max_depth}) — "
            f"retry in {retry_after_seconds:.1f}s"
        )
        self.depth = depth
        self.max_depth = max_depth
        self.retry_after_seconds = retry_after_seconds

    def to_payload(self) -> Dict[str, Any]:
        return {
            "error": "queue-full",
            "message": str(self),
            "depth": self.depth,
            "max_depth": self.max_depth,
            "retry_after_seconds": self.retry_after_seconds,
        }


def job_id_for(canonical: Dict[str, Any]) -> str:
    """The deduplicating job identity: the content key of the request."""
    return f"job-{content_key(canonical)[:16]}"


@dataclass
class Job:
    """One submitted request and everything the service knows about it."""

    id: str
    key: str
    request: Dict[str, Any]
    priority: int = 0
    cost: int = 1
    seq: int = 0
    state: str = QUEUED
    attempts: int = 0
    worker: Optional[str] = None
    result: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    #: How many submissions coalesced onto this job (advisory, not journaled
    #: per hit — a million dedup hits must not grow the journal).
    submissions: int = 1

    def to_dict(self) -> Dict[str, Any]:
        return {
            "id": self.id,
            "key": self.key,
            "request": self.request,
            "priority": self.priority,
            "cost": self.cost,
            "seq": self.seq,
            "state": self.state,
            "attempts": self.attempts,
            "worker": self.worker,
            "result": self.result,
            "error": self.error,
            "submissions": self.submissions,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Job":
        known = {name: payload.get(name) for name in (
            "id", "key", "request", "priority", "cost", "seq", "state",
            "attempts", "worker", "result", "error", "submissions",
        )}
        if known["submissions"] is None:
            known["submissions"] = 1
        return cls(**known)

    @property
    def live(self) -> bool:
        return self.state in (QUEUED, RUNNING)


@dataclass
class RecoveryReport:
    """What :meth:`JobQueue.recover` found on disk."""

    snapshot_loaded: bool = False
    journal_records: int = 0
    torn_records: int = 0
    sealed_tail: bool = False
    requeued: List[str] = field(default_factory=list)

    def summary(self) -> str:
        parts = [
            f"snapshot {'loaded' if self.snapshot_loaded else 'absent'}",
            f"{self.journal_records} journal records",
        ]
        if self.torn_records:
            parts.append(f"{self.torn_records} torn records skipped")
        if self.sealed_tail:
            parts.append("torn tail sealed")
        if self.requeued:
            parts.append(f"{len(self.requeued)} in-flight jobs requeued")
        return ", ".join(parts)


class JobQueue:
    """The durable, thread-safe job table behind the serve daemon."""

    def __init__(
        self,
        root: Union[str, Path],
        max_depth: int = DEFAULT_MAX_DEPTH,
        snapshot_every: int = DEFAULT_SNAPSHOT_EVERY,
        fsync: bool = True,
    ) -> None:
        self.root = Path(root)
        self.max_depth = max(1, int(max_depth))
        self.snapshot_every = max(1, int(snapshot_every))
        self._fsync = fsync
        self._lock = threading.RLock()
        self.jobs: Dict[str, Job] = {}
        self._next_seq = 0
        self._appends_since_snapshot = 0
        self._handle = None
        self.root.mkdir(parents=True, exist_ok=True)
        self.recovery = self.recover()
        self._open_journal()

    # -- paths -------------------------------------------------------------------

    @property
    def journal_path(self) -> Path:
        return self.root / JOURNAL_NAME

    @property
    def snapshot_path(self) -> Path:
        return self.root / SNAPSHOT_NAME

    # -- recovery ----------------------------------------------------------------

    def recover(self) -> RecoveryReport:
        """Rebuild the job table from snapshot + journal (tolerant replay)."""
        report = RecoveryReport()
        self.jobs = {}
        self._next_seq = 0
        snapshot = self._load_snapshot()
        if snapshot is not None:
            report.snapshot_loaded = True
            for payload in snapshot.get("jobs", []):
                job = Job.from_dict(payload)
                self.jobs[job.id] = job
            self._next_seq = int(snapshot.get("seq", 0))
        try:
            raw = self.journal_path.read_bytes()
        except FileNotFoundError:
            raw = b""
        except OSError as error:
            warnings.warn(
                f"serve journal {self.journal_path} is unreadable ({error}) — "
                f"recovering from the snapshot alone",
                RuntimeWarning,
            )
            raw = b""
        if raw and not raw.endswith(b"\n"):
            report.sealed_tail = True
        for line in raw.split(b"\n"):
            if not line.strip():
                continue
            try:
                record = json.loads(line.decode("utf-8"))
                if not isinstance(record, dict):
                    raise ValueError("journal record is not an object")
            except (ValueError, UnicodeDecodeError):
                report.torn_records += 1
                continue
            self._apply(record)
            report.journal_records += 1
        for job in self.jobs.values():
            self._next_seq = max(self._next_seq, job.seq + 1)
            if job.state == RUNNING:
                # The daemon died with this job in flight: its worker is
                # gone, so it re-enters the queue for re-dispatch.  The
                # attempt it was on is not charged — the job never failed.
                job.state = QUEUED
                job.worker = None
                report.requeued.append(job.id)
        return report

    def _load_snapshot(self) -> Optional[Dict[str, Any]]:
        try:
            document = json.loads(self.snapshot_path.read_text())
            if document.get("format_version") != SERVE_FORMAT_VERSION:
                raise ValueError("unsupported snapshot format")
            return document
        except FileNotFoundError:
            return None
        except (OSError, ValueError, AttributeError):
            # Snapshots are written atomically, so a corrupt one means
            # something outside the daemon damaged it; the journal since the
            # last truncation is all that can be replayed.
            warnings.warn(
                f"serve snapshot {self.snapshot_path} is corrupt — "
                f"recovering from the journal alone",
                RuntimeWarning,
            )
            return None

    def _apply(self, record: Dict[str, Any]) -> None:
        """Apply one journal record to the in-memory table (replay)."""
        event = record.get("event")
        if event == "submit":
            job = Job.from_dict(record.get("job", {}))
            if job.id:
                self.jobs[job.id] = job
            return
        job = self.jobs.get(record.get("id", ""))
        if job is None:
            return  # transition for a job the snapshot compacted away
        if event == "state":
            state = record.get("state")
            if state in JOB_STATES:
                job.state = state
            job.attempts = int(record.get("attempts", job.attempts))
            job.worker = record.get("worker")
            if record.get("error") is not None:
                job.error = record.get("error")
        elif event == "done":
            job.state = DONE
            job.worker = None
            job.error = None
            job.result = record.get("result")

    # -- journal -----------------------------------------------------------------

    def _open_journal(self) -> None:
        seal = False
        try:
            raw = self.journal_path.read_bytes()
            seal = bool(raw) and not raw.endswith(b"\n")
        except OSError:
            pass
        self._handle = open(self.journal_path, "ab")
        if seal:
            # A torn tail (daemon killed mid-append) must not swallow the
            # next record: terminate it so replay skips exactly one line.
            self._handle.write(b"\n")
            self._handle.flush()

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                try:
                    self._handle.close()
                except OSError:
                    pass
                self._handle = None

    def _append(self, record: Dict[str, Any]) -> None:
        data = (
            json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        ).encode("utf-8")
        if faults.take_action("serve.journal") == "torn":
            # Simulate a daemon killed mid-append: half the bytes land, no
            # newline, and the append "never returned".
            self._handle.write(data[: max(1, len(data) // 2)])
            self._handle.flush()
            raise faults.FaultInjectedError("injected torn journal append")
        self._handle.write(data)
        self._handle.flush()
        if self._fsync:
            os.fsync(self._handle.fileno())
        self._appends_since_snapshot += 1
        if self._appends_since_snapshot >= self.snapshot_every:
            self._snapshot_locked()

    def _journal(self, record: Dict[str, Any], critical: bool = False) -> None:
        """Append a record; on failure, compact a snapshot instead.

        The snapshot rewrites the whole table atomically and truncates the
        (possibly torn) journal, so the mutation is durable even though the
        append was not.  ``critical`` appends (submissions, whose ack is a
        durability promise) re-raise when even the snapshot fails.
        """
        try:
            self._append(record)
        except OSError as error:
            warnings.warn(
                f"serve journal append failed ({error}) — compacting a "
                f"snapshot to preserve durability",
                RuntimeWarning,
            )
            try:
                self._snapshot_locked()
            except OSError:
                if critical:
                    raise

    def snapshot(self) -> Path:
        """Compact the job table into ``snapshot.json``; truncate the journal."""
        with self._lock:
            return self._snapshot_locked()

    def _snapshot_locked(self) -> Path:
        payload = {
            "format_version": SERVE_FORMAT_VERSION,
            "kind": "serve-queue-snapshot",
            "seq": self._next_seq,
            "jobs": [job.to_dict() for job in self._ordered_jobs()],
        }
        path = atomic_write_json(self.snapshot_path, payload, indent=2)
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:
                pass
        self._handle = open(self.journal_path, "wb")
        self._appends_since_snapshot = 0
        return path

    # -- submission / admission ----------------------------------------------------

    def submit(
        self,
        canonical: Dict[str, Any],
        priority: int = 0,
        cost: int = 1,
    ) -> Tuple[Job, bool]:
        """Admit a canonical request; returns ``(job, created)``.

        ``created`` is False when the submission coalesced onto an existing
        queued/running job or a completed result (the dedup paths).  A
        failed or cancelled job is revived: same identity, fresh attempts.
        """
        with self._lock:
            key = content_key(canonical)
            job_id = job_id_for(canonical)
            existing = self.jobs.get(job_id)
            if existing is not None and existing.state in (QUEUED, RUNNING, DONE):
                existing.submissions += 1
                return existing, False
            depth = self.depth()
            if depth >= self.max_depth:
                raise QueueFullError(
                    depth, self.max_depth, retry_after_seconds=max(1.0, float(depth))
                )
            if existing is not None:
                existing.state = QUEUED
                existing.attempts = 0
                existing.error = None
                existing.result = None
                existing.worker = None
                existing.priority = int(priority)
                existing.submissions += 1
                self._journal(
                    {"event": "submit", "job": existing.to_dict()}, critical=True
                )
                return existing, True
            job = Job(
                id=job_id,
                key=key,
                request=canonical,
                priority=int(priority),
                cost=max(1, int(cost)),
                seq=self._next_seq,
            )
            self._next_seq += 1
            self.jobs[job.id] = job
            self._journal({"event": "submit", "job": job.to_dict()}, critical=True)
            return job, True

    # -- scheduling ----------------------------------------------------------------

    def next_job(self) -> Optional[Job]:
        """The next queued job: priority first, then shortest-job backfill.

        Ordering is ``(-priority, cost, seq)`` — the highest priority class
        runs first; within a class, cheap jobs backfill ahead of expensive
        ones (an HPC-scheduler courtesy that keeps interactive probes
        flowing past thousand-point sweeps); submission order breaks ties
        deterministically.
        """
        with self._lock:
            queued = [job for job in self.jobs.values() if job.state == QUEUED]
            if not queued:
                return None
            return min(queued, key=lambda job: (-job.priority, job.cost, job.seq))

    # -- transitions ---------------------------------------------------------------

    def mark_running(self, job: Job, worker: str) -> None:
        with self._lock:
            job.state = RUNNING
            job.worker = worker
            job.attempts += 1
            self._journal_state(job)

    def mark_done(self, job: Job, result: Optional[Dict[str, Any]]) -> None:
        with self._lock:
            job.state = DONE
            job.worker = None
            job.error = None
            job.result = result
            self._journal({"event": "done", "id": job.id, "result": result})

    def mark_failed(self, job: Job, error: str) -> None:
        with self._lock:
            job.state = FAILED
            job.worker = None
            job.error = error
            self._journal_state(job)

    def requeue(self, job: Job) -> None:
        """Return a dispatched/in-flight job to the queue (worker lost)."""
        with self._lock:
            job.state = QUEUED
            job.worker = None
            self._journal_state(job)

    def cancel(self, job_id: str) -> Optional[Job]:
        """Cancel a queued job; returns it, or ``None`` when not cancellable."""
        with self._lock:
            job = self.jobs.get(job_id)
            if job is None or job.state != QUEUED:
                return None
            job.state = CANCELLED
            self._journal_state(job)
            return job

    def _journal_state(self, job: Job) -> None:
        self._journal(
            {
                "event": "state",
                "id": job.id,
                "state": job.state,
                "attempts": job.attempts,
                "worker": job.worker,
                "error": job.error,
            }
        )

    # -- inspection ----------------------------------------------------------------

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self.jobs.get(job_id)

    def depth(self) -> int:
        """Queued jobs only — the quantity admission control bounds."""
        with self._lock:
            return sum(job.state == QUEUED for job in self.jobs.values())

    def running(self) -> List[Job]:
        with self._lock:
            return [job for job in self._ordered_jobs() if job.state == RUNNING]

    def _ordered_jobs(self) -> List[Job]:
        return sorted(self.jobs.values(), key=lambda job: job.seq)

    def list_jobs(self) -> List[Job]:
        with self._lock:
            return self._ordered_jobs()

    def stats(self) -> Dict[str, int]:
        with self._lock:
            counts = {state: 0 for state in JOB_STATES}
            for job in self.jobs.values():
                counts[job.state] += 1
            counts["total"] = len(self.jobs)
            counts["max_depth"] = self.max_depth
            return counts
