"""Thin ``urllib`` client for the serve daemon.

Used by the ``repro serve submit|status|result|cancel|drain|health``
subcommands and by the tests; no third-party HTTP stack.  The daemon's
address is either given explicitly or discovered from the
``endpoint.json`` the daemon writes next to its journal.

Structured daemon errors (queue-full with ``retry_after_seconds``, a
not-done result poll, a failed job) surface as :class:`ServeClientError`
with the JSON payload attached — callers branch on ``payload["error"]``,
not on string matching.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from pathlib import Path
from typing import Any, Dict, Optional, Union


class ServeClientError(RuntimeError):
    """An HTTP-level error from the daemon, payload attached."""

    def __init__(self, status: int, payload: Dict[str, Any]) -> None:
        super().__init__(
            f"serve daemon returned {status}: "
            f"{payload.get('message') or payload.get('error') or payload}"
        )
        self.status = status
        self.payload = payload


class ServeUnreachable(RuntimeError):
    """No daemon at the given (or discovered) address."""


def discover_endpoint(cache_dir: Union[str, Path]) -> str:
    """The daemon URL recorded in ``<cache_dir>/serve/endpoint.json``."""
    path = Path(cache_dir) / "serve" / "endpoint.json"
    try:
        document = json.loads(path.read_text())
        url = document["url"]
    except FileNotFoundError:
        raise ServeUnreachable(
            f"no serve daemon endpoint at {path} — is `repro serve start` running?"
        ) from None
    except (OSError, ValueError, KeyError) as error:
        raise ServeUnreachable(f"unreadable serve endpoint {path}: {error}") from None
    return url


class ServeClient:
    """One daemon address; methods mirror the HTTP routes one-to-one."""

    def __init__(self, url: str, timeout: float = 30.0) -> None:
        self.url = url.rstrip("/")
        self.timeout = timeout

    @classmethod
    def discover(cls, cache_dir: Union[str, Path], timeout: float = 30.0) -> "ServeClient":
        return cls(discover_endpoint(cache_dir), timeout=timeout)

    # -- transport ------------------------------------------------------------------

    def _call(
        self, method: str, path: str, body: Optional[Any] = None
    ) -> Dict[str, Any]:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            f"{self.url}{path}", data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            try:
                payload = json.loads(error.read().decode("utf-8"))
            except (ValueError, UnicodeDecodeError, OSError):
                payload = {"error": "http", "message": str(error)}
            raise ServeClientError(error.code, payload) from None
        except (urllib.error.URLError, ConnectionError, TimeoutError) as error:
            raise ServeUnreachable(f"cannot reach serve daemon at {self.url}: {error}") from None

    # -- routes ---------------------------------------------------------------------

    def submit(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return self._call("POST", "/jobs", request)

    def submit_with_backoff(
        self, request: Dict[str, Any], attempts: int = 8
    ) -> Dict[str, Any]:
        """Submit, honouring queue-full ``retry_after_seconds`` hints."""
        last: Optional[ServeClientError] = None
        for _ in range(max(1, attempts)):
            try:
                return self.submit(request)
            except ServeClientError as error:
                if error.status != 429:
                    raise
                last = error
                time.sleep(float(error.payload.get("retry_after_seconds", 1.0)))
        raise last  # type: ignore[misc]  # attempts >= 1, so last is set

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._call("GET", f"/jobs/{job_id}")

    def result(self, job_id: str) -> Dict[str, Any]:
        return self._call("GET", f"/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._call("POST", f"/jobs/{job_id}/cancel")

    def jobs(self) -> Dict[str, Any]:
        return self._call("GET", "/jobs")

    def health(self) -> Dict[str, Any]:
        return self._call("GET", "/health")

    def drain(self) -> Dict[str, Any]:
        return self._call("POST", "/drain")

    # -- conveniences ----------------------------------------------------------------

    def wait(
        self, job_id: str, timeout: float = 120.0, poll: float = 0.1
    ) -> Dict[str, Any]:
        """Poll until the job completes; returns the result payload.

        Raises :class:`ServeClientError` (status 410) when the job failed,
        and :class:`TimeoutError` when ``timeout`` elapses first.
        """
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.result(job_id)
            except ServeClientError as error:
                if error.status != 409:  # not-done is the only keep-waiting case
                    raise
            if time.monotonic() >= deadline:
                raise TimeoutError(f"job {job_id} did not complete within {timeout}s")
            time.sleep(poll)
