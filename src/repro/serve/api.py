"""Stdlib HTTP/JSON surface of the serve daemon.

Routes (all JSON in, JSON out)::

    POST /jobs              submit a request   -> 200 {job_id, created, ...}
                                               -> 400 bad request
                                               -> 429 queue full (+ Retry-After)
                                               -> 503 draining
    GET  /jobs              job table (no results/requests)
    GET  /jobs/<id>         one job's status
    GET  /jobs/<id>/result  completed result   -> 409 while queued/running
                                               -> 410 when the job failed
    POST /jobs/<id>/cancel  cancel a queued job
    POST /drain             begin graceful drain
    GET  /health            daemon + queue + worker-pool health

Handler threads call straight into the :class:`~repro.serve.dispatcher.
Dispatcher`; the job queue's lock serialises them against the daemon loop.
Errors travel as :class:`~repro.serve.dispatcher.ServeError` carrying the
HTTP status and a structured payload — the client re-raises them with the
payload intact, so ``retry_after_seconds`` survives end to end.
"""

from __future__ import annotations

import json
import re
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from repro.serve.dispatcher import ServeError

_JOB_PATH = re.compile(r"^/jobs/([A-Za-z0-9_-]+)(/result|/cancel)?$")

#: Cap on request bodies — a job request is a few hundred bytes; anything
#: megabyte-sized is a client bug, not a sweep.
MAX_BODY_BYTES = 1 << 20


class ServeHandler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    # -- plumbing -------------------------------------------------------------------

    @property
    def dispatcher(self):
        return self.server.dispatcher  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # the daemon's stdout is for operators, not per-request noise

    def _send_json(
        self, status: int, payload: Dict[str, Any], headers: Optional[Dict[str, str]] = None
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error_payload(self, error: ServeError) -> None:
        headers = {}
        retry_after = error.payload.get("retry_after_seconds")
        if retry_after is not None:
            headers["Retry-After"] = str(int(max(1, round(retry_after))))
        self._send_json(error.status, error.payload, headers)

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise ServeError(
                413, {"error": "too-large", "message": "request body too large"}
            )
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return None
        try:
            return json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            raise ServeError(
                400, {"error": "bad-json", "message": "request body is not valid JSON"}
            ) from None

    def _dispatch(self, method: str) -> Tuple[int, Dict[str, Any]]:
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if method == "GET" and path == "/health":
            return 200, self.dispatcher.health()
        if method == "GET" and path == "/jobs":
            return 200, self.dispatcher.jobs()
        if method == "POST" and path == "/jobs":
            return 200, self.dispatcher.submit(self._read_body())
        if method == "POST" and path == "/drain":
            return 200, self.dispatcher.drain()
        match = _JOB_PATH.match(path)
        if match:
            job_id, suffix = match.groups()
            if method == "GET" and suffix is None:
                return 200, self.dispatcher.status(job_id)
            if method == "GET" and suffix == "/result":
                return 200, self.dispatcher.result(job_id)
            if method == "POST" and suffix == "/cancel":
                return 200, self.dispatcher.cancel(job_id)
        raise ServeError(
            404, {"error": "not-found", "message": f"no route {method} {path}"}
        )

    def _handle(self, method: str) -> None:
        try:
            status, payload = self._dispatch(method)
            self._send_json(status, payload)
        except ServeError as error:
            self._send_error_payload(error)
        except BrokenPipeError:
            pass
        except Exception as error:  # noqa: BLE001 — one bad request must not kill the daemon
            self._send_json(
                500,
                {"error": "internal", "message": f"{type(error).__name__}: {error}"},
            )

    # -- verbs ----------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802
        self._handle("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._handle("POST")


def make_server(dispatcher, host: str, port: int) -> ThreadingHTTPServer:
    """Bind the API server (not yet serving) and attach the dispatcher."""
    server = ThreadingHTTPServer((host, port), ServeHandler)
    server.daemon_threads = True
    server.dispatcher = dispatcher  # type: ignore[attr-defined]
    return server
