"""``repro serve`` — crash-safe simulation-as-a-service.

The service layer turns the sweep runtime into a long-running daemon:

* :mod:`repro.serve.journal` — the durable job queue: an append-only JSONL
  write-ahead journal plus a periodically compacted snapshot under
  ``$REPRO_CACHE_DIR/serve/``, replayed on startup so a ``kill -9``
  mid-burst loses no accepted job.  Admission control, priority +
  shortest-job backfill ordering and content-key deduplication live here.
* :mod:`repro.serve.jobs` — the job vocabulary: request validation /
  canonicalization (the content key that deduplicates identical
  submissions) and in-process execution on top of
  :class:`~repro.scenarios.runner.SweepRunner` and the content-addressed
  :class:`~repro.runtime.cache.DiskCache`.
* :mod:`repro.serve.supervisor` — the worker pool: shard worker processes
  with per-worker heartbeats, hung-worker detection and reaping, bounded
  restart with backoff and a circuit breaker that degrades to serial
  in-parent execution when the pool keeps dying.
* :mod:`repro.serve.dispatcher` — the daemon: the event loop wiring queue,
  supervisor and API together, graceful drain on SIGTERM.
* :mod:`repro.serve.api` — the stdlib ``http.server`` HTTP/JSON surface.
* :mod:`repro.serve.client` — a thin ``urllib`` client used by the
  ``repro serve submit|status|...`` subcommands and the tests.

Lazy (PEP 562) like :mod:`repro.obs`: the execution side imports the
experiment layer, which is far too heavy for ``import repro.serve``.
"""

from __future__ import annotations

_SUBMODULES = {
    "api": "repro.serve.api",
    "client": "repro.serve.client",
    "dispatcher": "repro.serve.dispatcher",
    "jobs": "repro.serve.jobs",
    "journal": "repro.serve.journal",
    "supervisor": "repro.serve.supervisor",
}

__all__ = sorted(_SUBMODULES)


def __getattr__(name: str):
    if name in _SUBMODULES:
        import importlib

        return importlib.import_module(_SUBMODULES[name])
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
