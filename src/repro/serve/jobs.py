"""The serve job vocabulary: validation, canonicalization and execution.

A *request* is the JSON body a client POSTs to ``/jobs``.  Two kinds exist:

``sweep``
    Run a named scenario grid (optionally with axis overrides and a shard)
    through :class:`~repro.scenarios.runner.SweepRunner` with ``resume=True``
    and, for unsharded runs, aggregate the per-point artifacts into the
    sweep artifact.  Because execution is resume-idempotent and every
    artifact is content-stable, re-running a sweep job after a crash —
    or on a different worker after a requeue — converges on byte-identical
    artifacts.

``probe``
    A cheap diagnostic job: sleep a little, echo a payload back, optionally
    fail on demand.  It exists so the queue/supervisor machinery can be
    exercised (and chaos-tested) in milliseconds without touching the
    simulator.

:func:`canonicalize` maps a raw request to its *canonical* form — defaults
filled in, unknown fields rejected, values normalised — which is what gets
content-keyed for deduplication: however a client spells an equivalent
request, it coalesces onto the same job.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Optional, Tuple

from repro.runtime.cache import cache_stats

JOB_KINDS = ("sweep", "probe")

_SWEEP_FIELDS = frozenset(
    {"kind", "grid", "preset", "overrides", "shard", "aggregate", "priority"}
)
_PROBE_FIELDS = frozenset({"kind", "sleep", "echo", "fail", "nonce", "priority"})


class JobError(ValueError):
    """A request that cannot be admitted (client error, HTTP 400)."""


def _reject_unknown(request: Dict[str, Any], allowed: frozenset) -> None:
    unknown = sorted(set(request) - allowed)
    if unknown:
        raise JobError(
            f"unknown request field(s): {', '.join(unknown)} "
            f"(allowed: {', '.join(sorted(allowed))})"
        )


def _canonical_shard(raw: Any) -> Optional[str]:
    if raw is None:
        return None
    from repro.scenarios.grid import ScenarioError, parse_shard

    try:
        index, count = parse_shard(str(raw))
    except ScenarioError as error:
        raise JobError(str(error)) from None
    return f"{index}/{count}"


def canonicalize(request: Any) -> Tuple[Dict[str, Any], int, int]:
    """Validate a raw request; return ``(canonical, priority, cost)``.

    The canonical form is the job's identity — it is content-keyed for
    deduplication — so it must be deterministic: defaults are made
    explicit, overrides keep their order (later overrides of the same axis
    win, exactly as on the ``repro sweep`` command line), and advisory
    fields like ``priority`` stay *out* of it (a re-submission at a
    different priority is still the same work).

    ``cost`` is the scheduler's backfill weight: the number of grid points
    a sweep job will run, or 1 for a probe.
    """
    if not isinstance(request, dict):
        raise JobError("request body must be a JSON object")
    kind = request.get("kind")
    if kind not in JOB_KINDS:
        raise JobError(
            f"unknown job kind {kind!r} (expected one of: {', '.join(JOB_KINDS)})"
        )
    priority = request.get("priority", 0)
    if not isinstance(priority, int) or isinstance(priority, bool):
        raise JobError(f"priority must be an integer, got {priority!r}")

    if kind == "probe":
        _reject_unknown(request, _PROBE_FIELDS)
        sleep = request.get("sleep", 0.0)
        if not isinstance(sleep, (int, float)) or isinstance(sleep, bool) or sleep < 0:
            raise JobError(f"probe sleep must be a non-negative number, got {sleep!r}")
        canonical = {
            "kind": "probe",
            "sleep": float(sleep),
            "echo": request.get("echo"),
            "fail": bool(request.get("fail", False)),
        }
        if request.get("nonce") is not None:
            canonical["nonce"] = str(request["nonce"])
        return canonical, priority, 1

    _reject_unknown(request, _SWEEP_FIELDS)
    from repro.scenarios.grid import ScenarioError
    from repro.scenarios.library import apply_overrides, get_grid

    grid_name = request.get("grid")
    if not isinstance(grid_name, str) or not grid_name:
        raise JobError("sweep request needs a 'grid' name (see `repro sweep list`)")
    preset = request.get("preset", "fast")
    if preset not in ("fast", "full"):
        raise JobError(f"preset must be 'fast' or 'full', got {preset!r}")
    overrides = request.get("overrides", [])
    if not isinstance(overrides, list) or not all(
        isinstance(item, str) for item in overrides
    ):
        raise JobError("overrides must be a list of 'AXIS=V1,V2' strings")
    try:
        # Resolve now so a bad grid/override bounces at submission time,
        # not minutes later inside a worker.
        grid = apply_overrides(get_grid(grid_name), overrides)
    except ScenarioError as error:
        raise JobError(str(error)) from None
    shard = _canonical_shard(request.get("shard"))
    if shard is not None:
        from repro.scenarios.grid import parse_shard

        _, count = parse_shard(shard)
        cost = max(1, grid.size // count)
    else:
        cost = grid.size
    canonical = {
        "kind": "sweep",
        "grid": grid_name,
        "preset": preset,
        "overrides": [item.strip() for item in overrides],
        "shard": shard,
        "aggregate": bool(request.get("aggregate", shard is None)),
    }
    return canonical, priority, cost


# ---------------------------------------------------------------------------
# execution
# ---------------------------------------------------------------------------

def execute(canonical: Dict[str, Any]) -> Dict[str, Any]:
    """Run one canonical job to completion; return its result payload.

    Runs inside a shard worker process (or in-parent when the supervisor's
    circuit breaker has degraded to serial execution).  The result carries
    the worker-side cache-counter delta so the daemon can fold worker cache
    behaviour into its telemetry — the same envelope idea the parallel
    sweep executor uses.
    """
    before = dict(cache_stats().to_dict())
    if canonical["kind"] == "probe":
        result = _execute_probe(canonical)
    else:
        result = _execute_sweep(canonical)
    after = cache_stats().to_dict()
    result["cache"] = {
        key: int(after.get(key, 0)) - int(before.get(key, 0)) for key in after
    }
    return result


def _execute_probe(canonical: Dict[str, Any]) -> Dict[str, Any]:
    if canonical["sleep"]:
        time.sleep(canonical["sleep"])
    if canonical["fail"]:
        raise RuntimeError("probe requested failure")
    return {"kind": "probe", "echo": canonical["echo"]}


def _execute_sweep(canonical: Dict[str, Any]) -> Dict[str, Any]:
    from repro.experiments.common import preset_config
    from repro.scenarios.grid import parse_shard
    from repro.scenarios.library import apply_overrides, get_grid
    from repro.scenarios.report import SweepSchema, aggregate, write_sweep_artifact
    from repro.scenarios.runner import SweepRunner

    grid = apply_overrides(get_grid(canonical["grid"]), canonical["overrides"])
    config = preset_config(canonical["preset"])
    shard = parse_shard(canonical["shard"]) if canonical["shard"] else None
    runner = SweepRunner(grid, config)
    # resume=True makes execution idempotent: a job retried after a worker
    # crash (or re-run after a daemon restart) recomputes only the missing
    # points, and the content-stable artifacts converge byte-identically.
    report = runner.run_report(shard=shard, resume=True)
    result: Dict[str, Any] = {
        "kind": "sweep",
        "grid": grid.name,
        "label": config.label,
        "computed": report.computed,
        "skipped": report.skipped,
        "quarantined": len(report.quarantined),
        "sweep_root": str(runner.root),
    }
    if canonical["aggregate"]:
        payload = aggregate(grid, config)
        SweepSchema().validate(payload)
        artifact = write_sweep_artifact(payload, config.cache_dir)
        result["num_points"] = payload["num_points"]
        result["sweep_artifact"] = str(artifact)
    return result
