"""Supervised shard-worker pool for the serve daemon.

The supervisor owns ``pool_size`` worker *processes*.  Each worker has its
own task queue (so the supervisor always knows which job died with which
worker) and all workers share one event queue carrying results and
heartbeats back to the daemon:

* a **heartbeat thread** inside every worker beats every
  ``heartbeat_interval`` seconds, even while a job runs;
* the supervisor's :meth:`Supervisor.pump` — called from the dispatcher
  loop — drains events, **detects hung workers** (job past its deadline,
  or heartbeat stale: a live-but-wedged process) and **reaps** them
  (SIGKILL via ``Process.kill``), reporting the in-flight job as *lost* so
  the dispatcher can requeue it;
* dead or reaped workers are **restarted with bounded backoff**; when more
  than ``max_restarts`` restarts land inside ``restart_window`` seconds the
  **circuit breaker** opens: no further processes are spawned and the
  dispatcher degrades to serial in-parent execution — a service that keeps
  crashing its children stops forking and limps along correctly instead.

Workers are spawned (not forked): the daemon runs HTTP handler threads,
and forking a multi-threaded parent is a deadlock lottery.

Fault injection: the ``serve.worker`` site's budget is consumed by the
*dispatcher* (parent side) and the chosen action ships inside the task
message, so a restarted worker does not re-read the environment and
re-fire the same fault — exactly one dispatch crashes/stalls/errors per
budgeted count, which is what makes chaos runs deterministic.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue as queue_module
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.obs.telemetry import record_serve
from repro.runtime.faults import CRASH_EXIT_STATUS, FaultInjectedError

#: How long an injected stall sleeps — far past any sane job deadline, so
#: the supervisor's hung-worker detection is what ends it.
STALL_SECONDS = 10_000.0


# ---------------------------------------------------------------------------
# worker process
# ---------------------------------------------------------------------------

def _worker_main(
    worker_name: str,
    task_queue: "mp.Queue",
    event_queue: "mp.Queue",
    heartbeat_interval: float,
) -> None:
    """Worker loop: heartbeat in the background, execute tasks until told
    to stop (``None`` sentinel)."""
    from repro.serve import jobs

    stop_beating = threading.Event()

    def _beat() -> None:
        while not stop_beating.is_set():
            try:
                event_queue.put({"type": "heartbeat", "worker": worker_name})
            except (OSError, ValueError):  # queue torn down under us
                return
            stop_beating.wait(heartbeat_interval)

    beater = threading.Thread(target=_beat, daemon=True, name=f"{worker_name}-heartbeat")
    beater.start()
    try:
        while True:
            task = task_queue.get()
            if task is None:
                return
            action = task.get("action")
            if action == "crash":
                # An injected hard crash: no cleanup, no goodbye — the
                # supervisor must notice from the exit code alone.
                os._exit(CRASH_EXIT_STATUS)
            if action == "stall":
                # A wedged worker: heartbeats keep flowing (the beater
                # thread lives), so only the job deadline can catch it.
                time.sleep(STALL_SECONDS)
            try:
                if action == "oserror":
                    raise FaultInjectedError("injected serve worker oserror")
                result = jobs.execute(task["request"])
                event = {
                    "type": "result",
                    "worker": worker_name,
                    "job_id": task["job_id"],
                    "ok": True,
                    "result": result,
                }
            except BaseException as error:  # noqa: BLE001 — report, don't die
                event = {
                    "type": "result",
                    "worker": worker_name,
                    "job_id": task["job_id"],
                    "ok": False,
                    "error": f"{type(error).__name__}: {error}",
                    "retryable": isinstance(error, OSError),
                }
            event_queue.put(event)
    finally:
        stop_beating.set()


# ---------------------------------------------------------------------------
# supervisor
# ---------------------------------------------------------------------------

@dataclass
class JobEvent:
    """One job outcome surfaced by :meth:`Supervisor.pump`.

    ``kind`` is ``done`` (result attached), ``failed`` (worker reported an
    error; ``retryable`` distinguishes transient OS-level failures from
    deterministic job bugs) or ``lost`` (the worker died or was reaped with
    the job in flight — always worth a requeue).
    """

    kind: str
    job_id: str
    worker: str
    result: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    retryable: bool = True


@dataclass
class _Worker:
    name: str
    process: "mp.process.BaseProcess"
    task_queue: "mp.Queue"
    job_id: Optional[str] = None
    dispatched_at: float = 0.0
    deadline: Optional[float] = None
    last_heartbeat: float = field(default_factory=time.monotonic)

    @property
    def busy(self) -> bool:
        return self.job_id is not None


class Supervisor:
    """Owns the worker pool; the dispatcher drives it via :meth:`pump`."""

    def __init__(
        self,
        pool_size: int = 2,
        job_timeout: Optional[float] = 120.0,
        heartbeat_interval: float = 0.2,
        heartbeat_timeout: float = 5.0,
        max_restarts: int = 4,
        restart_window: float = 60.0,
        backoff_base: float = 0.1,
    ) -> None:
        self.pool_size = max(1, int(pool_size))
        self.job_timeout = job_timeout
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.max_restarts = max(0, int(max_restarts))
        self.restart_window = restart_window
        self.backoff_base = backoff_base
        self._context = mp.get_context("spawn")
        self.event_queue: "mp.Queue" = self._context.Queue()
        self._workers: Dict[str, _Worker] = {}
        self._next_worker = 0
        self._restart_times: List[float] = []
        self._restart_not_before = 0.0
        self.breaker_open = False
        self.restarts = 0
        self.reaped = 0

    # -- lifecycle ----------------------------------------------------------------

    def start(self) -> None:
        for _ in range(self.pool_size):
            self._spawn()

    def _spawn(self) -> None:
        name = f"w{self._next_worker}"
        self._next_worker += 1
        task_queue: "mp.Queue" = self._context.Queue()
        process = self._context.Process(
            target=_worker_main,
            args=(name, task_queue, self.event_queue, self.heartbeat_interval),
            name=f"repro-serve-{name}",
            daemon=True,
        )
        process.start()
        self._workers[name] = _Worker(name=name, process=process, task_queue=task_queue)

    def stop(self, graceful_timeout: float = 2.0) -> None:
        """Shut the pool down: sentinel first, then escalate to kill."""
        for worker in self._workers.values():
            if worker.process.is_alive() and not worker.busy:
                try:
                    worker.task_queue.put(None)
                except (OSError, ValueError):
                    pass
        deadline = time.monotonic() + graceful_timeout
        for worker in self._workers.values():
            remaining = max(0.0, deadline - time.monotonic())
            worker.process.join(remaining)
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join(1.0)
        self._workers.clear()

    # -- dispatch -----------------------------------------------------------------

    def idle_workers(self) -> List[str]:
        return [
            name
            for name, worker in self._workers.items()
            if not worker.busy and worker.process.is_alive()
        ]

    def alive_workers(self) -> int:
        return sum(worker.process.is_alive() for worker in self._workers.values())

    def busy_jobs(self) -> List[str]:
        return [worker.job_id for worker in self._workers.values() if worker.busy]

    def dispatch(
        self,
        job_id: str,
        request: Dict[str, Any],
        action: Optional[str] = None,
        timeout: Optional[float] = None,
    ) -> str:
        """Hand a job to an idle worker; returns the worker name."""
        idle = self.idle_workers()
        if not idle:
            raise RuntimeError("no idle worker available")
        name = idle[0]
        worker = self._workers[name]
        now = time.monotonic()
        worker.job_id = job_id
        worker.dispatched_at = now
        job_timeout = timeout if timeout is not None else self.job_timeout
        worker.deadline = (now + job_timeout) if job_timeout else None
        worker.last_heartbeat = now
        worker.task_queue.put({"job_id": job_id, "request": request, "action": action})
        return name

    # -- monitoring ---------------------------------------------------------------

    def pump(self, timeout: float = 0.05) -> List[JobEvent]:
        """Drain worker events; detect and reap hung/dead workers; restart.

        Returns the job outcomes accumulated since the last call.  Cheap to
        call in a tight loop — ``timeout`` bounds how long it blocks waiting
        for the first event.
        """
        events: List[JobEvent] = []
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            try:
                message = self.event_queue.get(timeout=max(0.0, remaining))
            except queue_module.Empty:
                break
            self._on_message(message, events)
            if time.monotonic() >= deadline:
                break
        self._check_workers(events)
        return events

    def _on_message(self, message: Dict[str, Any], events: List[JobEvent]) -> None:
        worker = self._workers.get(message.get("worker", ""))
        if worker is not None:
            worker.last_heartbeat = time.monotonic()
        if message.get("type") != "result" or worker is None:
            return
        job_id = message.get("job_id")
        if worker.job_id != job_id:
            return  # a reaped-and-requeued job's late echo; the requeue won
        worker.job_id = None
        worker.deadline = None
        if message.get("ok"):
            events.append(JobEvent("done", job_id, worker.name, result=message.get("result")))
        else:
            events.append(
                JobEvent(
                    "failed",
                    job_id,
                    worker.name,
                    error=message.get("error"),
                    retryable=bool(message.get("retryable", False)),
                )
            )

    def _check_workers(self, events: List[JobEvent]) -> None:
        now = time.monotonic()
        for worker in list(self._workers.values()):
            if not worker.process.is_alive():
                self._on_worker_loss(worker, events, reason="died")
                continue
            if not worker.busy:
                continue
            hung = (worker.deadline is not None and now > worker.deadline) or (
                now - worker.last_heartbeat > self.heartbeat_timeout
            )
            if hung:
                worker.process.kill()
                worker.process.join(1.0)
                self.reaped += 1
                record_serve("workers_reaped")
                self._on_worker_loss(worker, events, reason="hung")

    def _on_worker_loss(
        self, worker: _Worker, events: List[JobEvent], reason: str
    ) -> None:
        if worker.busy:
            events.append(
                JobEvent(
                    "lost",
                    worker.job_id,
                    worker.name,
                    error=f"worker {worker.name} {reason} "
                    f"(exit status {worker.process.exitcode})",
                )
            )
        del self._workers[worker.name]
        self._maybe_restart()

    def _maybe_restart(self) -> None:
        """Restart a lost worker, bounded by backoff and the breaker."""
        if self.breaker_open:
            return
        now = time.monotonic()
        self._restart_times = [
            stamp for stamp in self._restart_times if now - stamp < self.restart_window
        ]
        if len(self._restart_times) >= self.max_restarts:
            self.breaker_open = True
            record_serve("breaker_opens")
            return
        if now < self._restart_not_before:
            return  # backing off; the next pump retries
        if len(self._workers) >= self.pool_size:
            return
        backoff = self.backoff_base * (2 ** len(self._restart_times))
        self._restart_times.append(now)
        self._restart_not_before = now + backoff
        self.restarts += 1
        record_serve("worker_restarts")
        self._spawn()

    def heal(self) -> None:
        """Top the pool back up (called between pumps when below size)."""
        if self.breaker_open:
            return
        while len(self._workers) < self.pool_size:
            before = len(self._workers)
            self._maybe_restart()
            if len(self._workers) == before:
                break
