"""Result containers and table formatting shared by every experiment."""

from repro.analysis.tables import ExperimentResult, Table, format_table

__all__ = ["ExperimentResult", "Table", "format_table"]
