"""Lightweight tabular results.

Every experiment returns an :class:`ExperimentResult` holding one or more
:class:`Table` objects — the same rows and series the corresponding table or
figure in the paper reports — plus free-form notes.  Tables render to plain
text (for the bench harness output) and to CSV (for EXPERIMENTS.md updates).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

Cell = Union[str, int, float]


def _format_cell(value: Cell, precision: int) -> str:
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


@dataclass
class Table:
    """A titled grid of rows with named columns."""

    title: str
    columns: List[str]
    rows: List[List[Cell]] = field(default_factory=list)
    precision: int = 3

    def add_row(self, *values: Cell) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells but the table has {len(self.columns)} columns"
            )
        self.rows.append(list(values))

    def column(self, name: str) -> List[Cell]:
        try:
            index = self.columns.index(name)
        except ValueError:
            raise KeyError(f"no column named {name!r} in table {self.title!r}") from None
        return [row[index] for row in self.rows]

    def row_by_key(self, key: Cell) -> Optional[List[Cell]]:
        """Find the first row whose first cell equals ``key``."""
        for row in self.rows:
            if row and row[0] == key:
                return row
        return None

    def to_text(self) -> str:
        return format_table(self)

    def to_csv(self) -> str:
        lines = [",".join(self.columns)]
        for row in self.rows:
            lines.append(",".join(_format_cell(cell, self.precision) for cell in row))
        return "\n".join(lines)

    def as_dict_rows(self) -> List[Dict[str, Cell]]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def to_dict(self) -> Dict[str, object]:
        """JSON-representable form (NaN-safe: non-finite floats become strings)."""
        return {
            "title": self.title,
            "columns": list(self.columns),
            "rows": [[_json_cell(cell) for cell in row] for row in self.rows],
            "precision": self.precision,
        }


def _json_cell(value: Cell) -> Cell:
    """Strict-JSON-safe cell: NaN/inf are not valid JSON numbers."""
    if isinstance(value, float) and (value != value or value in (float("inf"), float("-inf"))):
        return str(value)
    return value


def table_from_dict(data: Dict[str, object]) -> "Table":
    """Rebuild a :class:`Table` from its ``to_dict`` form."""
    table = Table(
        title=str(data["title"]),
        columns=[str(column) for column in data["columns"]],
        precision=int(data.get("precision", 3)),
    )
    for row in data["rows"]:
        table.add_row(*row)
    return table


def format_table(table: Table) -> str:
    """Render a table as aligned plain text."""
    rendered_rows = [
        [_format_cell(cell, table.precision) for cell in row] for row in table.rows
    ]
    widths = [len(column) for column in table.columns]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [f"== {table.title} =="]
    header = "  ".join(column.ljust(widths[index]) for index, column in enumerate(table.columns))
    lines.append(header)
    lines.append("  ".join("-" * width for width in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[index]) for index, cell in enumerate(row)))
    return "\n".join(lines)


@dataclass
class ExperimentResult:
    """The output of one experiment (one paper table or figure)."""

    experiment_id: str
    description: str
    tables: List[Table] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    scalars: Dict[str, float] = field(default_factory=dict)

    def add_table(self, table: Table) -> Table:
        self.tables.append(table)
        return table

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def table(self, title_fragment: str) -> Table:
        for table in self.tables:
            if title_fragment.lower() in table.title.lower():
                return table
        raise KeyError(f"no table matching {title_fragment!r} in {self.experiment_id}")

    def to_dict(self) -> Dict[str, object]:
        """JSON-representable form of the whole result (see ``Table.to_dict``)."""
        return {
            "experiment_id": self.experiment_id,
            "description": self.description,
            "tables": [table.to_dict() for table in self.tables],
            "scalars": {key: _json_cell(value) for key, value in self.scalars.items()},
            "notes": list(self.notes),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ExperimentResult":
        """Rebuild a result from ``to_dict`` output (or an artifact payload)."""
        result = cls(
            experiment_id=str(data["experiment_id"]),
            description=str(data.get("description", "")),
        )
        for table_data in data.get("tables", []):
            result.add_table(table_from_dict(table_data))
        result.scalars.update(data.get("scalars", {}))
        result.notes.extend(data.get("notes", []))
        return result

    def to_text(self) -> str:
        parts = [f"### {self.experiment_id}: {self.description}"]
        for table in self.tables:
            parts.append(table.to_text())
        if self.scalars:
            parts.append(
                "scalars: "
                + ", ".join(
                    f"{key}={value:.4g}" if isinstance(value, (int, float)) else f"{key}={value}"
                    for key, value in sorted(self.scalars.items())
                )
            )
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n\n".join(parts)
