"""The unified command-line interface (``python -m repro`` / ``repro``).

Subcommands:

* ``list`` — catalogue of every registered experiment,
* ``run`` / ``run-all`` — execute experiments and emit JSON artifacts,
* ``report`` — summarise previously emitted artifacts,
* ``bench`` — simulator throughput microbenchmarks (BENCH_throughput.json),
* ``pretrain`` — offline training of the Poise regression model,
* ``trace`` — capture, replay, generate and inspect address traces.
"""

from repro.cli.main import main

__all__ = ["main"]
