"""Experiment execution and JSON-artifact I/O for the unified CLI.

One experiment run produces one *artifact*: a JSON document with the
experiment's tables, scalars and notes plus provenance (config label,
cache key, package version, wall-clock).  Artifacts live under

    <cache_dir>/artifacts/<label>/<experiment_id>.json

and are written atomically, like the result cache.  The module-level
:func:`run_experiment_job` is the picklable worker the CLI fans out over
:class:`~repro.runtime.executor.SweepExecutor` for ``--jobs N``.
"""

from __future__ import annotations

import datetime
import json
import time
from dataclasses import replace
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.experiments import registry
from repro.runtime.cache import atomic_write_json
from repro.version import __version__

ARTIFACT_FORMAT_VERSION = 1


def artifacts_dir(cache_dir: Union[str, Path], label: str) -> Path:
    return Path(cache_dir) / "artifacts" / label


def artifact_path(cache_dir: Union[str, Path], label: str, experiment_id: str) -> Path:
    return artifacts_dir(cache_dir, label) / f"{experiment_id}.json"


def run_experiment(
    experiment_id: str,
    label: str = "full",
    cache_dir: Optional[str] = None,
) -> Dict[str, object]:
    """Run one registered experiment and return its artifact payload."""
    experiment = registry.get(experiment_id)
    config = experiment.make_config(label)
    if cache_dir is not None:
        config = replace(config, cache_dir=Path(cache_dir))
    start = time.perf_counter()
    result = experiment.run(config)
    elapsed = time.perf_counter() - start
    payload: Dict[str, object] = {
        "format_version": ARTIFACT_FORMAT_VERSION,
        "created": datetime.datetime.now(datetime.timezone.utc).isoformat(timespec="seconds"),
        "version": __version__,
        "artifact": experiment.artifact,
        "title": experiment.title,
        "config": {"label": config.label, "cache_key": config.cache_key},
        "elapsed_seconds": round(elapsed, 3),
    }
    payload.update(result.to_dict())
    return payload


def run_experiment_job(
    experiment_id: str, label: str, cache_dir: Optional[str]
) -> Dict[str, object]:
    """Module-level sweep worker: one experiment per process."""
    return run_experiment(experiment_id, label=label, cache_dir=cache_dir)


def write_artifact(
    payload: Dict[str, object], cache_dir: Union[str, Path], label: str
) -> Path:
    """Atomically write one artifact; returns the path written."""
    path = artifact_path(cache_dir, label, str(payload["experiment_id"]))
    return atomic_write_json(path, payload, indent=2, trailing_newline=True)


def load_artifacts(cache_dir: Union[str, Path], label: str) -> List[Dict[str, object]]:
    """Every readable artifact under the given cache dir and label, by id."""
    directory = artifacts_dir(cache_dir, label)
    artifacts = []
    if not directory.is_dir():
        return artifacts
    for path in sorted(directory.glob("*.json")):
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            continue  # unreadable artifact: skip, report shows what exists
        if isinstance(payload, dict) and payload.get("experiment_id"):
            artifacts.append(payload)
    return artifacts
