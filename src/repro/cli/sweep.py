"""``repro sweep`` — declarative scenario-grid sweeps.

Subcommands::

    repro sweep list                                    # named grids
    repro sweep plan  GRID [--shard K/N] [--set ...]    # expansion, no runs
    repro sweep run   GRID [--shard K/N] [--resume] [--jobs N] [--set ...]
    repro sweep report GRID [--set ...]                 # aggregate + validate

``--shard K/N`` (1-based) runs the K-th of N disjoint, order-stable slices
of the grid: N containers pointed at N shards write disjoint per-point
artifacts whose union is byte-identical to one full run.  ``--resume``
skips points whose artifact already validates, so an interrupted (or
partially-sharded) sweep continues where it stopped; a corrupt artifact is
quarantined (moved aside, named in the run summary) and recomputed rather
than silently trusted — only ``report``-time aggregation treats corruption
as a hard error.  ``--set
AXIS=V1,V2`` overrides an axis of a named grid (tuple-valued axes use
colons, e.g. ``--set poise_strides=0:0,2:4``).
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
from typing import Optional, Sequence, Tuple

from repro.analysis.tables import Table
from repro.scenarios.grid import ScenarioError, ScenarioGrid, parse_shard
from repro.scenarios.library import apply_overrides, get_grid, named_grids
from repro.scenarios.report import (
    SweepSchema,
    aggregate,
    sweep_tables,
    write_sweep_artifact,
)
from repro.scenarios.runner import CorruptPointArtifact, PointStatus, SweepRunner


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("grid", metavar="GRID", help="a named grid (see `repro sweep list`)")
    scale = parser.add_mutually_exclusive_group()
    scale.add_argument("--fast", action="store_true", help="scaled-down test configuration")
    scale.add_argument("--full", action="store_true", help="paper-shaped configuration (default)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="artifact/result cache root (default: REPRO_CACHE_DIR)")
    parser.add_argument(
        "--set", action="append", default=[], metavar="AXIS=V1,V2", dest="overrides",
        help="override one axis of the grid (repeatable); tuple values use "
        "colons, e.g. --set poise_strides=0:0,2:4",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro sweep", description="declarative scenario-grid sweeps"
    )
    sub = parser.add_subparsers(dest="sweep_command", metavar="SUBCOMMAND", required=True)

    sub.add_parser("list", help="catalogue of the named grids")

    plan = sub.add_parser("plan", help="print a grid's expansion without running it")
    _add_common(plan)
    plan.add_argument("--shard", default=None, metavar="K/N",
                      help="restrict the plan to one shard of the grid")

    run = sub.add_parser("run", help="execute a grid (or one shard) into point artifacts")
    _add_common(run)
    run.add_argument("--shard", default=None, metavar="K/N",
                     help="run the K-th of N disjoint slices of the grid")
    run.add_argument("--resume", action="store_true",
                     help="skip points whose artifact already validates; corrupt "
                     "artifacts are quarantined and recomputed")
    run.add_argument("--jobs", type=int, default=None, metavar="N",
                     help="fan points out over N worker processes")
    run.add_argument("--timeout", type=float, default=None, metavar="SECS",
                     help="per-job wall-clock timeout in seconds; a stalled worker "
                     "is abandoned and its point retried (default: REPRO_TIMEOUT, "
                     "or no timeout)")
    run.add_argument("--retries", type=int, default=None, metavar="N",
                     help="retry budget per point for transient failures — worker "
                     "death, timeouts, OSError (default: REPRO_RETRIES, or 2)")

    report = sub.add_parser("report", help="aggregate point artifacts into the sweep artifact")
    _add_common(report)
    return parser


# ---------------------------------------------------------------------------
# shared setup
# ---------------------------------------------------------------------------

def _resolve(args: argparse.Namespace) -> Tuple[ScenarioGrid, "ExperimentConfig"]:
    from dataclasses import replace
    from pathlib import Path

    from repro.experiments.common import preset_config

    if args.cache_dir:
        # Export so sweep workers and nested components agree with the flag.
        os.environ["REPRO_CACHE_DIR"] = args.cache_dir
    grid = apply_overrides(get_grid(args.grid), args.overrides)
    config = preset_config("fast" if args.fast else "full")
    if args.cache_dir:
        config = replace(config, cache_dir=Path(args.cache_dir))
    return grid, config


def _shard(args: argparse.Namespace) -> Optional[Tuple[int, int]]:
    if getattr(args, "shard", None) is None:
        return None
    return parse_shard(args.shard)


# ---------------------------------------------------------------------------
# subcommands
# ---------------------------------------------------------------------------

def _cmd_list() -> int:
    table = Table(
        title="Named sweep grids",
        columns=["grid", "points", "axes", "description"],
    )
    for name, grid in sorted(named_grids().items()):
        axes = " × ".join(f"{axis}[{len(values)}]" for axis, values in grid.axes.items())
        table.add_row(name, grid.size, axes, grid.description)
    print(table.to_text())
    print(f"\n{len(table.rows)} grids registered")
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    grid, config = _resolve(args)
    shard = _shard(args)
    runner = SweepRunner(grid, config)
    points = grid.shard(*shard) if shard else grid.points()
    scope = f"shard {args.shard} of " if shard else ""
    table = Table(
        title=f"Plan — {scope}{grid.name} ({config.label}), {len(points)} of {grid.size} points",
        columns=["point_id", "scenario", "artifact"],
    )
    for point in points:
        status = "present" if runner.point_path(point).exists() else "missing"
        table.add_row(point.point_id, point.describe(), status)
    print(table.to_text())
    print(f"\nartifacts land under {runner.root}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    grid, config = _resolve(args)
    shard = _shard(args)
    runner = SweepRunner(grid, config)

    def progress(status: PointStatus) -> None:
        print(f"{status.status:<9} {status.point.point_id:<40} {status.path}", flush=True)

    # Graceful interrupt: SIGINT/SIGTERM stop the sweep *between* points —
    # the in-flight artifact write completes, the telemetry sidecar is
    # written, no temp file is left behind — and the exit code says
    # "interrupted, resume to finish" instead of a traceback (or, for
    # SIGTERM's default disposition, an arbitrary mid-write kill).
    received: dict = {"signum": None}

    def _on_signal(signum, frame) -> None:
        received["signum"] = signum

    previous = {
        signum: signal.signal(signum, _on_signal)
        for signum in (signal.SIGINT, signal.SIGTERM)
    }
    try:
        report = runner.run_report(
            shard=shard,
            resume=args.resume,
            jobs=args.jobs,
            progress=progress,
            timeout=args.timeout,
            retries=args.retries,
            stop=lambda: received["signum"] is not None,
        )
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    scope = f"shard {args.shard}" if shard else "full grid"
    print(
        f"\nsweep {grid.name} ({config.label}, {scope}): "
        f"{report.computed} computed, {report.skipped} skipped, "
        f"artifacts under {runner.root}"
    )
    for line in report.summary_lines():
        print(line)
    if report.interrupted:
        name = signal.Signals(received["signum"]).name if received["signum"] else "signal"
        print(f"interrupted by {name} — rerun with --resume to finish", flush=True)
        return 130
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    grid, config = _resolve(args)
    payload = aggregate(grid, config)
    SweepSchema().validate(payload)
    path = write_sweep_artifact(payload, config.cache_dir)
    for table in sweep_tables(payload):
        print(table.to_text())
        print()
    print(f"{payload['num_points']} points aggregated — sweep artifact at {path}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.sweep_command == "list":
        return _cmd_list()
    try:
        if args.sweep_command == "plan":
            return _cmd_plan(args)
        if args.sweep_command == "run":
            return _cmd_run(args)
        if args.sweep_command == "report":
            return _cmd_report(args)
    except ScenarioError as error:
        print(f"error: {error}", file=sys.stderr)
        # A corrupt artifact is an execution failure (1); a bad grid, axis
        # value or shard spec is a usage error (2).
        return 1 if isinstance(error, CorruptPointArtifact) else 2
    raise AssertionError(f"unhandled subcommand {args.sweep_command!r}")


if __name__ == "__main__":
    sys.exit(main())
