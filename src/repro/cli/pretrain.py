"""``repro pretrain`` — offline, one-time training of the Poise model.

This is the GPU-vendor side of the paper's workflow (Section V): profile the
training benchmarks over the warp-tuple plane, build the training examples,
fit the two Negative Binomial regressions and serialise the feature weights.
The resulting JSON is shipped inside the package
(``src/repro/data/pretrained_model.json``) and plays the role of the
compiler-provided constant-memory weights of Table II.

Usage::

    python -m repro pretrain [--fast] [--output PATH] [--jobs N]
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path
from typing import Optional, Sequence

from repro.core.model_store import save_model
from repro.core.training import prediction_errors
from repro.experiments.common import ExperimentConfig, PRETRAINED_MODEL_PATH
from repro.workloads.registry import training_benchmarks


def _jobs_value(raw: str) -> str:
    """Accept a non-negative integer or 'auto' (rejects typos loudly)."""
    value = raw.strip().lower()
    if value == "auto":
        return value
    try:
        if int(value) < 0:
            raise ValueError
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--jobs must be a non-negative integer or 'auto', got {raw!r}"
        )
    return value


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro pretrain", description=__doc__)
    parser.add_argument(
        "--fast", action="store_true", help="use the scaled-down test configuration"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=PRETRAINED_MODEL_PATH,
        help="where to write the trained model JSON",
    )
    parser.add_argument(
        "--jobs",
        type=_jobs_value,
        default=None,
        metavar="N",
        help="profile training kernels over N worker processes "
        "(0 or 'auto' = one per CPU core; overrides REPRO_JOBS)",
    )
    args = parser.parse_args(argv)
    if args.jobs is not None:
        os.environ["REPRO_JOBS"] = args.jobs

    config = ExperimentConfig.fast() if args.fast else ExperimentConfig.full()
    pipeline = config.training_pipeline()
    benchmarks = [
        config.limited_benchmark(benchmark, training=True)
        for benchmark in training_benchmarks()
    ]
    total_kernels = sum(len(benchmark.kernels) for benchmark in benchmarks)
    print(f"profiling {total_kernels} training kernels ({config.label} configuration)...")

    start = time.perf_counter()
    examples = pipeline.collect_examples(benchmarks)
    model = pipeline.fit(examples)
    elapsed = time.perf_counter() - start

    error_n, error_p = prediction_errors(model, examples)
    print(f"trained on {model.num_training_kernels} admitted kernels in {elapsed:.1f}s")
    print(f"training-set mean prediction error: N {error_n:.1%}, p {error_p:.1%}")
    print("feature weights (alpha for N, beta for p):")
    for index, (alpha, beta) in enumerate(zip(model.alpha_weights, model.beta_weights), start=1):
        print(f"  x{index}: alpha={alpha:+.6f}  beta={beta:+.6f}")

    path = save_model(model, args.output)
    print(f"model written to {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
