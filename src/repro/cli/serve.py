"""``repro serve`` — the simulation-as-a-service daemon and its client.

Subcommands::

    repro serve start   [--workers N] [--port P] [...]        # the daemon
    repro serve submit  GRID [--fast] [--set ...] [--wait]    # enqueue a sweep
    repro serve status  JOB_ID
    repro serve result  JOB_ID
    repro serve cancel  JOB_ID
    repro serve jobs
    repro serve health
    repro serve drain

Client subcommands discover the daemon from
``<cache_dir>/serve/endpoint.json`` (written by ``start``) unless ``--url``
is given.  ``submit`` honours the daemon's queue-full backpressure: a 429
with ``retry_after_seconds`` is retried with the suggested backoff instead
of hammering a full queue.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, Optional, Sequence

from repro.experiments.common import default_cache_dir


def _add_client_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--url", default=None, metavar="URL",
                        help="daemon address (default: discovered from "
                        "<cache-dir>/serve/endpoint.json)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="cache root the daemon runs against "
                        "(default: REPRO_CACHE_DIR)")
    parser.add_argument("--timeout", type=float, default=30.0, metavar="SECS",
                        help="HTTP timeout per request (default: 30)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve", description="crash-safe simulation-as-a-service"
    )
    sub = parser.add_subparsers(dest="serve_command", metavar="SUBCOMMAND", required=True)

    start = sub.add_parser("start", help="run the serve daemon (blocks until drained)")
    start.add_argument("--host", default="127.0.0.1")
    start.add_argument("--port", type=int, default=0,
                       help="TCP port (default: OS-assigned, recorded in endpoint.json)")
    start.add_argument("--workers", type=int, default=2, metavar="N",
                       help="shard worker processes (default: 2)")
    start.add_argument("--max-depth", type=int, default=None, metavar="N",
                       help="admission control: maximum queued jobs (default: 64)")
    start.add_argument("--snapshot-every", type=int, default=None, metavar="N",
                       help="journal appends between snapshot compactions (default: 64)")
    start.add_argument("--job-timeout", type=float, default=120.0, metavar="SECS",
                       help="per-job deadline before a worker is declared hung "
                       "and reaped (default: 120)")
    start.add_argument("--retries", type=int, default=2, metavar="N",
                       help="requeue budget per job for transient failures (default: 2)")
    start.add_argument("--heartbeat-timeout", type=float, default=5.0, metavar="SECS",
                       help="reap a worker whose heartbeat is older than this "
                       "(default: 5)")
    start.add_argument("--max-restarts", type=int, default=4, metavar="N",
                       help="worker restarts per window before the circuit breaker "
                       "degrades to serial in-parent execution (default: 4)")
    start.add_argument("--drain-grace", type=float, default=10.0, metavar="SECS",
                       help="how long a drain waits for in-flight jobs before "
                       "requeueing them (default: 10)")
    start.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="cache root; the queue lives at DIR/serve/ "
                       "(default: REPRO_CACHE_DIR)")

    submit = sub.add_parser("submit", help="enqueue a sweep job")
    submit.add_argument("grid", metavar="GRID", help="a named grid (see `repro sweep list`)")
    scale = submit.add_mutually_exclusive_group()
    scale.add_argument("--fast", action="store_true", help="scaled-down configuration (default)")
    scale.add_argument("--full", action="store_true", help="paper-shaped configuration")
    submit.add_argument("--set", action="append", default=[], metavar="AXIS=V1,V2",
                        dest="overrides", help="override one axis (repeatable)")
    submit.add_argument("--shard", default=None, metavar="K/N",
                        help="run only the K-th of N slices")
    submit.add_argument("--priority", type=int, default=0, metavar="P",
                        help="scheduling priority; higher runs first (default: 0)")
    submit.add_argument("--no-aggregate", action="store_true",
                        help="skip the sweep-artifact aggregation step")
    submit.add_argument("--wait", action="store_true",
                        help="block until the job completes and print its result")
    submit.add_argument("--wait-timeout", type=float, default=600.0, metavar="SECS")
    _add_client_flags(submit)

    for name, help_text in (
        ("status", "one job's state and attempt accounting"),
        ("result", "a completed job's result payload"),
        ("cancel", "cancel a queued job"),
    ):
        command = sub.add_parser(name, help=help_text)
        command.add_argument("job_id", metavar="JOB_ID")
        _add_client_flags(command)

    for name, help_text in (
        ("jobs", "the daemon's job table"),
        ("health", "daemon, queue and worker-pool health"),
        ("drain", "begin a graceful drain"),
    ):
        command = sub.add_parser(name, help=help_text)
        _add_client_flags(command)
    return parser


def _client(args: argparse.Namespace):
    from repro.serve.client import ServeClient

    if args.url:
        return ServeClient(args.url, timeout=args.timeout)
    cache_dir = args.cache_dir or str(default_cache_dir())
    return ServeClient.discover(cache_dir, timeout=args.timeout)


def _print_json(payload: Dict[str, Any]) -> None:
    print(json.dumps(payload, indent=2, sort_keys=True))


def _cmd_start(args: argparse.Namespace) -> int:
    import os

    from repro.serve.dispatcher import Dispatcher, ServeConfig

    if args.cache_dir:
        # Export so workers and nested components agree with the flag.
        os.environ["REPRO_CACHE_DIR"] = args.cache_dir
    cache_dir = args.cache_dir or str(default_cache_dir())
    config = ServeConfig(
        host=args.host,
        port=args.port,
        pool_size=args.workers,
        job_timeout=args.job_timeout if args.job_timeout > 0 else None,
        retries=max(0, args.retries),
        heartbeat_timeout=args.heartbeat_timeout,
        max_restarts=args.max_restarts,
        drain_grace=args.drain_grace,
    )
    if args.max_depth is not None:
        config.max_depth = args.max_depth
    if args.snapshot_every is not None:
        config.snapshot_every = args.snapshot_every
    return Dispatcher(cache_dir, config).run()


def _cmd_submit(args: argparse.Namespace) -> int:
    request: Dict[str, Any] = {
        "kind": "sweep",
        "grid": args.grid,
        "preset": "full" if args.full else "fast",
        "overrides": args.overrides,
        "priority": args.priority,
    }
    if args.shard:
        request["shard"] = args.shard
    if args.no_aggregate:
        request["aggregate"] = False
    client = _client(args)
    submitted = client.submit_with_backoff(request)
    verb = "deduplicated onto" if submitted["deduplicated"] else "accepted as"
    print(f"{verb} {submitted['job_id']} (state: {submitted['state']})")
    if not args.wait:
        return 0
    result = client.wait(submitted["job_id"], timeout=args.wait_timeout)
    _print_json(result)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    from repro.serve.client import ServeClientError, ServeUnreachable

    try:
        if args.serve_command == "start":
            return _cmd_start(args)
        if args.serve_command == "submit":
            return _cmd_submit(args)
        client = _client(args)
        if args.serve_command == "status":
            _print_json(client.status(args.job_id))
        elif args.serve_command == "result":
            _print_json(client.result(args.job_id))
        elif args.serve_command == "cancel":
            _print_json(client.cancel(args.job_id))
        elif args.serve_command == "jobs":
            _print_json(client.jobs())
        elif args.serve_command == "health":
            _print_json(client.health())
        elif args.serve_command == "drain":
            _print_json(client.drain())
        else:  # pragma: no cover — argparse enforces the choices
            raise AssertionError(f"unhandled subcommand {args.serve_command!r}")
        return 0
    except ServeClientError as error:
        print(f"error: {error}", file=sys.stderr)
        _print_json(error.payload)
        return 1
    except (ServeUnreachable, TimeoutError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
