"""``repro bench`` — simulator throughput microbenchmarks.

Appends one entry to ``BENCH_throughput.json`` (a JSON list, by default in
the current directory) with:

* hot-loop throughput (simulated cycles per wall-clock second) on the
  memory-divergent, compute-intensive and memory-stall bracket kernels,
  measured **per engine** (``fast``, ``legacy`` and ``event``),
* a trace-replay row (decode + replay of a stencil-family trace),
* the full bench **matrix** — every evaluation scheme
  (gto/swl/pcal/poise/static_best) × representative synthetic and
  trace-family kernels × every engine — so the perf trajectory accumulates
  comparable data points,
* the fast-profile sweep wall-clock (cold serial vs. warm persistent-cache
  vs. parallel).

Every record carries ``engine``, ``python_version`` and ``cpu_count``; all
timing is ``time.perf_counter``.

``--gate RATIO`` turns the run into a CI perf gate: it fails (exit 1) when
the fast (or event) engine's throughput drops below ``RATIO`` × a **live
legacy run on the same host** on either bracket kernel — a
host-speed-independent regression signal (both engines pay the same
slowdown on a throttled runner).  When the event engine is benchmarked the
gate additionally requires it to hold ≥5x over a live fast run on the
MSHR-saturating memory-stall bracket (the dead-cycle class only the event
engine skips).  The ratio against the committed legacy baseline (the
earliest trajectory entry, measured on the reference container) is reported
alongside for trend context but never fails the gate off-host.

Usage::

    python -m repro bench [--output PATH] [--jobs N] [--max-cycles N]
                          [--engines fast,legacy,event] [--skip-matrix]
                          [--matrix-cycles N] [--gate RATIO] [--dry-run]
"""

from __future__ import annotations

import argparse
import datetime
import json
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.gpu.engine import resolve_engine
from repro.obs.schema import BENCH_SCHEMA_VERSION, BenchSchemaError, validate_bench_entry
from repro.obs.telemetry import telemetry_delta, telemetry_snapshot
from repro.runtime.bench import (
    EVENT_GATE_KERNEL,
    EVENT_GATE_RATIO,
    GATE_KERNELS,
    committed_legacy_baseline,
    compute_intensive_kernel,
    host_environment,
    load_trajectory,
    measure_matrix,
    measure_sweep,
    measure_throughput,
    measure_trace_replay,
    memory_divergent_kernel,
    memory_stall_config,
    memory_stall_kernel,
)
from repro.runtime.executor import resolve_jobs
from repro.version import __version__

DEFAULT_OUTPUT = Path("BENCH_throughput.json")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro bench", description=__doc__)
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT,
        help="trajectory file to append to (default: ./BENCH_throughput.json)",
    )
    parser.add_argument(
        "--jobs", type=int, default=4,
        help="worker count for the parallel sweep measurement (default 4)",
    )
    parser.add_argument(
        "--max-cycles", type=int, default=80_000,
        help="cycle budget per throughput kernel (default 80000)",
    )
    parser.add_argument(
        "--engines", default="fast,legacy,event",
        help="comma-separated engines to benchmark (default: fast,legacy,event)",
    )
    parser.add_argument(
        "--skip-matrix", action="store_true",
        help="skip the scheme × kernel × engine matrix",
    )
    parser.add_argument(
        "--matrix-cycles", type=int, default=40_000,
        help="cycle budget per matrix cell (default 40000; CI uses a tiny budget)",
    )
    parser.add_argument(
        "--skip-sweep", action="store_true",
        help="skip the cold/warm/parallel profile-sweep measurement",
    )
    parser.add_argument(
        "--gate", type=float, default=None, metavar="RATIO",
        help="fail unless fast-engine throughput is at least RATIO x a live "
             "legacy run on this host for both bracket kernels (the ratio "
             "vs the committed legacy baseline is reported for context)",
    )
    parser.add_argument(
        "--dry-run", action="store_true",
        help="print the entry without appending it to the trajectory",
    )
    args = parser.parse_args(argv)

    engines = [resolve_engine(name) for name in args.engines.split(",") if name.strip()]
    if not engines:
        parser.error("--engines must name at least one engine")

    # Bracket the whole measurement with the run-telemetry layer: the entry
    # records what the bench run itself cost (cache behaviour, per-phase
    # wall-clock, per-stage wall-clock).
    telemetry_before = telemetry_snapshot()
    stages: Dict[str, float] = {}
    stage_start = time.perf_counter()

    def stage_done(name: str) -> None:
        nonlocal stage_start
        now = time.perf_counter()
        stages[name] = now - stage_start
        stage_start = now

    throughput: Dict[str, dict] = {}
    stall_config = memory_stall_config(max_cycles=args.max_cycles)
    for engine in engines:
        rows = {}
        for spec, config in (
            (memory_divergent_kernel(), None),
            (compute_intensive_kernel(), None),
            (memory_stall_kernel(), stall_config),
        ):
            result = measure_throughput(
                spec, max_cycles=args.max_cycles, engine=engine, rounds=3,
                config=config,
            )
            rows[spec.name] = result
            print(
                f"[{engine}] {spec.name}: {result['cycles_per_second']:,.0f} cycles/s "
                f"({result['cycles']:,} cycles in {result['wall_seconds']:.3f}s)"
            )
        throughput[engine] = rows
    stage_done("throughput")

    # Trace replay: decode a stencil-family trace file and simulate it — the
    # file-to-counters path the trace subsystem adds.
    with tempfile.TemporaryDirectory(prefix="repro-bench-trace-") as tmp:
        result = measure_trace_replay(Path(tmp), max_cycles=args.max_cycles)
    throughput["trace_replay"] = result
    print(
        f"trace_replay ({result['kernel']}, {result['engine']}): "
        f"{result['cycles_per_second']:,.0f} cycles/s "
        f"({result['cycles']:,} cycles in {result['wall_seconds']:.3f}s, "
        f"decode {result['decode_seconds']:.3f}s)"
    )
    stage_done("trace_replay")

    matrix: List[dict] = []
    if not args.skip_matrix:
        matrix = measure_matrix(engines=engines, max_cycles=args.matrix_cycles)
        print(f"matrix: {len(matrix)} rows "
              f"({len(set(r['kernel'] for r in matrix))} kernels x "
              f"{len(set(r['scheme'] for r in matrix))} schemes x {len(engines)} engines)")
        for row in matrix:
            print(
                f"  {row['kernel']:<24} {row['scheme']:<12} [{row['engine']}] "
                f"{row['cycles_per_second']:,.0f} cycles/s"
            )
        stage_done("matrix")

    sweep: dict = {}
    if not args.skip_sweep:
        # A fresh temp directory keeps the cold sweep honest.
        with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
            sweep = measure_sweep(Path(tmp), parallel_jobs=args.jobs)
        print(
            f"fast-profile sweep ({sweep['points']} points): "
            f"cold {sweep['cold_seconds']:.2f}s, warm {sweep['warm_seconds']:.3f}s "
            f"({sweep['warm_speedup']:.0f}x), "
            f"parallel({sweep['parallel_jobs']}) {sweep['parallel_seconds']:.2f}s, "
            f"identical counters: {sweep['parallel_matches_serial']}"
        )
        stage_done("sweep")

    telemetry = telemetry_delta(telemetry_before)
    telemetry["stages"] = stages
    entry = {
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "version": __version__,
        "bench_schema": BENCH_SCHEMA_VERSION,
        "jobs_env": resolve_jobs(),
        "environment": host_environment(),
        "telemetry": telemetry,
        "throughput": throughput,
        "matrix": matrix,
        "sweep": sweep,
    }
    # The append-time schema gate: shape drift stops at the writer, not in
    # a future reader.  Historical entries are the loader's problem; a new
    # entry that fails its own schema is never appended.
    try:
        validate_bench_entry(entry)
    except BenchSchemaError as error:
        print(
            f"error: refusing to append a schema-invalid bench entry: {error}",
            file=sys.stderr,
        )
        return 1

    trajectory = load_trajectory(args.output)

    gate_failed = False
    if args.gate is not None:
        fast_rows = throughput.get("fast")
        legacy_rows = throughput.get("legacy")
        if fast_rows is None or legacy_rows is None:
            print("gate: FAIL — the gate needs both engines benchmarked "
                  "(run with --engines fast,legacy)")
            gate_failed = True
        else:
            # The gate itself is host-independent: fast vs a live legacy run
            # on this machine, both paying the same host slowdown.
            for kernel in GATE_KERNELS:
                fast_cps = float(fast_rows[kernel]["cycles_per_second"])
                legacy_cps = float(legacy_rows[kernel]["cycles_per_second"])
                ratio = fast_cps / legacy_cps if legacy_cps else float("inf")
                verdict = "ok" if ratio >= args.gate else "FAIL"
                print(
                    f"gate [{kernel}]: fast {fast_cps:,.0f} vs live legacy "
                    f"{legacy_cps:,.0f} -> {ratio:.2f}x (need >= {args.gate:.2f}x) {verdict}"
                )
                if ratio < args.gate:
                    gate_failed = True
            event_rows = throughput.get("event")
            if event_rows is not None:
                # Same host-independent discipline for the event engine: it
                # must keep the fast engine's lead over legacy on the
                # bracket kernels ...
                for kernel in GATE_KERNELS:
                    event_cps = float(event_rows[kernel]["cycles_per_second"])
                    legacy_cps = float(legacy_rows[kernel]["cycles_per_second"])
                    ratio = event_cps / legacy_cps if legacy_cps else float("inf")
                    verdict = "ok" if ratio >= args.gate else "FAIL"
                    print(
                        f"gate [{kernel}]: event {event_cps:,.0f} vs live legacy "
                        f"{legacy_cps:,.0f} -> {ratio:.2f}x (need >= {args.gate:.2f}x) {verdict}"
                    )
                    if ratio < args.gate:
                        gate_failed = True
                # ... and demonstrate the event-skipping win itself: ≥5x
                # over a live fast run on the MSHR-saturating bracket.
                event_cps = float(event_rows[EVENT_GATE_KERNEL]["cycles_per_second"])
                fast_cps = float(fast_rows[EVENT_GATE_KERNEL]["cycles_per_second"])
                ratio = event_cps / fast_cps if fast_cps else float("inf")
                verdict = "ok" if ratio >= EVENT_GATE_RATIO else "FAIL"
                print(
                    f"gate [{EVENT_GATE_KERNEL}]: event {event_cps:,.0f} vs live fast "
                    f"{fast_cps:,.0f} -> {ratio:.2f}x (need >= {EVENT_GATE_RATIO:.2f}x) "
                    f"{verdict}"
                )
                if ratio < EVENT_GATE_RATIO:
                    gate_failed = True
            # Context only: the trend against the committed reference-host
            # baseline (never fails the gate — CI runners differ in speed).
            for kernel, base_cps in committed_legacy_baseline(trajectory).items():
                fast_cps = float(fast_rows[kernel]["cycles_per_second"])
                ratio = fast_cps / base_cps if base_cps else float("inf")
                print(
                    f"trend [{kernel}]: fast {fast_cps:,.0f} vs committed legacy "
                    f"{base_cps:,.0f} -> {ratio:.2f}x (informational)"
                )

    if args.dry_run:
        print(json.dumps(entry, indent=2))
        return 1 if gate_failed else 0

    trajectory.append(entry)
    args.output.write_text(json.dumps(trajectory, indent=2) + "\n")
    print(f"appended entry #{len(trajectory)} to {args.output}")
    return 1 if gate_failed else 0


if __name__ == "__main__":
    sys.exit(main())
