"""``repro bench`` — simulator throughput microbenchmarks.

Appends one entry to ``BENCH_throughput.json`` (a JSON list, by default in
the current directory) with the hot-loop throughput (simulated cycles per
wall-clock second on the memory-divergent and compute-intensive kernels)
and the fast-profile sweep wall-clock (cold serial vs. warm persistent-cache
vs. parallel), so future performance PRs have a baseline to compare against.

Usage::

    python -m repro bench [--output PATH] [--jobs N] [--max-cycles N] [--dry-run]
"""

from __future__ import annotations

import argparse
import datetime
import json
import sys
import tempfile
from pathlib import Path
from typing import Optional, Sequence

from repro.runtime.bench import (
    compute_intensive_kernel,
    measure_sweep,
    measure_throughput,
    measure_trace_replay,
    memory_divergent_kernel,
)
from repro.runtime.executor import resolve_jobs
from repro.version import __version__

DEFAULT_OUTPUT = Path("BENCH_throughput.json")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro bench", description=__doc__)
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT,
        help="trajectory file to append to (default: ./BENCH_throughput.json)",
    )
    parser.add_argument(
        "--jobs", type=int, default=4,
        help="worker count for the parallel sweep measurement (default 4)",
    )
    parser.add_argument(
        "--max-cycles", type=int, default=80_000,
        help="cycle budget per throughput kernel (default 80000)",
    )
    parser.add_argument(
        "--dry-run", action="store_true",
        help="print the entry without appending it to the trajectory",
    )
    args = parser.parse_args(argv)

    throughput = {}
    for spec in (memory_divergent_kernel(), compute_intensive_kernel()):
        result = measure_throughput(spec, max_cycles=args.max_cycles)
        throughput[spec.name] = result
        print(
            f"{spec.name}: {result['cycles_per_second']:,.0f} cycles/s "
            f"({result['cycles']:,} cycles in {result['wall_seconds']:.3f}s)"
        )

    # Trace replay: decode a stencil-family trace file and simulate it — the
    # file-to-counters path the trace subsystem adds.
    with tempfile.TemporaryDirectory(prefix="repro-bench-trace-") as tmp:
        result = measure_trace_replay(Path(tmp), max_cycles=args.max_cycles)
    throughput["trace_replay"] = result
    print(
        f"trace_replay ({result['kernel']}): {result['cycles_per_second']:,.0f} cycles/s "
        f"({result['cycles']:,} cycles in {result['wall_seconds']:.3f}s, "
        f"decode {result['decode_seconds']:.3f}s)"
    )

    # A fresh temp directory keeps the cold sweep honest.
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        sweep = measure_sweep(Path(tmp), parallel_jobs=args.jobs)
    print(
        f"fast-profile sweep ({sweep['points']} points): "
        f"cold {sweep['cold_seconds']:.2f}s, warm {sweep['warm_seconds']:.3f}s "
        f"({sweep['warm_speedup']:.0f}x), "
        f"parallel({sweep['parallel_jobs']}) {sweep['parallel_seconds']:.2f}s, "
        f"identical counters: {sweep['parallel_matches_serial']}"
    )

    entry = {
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "version": __version__,
        "jobs_env": resolve_jobs(),
        "throughput": throughput,
        "sweep": sweep,
    }

    if args.dry_run:
        print(json.dumps(entry, indent=2))
        return 0

    trajectory = []
    if args.output.exists():
        try:
            trajectory = json.loads(args.output.read_text())
            if not isinstance(trajectory, list):
                trajectory = [trajectory]
        except (OSError, ValueError):
            print(f"warning: {args.output} was unreadable; starting a new trajectory")
            trajectory = []
    trajectory.append(entry)
    args.output.write_text(json.dumps(trajectory, indent=2) + "\n")
    print(f"appended entry #{len(trajectory)} to {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
